//! ABFT vs the replication backends on the matrix kernels: normalized
//! runtime three ways, then the fault-injection outcome split showing
//! what the checksum lanes buy (in-place correction at a fraction of
//! TMR's cost) and what they give up (SDC in the uncovered slice).

use haft_bench::{experiment, recommended_threshold};
use haft_faults::{CampaignConfig, Group, Outcome};
use haft_passes::HardenConfig;
use haft_workloads::{workload_by_name, Scale};

/// The matrix-shaped Phoenix kernels the ABFT recognizer targets.
const MATRIX_NAMES: [&str; 4] = ["pca", "linearreg", "matrixmul", "kmeans"];

fn main() {
    let fast = haft_bench::fast_mode();
    let names: &[&str] = if fast { &["linearreg", "matrixmul"] } else { &MATRIX_NAMES };
    let threads = 2;
    let injections = if fast { 40 } else { 200 };

    println!("\n=== ABFT vs replication: normalized runtime, {threads} threads ===");
    haft_bench::header(&["HAFT", "TMR", "ABFT", "ABFT/TMR"]);
    let (mut haft_sum, mut tmr_sum, mut abft_sum) = (0.0, 0.0, 0.0);
    for name in names {
        let w = workload_by_name(name, Scale::Small).unwrap();
        let report = experiment(&w, threads, recommended_threshold(name)).compare(&[
            HardenConfig::haft(),
            HardenConfig::tmr(),
            HardenConfig::abft(),
        ]);
        assert!(report.outputs_agree(), "{name}: output diverged or run failed");
        let haft = report.overhead("HAFT").unwrap();
        let tmr = report.overhead("TMR").unwrap();
        let abft = report.overhead("ABFT").unwrap();
        haft_sum += haft;
        tmr_sum += tmr;
        abft_sum += abft;
        haft_bench::row(name, &[haft, tmr, abft, abft / tmr]);
    }
    let n = names.len() as f64;
    haft_bench::row(
        "mean",
        &[haft_sum / n, tmr_sum / n, abft_sum / n, (abft_sum / n) / (tmr_sum / n)],
    );
    assert!(
        abft_sum < tmr_sum,
        "ABFT must undercut TMR on matrix kernels: {abft_sum:.2} vs {tmr_sum:.2}"
    );

    println!(
        "\n=== Fault injection: checksum correction vs rollback/vote ({injections} injections) ==="
    );
    println!(
        "{:<16}{:<6}{:>10}{:>10}{:>10}{:>10}",
        "benchmark", "ver", "correct%", "chk%", "crash%", "sdc%"
    );
    for name in names {
        let w = workload_by_name(name, Scale::Small).unwrap();
        for (ver, hc) in [
            ("HAFT", HardenConfig::haft()),
            ("TMR", HardenConfig::tmr()),
            ("ABFT", HardenConfig::abft()),
        ] {
            let v = experiment(&w, threads, recommended_threshold(name))
                .harden(hc)
                .campaign(CampaignConfig { injections, seed: 0xABF7, ..Default::default() });
            let c = v.campaign.unwrap();
            if ver != "ABFT" {
                assert_eq!(
                    c.pct(Outcome::ChecksumCorrected),
                    0.0,
                    "{name}/{ver}: checksum fired without a checksum backend"
                );
            }
            println!(
                "{:<16}{:<6}{:>9.1}%{:>9.1}%{:>9.1}%{:>9.1}%",
                name,
                ver,
                c.group_pct(Group::Correct),
                c.pct(Outcome::ChecksumCorrected),
                c.group_pct(Group::Crashed),
                c.pct(Outcome::Sdc)
            );
        }
    }
}
