//! Ablations of HAFT design choices beyond the paper's own sweeps:
//! the check-elision peephole, the TX begin/end peephole, and the
//! adaptive-transaction-sizing extension (the paper's §7 future work).

use haft::Experiment;
use haft_bench::{experiment, recommended_threshold, vm_config};
use haft_passes::{HardenConfig, IlrConfig, TxConfig};
use haft_workloads::{all_workloads, workload_by_name, Scale};

/// Static instruction count of the module a config produces.
fn inst_count(w: &haft_workloads::Workload, hc: HardenConfig) -> usize {
    Experiment::new(&w.module).harden(hc).build().0.total_inst_count()
}

fn main() {
    let threads = if haft_bench::fast_mode() { 2 } else { 8 };

    println!("\n=== Ablation: ILR check-elision peephole ===");
    println!("{:<16}{:>14}{:>14}{:>10}", "benchmark", "insts(on)", "insts(off)", "saved");
    for name in ["histogram", "vips", "dedup", "x264"] {
        let w = workload_by_name(name, Scale::Small).unwrap();
        let a = inst_count(&w, HardenConfig::haft());
        let b = inst_count(
            &w,
            HardenConfig {
                ilr: Some(IlrConfig { check_elision: false, ..Default::default() }),
                tx: Some(TxConfig::default()),
                ..HardenConfig::default()
            },
        );
        println!(
            "{:<16}{:>14}{:>14}{:>9.1}%",
            name,
            a,
            b,
            100.0 * (b as f64 - a as f64) / b as f64
        );
    }

    println!("\n=== Ablation: TX begin/end peephole ===");
    println!("{:<16}{:>14}{:>14}{:>10}", "benchmark", "insts(on)", "insts(off)", "saved");
    for name in ["dedup", "apache-like: see fig12", "vips"] {
        let Some(w) = workload_by_name(name, Scale::Small) else { continue };
        let a = inst_count(&w, HardenConfig::haft());
        let b = inst_count(
            &w,
            HardenConfig {
                ilr: Some(IlrConfig::default()),
                tx: Some(TxConfig { peephole: false, ..Default::default() }),
                ..HardenConfig::default()
            },
        );
        println!(
            "{:<16}{:>14}{:>14}{:>9.1}%",
            name,
            a,
            b,
            100.0 * (b as f64 - a as f64) / b as f64
        );
    }

    println!("\n=== Ablation: adaptive transaction sizing (paper §7 future work) ===");
    println!(
        "{:<16}{:>10}{:>10}{:>12}{:>12}{:>10}{:>10}",
        "benchmark", "oh(fix)", "oh(adpt)", "abort%(fix)", "abort%(adpt)", "cov(fix)", "cov(adpt)"
    );
    for w in all_workloads(Scale::Large) {
        // Only the conflict-prone kernels are interesting here.
        if !matches!(w.name, "kmeans" | "pca" | "wordcount" | "streamcluster" | "vips") {
            continue;
        }
        let native = experiment(&w, threads, 5000).run().expect_completed(w.name);
        let fixed = experiment(&w, threads, 5000)
            .harden(HardenConfig::haft())
            .run()
            .expect_completed(w.name);
        let mut acfg = vm_config(threads, 5000);
        acfg.adaptive_threshold = true;
        let adaptive = Experiment::workload(&w)
            .vm(acfg)
            .harden(HardenConfig::haft())
            .run()
            .expect_completed(w.name);
        println!(
            "{:<16}{:>10.2}{:>10.2}{:>12.2}{:>12.2}{:>9.1}%{:>9.1}%",
            w.name,
            fixed.wall_cycles as f64 / native.wall_cycles as f64,
            adaptive.wall_cycles as f64 / native.wall_cycles as f64,
            fixed.htm.abort_rate_pct(),
            adaptive.htm.abort_rate_pct(),
            fixed.htm.coverage_pct(),
            adaptive.htm.coverage_pct(),
        );
        let _ = recommended_threshold(w.name);
    }
}
