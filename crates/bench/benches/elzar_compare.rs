//! HAFT vs. Elzar-style TMR: overhead and fault-coverage comparison on
//! the Phoenix workloads (the measured version of ARCHITECTURE.md's
//! design-tradeoff note).
//!
//! Two tables: normalized runtime of each backend against the shared
//! native baseline (plus the TMR/HAFT ratio), and the fault-injection
//! outcome split — HAFT corrects by transactional rollback
//! (`haft-corrected`), TMR corrects by majority-vote masking
//! (`vote-corrected`) with zero HTM machinery.

use haft_bench::{experiment, recommended_threshold};
use haft_faults::{CampaignConfig, Group, Outcome};
use haft_passes::HardenConfig;
use haft_workloads::{workload_by_name, Scale, PHOENIX_BASE_NAMES};

fn main() {
    let fast = haft_bench::fast_mode();
    let names: &[&str] = if fast { &["histogram", "linearreg"] } else { &PHOENIX_BASE_NAMES };
    let threads = 2;
    let injections = if fast { 40 } else { 200 };

    println!("\n=== HAFT vs Elzar (TMR): normalized runtime, {threads} threads ===");
    haft_bench::header(&["HAFT", "TMR", "TMR/HAFT"]);
    let (mut haft_sum, mut tmr_sum) = (0.0, 0.0);
    for name in names {
        let w = workload_by_name(name, Scale::Small).unwrap();
        let report = experiment(&w, threads, recommended_threshold(name))
            .compare(&[HardenConfig::haft(), HardenConfig::tmr()]);
        assert!(report.outputs_agree(), "{name}: output diverged or run failed");
        let haft = report.overhead("HAFT").unwrap();
        let tmr = report.overhead("TMR").unwrap();
        haft_sum += haft;
        tmr_sum += tmr;
        haft_bench::row(name, &[haft, tmr, tmr / haft]);
    }
    let n = names.len() as f64;
    haft_bench::row("mean", &[haft_sum / n, tmr_sum / n, (tmr_sum / n) / (haft_sum / n)]);

    println!("\n=== Fault injection: rollback recovery vs masking ({injections} injections) ===");
    println!(
        "{:<16}{:<6}{:>10}{:>10}{:>10}{:>10}  (corrected = haft- or vote-corrected)",
        "benchmark", "ver", "correct%", "corr'd%", "crash%", "sdc%"
    );
    for name in names {
        let w = workload_by_name(name, Scale::Small).unwrap();
        for (ver, hc) in [("HAFT", HardenConfig::haft()), ("TMR", HardenConfig::tmr())] {
            let v = experiment(&w, threads, recommended_threshold(name))
                .harden(hc)
                .campaign(CampaignConfig { injections, seed: 0xE15A, ..Default::default() });
            let run = &v.run;
            if ver == "TMR" {
                assert_eq!(run.htm.commits, 0, "{name}: TMR must not transactify");
            }
            let c = v.campaign.unwrap();
            let corrected = c.pct(Outcome::HaftCorrected) + c.pct(Outcome::VoteCorrected);
            println!(
                "{:<16}{:<6}{:>9.1}%{:>9.1}%{:>9.1}%{:>9.1}%",
                name,
                ver,
                c.group_pct(Group::Correct),
                corrected,
                c.group_pct(Group::Crashed),
                c.pct(Outcome::Sdc)
            );
        }
    }
}
