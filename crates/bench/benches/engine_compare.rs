//! Fused engine vs. reference interpreter: host wall-clock speedup at
//! pinned simulated cost.
//!
//! Both engines return byte-identical `RunResult`s (the differential
//! harness in `tests/differential.rs` enforces this); the only thing
//! left to measure is how much real time the fused dispatch saves. Each
//! cell interleaves the two engines and keeps the per-engine minimum
//! over several rounds — the only estimator that survives the ±20%
//! machine noise observed on shared runners.

use std::time::Instant;

use haft_bench::{experiment, recommended_threshold};
use haft_passes::HardenConfig;
use haft_vm::{Engine, RunResult};

/// Wall-clock of one run, plus the result for the equality check.
fn time_one(exp: &haft::Experiment<'_>, engine: Engine) -> (f64, RunResult) {
    let e = exp.clone().engine(engine);
    let t0 = Instant::now();
    let r = e.run().run;
    (t0.elapsed().as_secs_f64(), r)
}

/// Interleaved min-of-`rounds` for both engines on one experiment.
fn time_pair(exp: &haft::Experiment<'_>, rounds: usize) -> (f64, f64) {
    let (mut best_i, mut best_f) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds {
        let (ti, ri) = time_one(exp, Engine::Interp);
        let (tf, rf) = time_one(exp, Engine::Fused);
        assert_eq!(ri, rf, "engines diverge");
        best_i = best_i.min(ti);
        best_f = best_f.min(tf);
    }
    (best_i, best_f)
}

fn main() {
    let fast = haft_bench::fast_mode();
    let rounds = if fast { 2 } else { 9 };
    let threads = 2;
    let names: &[&str] = if fast { &["linearreg"] } else { &["linearreg", "histogram", "kmeans"] };

    println!("\n=== Execution engine: host wall-clock, interp vs fused ({threads} threads) ===");
    haft_bench::header(&["interp ns/i", "fused ns/i", "speedup"]);
    for name in names {
        let w = haft_workloads::workload_by_name(name, haft_workloads::Scale::Small).unwrap();
        for hc in [HardenConfig::native(), HardenConfig::haft(), HardenConfig::tmr()] {
            let exp = experiment(&w, threads, recommended_threshold(name)).harden(hc.clone());
            let insts = exp.clone().engine(Engine::Interp).run().run.instructions.max(1);
            let (ti, tf) = time_pair(&exp, rounds);
            haft_bench::row(
                &format!("{name}/{}", hc.label()),
                &[ti * 1e9 / insts as f64, tf * 1e9 / insts as f64, ti / tf],
            );
        }
    }
    println!("(min over {rounds} interleaved rounds; simulated cycles are engine-invariant)");
}
