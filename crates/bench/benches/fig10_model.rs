//! Figure 10: availability and corruption over one hour vs fault rate,
//! from the Figure 5 CTMC with Table 4 parameters.

use haft_model::{HaftChain, SystemKind};

fn main() {
    const HOUR: f64 = 3600.0;
    let points = if haft_bench::fast_mode() { 6 } else { 12 };
    println!("\n=== Figure 10: availability / corruption in 1 hour vs fault rate ===");
    println!(
        "{:>12} {:>10} {:>10} {:>10}   {:>10} {:>10} {:>10}",
        "faults/s", "avail-N", "avail-I", "avail-H", "corr-N", "corr-I", "corr-H"
    );
    let native = HaftChain::paper(SystemKind::Native).sweep(0.00028, 1.0, points, HOUR);
    let ilr = HaftChain::paper(SystemKind::Ilr).sweep(0.00028, 1.0, points, HOUR);
    let haft = HaftChain::paper(SystemKind::Haft).sweep(0.00028, 1.0, points, HOUR);
    for i in 0..points {
        println!(
            "{:>12.5} {:>9.1}% {:>9.1}% {:>9.1}%   {:>9.1}% {:>9.1}% {:>9.1}%",
            native[i].fault_rate,
            native[i].availability * 100.0,
            ilr[i].availability * 100.0,
            haft[i].availability * 100.0,
            native[i].corruption * 100.0,
            ilr[i].corruption * 100.0,
            haft[i].corruption * 100.0,
        );
    }
}
