//! Figure 11: memcached throughput under YCSB A and D, native vs HAFT
//! with/without lock elision, plus the SEI comparison (right graph).

use haft_apps::{memcached, KvSync, WorkloadMix};
use haft_bench::{run_checked, vm_config};
use haft_passes::{harden, HardenConfig};
use haft_workloads::Scale;

/// Simulated throughput in M ops per second at 2 GHz.
fn throughput(wall_cycles: u64, ops: f64) -> f64 {
    ops / (wall_cycles as f64 / 2.0e9) / 1.0e6
}

fn main() {
    let threads: Vec<usize> =
        if haft_bench::fast_mode() { vec![2, 8] } else { vec![1, 2, 4, 8, 16] };
    let ops = 24_000.0;
    for (mix, label) in
        [(WorkloadMix::A, "A (50r/50w, zipf)"), (WorkloadMix::D, "D (95r/5w, latest)")]
    {
        println!("\n=== Figure 11: memcached workload {label} — throughput (M msg/s) ===");
        println!(
            "{:<10}{:>14}{:>14}{:>14}{:>14}{:>16}",
            "threads", "native-atom", "native-lock", "HAFT-atom", "HAFT-lock", "HAFT-lock-noel"
        );
        for &t in &threads {
            let na = {
                let w = memcached(mix, KvSync::Atomics, Scale::Large);
                run_checked(&w, &w.module, vm_config(t, 3000))
            };
            let nl = {
                let w = memcached(mix, KvSync::Lock, Scale::Large);
                run_checked(&w, &w.module, vm_config(t, 3000))
            };
            let ha = {
                let w = memcached(mix, KvSync::Atomics, Scale::Large);
                let h = harden(&w.module, &HardenConfig::haft());
                run_checked(&w, &h, vm_config(t, 3000))
            };
            let hl = {
                let w = memcached(mix, KvSync::Lock, Scale::Large);
                let h = harden(&w.module, &HardenConfig::haft_with_elision());
                let mut cfg = vm_config(t, 3000);
                cfg.lock_elision = true;
                run_checked(&w, &h, cfg)
            };
            let hn = {
                let w = memcached(mix, KvSync::Lock, Scale::Large);
                let h = harden(&w.module, &HardenConfig::haft());
                run_checked(&w, &h, vm_config(t, 3000))
            };
            println!(
                "{:<10}{:>14.3}{:>14.3}{:>14.3}{:>14.3}{:>16.3}",
                t,
                throughput(na.wall_cycles, ops),
                throughput(nl.wall_cycles, ops),
                throughput(ha.wall_cycles, ops),
                throughput(hl.wall_cycles, ops),
                throughput(hn.wall_cycles, ops),
            );
        }
    }

    println!("\n=== Figure 11 (right): HAFT vs SEI (mcblaster-style, uniform keys) ===");
    println!("{:<10}{:>14}{:>14}{:>14}", "threads", "native-lock", "HAFT-lock", "SEI");
    for &t in &threads {
        let nl = {
            let w = memcached(WorkloadMix::Uniform, KvSync::Lock, Scale::Large);
            run_checked(&w, &w.module, vm_config(t, 3000))
        };
        let hl = {
            let w = memcached(WorkloadMix::Uniform, KvSync::Lock, Scale::Large);
            let h = harden(&w.module, &HardenConfig::haft_with_elision());
            let mut cfg = vm_config(t, 3000);
            cfg.lock_elision = true;
            run_checked(&w, &h, cfg)
        };
        let sei = {
            let w = memcached(WorkloadMix::Uniform, KvSync::Sei, Scale::Large);
            run_checked(&w, &w.module, vm_config(t, 3000))
        };
        println!(
            "{:<10}{:>14.3}{:>14.3}{:>14.3}",
            t,
            throughput(nl.wall_cycles, ops),
            throughput(hl.wall_cycles, ops),
            throughput(sei.wall_cycles, ops),
        );
    }
}
