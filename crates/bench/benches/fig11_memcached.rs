//! Figure 11: memcached throughput under YCSB A and D, native vs HAFT
//! with/without lock elision, plus the SEI comparison (right graph).

use haft::Experiment;
use haft_apps::{memcached, KvSync, WorkloadMix};
use haft_bench::vm_config;
use haft_passes::HardenConfig;
use haft_vm::RunResult;
use haft_workloads::Scale;

/// Simulated throughput in M ops per second at 2 GHz.
fn throughput(wall_cycles: u64, ops: f64) -> f64 {
    ops / (wall_cycles as f64 / 2.0e9) / 1.0e6
}

/// One grid cell: a memcached variant hardened with `hc`, with or
/// without the VM's lock-elision wrapper.
fn cell(
    mix: WorkloadMix,
    sync: KvSync,
    hc: HardenConfig,
    elide: bool,
    threads: usize,
) -> RunResult {
    let w = memcached(mix, sync, Scale::Large);
    Experiment::workload(&w)
        .vm(vm_config(threads, 3000))
        .harden(hc)
        .lock_elision(elide)
        .run()
        .expect_completed(w.name)
}

fn main() {
    let threads: Vec<usize> =
        if haft_bench::fast_mode() { vec![2, 8] } else { vec![1, 2, 4, 8, 16] };
    let ops = 24_000.0;
    for (mix, label) in
        [(WorkloadMix::A, "A (50r/50w, zipf)"), (WorkloadMix::D, "D (95r/5w, latest)")]
    {
        println!("\n=== Figure 11: memcached workload {label} — throughput (M msg/s) ===");
        println!(
            "{:<10}{:>14}{:>14}{:>14}{:>14}{:>16}",
            "threads", "native-atom", "native-lock", "HAFT-atom", "HAFT-lock", "HAFT-lock-noel"
        );
        for &t in &threads {
            let na = cell(mix, KvSync::Atomics, HardenConfig::native(), false, t);
            let nl = cell(mix, KvSync::Lock, HardenConfig::native(), false, t);
            let ha = cell(mix, KvSync::Atomics, HardenConfig::haft(), false, t);
            let hl = cell(mix, KvSync::Lock, HardenConfig::haft_with_elision(), true, t);
            let hn = cell(mix, KvSync::Lock, HardenConfig::haft(), false, t);
            println!(
                "{:<10}{:>14.3}{:>14.3}{:>14.3}{:>14.3}{:>16.3}",
                t,
                throughput(na.wall_cycles, ops),
                throughput(nl.wall_cycles, ops),
                throughput(ha.wall_cycles, ops),
                throughput(hl.wall_cycles, ops),
                throughput(hn.wall_cycles, ops),
            );
        }
    }

    println!("\n=== Figure 11 (right): HAFT vs SEI (mcblaster-style, uniform keys) ===");
    println!("{:<10}{:>14}{:>14}{:>14}", "threads", "native-lock", "HAFT-lock", "SEI");
    for &t in &threads {
        let nl = cell(WorkloadMix::Uniform, KvSync::Lock, HardenConfig::native(), false, t);
        let hl =
            cell(WorkloadMix::Uniform, KvSync::Lock, HardenConfig::haft_with_elision(), true, t);
        let sei = cell(WorkloadMix::Uniform, KvSync::Sei, HardenConfig::native(), false, t);
        println!(
            "{:<10}{:>14.3}{:>14.3}{:>14.3}",
            t,
            throughput(nl.wall_cycles, ops),
            throughput(hl.wall_cycles, ops),
            throughput(sei.wall_cycles, ops),
        );
    }
}
