//! Figure 12: LogCabin, Apache, LevelDB, SQLite throughput, native vs
//! HAFT.

use haft_apps::others::{apache, leveldb, logcabin, sqlite};
use haft_apps::WorkloadMix;
use haft_bench::experiment;
use haft_passes::HardenConfig;
use haft_workloads::{Scale, Workload};

fn tp(wall: u64, units: f64) -> f64 {
    units / (wall as f64 / 2.0e9) / 1.0e3 // K ops/s at 2 GHz.
}

fn line(w: &Workload, units: f64, threads: &[usize]) {
    print!("{:<14}", w.name);
    for &t in threads {
        let n = experiment(w, t, 3000).run().expect_completed(w.name);
        let h = experiment(w, t, 3000).harden(HardenConfig::haft()).run().expect_completed(w.name);
        print!("  {:>7.1}/{:<7.1}", tp(n.wall_cycles, units), tp(h.wall_cycles, units));
    }
    println!();
}

fn main() {
    let threads: Vec<usize> =
        if haft_bench::fast_mode() { vec![2, 8] } else { vec![1, 2, 4, 8, 16] };
    println!("\n=== Figure 12: case-study throughput, K ops/s (native/HAFT) ===");
    print!("{:<14}", "app");
    for t in &threads {
        print!("  {:>15}", format!("{t} thr"));
    }
    println!();
    line(&logcabin(Scale::Large), 6_000.0, &threads);
    line(&apache(Scale::Large), 1_500.0, &threads);
    line(&leveldb(WorkloadMix::A, Scale::Large), 12_000.0, &threads);
    line(&leveldb(WorkloadMix::D, Scale::Large), 12_000.0, &threads);
    line(&sqlite(WorkloadMix::A, Scale::Large), 9_000.0, &threads);
    line(&sqlite(WorkloadMix::D, Scale::Large), 9_000.0, &threads);
}
