//! Figure 6: normalized runtime of HAFT over native, 1–14 threads.

use haft_bench::{header, overhead, row};
use haft_passes::HardenConfig;
use haft_workloads::{all_workloads, Scale};

fn main() {
    let threads: Vec<usize> =
        if haft_bench::fast_mode() { vec![2, 8] } else { vec![1, 2, 4, 8, 14] };
    println!("\n=== Figure 6: HAFT normalized runtime vs native (thread sweep) ===");
    let cols: Vec<String> = threads.iter().map(|t| format!("{t}thr")).collect();
    header(&cols.iter().map(String::as_str).collect::<Vec<_>>());
    let mut means = vec![0.0; threads.len()];
    let workloads = all_workloads(Scale::Large);
    for w in &workloads {
        let mut vals = Vec::new();
        for (i, &t) in threads.iter().enumerate() {
            let (oh, _) = overhead(w, &HardenConfig::haft(), t);
            means[i] += oh;
            vals.push(oh);
        }
        row(w.name, &vals);
    }
    // vips-nc: the local-call optimization disabled, as the paper reports.
    let vips = haft_workloads::workload_by_name("vips", Scale::Large).unwrap();
    let mut vals = Vec::new();
    for &t in &threads {
        let (oh, _) = overhead(&vips, &HardenConfig::haft().without_local_calls(), t);
        vals.push(oh);
    }
    row("vips-nc", &vals);
    let n = workloads.len() as f64;
    row("mean", &means.iter().map(|m| m / n).collect::<Vec<_>>());
}
