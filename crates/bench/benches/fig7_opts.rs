//! Figure 7: overhead with the paper's cumulative optimization levels
//! (None -> +shared-memory -> +control-flow -> +local-calls -> +fault-prop).

use haft_bench::{header, overhead, row};
use haft_passes::{HardenConfig, OptLevel};
use haft_workloads::{all_workloads, Scale};

fn main() {
    let threads = if haft_bench::fast_mode() { 4 } else { 8 };
    println!("\n=== Figure 7: overhead by optimization level ({threads} threads) ===");
    header(&["N", "S", "C", "L", "F"]);
    let workloads = all_workloads(Scale::Large);
    let mut means = vec![0.0; OptLevel::ALL.len()];
    for w in &workloads {
        let mut vals = Vec::new();
        for (i, level) in OptLevel::ALL.iter().enumerate() {
            let (oh, _) = overhead(w, &HardenConfig::at_opt_level(*level), threads);
            means[i] += oh;
            vals.push(oh);
        }
        row(w.name, &vals);
    }
    let n = workloads.len() as f64;
    row("mean", &means.iter().map(|m| m / n).collect::<Vec<_>>());
}
