//! Figure 8: overhead (top) and abort percentage (bottom) vs transaction
//! size threshold.

use haft_bench::{experiment, header, row};
use haft_passes::HardenConfig;
use haft_workloads::{all_workloads, Scale};

fn main() {
    let sizes: &[u64] =
        if haft_bench::fast_mode() { &[500, 5000] } else { &[250, 500, 1000, 3000, 5000] };
    let threads = if haft_bench::fast_mode() { 4 } else { 8 };
    let workloads = all_workloads(Scale::Large);

    println!("\n=== Figure 8 (top): normalized runtime vs transaction size ===");
    let cols: Vec<String> = sizes.iter().map(|s| format!("{s}")).collect();
    header(&cols.iter().map(String::as_str).collect::<Vec<_>>());
    let mut aborts: Vec<Vec<f64>> = Vec::new();
    for w in &workloads {
        let native = experiment(w, threads, 1000).run().expect_completed(w.name);
        // One experiment across the sweep: the hardened module is built
        // once and cached; only the VM threshold changes per size.
        let mut hexp = experiment(w, threads, 1000).harden(HardenConfig::haft());
        let mut ohs = Vec::new();
        let mut abs = Vec::new();
        for &s in sizes {
            hexp = hexp.tx_threshold(s);
            let r = hexp.run().expect_completed(w.name);
            ohs.push(r.wall_cycles as f64 / native.wall_cycles as f64);
            abs.push(r.htm.abort_rate_pct());
        }
        row(w.name, &ohs);
        aborts.push(abs);
    }
    println!("\n=== Figure 8 (bottom): transaction aborts (%) vs transaction size ===");
    header(&cols.iter().map(String::as_str).collect::<Vec<_>>());
    for (w, abs) in workloads.iter().zip(&aborts) {
        row(w.name, abs);
    }
}
