//! Figure 9: fault-injection outcomes for native / ILR / HAFT, plus the
//! paper's §6.1 memcached campaign.

use haft::Experiment;
use haft_apps::{memcached, KvSync, WorkloadMix};
use haft_faults::{CampaignConfig, CampaignReport, Outcome};
use haft_passes::HardenConfig;
use haft_vm::VmConfig;
use haft_workloads::{all_workloads, Scale, Workload};

fn run_for(w: &Workload, hc: HardenConfig, injections: u64) -> CampaignReport {
    Experiment::workload(w)
        .harden(hc)
        .vm(VmConfig { n_threads: 2, max_instructions: 100_000_000, ..Default::default() })
        .campaign(CampaignConfig { injections, seed: 0x0F19, ..Default::default() })
        .campaign
        .unwrap()
}

fn main() {
    let injections = if haft_bench::fast_mode() { 40 } else { 150 };
    println!("\n=== Figure 9 (left): fault-injection outcomes, 2 threads ===");
    println!("{:<16}{:<6} outcome distribution", "benchmark", "ver");
    // The paper skips vips for fault injection (too slow under SDE); we
    // keep it — the simulator is fast enough.
    for w in all_workloads(Scale::Small) {
        for (label, hc) in [
            ("N", HardenConfig::native()),
            ("I", HardenConfig::ilr_only()),
            ("H", HardenConfig::haft()),
        ] {
            let r = run_for(&w, hc, injections);
            println!("{:<16}{:<6} {}", w.name, label, r.summary());
        }
    }

    println!("\n=== Figure 9 (right): optimization impact on reliability (linearreg, canneal) ===");
    for name in ["linearreg", "canneal"] {
        let w = haft_workloads::workload_by_name(name, Scale::Small).unwrap();
        for level in haft_passes::OptLevel::ALL {
            let r = run_for(&w, HardenConfig::at_opt_level(level), injections);
            println!("{:<16}{:<6} {}", name, level.label(), r.summary());
        }
    }

    println!("\n=== §6.1: memcached data corruptions (native vs HAFT) ===");
    let mc = memcached(WorkloadMix::A, KvSync::Lock, Scale::Small);
    let native = run_for(&mc, HardenConfig::native(), injections);
    let hafted = run_for(&mc, HardenConfig::haft_with_elision(), injections);
    println!(
        "native SDC: {:.2}%   HAFT SDC: {:.2}%",
        native.pct(Outcome::Sdc),
        hafted.pct(Outcome::Sdc)
    );
}
