//! Figure 9: fault-injection outcomes for native / ILR / HAFT, plus the
//! paper's §6.1 memcached campaign.

use haft_apps::{memcached, KvSync, WorkloadMix};
use haft_faults::{run_campaign, CampaignConfig, Outcome};
use haft_passes::{harden, HardenConfig};
use haft_vm::VmConfig;
use haft_workloads::{all_workloads, Scale, Workload};

fn campaign_cfg(injections: u64) -> CampaignConfig {
    CampaignConfig {
        injections,
        seed: 0xF1_9,
        vm: VmConfig { n_threads: 2, max_instructions: 100_000_000, ..Default::default() },
        ..Default::default()
    }
}

fn run_for(
    w: &Workload,
    hc: Option<&HardenConfig>,
    injections: u64,
) -> haft_faults::CampaignReport {
    let module = match hc {
        Some(hc) => harden(&w.module, hc),
        None => w.module.clone(),
    };
    run_campaign(&module, w.run_spec(), &campaign_cfg(injections))
}

fn main() {
    let injections = if haft_bench::fast_mode() { 40 } else { 150 };
    println!("\n=== Figure 9 (left): fault-injection outcomes, 2 threads ===");
    println!("{:<16}{:<6} {}", "benchmark", "ver", "outcome distribution");
    // The paper skips vips for fault injection (too slow under SDE); we
    // keep it — the simulator is fast enough.
    for w in all_workloads(Scale::Small) {
        for (label, hc) in
            [("N", None), ("I", Some(HardenConfig::ilr_only())), ("H", Some(HardenConfig::haft()))]
        {
            let r = run_for(&w, hc.as_ref(), injections);
            println!("{:<16}{:<6} {}", w.name, label, r.summary());
        }
    }

    println!("\n=== Figure 9 (right): optimization impact on reliability (linearreg, canneal) ===");
    for name in ["linearreg", "canneal"] {
        let w = haft_workloads::workload_by_name(name, Scale::Small).unwrap();
        for level in haft_passes::OptLevel::ALL {
            let hc = HardenConfig::at_opt_level(level);
            let r = run_for(&w, Some(&hc), injections);
            println!("{:<16}{:<6} {}", name, level.label(), r.summary());
        }
    }

    println!("\n=== §6.1: memcached data corruptions (native vs HAFT) ===");
    let mc = memcached(WorkloadMix::A, KvSync::Lock, Scale::Small);
    let native = run_for(&mc, None, injections);
    let hafted = run_for(&mc, Some(&HardenConfig::haft_with_elision()), injections);
    println!(
        "native SDC: {:.2}%   HAFT SDC: {:.2}%",
        native.pct(Outcome::Sdc),
        hafted.pct(Outcome::Sdc)
    );
}
