//! Forensics overhead: host wall-clock cost of taint-based fault
//! forensics on an injection campaign.
//!
//! Two claims are pinned. **Off is free**: clean runs and
//! forensics-off fault runs share the untainted fast path — proven
//! bit-identical by the differential tests in `tests/properties.rs` —
//! so this bench only prices the *on* path. **On is bounded**: a
//! forensics-enabled campaign (shadow taint set maintained on every
//! fault run) stays under the CI ratio bound over the plain campaign
//! (min-over-rounds estimator, the only one that survives shared-runner
//! noise).

use std::time::Instant;

use haft_bench::{experiment, recommended_threshold};
use haft_faults::CampaignConfig;
use haft_passes::HardenConfig;

/// Forensics-on over forensics-off campaign wall-clock bound asserted in
/// full mode (the issue's acceptance bound).
const MAX_FORENSICS_RATIO: f64 = 1.5;

fn main() {
    let fast = haft_bench::fast_mode();
    let rounds = if fast { 2 } else { 7 };
    let injections: u64 = if fast { 16 } else { 60 };
    let names: &[&str] = if fast { &["linearreg"] } else { &["linearreg", "histogram"] };
    let threads = 2;

    println!(
        "\n=== Forensics overhead on HAFT injection campaigns \
         ({injections} injections, {threads} threads) ==="
    );
    haft_bench::header(&["plain ms", "forensics ms", "ratio", "fired"]);
    for name in names {
        let w = haft_workloads::workload_by_name(name, haft_workloads::Scale::Small).unwrap();
        let exp = experiment(&w, threads, recommended_threshold(name)).harden(HardenConfig::haft());
        let cfg = CampaignConfig { injections, seed: 0x0F20, ..Default::default() };

        let (mut best_plain, mut best_on) = (f64::INFINITY, f64::INFINITY);
        let mut fired = 0u64;
        for _ in 0..rounds {
            let t0 = Instant::now();
            let plain = exp.campaign(cfg.clone()).campaign.unwrap();
            best_plain = best_plain.min(t0.elapsed().as_secs_f64());

            let t1 = Instant::now();
            let on =
                exp.campaign(CampaignConfig { forensics: true, ..cfg.clone() }).campaign.unwrap();
            best_on = best_on.min(t1.elapsed().as_secs_f64());

            // Forensics is observational: the outcome histogram is the
            // same campaign either way.
            assert_eq!(plain.counts, on.counts, "{name}: forensics changed outcomes");
            fired = on.forensics.as_ref().map_or(0, |f| f.fired);
        }

        let ratio = best_on / best_plain;
        haft_bench::row(name, &[best_plain * 1e3, best_on * 1e3, ratio, fired as f64]);
        if !fast {
            assert!(
                ratio < MAX_FORENSICS_RATIO,
                "{name}: forensics-on overhead {ratio:.3}x exceeds {MAX_FORENSICS_RATIO}x"
            );
        }
    }
    println!("(min over {rounds} interleaved rounds; forensics off shares the untainted path)");
}
