//! Criterion micro-benchmarks of the core substrates: pass throughput,
//! HTM operations, and interpreter speed.

use criterion::{criterion_group, criterion_main, Criterion};
use haft::Experiment;
use haft_htm::{AccessKind, Htm, HtmConfig};
use haft_passes::{HardenConfig, PassManager};
use haft_vm::{RunSpec, Vm, VmConfig};
use haft_workloads::{workload_by_name, Scale};

fn bench_passes(c: &mut Criterion) {
    let w = workload_by_name("histogram", Scale::Small).unwrap();
    let haft_pm = PassManager::from_config(&HardenConfig::haft());
    c.bench_function("harden_haft_histogram", |b| {
        b.iter(|| haft_pm.run_on(std::hint::black_box(&w.module)))
    });
    let ilr_pm = PassManager::from_config(&HardenConfig::ilr_only());
    c.bench_function("harden_ilr_only_histogram", |b| {
        b.iter(|| ilr_pm.run_on(std::hint::black_box(&w.module)))
    });
}

fn bench_htm(c: &mut Criterion) {
    c.bench_function("htm_tx_cycle_with_accesses", |b| {
        let mut htm = Htm::new(HtmConfig::default(), 2);
        let mut addr = 0u64;
        b.iter(|| {
            htm.begin(0, 0);
            for i in 0..16 {
                htm.access(0, addr + i * 64, 8, AccessKind::Write);
            }
            htm.commit(0);
            addr = addr.wrapping_add(4096) % (1 << 20);
        })
    });
}

fn bench_vm(c: &mut Criterion) {
    // Prebuild both modules via Experiment::build so the iteration
    // measures interpreter speed alone (pass throughput has its own
    // benchmark above).
    let w = workload_by_name("linearreg", Scale::Small).unwrap();
    let cfg = VmConfig { n_threads: 2, ..Default::default() };
    let exp = Experiment::workload(&w).vm(cfg.clone());
    let (native, _) = exp.build();
    let (hardened, _) = exp.harden(HardenConfig::haft()).build();
    let spec = RunSpec { worker: Some("worker"), fini: Some("fini"), ..Default::default() };
    c.bench_function("vm_run_native_linearreg_small", |b| {
        b.iter(|| Vm::run(std::hint::black_box(&native), cfg.clone(), spec))
    });
    c.bench_function("vm_run_haft_linearreg_small", |b| {
        b.iter(|| Vm::run(std::hint::black_box(&hardened), cfg.clone(), spec))
    });
}

criterion_group!(benches, bench_passes, bench_htm, bench_vm);
criterion_main!(benches);
