//! Runtime scaling: the work-stealing native mode against its DES twin.
//!
//! Two tables the simulation-only benches cannot produce:
//!
//! 1. native-mode wall-clock throughput (real req/s on this host) for
//!    native / HAFT / TMR as the worker count sweeps 1 → host cores —
//!    the multi-core saturation picture;
//! 2. the twin check as a table: cycle-priced (virtual) throughput of
//!    `ServeMode::Native` next to `ServeMode::Sim` at each shard count,
//!    with their ratio.
//!
//! Wall-clock rows are host- and load-dependent by construction: quote
//! them with a session-variance caveat, never pin them.

use haft::eval::serving_variants;
use haft::prelude::*;
use haft_apps::{kv_shard, KvSync};

fn main() {
    let fast = haft_bench::fast_mode();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let requests = if fast { 400 } else { 4_000 };

    let w = kv_shard(KvSync::Atomics);
    let variants: Vec<(&str, Experiment<'_>)> = serving_variants()
        .into_iter()
        .map(|(label, hc)| (label, Experiment::workload(&w).harden(hc)))
        .collect();

    // Worker sweep: 1, 2, 4, ... up to the host core count.
    let mut worker_counts = vec![1usize];
    let mut n = 2;
    while n < cores {
        worker_counts.push(n);
        n *= 2;
    }
    if cores > 1 {
        worker_counts.push(cores);
    }

    println!("\n=== runtime_scaling: native-mode wall-clock req/s ({cores}-core host) ===");
    println!(
        "{:<9}{:>14}{:>14}{:>14}{:>15}",
        "workers", "native k/s", "HAFT k/s", "TMR k/s", "HAFT speedup"
    );
    let cfg_for = |shards: usize| ServeConfig {
        requests,
        shards,
        arrival: ArrivalMode::ClosedLoop { clients: 8 * shards, think_ns: 0 },
        ..ServeConfig::default()
    };
    let shards = (2 * cores).max(4);
    let mut haft_one_worker = 0.0f64;
    for &workers in &worker_counts {
        let wall: Vec<f64> = variants
            .iter()
            .map(|(_, e)| {
                e.serve_in(ServeMode::Native { workers }, &cfg_for(shards))
                    .wall
                    .expect("native mode fills the wall report")
                    .achieved_rps
            })
            .collect();
        let [native, haft, tmr] = wall[..] else { unreachable!() };
        if workers == 1 {
            haft_one_worker = haft;
        }
        println!(
            "{:<9}{:>14.1}{:>14.1}{:>14.1}{:>14.2}x",
            workers,
            native / 1e3,
            haft / 1e3,
            tmr / 1e3,
            haft / haft_one_worker.max(1.0),
        );
    }

    println!("\n=== twin check: cycle-priced k req/s, native vs sim (HAFT backend) ===");
    println!("{:<8}{:>12}{:>12}{:>9}", "shards", "sim k/s", "native k/s", "ratio");
    let shard_counts: &[usize] = if fast { &[1, 2] } else { &[1, 2, 4, 8] };
    let haft_exp = &variants.iter().find(|(l, _)| *l == "HAFT").unwrap().1;
    for &shards in shard_counts {
        let cfg = cfg_for(shards);
        let sim = haft_exp.serve_in(ServeMode::Sim, &cfg);
        let nat = haft_exp.serve_in(ServeMode::Native { workers: cores }, &cfg);
        assert_eq!(sim.requests_served, nat.requests_served);
        let ratio = nat.achieved_rps / sim.achieved_rps;
        assert!(
            (0.4..=2.5).contains(&ratio),
            "{shards} shard(s): twin ratio {ratio:.3} left the tolerance band"
        );
        println!(
            "{:<8}{:>12.1}{:>12.1}{:>9.3}",
            shards,
            sim.achieved_rps / 1e3,
            nat.achieved_rps / 1e3,
            ratio
        );
    }
}
