//! Service scaling: hardened backends under live YCSB traffic.
//!
//! Three tables the batch benches cannot produce:
//!
//! 1. closed-loop capacity (k req/s) and p99 latency for native / HAFT /
//!    TMR at 1–8 shards on both YCSB serve mixes (B read-heavy, A
//!    write-heavy);
//! 2. an open-loop latency-vs-load sweep at 2 shards (where queueing and
//!    the hardening tax compound in the tail);
//! 3. availability under a 1 % per-request fault load — rollback
//!    recovery (HAFT) vs. in-place masking (TMR) as a *service* metric.

use haft::eval::serving_variants;
use haft::Experiment;
use haft_apps::{kv_shard, KvSync, WorkloadMix};
use haft_serve::{ArrivalMode, FaultLoad, ServeConfig, ServiceReport};

fn main() {
    let fast = haft_bench::fast_mode();
    let shard_counts: &[usize] = if fast { &[1, 2] } else { &[1, 2, 4, 8] };
    let requests = if fast { 240 } else { 2_000 };

    // The shared serving grid (haft::eval), hardened once per variant:
    // every sweep below serves from the same cached modules.
    let w = kv_shard(KvSync::Atomics);
    let variants: Vec<(&str, Experiment<'_>)> = serving_variants()
        .into_iter()
        .map(|(label, hc)| (label, Experiment::workload(&w).harden(hc)))
        .collect();
    let exp = |label: &str| &variants.iter().find(|(l, _)| *l == label).unwrap().1;

    let mut haft_2shard_rps = 0.0;
    for (mix, mix_label) in
        [(WorkloadMix::B, "B (95r/5u zipf)"), (WorkloadMix::A, "A (50r/50u zipf)")]
    {
        println!("\n=== service_scaling: closed-loop capacity, YCSB {mix_label} ===");
        println!(
            "{:<8}{:>13}{:>13}{:>13}{:>12}{:>12}{:>10}{:>9}",
            "shards",
            "native k/s",
            "HAFT k/s",
            "TMR k/s",
            "HAFT p99us",
            "TMR p99us",
            "HAFT oh",
            "TMR oh"
        );
        for &shards in shard_counts {
            let cfg = ServeConfig {
                requests,
                mix,
                shards,
                arrival: ArrivalMode::ClosedLoop { clients: 8 * shards, think_ns: 0 },
                ..ServeConfig::default()
            };
            let reports: Vec<ServiceReport> = variants.iter().map(|(_, e)| e.serve(&cfg)).collect();
            let [native, haft, tmr] = &reports[..] else { unreachable!() };
            assert_eq!(native.requests_served, requests as u64);
            if mix == WorkloadMix::B && shards == 2 {
                haft_2shard_rps = haft.achieved_rps;
            }
            println!(
                "{:<8}{:>13.1}{:>13.1}{:>13.1}{:>12.2}{:>12.2}{:>9.2}x{:>8.2}x",
                shards,
                native.achieved_rps / 1e3,
                haft.achieved_rps / 1e3,
                tmr.achieved_rps / 1e3,
                haft.latency.p99_ns as f64 / 1e3,
                tmr.latency.p99_ns as f64 / 1e3,
                native.achieved_rps / haft.achieved_rps,
                native.achieved_rps / tmr.achieved_rps,
            );
        }
    }

    println!("\n=== open-loop p99 vs offered load, 2 shards, mix B ===");
    println!(
        "{:<12}{:>14}{:>12}{:>12}{:>12}{:>12}",
        "load", "offered k/s", "HAFT p50us", "HAFT p99us", "TMR p50us", "TMR p99us"
    );
    let fracs: &[f64] = if fast { &[0.5, 1.2] } else { &[0.3, 0.6, 0.9, 1.2] };
    for &frac in fracs {
        let rate = haft_2shard_rps * frac;
        let cfg = ServeConfig {
            requests: requests / 2,
            shards: 2,
            batch: 1,
            arrival: ArrivalMode::OpenLoop { rate_rps: rate },
            ..ServeConfig::default()
        };
        let haft = exp("HAFT").serve(&cfg);
        let tmr = exp("TMR").serve(&cfg);
        println!(
            "{:<12}{:>14.1}{:>12.2}{:>12.2}{:>12.2}{:>12.2}",
            format!("{:.0}% cap", frac * 100.0),
            rate / 1e3,
            haft.latency.p50_ns as f64 / 1e3,
            haft.latency.p99_ns as f64 / 1e3,
            tmr.latency.p50_ns as f64 / 1e3,
            tmr.latency.p99_ns as f64 / 1e3,
        );
    }

    println!("\n=== availability under load: 1% per-request SEU, 2 shards, mix B ===");
    println!(
        "{:<8}{:>10}{:>10}{:>10}{:>11}{:>12}{:>10}",
        "variant", "avail%", "sdc/M", "crashes", "corrected", "spike", "p999us"
    );
    for (label, e) in &variants {
        let cfg = ServeConfig {
            requests,
            shards: 2,
            faults: Some(FaultLoad { rate_per_request: 0.01, seed: 0xFA_17 }),
            ..ServeConfig::default()
        };
        let r = e.serve(&cfg);
        let f = r.faults.expect("fault report attached");
        assert_eq!(f.counts.total(), requests as u64, "{label}: outcome counts must sum");
        println!(
            "{:<8}{:>9.2}%{:>10.0}{:>10}{:>11}{:>11.2}x{:>10.2}",
            label,
            f.availability_pct(),
            f.sdc_per_million(),
            f.crashed_batches,
            f.corrected_batches,
            f.recovery_spike_factor(),
            r.latency.p999_ns as f64 / 1e3,
        );
    }
}
