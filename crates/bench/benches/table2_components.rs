//! Table 2: ILR-only / TX-only / HAFT overheads, hyper-threading abort
//! increase, and code coverage.

use haft_bench::{experiment, header, overhead, recommended_threshold, row, vm_config};
use haft_htm::HtmConfig;
use haft_passes::HardenConfig;
use haft_workloads::{all_workloads, Scale};

fn main() {
    let threads = if haft_bench::fast_mode() { 4 } else { 8 };
    println!(
        "\n=== Table 2: component overheads, HT abort factor, coverage ({threads} threads) ==="
    );
    header(&["ILR", "TX", "HAFT", "HTx", "Cov%"]);
    let workloads = all_workloads(Scale::Large);
    let mut means = [0.0; 5];
    for w in &workloads {
        let (ilr, _) = overhead(w, &HardenConfig::ilr_only(), threads);
        let (tx, _) = overhead(w, &HardenConfig::tx_only(), threads);
        let (haft, r) = overhead(w, &HardenConfig::haft(), threads);
        // Hyper-threading: same logical thread count on half the cores.
        let mut smt_cfg = vm_config(threads, recommended_threshold(w.name));
        smt_cfg.htm = HtmConfig { smt: true, ..HtmConfig::default() };
        let smt = experiment(w, threads, recommended_threshold(w.name))
            .vm(smt_cfg)
            .harden(HardenConfig::haft())
            .run()
            .expect_completed(w.name);
        let base_rate = r.htm.abort_rate_pct().max(0.01);
        let ht_factor = smt.htm.abort_rate_pct().max(0.01) / base_rate;
        let cov = r.htm.coverage_pct();
        let vals = [ilr, tx, haft, ht_factor, cov];
        for (m, v) in means.iter_mut().zip(vals) {
            *m += v;
        }
        row(w.name, &vals);
    }
    let n = workloads.len() as f64;
    row("mean", &means.map(|m| m / n));
}
