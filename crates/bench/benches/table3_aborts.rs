//! Table 3: abort rate and cause breakdown at the worst-case transaction
//! size (5000).

use haft_bench::{header, row, run_checked, vm_config};
use haft_htm::abort::Table3Bucket;
use haft_passes::{harden, HardenConfig};
use haft_workloads::{all_workloads, Scale};

fn main() {
    let threads = if haft_bench::fast_mode() { 4 } else { 8 };
    println!(
        "\n=== Table 3: abort rate and causes at transaction size 5000 ({threads} threads) ==="
    );
    header(&["rate%", "capac%", "confl%", "other%"]);
    for w in all_workloads(Scale::Large) {
        let hardened = harden(&w.module, &HardenConfig::haft());
        let r = run_checked(&w, &hardened, vm_config(threads, 5000));
        row(
            w.name,
            &[
                r.htm.abort_rate_pct(),
                r.htm.bucket_pct(Table3Bucket::Capacity),
                r.htm.bucket_pct(Table3Bucket::Conflict),
                r.htm.bucket_pct(Table3Bucket::Other),
            ],
        );
    }
}
