//! Table 3: abort rate and cause breakdown at the worst-case transaction
//! size (5000).

use haft_bench::{experiment, header, row};
use haft_htm::abort::Table3Bucket;
use haft_passes::HardenConfig;
use haft_workloads::{all_workloads, Scale};

fn main() {
    let threads = if haft_bench::fast_mode() { 4 } else { 8 };
    println!(
        "\n=== Table 3: abort rate and causes at transaction size 5000 ({threads} threads) ==="
    );
    header(&["rate%", "capac%", "confl%", "other%"]);
    for w in all_workloads(Scale::Large) {
        let r = experiment(&w, threads, 5000)
            .harden(HardenConfig::haft())
            .run()
            .expect_completed(w.name);
        row(
            w.name,
            &[
                r.htm.abort_rate_pct(),
                r.htm.bucket_pct(Table3Bucket::Capacity),
                r.htm.bucket_pct(Table3Bucket::Conflict),
                r.htm.bucket_pct(Table3Bucket::Other),
            ],
        );
    }
}
