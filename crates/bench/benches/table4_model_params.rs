//! Table 4: fault probabilities feeding the availability model, measured
//! by an aggregate campaign over the benchmark suite.

use haft_faults::{run_campaign, CampaignConfig, CampaignReport, Outcome};
use haft_passes::{harden, HardenConfig};
use haft_vm::VmConfig;
use haft_workloads::{workload_by_name, Scale};

fn main() {
    let injections = if haft_bench::fast_mode() { 30 } else { 100 };
    // A representative subset keeps the aggregate campaign tractable.
    let names = ["histogram", "linearreg", "canneal", "streamcluster", "x264"];
    println!("\n=== Table 4: fault probabilities (aggregated over {names:?}) ===");
    println!("{:<22}{:>10}{:>10}{:>10}", "probability", "Native", "ILR", "HAFT");
    let mut reports = Vec::new();
    for hc in [None, Some(HardenConfig::ilr_only()), Some(HardenConfig::haft())] {
        let mut agg = CampaignReport::default();
        for name in names {
            let w = workload_by_name(name, Scale::Small).unwrap();
            let module = match &hc {
                Some(hc) => harden(&w.module, hc),
                None => w.module.clone(),
            };
            let cfg = CampaignConfig {
                injections,
                seed: 0x7AB4,
                vm: VmConfig { n_threads: 2, max_instructions: 100_000_000, ..Default::default() },
                ..Default::default()
            };
            agg.merge(&run_campaign(&module, w.run_spec(), &cfg));
        }
        reports.push(agg);
    }
    let lines: [(&str, fn(&CampaignReport) -> f64); 4] = [
        ("Masked (%)", |r| r.pct(Outcome::Masked)),
        ("SDC (%)", |r| r.pct(Outcome::Sdc)),
        ("Crashed (%)", |r| {
            r.pct(Outcome::Hang) + r.pct(Outcome::OsDetected) + r.pct(Outcome::IlrDetected)
        }),
        ("HAFT-correctable (%)", |r| r.pct(Outcome::HaftCorrected)),
    ];
    for (label, f) in lines {
        println!(
            "{:<22}{:>10.1}{:>10.1}{:>10.1}",
            label,
            f(&reports[0]),
            f(&reports[1]),
            f(&reports[2])
        );
    }
}
