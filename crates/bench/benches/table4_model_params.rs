//! Table 4: fault probabilities feeding the availability model, measured
//! by an aggregate campaign over the benchmark suite.

use haft::Experiment;
use haft_faults::{CampaignConfig, CampaignReport, Outcome};
use haft_passes::HardenConfig;
use haft_vm::VmConfig;
use haft_workloads::{workload_by_name, Scale};

fn main() {
    let injections = if haft_bench::fast_mode() { 30 } else { 100 };
    // A representative subset keeps the aggregate campaign tractable.
    let names = ["histogram", "linearreg", "canneal", "streamcluster", "x264"];
    println!("\n=== Table 4: fault probabilities (aggregated over {names:?}) ===");
    println!("{:<22}{:>10}{:>10}{:>10}", "probability", "Native", "ILR", "HAFT");
    let mut reports = Vec::new();
    for hc in [HardenConfig::native(), HardenConfig::ilr_only(), HardenConfig::haft()] {
        let mut agg = CampaignReport::default();
        for name in names {
            let w = workload_by_name(name, Scale::Small).unwrap();
            let v = Experiment::workload(&w)
                .harden(hc.clone())
                .vm(VmConfig { n_threads: 2, max_instructions: 100_000_000, ..Default::default() })
                .campaign(CampaignConfig { injections, seed: 0x7AB4, ..Default::default() });
            agg.merge(&v.campaign.unwrap());
        }
        reports.push(agg);
    }
    type Probe = fn(&CampaignReport) -> f64;
    let lines: [(&str, Probe); 4] = [
        ("Masked (%)", |r| r.pct(Outcome::Masked)),
        ("SDC (%)", |r| r.pct(Outcome::Sdc)),
        ("Crashed (%)", |r| {
            r.pct(Outcome::Hang) + r.pct(Outcome::OsDetected) + r.pct(Outcome::IlrDetected)
        }),
        ("HAFT-correctable (%)", |r| r.pct(Outcome::HaftCorrected)),
    ];
    for (label, f) in lines {
        println!(
            "{:<22}{:>10.1}{:>10.1}{:>10.1}",
            label,
            f(&reports[0]),
            f(&reports[1]),
            f(&reports[2])
        );
    }
}
