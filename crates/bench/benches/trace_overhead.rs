//! Tracing overhead: host wall-clock cost of the observability layer on
//! the `vm_run_haft` workload.
//!
//! Two claims are pinned. **Off is free**: `Vm::run` *is* the
//! instrumented path with the hooks `None`-checked — there is no
//! separate traced binary, so the tracing-off overhead is 0% by
//! construction, and this bench proves the stronger differential fact
//! that the traced run returns a bit-identical `RunResult`. **On is
//! cheap**: with a `TraceBuf` attached, the wall-clock ratio over the
//! untraced run stays under the CI bound (min-over-rounds estimator,
//! the only one that survives shared-runner noise).

use std::time::Instant;

use haft_bench::{experiment, recommended_threshold};
use haft_passes::HardenConfig;
use haft_trace::TraceBuf;
use haft_vm::{RunResult, Vm};

/// Traced-over-untraced wall-clock bound asserted in full mode. Tracing
/// a HAFT run appends a few spans per transaction to a Vec — well under
/// this, but shared runners are noisy.
const MAX_TRACED_RATIO: f64 = 1.10;

fn main() {
    let fast = haft_bench::fast_mode();
    let rounds = if fast { 2 } else { 9 };
    let names: &[&str] = if fast { &["linearreg"] } else { &["linearreg", "histogram"] };
    let threads = 2;

    println!("\n=== Tracing overhead on vm_run_haft (wall-clock, {threads} threads) ===");
    haft_bench::header(&["plain ms", "traced ms", "ratio", "events"]);
    for name in names {
        let w = haft_workloads::workload_by_name(name, haft_workloads::Scale::Small).unwrap();
        let exp = experiment(&w, threads, recommended_threshold(name)).harden(HardenConfig::haft());
        let (module, _) = exp.build();
        let vm = haft_bench::vm_config(threads, recommended_threshold(name));

        let (mut best_plain, mut best_traced) = (f64::INFINITY, f64::INFINITY);
        let mut n_events = 0usize;
        let mut golden: Option<RunResult> = None;
        for _ in 0..rounds {
            let t0 = Instant::now();
            let plain = Vm::run(&module, vm.clone(), w.run_spec());
            best_plain = best_plain.min(t0.elapsed().as_secs_f64());

            let mut buf = TraceBuf::new();
            let t1 = Instant::now();
            let traced = Vm::run_traced(&module, vm.clone(), w.run_spec(), &mut buf);
            best_traced = best_traced.min(t1.elapsed().as_secs_f64());

            assert_eq!(plain, traced, "{name}: tracing changed the result");
            let g = golden.get_or_insert(plain);
            assert_eq!(*g, traced, "{name}: run is not deterministic");
            n_events = buf.events.len();
        }

        let ratio = best_traced / best_plain;
        haft_bench::row(name, &[best_plain * 1e3, best_traced * 1e3, ratio, n_events as f64]);
        if !fast {
            assert!(
                ratio < MAX_TRACED_RATIO,
                "{name}: tracing-on overhead {ratio:.3}x exceeds {MAX_TRACED_RATIO}x"
            );
        }
    }
    println!("(min over {rounds} interleaved rounds; tracing off shares the untraced binary path)");
}
