//! Shared harness for the table/figure regeneration benches.
//!
//! Each `benches/<id>.rs` target reproduces one table or figure of the
//! paper's evaluation; `cargo bench --workspace` runs them all and prints
//! the same rows/series the paper reports. `REPRODUCTION.md` (generated
//! by `haft-report`) is the durable, checked form of the same numbers.
//!
//! All measurement goes through the facade's [`Experiment`] pipeline.
//! Methodology defaults (per-benchmark transaction thresholds, the
//! standard variant grid, the perf VM shape) live in [`haft::eval`] so
//! the bench targets and the report generator cannot drift apart; table
//! formatting is `haft-report`'s render module. This crate only adds the
//! fast-CI switch and thin wrappers.

use haft::Experiment;
use haft_passes::HardenConfig;
use haft_vm::{RunResult, VmConfig};
use haft_workloads::Workload;

pub use haft::eval::recommended_threshold;

/// Fast mode: honor `HAFT_BENCH_FAST=1` to shrink sweeps during CI runs.
pub fn fast_mode() -> bool {
    std::env::var("HAFT_BENCH_FAST").map(|v| v == "1").unwrap_or(false)
}

/// Builds a VM configuration for a perf run ([`haft::eval::perf_vm`]).
pub fn vm_config(threads: usize, threshold: u64) -> VmConfig {
    haft::eval::perf_vm(threads, threshold)
}

/// An [`Experiment`] over one workload, pre-wired with the bench VM
/// configuration. Callers chain `.harden(..)`/`.vm(..)` and a terminal
/// op.
pub fn experiment(w: &Workload, threads: usize, threshold: u64) -> Experiment<'_> {
    Experiment::workload(w).vm(vm_config(threads, threshold))
}

/// Measures normalized runtime of `hc` over native for one workload,
/// using the paper's recommended transaction threshold.
pub fn overhead(w: &Workload, hc: &HardenConfig, threads: usize) -> (f64, RunResult) {
    let report =
        experiment(w, threads, recommended_threshold(w.name)).compare(std::slice::from_ref(hc));
    assert!(report.outputs_agree(), "{}: output diverged or run failed", w.name);
    let v = report.variants.into_iter().nth(1).unwrap();
    (v.overhead_vs_native.unwrap(), v.run)
}

/// Prints a table header row.
pub fn header(cols: &[&str]) {
    print!("{}", haft_report::render::console_header(cols, "benchmark"));
}

/// Prints one formatted row.
pub fn row(name: &str, vals: &[f64]) {
    print!("{}", haft_report::render::console_row(name, vals));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_are_the_shared_methodology() {
        // The paper examples, via the deduped `haft::eval` definition.
        assert_eq!(recommended_threshold("kmeans"), 1000);
        assert_eq!(recommended_threshold("blackscholes"), 5000);
        assert_eq!(vm_config(4, 1000).tx_threshold, 1000);
    }

    #[test]
    fn overhead_runs_end_to_end() {
        let w =
            haft_workloads::workload_by_name("histogram", haft_workloads::Scale::Small).unwrap();
        let (oh, r) = overhead(&w, &HardenConfig::haft(), 2);
        assert!(oh > 1.0, "hardening must cost something: {oh}");
        assert!(r.htm.commits > 0);
    }
}
