//! Shared harness for the table/figure regeneration benches.
//!
//! Each `benches/<id>.rs` target reproduces one table or figure of the
//! paper's evaluation; `cargo bench --workspace` runs them all and prints
//! the same rows/series the paper reports. Absolute numbers come from the
//! simulator — EXPERIMENTS.md records the paper-vs-measured comparison.
//!
//! All measurement goes through the facade's [`Experiment`] pipeline;
//! this crate only adds the paper's methodology defaults (per-benchmark
//! transaction thresholds, the fast-CI switch) and table formatting.

use haft::Experiment;
use haft_passes::HardenConfig;
use haft_vm::{RunResult, VmConfig};
use haft_workloads::Workload;

/// Per-benchmark transaction-size threshold, mirroring the paper's
/// methodology: "we set for each benchmark the transaction size to the
/// greatest value such that the percentage of aborts is sufficiently low"
/// (§5.3 — e.g. 1000 for kmeans and pca, 5000 for stringmatch and
/// blackscholes).
pub fn recommended_threshold(name: &str) -> u64 {
    match name {
        "kmeans" | "pca" | "wordcount" | "streamcluster" | "vips" => 1000,
        "swaptions" | "ferret" | "dedup" => 2000,
        _ => 5000,
    }
}

/// Fast mode: honor `HAFT_BENCH_FAST=1` to shrink sweeps during CI runs.
pub fn fast_mode() -> bool {
    std::env::var("HAFT_BENCH_FAST").map(|v| v == "1").unwrap_or(false)
}

/// Builds a VM configuration for a perf run.
pub fn vm_config(threads: usize, threshold: u64) -> VmConfig {
    VmConfig {
        n_threads: threads,
        tx_threshold: threshold,
        max_instructions: 2_000_000_000,
        ..Default::default()
    }
}

/// An [`Experiment`] over one workload, pre-wired with the bench VM
/// configuration. Callers chain `.harden(..)`/`.vm(..)` and a terminal
/// op.
pub fn experiment(w: &Workload, threads: usize, threshold: u64) -> Experiment<'_> {
    Experiment::workload(w).vm(vm_config(threads, threshold))
}

/// Measures normalized runtime of `hc` over native for one workload,
/// using the paper's recommended transaction threshold.
pub fn overhead(w: &Workload, hc: &HardenConfig, threads: usize) -> (f64, RunResult) {
    let report =
        experiment(w, threads, recommended_threshold(w.name)).compare(std::slice::from_ref(hc));
    assert!(report.outputs_agree(), "{}: output diverged or run failed", w.name);
    let v = report.variants.into_iter().nth(1).unwrap();
    (v.overhead_vs_native.unwrap(), v.run)
}

/// Prints a table header row.
pub fn header(cols: &[&str]) {
    let row: Vec<String> = cols.iter().map(|c| format!("{c:>12}")).collect();
    println!("{:<16}{}", "benchmark", row.join(""));
    println!("{}", "-".repeat(16 + 12 * cols.len()));
}

/// Prints one formatted row.
pub fn row(name: &str, vals: &[f64]) {
    let cells: Vec<String> = vals.iter().map(|v| format!("{v:>12.2}")).collect();
    println!("{name:<16}{}", cells.join(""));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_follow_paper_examples() {
        assert_eq!(recommended_threshold("kmeans"), 1000);
        assert_eq!(recommended_threshold("pca"), 1000);
        assert_eq!(recommended_threshold("stringmatch"), 5000);
        assert_eq!(recommended_threshold("blackscholes"), 5000);
    }

    #[test]
    fn overhead_runs_end_to_end() {
        let w =
            haft_workloads::workload_by_name("histogram", haft_workloads::Scale::Small).unwrap();
        let (oh, r) = overhead(&w, &HardenConfig::haft(), 2);
        assert!(oh > 1.0, "hardening must cost something: {oh}");
        assert!(r.htm.commits > 0);
    }
}
