//! Shared harness for the table/figure regeneration benches.
//!
//! Each `benches/<id>.rs` target reproduces one table or figure of the
//! paper's evaluation; `cargo bench --workspace` runs them all and prints
//! the same rows/series the paper reports. Absolute numbers come from the
//! simulator — EXPERIMENTS.md records the paper-vs-measured comparison.

use haft_passes::{harden, HardenConfig};
use haft_vm::{RunOutcome, RunResult, Vm, VmConfig};
use haft_workloads::Workload;

/// Per-benchmark transaction-size threshold, mirroring the paper's
/// methodology: "we set for each benchmark the transaction size to the
/// greatest value such that the percentage of aborts is sufficiently low"
/// (§5.3 — e.g. 1000 for kmeans and pca, 5000 for stringmatch and
/// blackscholes).
pub fn recommended_threshold(name: &str) -> u64 {
    match name {
        "kmeans" | "pca" | "wordcount" | "streamcluster" | "vips" => 1000,
        "swaptions" | "ferret" | "dedup" => 2000,
        _ => 5000,
    }
}

/// Fast mode: honor `HAFT_BENCH_FAST=1` to shrink sweeps during CI runs.
pub fn fast_mode() -> bool {
    std::env::var("HAFT_BENCH_FAST").map(|v| v == "1").unwrap_or(false)
}

/// Builds a VM configuration for a perf run.
pub fn vm_config(threads: usize, threshold: u64) -> VmConfig {
    VmConfig {
        n_threads: threads,
        tx_threshold: threshold,
        max_instructions: 2_000_000_000,
        ..Default::default()
    }
}

/// Runs one workload module under a VM config; checks completion.
pub fn run_checked(w: &Workload, module: &haft_ir::module::Module, cfg: VmConfig) -> RunResult {
    let r = Vm::run(module, cfg, w.run_spec());
    assert_eq!(r.outcome, RunOutcome::Completed, "{} did not complete", w.name);
    r
}

/// Measures normalized runtime of `hc` over native for one workload.
pub fn overhead(w: &Workload, hc: &HardenConfig, threads: usize) -> (f64, RunResult) {
    let threshold = recommended_threshold(w.name);
    let native = run_checked(w, &w.module, vm_config(threads, threshold));
    let hardened = harden(&w.module, hc);
    let r = run_checked(w, &hardened, vm_config(threads, threshold));
    assert_eq!(r.output, native.output, "{}: output diverged", w.name);
    (r.wall_cycles as f64 / native.wall_cycles as f64, r)
}

/// Prints a table header row.
pub fn header(cols: &[&str]) {
    let row: Vec<String> = cols.iter().map(|c| format!("{c:>12}")).collect();
    println!("{:<16}{}", "benchmark", row.join(""));
    println!("{}", "-".repeat(16 + 12 * cols.len()));
}

/// Prints one formatted row.
pub fn row(name: &str, vals: &[f64]) {
    let cells: Vec<String> = vals.iter().map(|v| format!("{v:>12.2}")).collect();
    println!("{name:<16}{}", cells.join(""));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_follow_paper_examples() {
        assert_eq!(recommended_threshold("kmeans"), 1000);
        assert_eq!(recommended_threshold("pca"), 1000);
        assert_eq!(recommended_threshold("stringmatch"), 5000);
        assert_eq!(recommended_threshold("blackscholes"), 5000);
    }

    #[test]
    fn overhead_runs_end_to_end() {
        let w =
            haft_workloads::workload_by_name("histogram", haft_workloads::Scale::Small).unwrap();
        let (oh, r) = overhead(&w, &HardenConfig::haft(), 2);
        assert!(oh > 1.0, "hardening must cost something: {oh}");
        assert!(r.htm.commits > 0);
    }
}
