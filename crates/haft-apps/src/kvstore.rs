//! Memcached-like key-value store (paper §6.1).
//!
//! A bucketed hash table driven by a pre-generated YCSB operation stream.
//! Three synchronization variants mirror the paper's Figure 11 lines:
//! pthread-style per-bucket locks (elidable by HAFT), lock-free
//! atomics, and an SEI-style execute-twice + CRC hardened variant used as
//! the state-of-the-art baseline.
//!
//! Updates are idempotent (`value = f(key)`), and the table is
//! pre-populated, so program output is schedule-independent — required
//! for fault-injection classification.

use haft_ir::builder::FunctionBuilder;
use haft_ir::inst::{AbortCode, BinOp, CmpOp, Op as IrOp, Operand};
use haft_ir::module::Module;
use haft_ir::types::Ty;
use haft_workloads::helpers::thread_slice;
use haft_workloads::{Scale, Workload};

use crate::ycsb::{WorkloadMix, YcsbGen};

/// Synchronization variant of the store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvSync {
    /// Per-bucket locks (the paper's `*-lock` lines; HAFT elides them).
    Lock,
    /// Lock-free reads + atomic writes (the `*-atomics` lines).
    Atomics,
    /// SEI baseline: per-bucket locks plus execute-twice with CRC
    /// comparison inside the handler (fail-stop, no HTM).
    Sei,
}

const BUCKETS: i64 = 256;
const SLOTS: i64 = 8;
/// Keys resident in the store (the table image is fully populated over
/// exactly this range; request generators must stay inside it).
pub const KV_KEYSPACE: u64 = 1000;

/// Deterministic value function: updates are idempotent, so the reply to
/// any operation on `key` is always `value_of(key)` — which is what lets
/// service harnesses compute golden replies host-side without a second
/// reference execution per batch.
pub fn value_of(key: u64) -> u64 {
    key.wrapping_mul(2654435761).wrapping_add(12345)
}

/// Builds the host-side initial table image (fully populated).
fn table_image() -> Vec<u8> {
    let mut bytes = vec![0u8; (BUCKETS * SLOTS * 16) as usize];
    for key in 0..KV_KEYSPACE {
        let bucket = mix_host(key) % BUCKETS as u64;
        // Linear probe within the bucket, then spill to the next bucket —
        // mirrors the IR lookup logic.
        let mut b = bucket;
        'outer: for _ in 0..BUCKETS {
            for s in 0..SLOTS as u64 {
                let off = ((b * SLOTS as u64 + s) * 16) as usize;
                let cur = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
                if cur == 0 {
                    bytes[off..off + 8].copy_from_slice(&(key + 1).to_le_bytes());
                    bytes[off + 8..off + 16].copy_from_slice(&value_of(key).to_le_bytes());
                    break 'outer;
                }
            }
            b = (b + 1) % BUCKETS as u64;
        }
    }
    bytes
}

fn mix_host(key: u64) -> u64 {
    let mut h = key ^ (key >> 33);
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^ (h >> 29)
}

/// Emits the mix64 hash of `key` and returns its bucket index (the IR
/// mirror of [`mix_host`]).
fn emit_bucket(
    b: &mut FunctionBuilder,
    key: haft_ir::function::ValueId,
) -> haft_ir::function::ValueId {
    let sh = b.bin(BinOp::LShr, Ty::I64, key, b.iconst(Ty::I64, 33));
    let x = b.bin(BinOp::Xor, Ty::I64, key, sh);
    let h = b.mul(Ty::I64, x, b.iconst(Ty::I64, 0xff51afd7ed558ccdu64 as i64));
    let sh2 = b.bin(BinOp::LShr, Ty::I64, h, b.iconst(Ty::I64, 29));
    let hm = b.bin(BinOp::Xor, Ty::I64, h, sh2);
    b.bin(BinOp::URem, Ty::I64, hm, b.iconst(Ty::I64, BUCKETS))
}

/// Emits the per-bucket lock address for `key`.
fn emit_lock_addr(
    b: &mut FunctionBuilder,
    locks: haft_ir::module::GlobalId,
    key: haft_ir::function::ValueId,
) -> haft_ir::function::ValueId {
    let bucket = emit_bucket(b, key);
    let off = b.mul(Ty::I64, bucket, b.iconst(Ty::I64, 64));
    b.add(Ty::I64, Operand::GlobalAddr(locks), off)
}

/// Protocol-block shape: independent lanes × serial rounds per lane.
/// Eight lanes of three-instruction rounds give the serve path the
/// wide, issue-bound profile of real request handling — memcached-class
/// servers spend the bulk of their per-request cycles outside the table
/// probe (protocol parsing, validation, reply serialization, integrity
/// checksums), and wide code is exactly where redundancy stops being
/// free on a width-limited core (paper §6: vips/x264 vs. matrixmul).
/// The depth is calibrated so the serve phase dominates the
/// backend-neutral costs (reply send, dispatch) the way compute
/// dominates a real server's op path.
const PROTO_LANES: u64 = 8;
const PROTO_ROUNDS: u64 = 36;

/// Host-side mirror of the serve path's protocol block: the request
/// parse/validate + reply-frame checksum folded into every reply.
/// Pure in the encoded op word, so golden replies stay host-computable.
pub fn protocol_frame(op_word: u64) -> u64 {
    let mut acc = 0u64;
    for lane in 1..=PROTO_LANES {
        let mut x = op_word ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(lane);
        for r in 0..PROTO_ROUNDS {
            x = x.wrapping_add(0x5A5A_A5A5_0F0F_F0F0 ^ (r << 7));
            x ^= x >> 13;
        }
        acc = acc.wrapping_add(x);
    }
    acc
}

/// Emits the IR mirror of [`protocol_frame`] over the loaded op word.
fn emit_protocol_frame(
    b: &mut FunctionBuilder,
    op: haft_ir::function::ValueId,
) -> haft_ir::function::ValueId {
    let mut acc: Option<haft_ir::function::ValueId> = None;
    for lane in 1..=PROTO_LANES {
        let k = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(lane);
        let mut x = b.bin(BinOp::Xor, Ty::I64, op, b.iconst(Ty::I64, k as i64));
        for r in 0..PROTO_ROUNDS {
            let c = 0x5A5A_A5A5_0F0F_F0F0u64 ^ (r << 7);
            x = b.add(Ty::I64, x, b.iconst(Ty::I64, c as i64));
            let sh = b.bin(BinOp::LShr, Ty::I64, x, b.iconst(Ty::I64, 13));
            x = b.bin(BinOp::Xor, Ty::I64, x, sh);
        }
        acc = Some(match acc {
            None => x,
            Some(a) => b.add(Ty::I64, a, x),
        });
    }
    acc.expect("at least one lane")
}

/// Emits one hash-table operation: hash → bucket → fixed-length slot
/// probe, reading or writing the value cell, leaving the reply in
/// `found_cell` and returning it. Shared by the batch [`memcached`]
/// workload and the request-serving [`kv_shard`] entry point.
fn emit_kv_handler(
    b: &mut FunctionBuilder,
    table: haft_ir::module::GlobalId,
    key: haft_ir::function::ValueId,
    found_cell: haft_ir::function::ValueId,
    atomic: bool,
    writes: bool,
) -> haft_ir::function::ValueId {
    let bucket = emit_bucket(b, key);
    let kp1 = b.add(Ty::I64, key, b.iconst(Ty::I64, 1));
    b.store(Ty::I64, b.iconst(Ty::I64, 0), found_cell);
    // Probe SLOTS slots of the bucket (keys are pre-populated so a
    // fixed-length scan always finds the key or established empties;
    // values stay deterministic).
    let base = b.mul(Ty::I64, bucket, b.iconst(Ty::I64, SLOTS * 16));
    let bucket_base = b.add(Ty::I64, Operand::GlobalAddr(table), base);
    b.counted_loop(b.iconst(Ty::I64, 0), b.iconst(Ty::I64, SLOTS), |b2, s| {
        let kcell = b2.gep(bucket_base, s, 16, 0);
        let kv = b2.load(Ty::I64, kcell);
        let is_key = b2.cmp(CmpOp::Eq, Ty::I64, kv, kp1);
        b2.if_then(is_key, |b3| {
            let vcell = b3.gep(bucket_base, s, 16, 8);
            // The lock-free variant accesses value cells atomically:
            // HAFT's shared-memory optimization requires data-race
            // freedom (§3.1), and these cells are hot under YCSB's
            // Zipfian keys.
            if writes {
                let val = b3.mul(Ty::I64, key, b3.iconst(Ty::I64, 2654435761));
                let v2 = b3.add(Ty::I64, val, b3.iconst(Ty::I64, 12345));
                if atomic {
                    b3.store_atomic(Ty::I64, v2, vcell);
                } else {
                    b3.store(Ty::I64, v2, vcell);
                }
                b3.store(Ty::I64, v2, found_cell);
            } else {
                let v =
                    if atomic { b3.load_atomic(Ty::I64, vcell) } else { b3.load(Ty::I64, vcell) };
                b3.store(Ty::I64, v, found_cell);
            }
        });
    });
    b.load(Ty::I64, found_cell)
}

/// Builds the memcached-like workload.
///
/// `scale` controls the operation count (the paper uses 1 M queries; the
/// simulator uses proportionally smaller streams).
pub fn memcached(mix: WorkloadMix, sync: KvSync, scale: Scale) -> Workload {
    let n_ops = scale.pick(2_000, 24_000);
    let name = match (sync, mix) {
        (KvSync::Lock, WorkloadMix::A) => "memcached-lock-A",
        (KvSync::Lock, WorkloadMix::B) => "memcached-lock-B",
        (KvSync::Lock, WorkloadMix::D) => "memcached-lock-D",
        (KvSync::Lock, WorkloadMix::Uniform) => "memcached-lock-U",
        (KvSync::Atomics, WorkloadMix::A) => "memcached-atomics-A",
        (KvSync::Atomics, WorkloadMix::B) => "memcached-atomics-B",
        (KvSync::Atomics, WorkloadMix::D) => "memcached-atomics-D",
        (KvSync::Atomics, WorkloadMix::Uniform) => "memcached-atomics-U",
        (KvSync::Sei, WorkloadMix::A) => "memcached-sei-A",
        (KvSync::Sei, WorkloadMix::B) => "memcached-sei-B",
        (KvSync::Sei, WorkloadMix::D) => "memcached-sei-D",
        (KvSync::Sei, WorkloadMix::Uniform) => "memcached-sei-U",
    };
    let mut m = Module::new(name);
    let table = m.add_global_init("table", table_image());
    let mut gen = YcsbGen::new(0x6D63, KV_KEYSPACE);
    let ops = m.add_global_init("ops", gen.generate_encoded(mix, n_ops as usize));
    // Per-bucket locks, one cache line each.
    let locks = m.add_global("locks", (BUCKETS * 64) as u64);
    let acc = m.add_global("acc", (haft_workloads::spec::MAX_THREADS * 64) as u64);

    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let nt = w.param(1);
    let (lo, hi) = thread_slice(&mut w, tid, nt, n_ops);
    let acc_off = w.mul(Ty::I64, tid, w.iconst(Ty::I64, 64));
    let my_acc = w.add(Ty::I64, Operand::GlobalAddr(acc), acc_off);
    let found_cell = w.alloc(w.iconst(Ty::I64, 8));

    w.counted_loop(lo, hi, |b, i| {
        let op_ptr = b.gep(Operand::GlobalAddr(ops), i, 8, 0);
        let op = b.load(Ty::I64, op_ptr);
        let kind = b.bin(BinOp::LShr, Ty::I64, op, b.iconst(Ty::I64, 56));
        let key = b.bin(BinOp::And, Ty::I64, op, b.iconst(Ty::I64, 0x00FF_FFFF_FFFF_FFFF));

        // Handler: hash -> bucket -> probe -> read or write.
        let atomic = matches!(sync, KvSync::Atomics);
        let emit_handler = |b: &mut FunctionBuilder, writes: bool| -> haft_ir::function::ValueId {
            emit_kv_handler(b, table, key, found_cell, atomic, writes)
        };

        let is_read = b.cmp(CmpOp::Eq, Ty::I64, kind, b.iconst(Ty::I64, 0));
        // Lock the bucket for Lock/Sei variants (computed before the
        // branch so both arms share it).
        let lock_addr = emit_lock_addr(b, locks, key);

        match sync {
            KvSync::Lock => {
                b.lock(lock_addr);
                let read_path =
                    |b: &mut FunctionBuilder| -> Operand { emit_handler(b, false).into() };
                let write_path =
                    |b: &mut FunctionBuilder| -> Operand { emit_handler(b, true).into() };
                let got = b.if_then_else(Ty::I64, is_read, read_path, write_path);
                b.unlock(lock_addr);
                let cur = b.load(Ty::I64, my_acc);
                let nxt = b.add(Ty::I64, cur, got);
                b.store(Ty::I64, nxt, my_acc);
            }
            KvSync::Atomics => {
                // Lock-free: reads probe without locks; writes use atomic
                // stores on the value cell (handled by the same handler —
                // the store is made atomic below via a fence-free model:
                // idempotent values make plain stores linearizable here,
                // but we still pay the atomic cost on the hot cell).
                let got = b.if_then_else(
                    Ty::I64,
                    is_read,
                    |b| emit_handler(b, false).into(),
                    |b| emit_handler(b, true).into(),
                );
                let cur = b.load(Ty::I64, my_acc);
                let nxt = b.add(Ty::I64, cur, got);
                b.store(Ty::I64, nxt, my_acc);
            }
            KvSync::Sei => {
                // SEI: the handler runs twice under the lock; the two
                // results are compared, and a CRC of the reply is chained
                // into the accumulator. Divergence is a fail-stop.
                b.lock(lock_addr);
                let first = b.if_then_else(
                    Ty::I64,
                    is_read,
                    |b| emit_handler(b, false).into(),
                    |b| emit_handler(b, true).into(),
                );
                let second = b.if_then_else(
                    Ty::I64,
                    is_read,
                    |b| emit_handler(b, false).into(),
                    |b| emit_handler(b, true).into(),
                );
                let same = b.cmp(CmpOp::Eq, Ty::I64, first, second);
                let fail = b.new_block();
                let okb = b.new_block();
                b.condbr(same, okb, fail);
                b.switch_to(fail);
                b.emit_op(IrOp::TxAbort { code: AbortCode::Explicit });
                b.switch_to(okb);
                // CRC-ish fold of the reply.
                let cur = b.load(Ty::I64, my_acc);
                let folded = b.mul(Ty::I64, cur, b.iconst(Ty::I64, 31));
                let nxt = b.add(Ty::I64, folded, first);
                b.store(Ty::I64, nxt, my_acc);
                b.unlock(lock_addr);
            }
        }
    });
    w.ret(None);
    m.push_func(w.finish());

    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    haft_workloads::helpers::emit_checksum_i64(
        &mut f,
        Operand::GlobalAddr(acc),
        haft_workloads::spec::MAX_THREADS * 8,
    );
    f.ret(None);
    m.push_func(f.finish());
    Workload::new(name, m, None, Some("worker"), Some("fini"))
}

/// Maximum requests one shard batch can carry: the size of the patched
/// request buffer in a [`kv_shard`] module.
pub const SHARD_CAPACITY: usize = 256;

/// Builds the request-serving shard entry point: the same bucketed hash
/// table as [`memcached`], but driven by a *patchable* request buffer
/// instead of a baked-in operation stream.
///
/// The module exposes three well-known globals a service harness (the
/// `haft-serve` crate) rewrites between runs via [`patch_requests`]:
/// `reqs` (up to [`SHARD_CAPACITY`] encoded operations), `n_reqs` (the
/// live count), and `replies` (one reply word per request). The `serve`
/// worker processes `reqs[0..n_reqs]` and records each reply at its
/// request index; `fini` then emits the replies in request order, so
/// `RunResult::output[i]` is exactly request *i*'s reply — the shape
/// per-request outcome classification needs.
///
/// Passes transform functions, never global data, so the harness patches
/// the *hardened* module copy directly and hardens once per
/// configuration, not once per batch.
pub fn kv_shard(sync: KvSync) -> Workload {
    let name = match sync {
        KvSync::Lock => "kv-shard-lock",
        KvSync::Atomics => "kv-shard-atomics",
        KvSync::Sei => "kv-shard-sei",
    };
    let mut m = Module::new(name);
    let table = m.add_global_init("table", table_image());
    let reqs = m.add_global("reqs", (SHARD_CAPACITY * 8) as u64);
    let n_reqs = m.add_global("n_reqs", 8);
    let replies = m.add_global("replies", (SHARD_CAPACITY * 8) as u64);
    let locks = m.add_global("locks", (BUCKETS * 64) as u64);

    // serve(tid, n_threads): one shard is one core, so the harness runs
    // this with a single simulated thread and the whole batch is ours.
    let mut w = FunctionBuilder::new("serve", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let found_cell = w.alloc(w.iconst(Ty::I64, 8));
    let n = w.load(Ty::I64, Operand::GlobalAddr(n_reqs));
    let atomic = matches!(sync, KvSync::Atomics);
    w.counted_loop(w.iconst(Ty::I64, 0), n, |b, i| {
        let op_ptr = b.gep(Operand::GlobalAddr(reqs), i, 8, 0);
        let op = b.load(Ty::I64, op_ptr);
        let kind = b.bin(BinOp::LShr, Ty::I64, op, b.iconst(Ty::I64, 56));
        let key = b.bin(BinOp::And, Ty::I64, op, b.iconst(Ty::I64, 0x00FF_FFFF_FFFF_FFFF));
        // Reads take the read path; updates *and* inserts take the write
        // path (the table is fully populated, so an insert is an
        // idempotent overwrite — replies stay history-independent).
        let is_read = b.cmp(CmpOp::Eq, Ty::I64, kind, b.iconst(Ty::I64, 0));
        let reply_ptr = b.gep(Operand::GlobalAddr(replies), i, 8, 0);
        // Protocol handling: parse/validate the request and fold the
        // reply-frame checksum that serialization XORs into the reply.
        let frame = emit_protocol_frame(b, op);
        let emit_handler = |b: &mut FunctionBuilder, writes: bool| -> haft_ir::function::ValueId {
            emit_kv_handler(b, table, key, found_cell, atomic, writes)
        };
        match sync {
            KvSync::Lock => {
                let lock_addr = emit_lock_addr(b, locks, key);
                b.lock(lock_addr);
                let got = b.if_then_else(
                    Ty::I64,
                    is_read,
                    |b| emit_handler(b, false).into(),
                    |b| emit_handler(b, true).into(),
                );
                b.unlock(lock_addr);
                let framed = b.bin(BinOp::Xor, Ty::I64, got, frame);
                b.store(Ty::I64, framed, reply_ptr);
            }
            KvSync::Atomics => {
                let got = b.if_then_else(
                    Ty::I64,
                    is_read,
                    |b| emit_handler(b, false).into(),
                    |b| emit_handler(b, true).into(),
                );
                let framed = b.bin(BinOp::Xor, Ty::I64, got, frame);
                b.store(Ty::I64, framed, reply_ptr);
            }
            KvSync::Sei => {
                // SEI baseline: the handler runs twice under the lock and
                // a divergence is a fail-stop.
                let lock_addr = emit_lock_addr(b, locks, key);
                b.lock(lock_addr);
                let first = b.if_then_else(
                    Ty::I64,
                    is_read,
                    |b| emit_handler(b, false).into(),
                    |b| emit_handler(b, true).into(),
                );
                let second = b.if_then_else(
                    Ty::I64,
                    is_read,
                    |b| emit_handler(b, false).into(),
                    |b| emit_handler(b, true).into(),
                );
                let same = b.cmp(CmpOp::Eq, Ty::I64, first, second);
                let fail = b.new_block();
                let okb = b.new_block();
                b.condbr(same, okb, fail);
                b.switch_to(fail);
                b.emit_op(IrOp::TxAbort { code: AbortCode::Explicit });
                b.switch_to(okb);
                let framed = b.bin(BinOp::Xor, Ty::I64, first, frame);
                b.store(Ty::I64, framed, reply_ptr);
                b.unlock(lock_addr);
            }
        }
    });
    w.ret(None);
    m.push_func(w.finish());

    // fini: externalize the replies in request order — the "network
    // send". Marked *external*: the send path is a syscall boundary,
    // outside the hardening domain for HAFT and Elzar alike (the same
    // coverage gap the paper's unprotected-libc analysis measures), so
    // no backend pays hardening cost here and the serve phase is where
    // the backends differ.
    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_external();
    let n = f.load(Ty::I64, Operand::GlobalAddr(n_reqs));
    f.counted_loop(f.iconst(Ty::I64, 0), n, |b, i| {
        let p = b.gep(Operand::GlobalAddr(replies), i, 8, 0);
        let v = b.load(Ty::I64, p);
        b.emit_out(Ty::I64, v);
    });
    f.ret(None);
    m.push_func(f.finish());
    Workload::new(name, m, None, Some("serve"), Some("fini"))
}

/// Patches a [`kv_shard`] module's request buffer in place so its next
/// run serves exactly `ops`. Works on hardened copies too — hardening
/// never touches global data.
///
/// # Panics
///
/// Panics if `ops` exceeds [`SHARD_CAPACITY`] or the module lacks the
/// shard globals (i.e. was not built by [`kv_shard`]).
pub fn patch_requests(m: &mut Module, ops: &[crate::ycsb::Op]) {
    assert!(ops.len() <= SHARD_CAPACITY, "batch of {} exceeds SHARD_CAPACITY", ops.len());
    let reqs = m
        .global_by_name("reqs")
        .unwrap_or_else(|| panic!("{}: not a kv_shard module (no `reqs` global)", m.name));
    let n_reqs = m.global_by_name("n_reqs").expect("kv_shard module has `n_reqs`");
    let mut bytes = Vec::with_capacity(ops.len() * 8);
    for op in ops {
        bytes.extend_from_slice(&op.encode().to_le_bytes());
    }
    m.globals[reqs.0 as usize].init = haft_ir::module::GlobalInit::Bytes(bytes);
    m.globals[n_reqs.0 as usize].init =
        haft_ir::module::GlobalInit::Bytes((ops.len() as u64).to_le_bytes().to_vec());
}

/// Host-side golden reply for one operation: values are deterministic
/// and updates idempotent, so the correct reply is [`value_of`] the key
/// XOR the request's [`protocol_frame`], for every op kind and
/// independent of history.
pub fn golden_reply(op: crate::ycsb::Op) -> u64 {
    value_of(op.key()) ^ protocol_frame(op.encode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use haft::Experiment;
    use haft_vm::{RunOutcome, VmConfig};

    fn run(w: &Workload, threads: usize, seed: u64) -> haft_vm::RunResult {
        let cfg = VmConfig { n_threads: threads, seed, ..Default::default() };
        Experiment::workload(w).vm(cfg).run().run
    }

    #[test]
    fn all_variants_complete() {
        for sync in [KvSync::Lock, KvSync::Atomics, KvSync::Sei] {
            for mix in [WorkloadMix::A, WorkloadMix::D, WorkloadMix::Uniform] {
                let w = memcached(mix, sync, Scale::Small);
                haft_ir::verify::verify_module(&w.module)
                    .unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
                let r = run(&w, 2, 1);
                assert_eq!(r.outcome, RunOutcome::Completed, "{}", w.name);
                assert!(!r.output.is_empty());
            }
        }
    }

    #[test]
    fn output_schedule_independent() {
        for sync in [KvSync::Lock, KvSync::Atomics] {
            let w = memcached(WorkloadMix::A, sync, Scale::Small);
            let a = run(&w, 4, 11);
            let b = run(&w, 4, 99);
            assert_eq!(a.output, b.output, "{} schedule-dependent", w.name);
        }
    }

    #[test]
    fn sei_doubles_handler_work() {
        let plain = memcached(WorkloadMix::A, KvSync::Lock, Scale::Small);
        let sei = memcached(WorkloadMix::A, KvSync::Sei, Scale::Small);
        let rp = run(&plain, 1, 1);
        let rs = run(&sei, 1, 1);
        assert!(
            rs.instructions as f64 > rp.instructions as f64 * 1.6,
            "sei {} vs lock {}",
            rs.instructions,
            rp.instructions
        );
    }

    /// The serving entry point: for every sync variant, a patched batch
    /// produces exactly the host-side golden replies, in request order.
    #[test]
    fn kv_shard_replies_match_golden() {
        let mut gen = YcsbGen::new(0x5EED, KV_KEYSPACE);
        let ops = gen.generate(WorkloadMix::B, 48);
        let golden: Vec<u64> = ops.iter().map(|&o| golden_reply(o)).collect();
        for sync in [KvSync::Lock, KvSync::Atomics, KvSync::Sei] {
            let mut w = kv_shard(sync);
            patch_requests(&mut w.module, &ops);
            haft_ir::verify::verify_module(&w.module)
                .unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
            let r = run(&w, 1, 7);
            assert_eq!(r.outcome, RunOutcome::Completed, "{}", w.name);
            assert_eq!(r.output, golden, "{}: replies diverge from value function", w.name);
        }
    }

    /// Re-patching replaces the previous batch entirely — including a
    /// shorter batch, whose stale tail must not leak into the replies.
    #[test]
    fn kv_shard_repatching_replaces_batch() {
        let mut w = kv_shard(KvSync::Atomics);
        let mut gen = YcsbGen::new(3, KV_KEYSPACE);
        let first = gen.generate(WorkloadMix::A, 32);
        patch_requests(&mut w.module, &first);
        let a = run(&w, 1, 1);
        assert_eq!(a.output.len(), 32);
        let second = gen.generate(WorkloadMix::A, 5);
        patch_requests(&mut w.module, &second);
        let b = run(&w, 1, 1);
        assert_eq!(b.output, second.iter().map(|&o| golden_reply(o)).collect::<Vec<_>>());
    }

    /// Hardening must preserve replies bit-for-bit (the property the
    /// serving harness leans on to classify per-request outcomes).
    #[test]
    fn kv_shard_hardened_replies_are_native_replies() {
        use haft_passes::HardenConfig;
        let mut w = kv_shard(KvSync::Atomics);
        let mut gen = YcsbGen::new(9, KV_KEYSPACE);
        patch_requests(&mut w.module, &gen.generate(WorkloadMix::B, 24));
        let cfg = VmConfig { n_threads: 1, seed: 5, ..Default::default() };
        let native = Experiment::workload(&w).vm(cfg.clone()).run().run;
        for hc in [HardenConfig::haft(), HardenConfig::tmr()] {
            let label = hc.label();
            let r = Experiment::workload(&w).vm(cfg.clone()).harden(hc).run().run;
            assert_eq!(r.outcome, RunOutcome::Completed, "{label}");
            assert_eq!(r.output, native.output, "{label}: hardened replies diverged");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds SHARD_CAPACITY")]
    fn oversized_batch_is_rejected() {
        let mut w = kv_shard(KvSync::Atomics);
        let ops = vec![crate::ycsb::Op::Read(1); SHARD_CAPACITY + 1];
        patch_requests(&mut w.module, &ops);
    }

    #[test]
    fn table_image_is_fully_populated() {
        let img = table_image();
        let mut found = 0;
        for off in (0..img.len()).step_by(16) {
            let k = u64::from_le_bytes(img[off..off + 8].try_into().unwrap());
            if k != 0 {
                found += 1;
                let v = u64::from_le_bytes(img[off + 8..off + 16].try_into().unwrap());
                assert_eq!(v, value_of(k - 1));
            }
        }
        assert_eq!(found, KV_KEYSPACE as usize, "every key present exactly once");
    }
}
