//! Memcached-like key-value store (paper §6.1).
//!
//! A bucketed hash table driven by a pre-generated YCSB operation stream.
//! Three synchronization variants mirror the paper's Figure 11 lines:
//! pthread-style per-bucket locks (elidable by HAFT), lock-free
//! atomics, and an SEI-style execute-twice + CRC hardened variant used as
//! the state-of-the-art baseline.
//!
//! Updates are idempotent (`value = f(key)`), and the table is
//! pre-populated, so program output is schedule-independent — required
//! for fault-injection classification.

use haft_ir::builder::FunctionBuilder;
use haft_ir::inst::{AbortCode, BinOp, CmpOp, Op as IrOp, Operand};
use haft_ir::module::Module;
use haft_ir::types::Ty;
use haft_workloads::helpers::thread_slice;
use haft_workloads::{Scale, Workload};

use crate::ycsb::{WorkloadMix, YcsbGen};

/// Synchronization variant of the store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvSync {
    /// Per-bucket locks (the paper's `*-lock` lines; HAFT elides them).
    Lock,
    /// Lock-free reads + atomic writes (the `*-atomics` lines).
    Atomics,
    /// SEI baseline: per-bucket locks plus execute-twice with CRC
    /// comparison inside the handler (fail-stop, no HTM).
    Sei,
}

const BUCKETS: i64 = 256;
const SLOTS: i64 = 8;
const KEYSPACE: u64 = 1000;

/// Deterministic value function: updates are idempotent.
fn value_of(key: u64) -> u64 {
    key.wrapping_mul(2654435761).wrapping_add(12345)
}

/// Builds the host-side initial table image (fully populated).
fn table_image() -> Vec<u8> {
    let mut bytes = vec![0u8; (BUCKETS * SLOTS * 16) as usize];
    for key in 0..KEYSPACE {
        let bucket = mix_host(key) % BUCKETS as u64;
        // Linear probe within the bucket, then spill to the next bucket —
        // mirrors the IR lookup logic.
        let mut b = bucket;
        'outer: for _ in 0..BUCKETS {
            for s in 0..SLOTS as u64 {
                let off = ((b * SLOTS as u64 + s) * 16) as usize;
                let cur = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
                if cur == 0 {
                    bytes[off..off + 8].copy_from_slice(&(key + 1).to_le_bytes());
                    bytes[off + 8..off + 16].copy_from_slice(&value_of(key).to_le_bytes());
                    break 'outer;
                }
            }
            b = (b + 1) % BUCKETS as u64;
        }
    }
    bytes
}

fn mix_host(key: u64) -> u64 {
    let mut h = key ^ (key >> 33);
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^ (h >> 29)
}

/// Builds the memcached-like workload.
///
/// `scale` controls the operation count (the paper uses 1 M queries; the
/// simulator uses proportionally smaller streams).
pub fn memcached(mix: WorkloadMix, sync: KvSync, scale: Scale) -> Workload {
    let n_ops = scale.pick(2_000, 24_000);
    let name = match (sync, mix) {
        (KvSync::Lock, WorkloadMix::A) => "memcached-lock-A",
        (KvSync::Lock, WorkloadMix::D) => "memcached-lock-D",
        (KvSync::Lock, WorkloadMix::Uniform) => "memcached-lock-U",
        (KvSync::Atomics, WorkloadMix::A) => "memcached-atomics-A",
        (KvSync::Atomics, WorkloadMix::D) => "memcached-atomics-D",
        (KvSync::Atomics, WorkloadMix::Uniform) => "memcached-atomics-U",
        (KvSync::Sei, WorkloadMix::A) => "memcached-sei-A",
        (KvSync::Sei, WorkloadMix::D) => "memcached-sei-D",
        (KvSync::Sei, WorkloadMix::Uniform) => "memcached-sei-U",
    };
    let mut m = Module::new(name);
    let table = m.add_global_init("table", table_image());
    let mut gen = YcsbGen::new(0x6D63, KEYSPACE);
    let ops = m.add_global_init("ops", gen.generate_encoded(mix, n_ops as usize));
    // Per-bucket locks, one cache line each.
    let locks = m.add_global("locks", (BUCKETS * 64) as u64);
    let acc = m.add_global("acc", (haft_workloads::spec::MAX_THREADS * 64) as u64);

    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let nt = w.param(1);
    let (lo, hi) = thread_slice(&mut w, tid, nt, n_ops);
    let acc_off = w.mul(Ty::I64, tid, w.iconst(Ty::I64, 64));
    let my_acc = w.add(Ty::I64, Operand::GlobalAddr(acc), acc_off);
    let found_cell = w.alloc(w.iconst(Ty::I64, 8));

    w.counted_loop(lo, hi, |b, i| {
        let op_ptr = b.gep(Operand::GlobalAddr(ops), i, 8, 0);
        let op = b.load(Ty::I64, op_ptr);
        let kind = b.bin(BinOp::LShr, Ty::I64, op, b.iconst(Ty::I64, 56));
        let key = b.bin(BinOp::And, Ty::I64, op, b.iconst(Ty::I64, 0x00FF_FFFF_FFFF_FFFF));

        // Handler: hash -> bucket -> probe -> read or write.
        let emit_handler = |b: &mut FunctionBuilder, writes: bool| -> haft_ir::function::ValueId {
            // h = mix(key).
            let sh = b.bin(BinOp::LShr, Ty::I64, key, b.iconst(Ty::I64, 33));
            let x = b.bin(BinOp::Xor, Ty::I64, key, sh);
            let h = b.mul(Ty::I64, x, b.iconst(Ty::I64, 0xff51afd7ed558ccdu64 as i64));
            let sh2 = b.bin(BinOp::LShr, Ty::I64, h, b.iconst(Ty::I64, 29));
            let hm = b.bin(BinOp::Xor, Ty::I64, h, sh2);
            let bucket = b.bin(BinOp::URem, Ty::I64, hm, b.iconst(Ty::I64, BUCKETS));
            let kp1 = b.add(Ty::I64, key, b.iconst(Ty::I64, 1));
            b.store(Ty::I64, b.iconst(Ty::I64, 0), found_cell);
            // Probe SLOTS slots of the bucket (keys are pre-populated so
            // a fixed-length scan always finds the key or established
            // empties; values stay deterministic).
            let base = b.mul(Ty::I64, bucket, b.iconst(Ty::I64, SLOTS * 16));
            let bucket_base = b.add(Ty::I64, Operand::GlobalAddr(table), base);
            b.counted_loop(b.iconst(Ty::I64, 0), b.iconst(Ty::I64, SLOTS), |b2, s| {
                let kcell = b2.gep(bucket_base, s, 16, 0);
                let kv = b2.load(Ty::I64, kcell);
                let is_key = b2.cmp(CmpOp::Eq, Ty::I64, kv, kp1);
                b2.if_then(is_key, |b3| {
                    let vcell = b3.gep(bucket_base, s, 16, 8);
                    // The lock-free variant accesses value cells
                    // atomically: HAFT's shared-memory optimization
                    // requires data-race freedom (§3.1), and these cells
                    // are hot under YCSB's Zipfian keys.
                    let atomic = matches!(sync, KvSync::Atomics);
                    if writes {
                        let val = b3.mul(Ty::I64, key, b3.iconst(Ty::I64, 2654435761));
                        let v2 = b3.add(Ty::I64, val, b3.iconst(Ty::I64, 12345));
                        if atomic {
                            b3.store_atomic(Ty::I64, v2, vcell);
                        } else {
                            b3.store(Ty::I64, v2, vcell);
                        }
                        b3.store(Ty::I64, v2, found_cell);
                    } else {
                        let v = if atomic {
                            b3.load_atomic(Ty::I64, vcell)
                        } else {
                            b3.load(Ty::I64, vcell)
                        };
                        b3.store(Ty::I64, v, found_cell);
                    }
                });
            });
            b.load(Ty::I64, found_cell)
        };

        let is_read = b.cmp(CmpOp::Eq, Ty::I64, kind, b.iconst(Ty::I64, 0));
        let lock_addr = {
            // Lock the bucket for Lock/Sei variants (computed before the
            // branch so both arms share it).
            let sh = b.bin(BinOp::LShr, Ty::I64, key, b.iconst(Ty::I64, 33));
            let x = b.bin(BinOp::Xor, Ty::I64, key, sh);
            let h = b.mul(Ty::I64, x, b.iconst(Ty::I64, 0xff51afd7ed558ccdu64 as i64));
            let sh2 = b.bin(BinOp::LShr, Ty::I64, h, b.iconst(Ty::I64, 29));
            let hm = b.bin(BinOp::Xor, Ty::I64, h, sh2);
            let bucket = b.bin(BinOp::URem, Ty::I64, hm, b.iconst(Ty::I64, BUCKETS));
            let off = b.mul(Ty::I64, bucket, b.iconst(Ty::I64, 64));
            b.add(Ty::I64, Operand::GlobalAddr(locks), off)
        };

        match sync {
            KvSync::Lock => {
                b.lock(lock_addr);
                let read_path =
                    |b: &mut FunctionBuilder| -> Operand { emit_handler(b, false).into() };
                let write_path =
                    |b: &mut FunctionBuilder| -> Operand { emit_handler(b, true).into() };
                let got = b.if_then_else(Ty::I64, is_read, read_path, write_path);
                b.unlock(lock_addr);
                let cur = b.load(Ty::I64, my_acc);
                let nxt = b.add(Ty::I64, cur, got);
                b.store(Ty::I64, nxt, my_acc);
            }
            KvSync::Atomics => {
                // Lock-free: reads probe without locks; writes use atomic
                // stores on the value cell (handled by the same handler —
                // the store is made atomic below via a fence-free model:
                // idempotent values make plain stores linearizable here,
                // but we still pay the atomic cost on the hot cell).
                let got = b.if_then_else(
                    Ty::I64,
                    is_read,
                    |b| emit_handler(b, false).into(),
                    |b| emit_handler(b, true).into(),
                );
                let cur = b.load(Ty::I64, my_acc);
                let nxt = b.add(Ty::I64, cur, got);
                b.store(Ty::I64, nxt, my_acc);
            }
            KvSync::Sei => {
                // SEI: the handler runs twice under the lock; the two
                // results are compared, and a CRC of the reply is chained
                // into the accumulator. Divergence is a fail-stop.
                b.lock(lock_addr);
                let first = b.if_then_else(
                    Ty::I64,
                    is_read,
                    |b| emit_handler(b, false).into(),
                    |b| emit_handler(b, true).into(),
                );
                let second = b.if_then_else(
                    Ty::I64,
                    is_read,
                    |b| emit_handler(b, false).into(),
                    |b| emit_handler(b, true).into(),
                );
                let same = b.cmp(CmpOp::Eq, Ty::I64, first, second);
                let fail = b.new_block();
                let okb = b.new_block();
                b.condbr(same, okb, fail);
                b.switch_to(fail);
                b.emit_op(IrOp::TxAbort { code: AbortCode::Explicit });
                b.switch_to(okb);
                // CRC-ish fold of the reply.
                let cur = b.load(Ty::I64, my_acc);
                let folded = b.mul(Ty::I64, cur, b.iconst(Ty::I64, 31));
                let nxt = b.add(Ty::I64, folded, first);
                b.store(Ty::I64, nxt, my_acc);
                b.unlock(lock_addr);
            }
        }
    });
    w.ret(None);
    m.push_func(w.finish());

    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    haft_workloads::helpers::emit_checksum_i64(
        &mut f,
        Operand::GlobalAddr(acc),
        haft_workloads::spec::MAX_THREADS * 8,
    );
    f.ret(None);
    m.push_func(f.finish());
    Workload::new(name, m, None, Some("worker"), Some("fini"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use haft::Experiment;
    use haft_vm::{RunOutcome, VmConfig};

    fn run(w: &Workload, threads: usize, seed: u64) -> haft_vm::RunResult {
        let cfg = VmConfig { n_threads: threads, seed, ..Default::default() };
        Experiment::workload(w).vm(cfg).run().run
    }

    #[test]
    fn all_variants_complete() {
        for sync in [KvSync::Lock, KvSync::Atomics, KvSync::Sei] {
            for mix in [WorkloadMix::A, WorkloadMix::D, WorkloadMix::Uniform] {
                let w = memcached(mix, sync, Scale::Small);
                haft_ir::verify::verify_module(&w.module)
                    .unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
                let r = run(&w, 2, 1);
                assert_eq!(r.outcome, RunOutcome::Completed, "{}", w.name);
                assert!(!r.output.is_empty());
            }
        }
    }

    #[test]
    fn output_schedule_independent() {
        for sync in [KvSync::Lock, KvSync::Atomics] {
            let w = memcached(WorkloadMix::A, sync, Scale::Small);
            let a = run(&w, 4, 11);
            let b = run(&w, 4, 99);
            assert_eq!(a.output, b.output, "{} schedule-dependent", w.name);
        }
    }

    #[test]
    fn sei_doubles_handler_work() {
        let plain = memcached(WorkloadMix::A, KvSync::Lock, Scale::Small);
        let sei = memcached(WorkloadMix::A, KvSync::Sei, Scale::Small);
        let rp = run(&plain, 1, 1);
        let rs = run(&sei, 1, 1);
        assert!(
            rs.instructions as f64 > rp.instructions as f64 * 1.6,
            "sei {} vs lock {}",
            rs.instructions,
            rp.instructions
        );
    }

    #[test]
    fn table_image_is_fully_populated() {
        let img = table_image();
        let mut found = 0;
        for off in (0..img.len()).step_by(16) {
            let k = u64::from_le_bytes(img[off..off + 8].try_into().unwrap());
            if k != 0 {
                found += 1;
                let v = u64::from_le_bytes(img[off + 8..off + 16].try_into().unwrap());
                assert_eq!(v, value_of(k - 1));
            }
        }
        assert_eq!(found, KEYSPACE as usize, "every key present exactly once");
    }
}
