//! Real-world case-study applications (paper §6).
//!
//! The paper applies HAFT to five unmodified server applications. Each is
//! rebuilt here as an IR program that preserves the property the paper's
//! analysis of it hinges on:
//!
//! * [`kvstore`] — **Memcached**: a hash-table key-value store driven by
//!   YCSB-style workloads, in lock-based and atomics-based variants. The
//!   lock variant is lock-acquisition-bound, which is why HAFT's lock
//!   elision recovers all of the hardening overhead (Figure 11). An
//!   execute-twice + CRC variant reproduces the SEI baseline comparison.
//! * [`others::logcabin`] — **LogCabin/RAFT**: serialized log appends
//!   with checksum chaining and periodic durable writes.
//! * [`others::apache`] — **Apache httpd**: request parsing plus a large
//!   unprotected-library copy per request (low coverage → ~10 % overhead).
//! * [`others::leveldb`] — **LevelDB**: binary search over a sorted
//!   static table plus per-thread write buffers (well-behaved, 25–35 %).
//! * [`others::sqlite`] — **SQLite**: every operation dispatched through
//!   a function pointer, which HAFT must treat as an external call — the
//!   paper's worst case (3–4×).
//!
//! All of these reuse the [`haft_workloads::Workload`] descriptor, so the
//! same harness runs benchmarks and case studies.

pub mod kvstore;
pub mod others;
pub mod ycsb;

pub use kvstore::{
    golden_reply, kv_shard, memcached, patch_requests, value_of, KvSync, KV_KEYSPACE,
    SHARD_CAPACITY,
};
pub use ycsb::{Op, WorkloadMix, YcsbGen};
