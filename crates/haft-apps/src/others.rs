//! The remaining case studies: LogCabin, Apache, LevelDB, SQLite
//! (paper §6.2, Figure 12).

use haft_ir::builder::FunctionBuilder;
use haft_ir::inst::{BinOp, CmpOp, Operand};
use haft_ir::module::Module;
use haft_ir::types::Ty;
use haft_workloads::helpers::{emit_checksum_i64, thread_slice};
use haft_workloads::spec::MAX_THREADS;
use haft_workloads::{Scale, Workload};

use crate::ycsb::{WorkloadMix, YcsbGen};

/// `logcabin`: RAFT-style replicated-log appends.
///
/// Client threads append values to a shared log under a lock, chaining a
/// checksum (the entry hash RAFT stores) and "fsyncing" (externalizing)
/// every 64 entries. Paper profile: well-behaved, 25–35 % overhead.
pub fn logcabin(scale: Scale) -> Workload {
    let n = scale.pick(800, 6_000);
    let mut m = Module::new("logcabin");
    let values =
        m.add_global_init("values", haft_workloads::data::random_i64s(90, n as usize, 1 << 30));
    let log = m.add_global("log", (n * 16 + 64) as u64);
    let meta = m.add_global("meta", 64); // [count, chain-hash].
    let lock = m.add_global("lock", 64);

    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let nt = w.param(1);
    let (lo, hi) = thread_slice(&mut w, tid, nt, n);
    let count_cell = w.mov(Ty::Ptr, Operand::GlobalAddr(meta));
    let hash_cell = w.gep(Operand::GlobalAddr(meta), w.iconst(Ty::I64, 1), 8, 0);
    w.counted_loop(lo, hi, |b, i| {
        let vptr = b.gep(Operand::GlobalAddr(values), i, 8, 0);
        let v = b.load(Ty::I64, vptr);
        b.lock(Operand::GlobalAddr(lock));
        let idx = b.load(Ty::I64, count_cell);
        // Append the entry (value, chained hash).
        let eptr = b.gep(Operand::GlobalAddr(log), idx, 16, 0);
        b.store(Ty::I64, v, eptr);
        let h = b.load(Ty::I64, hash_cell);
        let hm = b.mul(Ty::I64, h, b.iconst(Ty::I64, 1099511628211));
        let hx = b.bin(BinOp::Xor, Ty::I64, hm, v);
        let hptr = b.gep(Operand::GlobalAddr(log), idx, 16, 8);
        b.store(Ty::I64, hx, hptr);
        b.store(Ty::I64, hx, hash_cell);
        let nidx = b.add(Ty::I64, idx, b.iconst(Ty::I64, 1));
        b.store(Ty::I64, nidx, count_cell);
        b.unlock(Operand::GlobalAddr(lock));
        // Durable write every 64 entries of this client's batch
        // (externalization; per-thread cadence keeps output
        // deterministic).
        let i1 = b.add(Ty::I64, i, b.iconst(Ty::I64, 1));
        let batch = b.bin(BinOp::And, Ty::I64, i1, b.iconst(Ty::I64, 63));
        let sync = b.cmp(CmpOp::Eq, Ty::I64, batch, b.iconst(Ty::I64, 0));
        b.if_then(sync, |b2| {
            b2.emit_out(Ty::I64, i1);
        });
    });
    w.ret(None);
    m.push_func(w.finish());

    // The final count is deterministic; the chain hash depends on append
    // order, so only the count is part of the checked output.
    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    let c = f.load(Ty::I64, Operand::GlobalAddr(meta));
    f.emit_out(Ty::I64, c);
    f.ret(None);
    m.push_func(f.finish());
    Workload::new("logcabin", m, None, Some("worker"), Some("fini"))
}

/// `apache`: static-page serving dominated by unprotected library code.
///
/// Each request parses a small header, then copies the 1 KB page through
/// an external (never-instrumented) routine — the paper's explanation for
/// Apache's mere ~10 % overhead and low coverage.
pub fn apache(scale: Scale) -> Workload {
    let requests = scale.pick(200, 1_500);
    const PAGE: i64 = 1024;
    let mut m = Module::new("apache");
    let page = m.add_global_init("page", haft_workloads::data::random_bytes(91, PAGE as usize));
    let reqs = m
        .add_global_init("reqs", haft_workloads::data::random_i64s(92, requests as usize, 1 << 16));
    let outbuf = m.add_global("outbuf", (MAX_THREADS as u64) * PAGE as u64);
    let acc = m.add_global("acc", (MAX_THREADS * 64) as u64);

    // The unprotected "libc" page copy + checksum.
    let mut ext = FunctionBuilder::new("copy_page_ext", &[Ty::Ptr, Ty::Ptr], Some(Ty::I64));
    ext.set_external();
    let src = ext.param(0);
    let dst = ext.param(1);
    let sum = ext.alloc(ext.iconst(Ty::I64, 8));
    ext.store(Ty::I64, ext.iconst(Ty::I64, 0), sum);
    ext.counted_loop(ext.iconst(Ty::I64, 0), ext.iconst(Ty::I64, PAGE / 8), |b, i| {
        let sp = b.gep(src, i, 8, 0);
        let v = b.load(Ty::I64, sp);
        let dp = b.gep(dst, i, 8, 0);
        b.store(Ty::I64, v, dp);
        let cur = b.load(Ty::I64, sum);
        let nxt = b.add(Ty::I64, cur, v);
        b.store(Ty::I64, nxt, sum);
    });
    let total = ext.load(Ty::I64, sum);
    ext.ret(Some(total.into()));
    let ext_id = m.push_func(ext.finish());

    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let nt = w.param(1);
    let (lo, hi) = thread_slice(&mut w, tid, nt, requests);
    let buf_off = w.mul(Ty::I64, tid, w.iconst(Ty::I64, PAGE));
    let my_buf = w.add(Ty::I64, Operand::GlobalAddr(outbuf), buf_off);
    let acc_off = w.mul(Ty::I64, tid, w.iconst(Ty::I64, 64));
    let my_acc = w.add(Ty::I64, Operand::GlobalAddr(acc), acc_off);
    w.counted_loop(lo, hi, |b, i| {
        // "Parse" the request: a few header-field checks.
        let rptr = b.gep(Operand::GlobalAddr(reqs), i, 8, 0);
        let req = b.load(Ty::I64, rptr);
        let method = b.bin(BinOp::And, Ty::I64, req, b.iconst(Ty::I64, 3));
        let is_get = b.cmp(CmpOp::Ne, Ty::I64, method, b.iconst(Ty::I64, 3));
        b.if_then(is_get, |b2| {
            let sum = b2
                .call(ext_id, &[Operand::GlobalAddr(page), my_buf.into()], Some(Ty::I64))
                .unwrap();
            let cur = b2.load(Ty::I64, my_acc);
            let nxt = b2.add(Ty::I64, cur, sum);
            b2.store(Ty::I64, nxt, my_acc);
        });
    });
    w.ret(None);
    m.push_func(w.finish());

    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    emit_checksum_i64(&mut f, Operand::GlobalAddr(acc), MAX_THREADS * 8);
    f.ret(None);
    m.push_func(f.finish());
    Workload::new("apache", m, None, Some("worker"), Some("fini"))
}

/// `leveldb`: reads binary-search a sorted table; writes append to
/// per-thread memtables. Paper profile: well-behaved (25–35 %).
pub fn leveldb(mix: WorkloadMix, scale: Scale) -> Workload {
    let n_ops = scale.pick(1_500, 12_000);
    const TABLE: i64 = 4096;
    let name = match mix {
        WorkloadMix::A => "leveldb-A",
        WorkloadMix::B => "leveldb-B",
        WorkloadMix::D => "leveldb-D",
        WorkloadMix::Uniform => "leveldb-U",
    };
    let mut m = Module::new(name);
    // Sorted table: key i stored at slot i with value f(i).
    let mut table = Vec::with_capacity(TABLE as usize * 16);
    for i in 0..TABLE as u64 {
        table.extend_from_slice(&(i * 2).to_le_bytes());
        table.extend_from_slice(&(i.wrapping_mul(2654435761)).to_le_bytes());
    }
    let table = m.add_global_init("table", table);
    let mut gen = YcsbGen::new(0x1DB, (TABLE as u64) * 2);
    let ops = m.add_global_init("ops", gen.generate_encoded(mix, n_ops as usize));
    let memtable = m.add_global("memtable", (MAX_THREADS as u64) * 4096);
    let mt_count = m.add_global("mt_count", (MAX_THREADS * 64) as u64);
    let acc = m.add_global("acc", (MAX_THREADS * 64) as u64);

    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let nt = w.param(1);
    let (lo, hi) = thread_slice(&mut w, tid, nt, n_ops);
    let acc_off = w.mul(Ty::I64, tid, w.iconst(Ty::I64, 64));
    let my_acc = w.add(Ty::I64, Operand::GlobalAddr(acc), acc_off);
    let cnt_cell = w.add(Ty::I64, Operand::GlobalAddr(mt_count), acc_off);
    let mt_off = w.mul(Ty::I64, tid, w.iconst(Ty::I64, 4096));
    let my_mt = w.add(Ty::I64, Operand::GlobalAddr(memtable), mt_off);
    let lo_cell = w.alloc(w.iconst(Ty::I64, 16));
    let hi_cell = w.gep(lo_cell, w.iconst(Ty::I64, 1), 8, 0);
    w.counted_loop(lo, hi, |b, i| {
        let optr = b.gep(Operand::GlobalAddr(ops), i, 8, 0);
        let op = b.load(Ty::I64, optr);
        let kind = b.bin(BinOp::LShr, Ty::I64, op, b.iconst(Ty::I64, 56));
        let key = b.bin(BinOp::And, Ty::I64, op, b.iconst(Ty::I64, 0xFFFF_FFFF));
        let is_read = b.cmp(CmpOp::Eq, Ty::I64, kind, b.iconst(Ty::I64, 0));
        b.if_then(is_read, |b2| {
            // Binary search (12 iterations over 4096 slots) — the branchy
            // pointer-dependent read path.
            b2.store(Ty::I64, b2.iconst(Ty::I64, 0), lo_cell);
            b2.store(Ty::I64, b2.iconst(Ty::I64, TABLE), hi_cell);
            b2.counted_loop(b2.iconst(Ty::I64, 0), b2.iconst(Ty::I64, 12), |b3, _| {
                let l = b3.load(Ty::I64, lo_cell);
                let h = b3.load(Ty::I64, hi_cell);
                let sum = b3.add(Ty::I64, l, h);
                let mid = b3.bin(BinOp::LShr, Ty::I64, sum, b3.iconst(Ty::I64, 1));
                let kptr = b3.gep(Operand::GlobalAddr(table), mid, 16, 0);
                let kv = b3.load(Ty::I64, kptr);
                let below = b3.cmp(CmpOp::ULe, Ty::I64, kv, key);
                let nl = b3.select(Ty::I64, below, mid, l);
                let nh = b3.select(Ty::I64, below, h, mid);
                b3.store(Ty::I64, nl, lo_cell);
                b3.store(Ty::I64, nh, hi_cell);
            });
            let slot = b2.load(Ty::I64, lo_cell);
            let vptr = b2.gep(Operand::GlobalAddr(table), slot, 16, 8);
            let v = b2.load(Ty::I64, vptr);
            let cur = b2.load(Ty::I64, my_acc);
            let nxt = b2.add(Ty::I64, cur, v);
            b2.store(Ty::I64, nxt, my_acc);
        });
        let is_write = b.cmp(CmpOp::Ne, Ty::I64, kind, b.iconst(Ty::I64, 0));
        b.if_then(is_write, |b2| {
            // Append to the private memtable ring.
            let c = b2.load(Ty::I64, cnt_cell);
            let slot = b2.bin(BinOp::And, Ty::I64, c, b2.iconst(Ty::I64, 511));
            let sp = b2.gep(my_mt, slot, 8, 0);
            b2.store(Ty::I64, key, sp);
            let nc = b2.add(Ty::I64, c, b2.iconst(Ty::I64, 1));
            b2.store(Ty::I64, nc, cnt_cell);
        });
    });
    w.ret(None);
    m.push_func(w.finish());

    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    emit_checksum_i64(&mut f, Operand::GlobalAddr(acc), MAX_THREADS * 8);
    emit_checksum_i64(&mut f, Operand::GlobalAddr(mt_count), MAX_THREADS * 8);
    f.ret(None);
    m.push_func(f.finish());
    Workload::new(name, m, None, Some("worker"), Some("fini"))
}

/// `sqlite`: every operation dispatched through a function pointer.
///
/// HAFT cannot see through indirect calls, so TX pessimistically ends the
/// transaction before and begins after each one — the paper's explanation
/// for SQLite's 3–4× worst-case overhead.
pub fn sqlite(mix: WorkloadMix, scale: Scale) -> Workload {
    let n_ops = scale.pick(1_200, 9_000);
    const ROWS: i64 = 2048;
    let name = match mix {
        WorkloadMix::A => "sqlite-A",
        WorkloadMix::B => "sqlite-B",
        WorkloadMix::D => "sqlite-D",
        WorkloadMix::Uniform => "sqlite-U",
    };
    let mut m = Module::new(name);
    let mut rows = Vec::with_capacity(ROWS as usize * 16);
    for i in 0..ROWS as u64 {
        rows.extend_from_slice(&(i * 3).to_le_bytes());
        rows.extend_from_slice(&(i.wrapping_mul(40503)).to_le_bytes());
    }
    let rows = m.add_global_init("rows", rows);
    let mut gen = YcsbGen::new(0x5E1, (ROWS as u64) * 3);
    let ops = m.add_global_init("ops", gen.generate_encoded(mix, n_ops as usize));
    let acc = m.add_global("acc", (MAX_THREADS * 64) as u64);

    // "Virtual machine opcodes": select and update handlers, dispatched
    // indirectly per operation.
    let mut sel = FunctionBuilder::new("op_select", &[Ty::I64, Ty::Ptr], Some(Ty::I64));
    {
        let key = sel.param(0);
        let slot = sel.bin(BinOp::URem, Ty::I64, key, sel.iconst(Ty::I64, ROWS));
        let vptr = sel.gep(Operand::GlobalAddr(rows), slot, 16, 8);
        // Atomic: rows are concurrently updated, and HAFT's shared-memory
        // optimization requires race-free regular accesses (§3.1).
        let v = sel.load_atomic(Ty::I64, vptr);
        let mixv = sel.mul(Ty::I64, v, sel.iconst(Ty::I64, 31));
        sel.ret(Some(mixv.into()));
    }
    let sel_id = m.push_func(sel.finish());

    let mut upd = FunctionBuilder::new("op_update", &[Ty::I64, Ty::Ptr], Some(Ty::I64));
    {
        let key = upd.param(0);
        let slot = upd.bin(BinOp::URem, Ty::I64, key, upd.iconst(Ty::I64, ROWS));
        let vptr = upd.gep(Operand::GlobalAddr(rows), slot, 16, 8);
        // Idempotent per row (a function of the slot, not the aliased
        // key), so concurrent updates commute and output is
        // schedule-independent.
        let nv = upd.mul(Ty::I64, slot, upd.iconst(Ty::I64, 40503));
        upd.store_atomic(Ty::I64, nv, vptr);
        upd.ret(Some(nv.into()));
    }
    let upd_id = m.push_func(upd.finish());

    let mut w = FunctionBuilder::new("worker", &[Ty::I64, Ty::I64], None);
    w.set_non_local();
    let tid = w.param(0);
    let nt = w.param(1);
    let (lo, hi) = thread_slice(&mut w, tid, nt, n_ops);
    let acc_off = w.mul(Ty::I64, tid, w.iconst(Ty::I64, 64));
    let my_acc = w.add(Ty::I64, Operand::GlobalAddr(acc), acc_off);
    w.counted_loop(lo, hi, |b, i| {
        let optr = b.gep(Operand::GlobalAddr(ops), i, 8, 0);
        let op = b.load(Ty::I64, optr);
        let kind = b.bin(BinOp::LShr, Ty::I64, op, b.iconst(Ty::I64, 56));
        let key = b.bin(BinOp::And, Ty::I64, op, b.iconst(Ty::I64, 0xFFFF_FFFF));
        // Dispatch via function pointer: reads use op_select, writes
        // op_update. HAFT must treat the callee as unknown.
        let is_read = b.cmp(CmpOp::Eq, Ty::I64, kind, b.iconst(Ty::I64, 0));
        let fp = b.select(Ty::Ptr, is_read, Operand::FuncAddr(sel_id), Operand::FuncAddr(upd_id));
        let r =
            b.call_indirect(fp, &[key.into(), Operand::GlobalAddr(rows)], Some(Ty::I64)).unwrap();
        let cur = b.load(Ty::I64, my_acc);
        let nxt = b.add(Ty::I64, cur, r);
        b.store(Ty::I64, nxt, my_acc);
    });
    w.ret(None);
    m.push_func(w.finish());

    let mut f = FunctionBuilder::new("fini", &[], None);
    f.set_non_local();
    emit_checksum_i64(&mut f, Operand::GlobalAddr(acc), MAX_THREADS * 8);
    f.ret(None);
    m.push_func(f.finish());
    Workload::new(name, m, None, Some("worker"), Some("fini"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use haft::Experiment;
    use haft_passes::HardenConfig;
    use haft_vm::{RunOutcome, VmConfig};

    fn exp(w: &Workload, threads: usize, seed: u64) -> Experiment<'_> {
        let cfg = VmConfig { n_threads: threads, seed, ..Default::default() };
        Experiment::workload(w).vm(cfg)
    }

    fn run(w: &Workload, threads: usize, seed: u64) -> haft_vm::RunResult {
        exp(w, threads, seed).run().run
    }

    fn all() -> Vec<Workload> {
        vec![
            logcabin(Scale::Small),
            apache(Scale::Small),
            leveldb(WorkloadMix::A, Scale::Small),
            leveldb(WorkloadMix::D, Scale::Small),
            sqlite(WorkloadMix::A, Scale::Small),
            sqlite(WorkloadMix::D, Scale::Small),
        ]
    }

    #[test]
    fn all_case_studies_verify_and_run() {
        for w in all() {
            haft_ir::verify::verify_module(&w.module)
                .unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
            let r = run(&w, 2, 1);
            assert_eq!(r.outcome, RunOutcome::Completed, "{}", w.name);
        }
    }

    #[test]
    fn hardened_case_studies_match_native_output() {
        for w in all() {
            let report = exp(&w, 2, 5).compare(&[HardenConfig::haft()]);
            assert!(report.outputs_agree(), "{}:\n{}", w.name, report.summary());
        }
    }

    #[test]
    fn apache_has_low_coverage_and_low_overhead() {
        let w = apache(Scale::Small);
        let report = exp(&w, 2, 3).compare(&[HardenConfig::haft()]);
        let haft = report.variant("HAFT").unwrap();
        let overhead = haft.overhead_vs_native.unwrap();
        assert!(overhead < 1.6, "apache overhead {overhead}");
        assert!(haft.run.htm.coverage_pct() < 70.0, "coverage {}", haft.run.htm.coverage_pct());
    }

    #[test]
    fn sqlite_pays_for_indirect_calls() {
        let sq = sqlite(WorkloadMix::A, Scale::Small);
        let ldb = leveldb(WorkloadMix::A, Scale::Small);
        let oh =
            |w: &Workload| exp(w, 2, 3).compare(&[HardenConfig::haft()]).overhead("HAFT").unwrap();
        let sq_oh = oh(&sq);
        let ldb_oh = oh(&ldb);
        assert!(sq_oh > ldb_oh * 1.5, "sqlite {sq_oh} should far exceed leveldb {ldb_oh}");
    }

    #[test]
    fn logcabin_output_is_deterministic() {
        let w = logcabin(Scale::Small);
        let a = run(&w, 3, 1);
        let b = run(&w, 3, 77);
        assert_eq!(a.output, b.output);
    }
}
