//! YCSB-style workload generation (Zipfian and latest distributions).

use haft_ir::rng::Prng;

/// A key-value operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    Read(u64),
    Update(u64),
    Insert(u64),
}

impl Op {
    /// The key this operation touches (what request routers hash).
    pub fn key(self) -> u64 {
        match self {
            Op::Read(k) | Op::Update(k) | Op::Insert(k) => k,
        }
    }

    /// Encodes the operation for the IR program: `kind << 56 | key`.
    pub fn encode(self) -> u64 {
        match self {
            Op::Read(k) => k,
            Op::Update(k) => (1 << 56) | k,
            Op::Insert(k) => (2 << 56) | k,
        }
    }
}

/// The YCSB mixes: the two the paper evaluates (Figure 11 / 12) plus the
/// standard read-heavy Workload B used as the serving default.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadMix {
    /// Workload A: 50 % reads, 50 % updates, Zipfian key distribution.
    A,
    /// Workload B: 95 % reads, 5 % updates, Zipfian key distribution —
    /// the read-heavy mix `haft-serve` defaults to.
    B,
    /// Workload D: 95 % reads, 5 % inserts, "latest" distribution.
    D,
    /// mcblaster-style uniform reads over a small key range (the SEI
    /// comparison setup: key range 1,000).
    Uniform,
}

/// Deterministic YCSB-style generator.
pub struct YcsbGen {
    rng: Prng,
    keyspace: u64,
    /// Zipfian skew (YCSB default 0.99).
    theta: f64,
    zeta_n: f64,
    /// Most recently inserted key (for the latest distribution).
    latest: u64,
}

impl YcsbGen {
    /// Creates a generator over `keyspace` keys.
    pub fn new(seed: u64, keyspace: u64) -> Self {
        let theta = 0.99;
        let zeta_n = (1..=keyspace).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        YcsbGen { rng: Prng::new(seed), keyspace, theta, zeta_n, latest: keyspace / 2 }
    }

    /// Draws a Zipfian-distributed key (scrambled, as YCSB does, so hot
    /// keys spread over the keyspace).
    pub fn zipfian(&mut self) -> u64 {
        // Inverse-CDF approximation (Gray et al., as used by YCSB).
        let u = self.rng.unit_f64();
        let alpha = 1.0 / (1.0 - self.theta);
        let eta = (1.0 - (2.0 / self.keyspace as f64).powf(1.0 - self.theta))
            / (1.0 - zeta(2.0, self.theta) / self.zeta_n);
        let uz = u * self.zeta_n;
        let rank = if uz < 1.0 {
            0
        } else if uz < 1.0 + 0.5f64.powf(self.theta) {
            1
        } else {
            (self.keyspace as f64 * (eta * u - eta + 1.0).powf(alpha)) as u64
        };
        // Scramble with a fixed multiplier to spread hot ranks.
        rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.keyspace
    }

    /// Draws a "latest"-distributed key: skewed toward recent inserts.
    pub fn latest_key(&mut self) -> u64 {
        let u = self.rng.unit_f64();
        // Exponentially decaying recency window.
        let back = (-(u.max(1e-12)).ln() * self.keyspace as f64 / 20.0) as u64;
        self.latest.wrapping_sub(back % self.keyspace) % self.keyspace
    }

    /// Generates `n` operations of the given mix.
    pub fn generate(&mut self, mix: WorkloadMix, n: usize) -> Vec<Op> {
        (0..n)
            .map(|_| match mix {
                WorkloadMix::A => {
                    let k = self.zipfian();
                    if self.rng.chance(0.5) {
                        Op::Read(k)
                    } else {
                        Op::Update(k)
                    }
                }
                WorkloadMix::B => {
                    let k = self.zipfian();
                    if self.rng.chance(0.95) {
                        Op::Read(k)
                    } else {
                        Op::Update(k)
                    }
                }
                WorkloadMix::D => {
                    if self.rng.chance(0.05) {
                        self.latest = (self.latest + 1) % self.keyspace;
                        Op::Insert(self.latest)
                    } else {
                        Op::Read(self.latest_key())
                    }
                }
                WorkloadMix::Uniform => Op::Read(self.rng.below(self.keyspace)),
            })
            .collect()
    }

    /// Generates and encodes operations as the IR-visible `u64` stream.
    pub fn generate_encoded(&mut self, mix: WorkloadMix, n: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(n * 8);
        for op in self.generate(mix, n) {
            out.extend_from_slice(&op.encode().to_le_bytes());
        }
        out
    }
}

fn zeta(n: f64, theta: f64) -> f64 {
    (1..=n as u64).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = YcsbGen::new(7, 1000);
        let mut b = YcsbGen::new(7, 1000);
        assert_eq!(a.generate(WorkloadMix::A, 100), b.generate(WorkloadMix::A, 100));
    }

    #[test]
    fn zipfian_is_skewed() {
        let mut g = YcsbGen::new(3, 1000);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(g.zipfian()).or_insert(0u32) += 1;
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // The hottest key should take a large share (Zipf 0.99 over 1000
        // keys: several percent), far above uniform (0.1 %).
        assert!(freqs[0] > 400, "hottest {}", freqs[0]);
        // And keys stay in range.
        assert!(counts.keys().all(|&k| k < 1000));
    }

    #[test]
    fn mix_ratios_roughly_hold() {
        let mut g = YcsbGen::new(5, 1000);
        let ops = g.generate(WorkloadMix::A, 10_000);
        let reads = ops.iter().filter(|o| matches!(o, Op::Read(_))).count();
        assert!((4000..6000).contains(&reads), "A reads {reads}");

        let ops = g.generate(WorkloadMix::D, 10_000);
        let inserts = ops.iter().filter(|o| matches!(o, Op::Insert(_))).count();
        assert!((300..800).contains(&inserts), "D inserts {inserts}");
    }

    /// Pins Workload B's op ratio: 95 % reads / 5 % updates, no inserts
    /// (the read-heavy Zipfian mix `haft-serve` defaults to).
    #[test]
    fn mix_b_ratio_is_pinned() {
        let mut g = YcsbGen::new(11, 1000);
        let ops = g.generate(WorkloadMix::B, 10_000);
        let reads = ops.iter().filter(|o| matches!(o, Op::Read(_))).count();
        let updates = ops.iter().filter(|o| matches!(o, Op::Update(_))).count();
        let inserts = ops.iter().filter(|o| matches!(o, Op::Insert(_))).count();
        assert!((9300..9700).contains(&reads), "B reads {reads}");
        assert_eq!(reads + updates, 10_000);
        assert_eq!(inserts, 0, "B never inserts");
        assert!(ops.iter().all(|o| o.key() < 1000), "keys stay in range");
    }

    /// Distribution sanity for the Zipfian generator: the hot set is
    /// concentrated the way YCSB's scrambled Zipfian (theta 0.99) should
    /// be — the top 1 % of keys receive a majority of accesses.
    #[test]
    fn zipfian_top_one_percent_takes_majority() {
        let keyspace = 10_000u64;
        let draws = 50_000usize;
        let mut g = YcsbGen::new(17, keyspace);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..draws {
            let k = g.zipfian();
            assert!(k < keyspace);
            *counts.entry(k).or_insert(0u64) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: u64 = freqs.iter().take(keyspace as usize / 100).sum();
        let share = top1pct as f64 / draws as f64;
        assert!(share > 0.5, "top-1% share {share:.3} is not a majority");
        // And it is far from degenerate: the hot set is spread over many
        // keys, not a single one.
        assert!(counts.len() > 1000, "only {} distinct keys drawn", counts.len());
    }

    /// Same-seed generators agree draw-for-draw on every distribution;
    /// different seeds diverge.
    #[test]
    fn generators_are_seed_deterministic() {
        let mut a = YcsbGen::new(23, 5000);
        let mut b = YcsbGen::new(23, 5000);
        let za: Vec<u64> = (0..2000).map(|_| a.zipfian()).collect();
        let zb: Vec<u64> = (0..2000).map(|_| b.zipfian()).collect();
        assert_eq!(za, zb, "same-seed zipfian streams must agree");
        for mix in [WorkloadMix::A, WorkloadMix::B, WorkloadMix::D, WorkloadMix::Uniform] {
            let mut a = YcsbGen::new(29, 1000);
            let mut b = YcsbGen::new(29, 1000);
            assert_eq!(a.generate(mix, 500), b.generate(mix, 500), "{mix:?}");
        }
        let mut c = YcsbGen::new(24, 5000);
        let zc: Vec<u64> = (0..2000).map(|_| c.zipfian()).collect();
        assert_ne!(za, zc, "different seeds must diverge");
    }

    #[test]
    fn encoding_roundtrips_kind_and_key() {
        assert_eq!(Op::Read(42).encode(), 42);
        assert_eq!(Op::Update(42).encode() >> 56, 1);
        assert_eq!(Op::Update(42).encode() & 0xFFFF_FFFF, 42);
        assert_eq!(Op::Insert(7).encode() >> 56, 2);
    }

    #[test]
    fn uniform_covers_range() {
        let mut g = YcsbGen::new(9, 100);
        let ops = g.generate(WorkloadMix::Uniform, 5000);
        let distinct: std::collections::HashSet<u64> = ops
            .iter()
            .map(|o| match o {
                Op::Read(k) => *k,
                _ => unreachable!(),
            })
            .collect();
        assert!(distinct.len() > 90);
    }
}
