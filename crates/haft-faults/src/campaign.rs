//! Campaign driver: plan, inject, classify — in parallel.

use haft_ir::module::Module;
use haft_ir::rng::Prng;
use haft_vm::{FaultPlan, RunOutcome, RunSpec, Vm, VmConfig};

use crate::classify::classify;
use crate::report::CampaignReport;

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Number of injection runs (the paper uses 2,500 per program; the
    /// in-repo default campaigns are smaller, see the bench harness).
    pub injections: u64,
    /// Seed for fault planning.
    pub seed: u64,
    /// OS threads to spread the runs over. A value of `0` is clamped to
    /// `1` by [`run_campaign`] (serial execution) rather than treated as
    /// an error.
    pub parallelism: usize,
    /// VM configuration for every run (simulated thread count, HTM
    /// parameters, ...). The fault plan and forensics fields are
    /// overwritten per run.
    pub vm: VmConfig,
    /// Enable per-run fault forensics (taint tracking on fault runs) and
    /// aggregate the records into [`CampaignReport::forensics`]. Off by
    /// default: tracking makes injection runs slower, and outcome counts
    /// are identical either way.
    pub forensics: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            injections: 200,
            seed: 0xFA_17,
            parallelism: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            vm: VmConfig { n_threads: 2, ..Default::default() },
            forensics: false,
        }
    }
}

/// Runs a full campaign against `module` and returns the aggregated
/// report plus the golden (fault-free) output.
///
/// # Panics
///
/// Panics if the fault-free reference run does not complete — the program
/// under test must be correct before injecting faults into it.
pub fn run_campaign(module: &Module, spec: RunSpec<'_>, cfg: &CampaignConfig) -> CampaignReport {
    // Step 1: reference run — trace size and golden output.
    let mut ref_cfg = cfg.vm.clone();
    ref_cfg.fault = None;
    let golden = Vm::run(module, ref_cfg, spec);
    run_campaign_from(module, spec, cfg, &golden)
}

/// Like [`run_campaign`], but reuses a `golden` reference run the caller
/// has already performed (with `cfg.vm` and no fault) instead of
/// re-executing it. Used by the `haft` facade's `Experiment`, which needs
/// the reference [`haft_vm::RunResult`] for its own report anyway.
///
/// # Panics
///
/// Panics if `golden` is not a completed run.
pub fn run_campaign_from(
    module: &Module,
    spec: RunSpec<'_>,
    cfg: &CampaignConfig,
    golden: &haft_vm::RunResult,
) -> CampaignReport {
    assert_eq!(golden.outcome, RunOutcome::Completed, "reference run must complete cleanly");
    let population = golden.register_writes.max(1);

    // Step 2: plan the injections (uniform over the dynamic trace, random
    // XOR masks — the paper's weighted-random selection).
    let plans = plan_injections(cfg.seed, cfg.injections, population);

    // Step 3: execute and classify, fanned out over OS threads.
    // `parallelism: 0` clamps to serial execution; outcome counts are
    // identical at any worker count (each run is independent).
    let workers = cfg.parallelism.max(1);
    let chunk = plans.len().div_ceil(workers);
    let mut report = CampaignReport::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for piece in plans.chunks(chunk.max(1)) {
            let vm_cfg = cfg.vm.clone();
            let golden_out = &golden.output;
            let forensics = cfg.forensics;
            handles.push(scope.spawn(move || {
                let mut local = CampaignReport::default();
                for plan in piece {
                    let mut c = vm_cfg.clone();
                    c.fault = Some(*plan);
                    c.forensics = forensics;
                    let r = Vm::run(module, c, spec);
                    let o = classify(&r, golden_out);
                    local.record(o);
                    if let Some(fx) = &r.forensics {
                        local.record_forensics(o, fx);
                    }
                }
                local
            }));
        }
        for h in handles {
            report.merge(&h.join().expect("campaign worker panicked"));
        }
    });
    report
}

/// Draws the injection plans: occurrences uniform over the dynamic
/// register-write trace, XOR masks rejection-sampled until the low byte is
/// nonzero. Truncation to any destination width (i8 and up) then still
/// leaves at least one flipped bit, which keeps the forced-bit-0 fallback
/// in [`FaultPlan::effective_mask`] a defensive path instead of skewing
/// narrow-type flip distributions toward bit 0. Expected rejections: 1 in
/// 256 draws, so planning stays effectively O(n) and deterministic in
/// `seed`.
fn plan_injections(seed: u64, n: u64, population: u64) -> Vec<FaultPlan> {
    let mut rng = Prng::new(seed);
    (0..n)
        .map(|_| {
            let occurrence = rng.below(population);
            let mut xor_mask = rng.next_u64();
            while xor_mask & 0xff == 0 {
                xor_mask = rng.next_u64();
            }
            FaultPlan { occurrence, xor_mask }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Outcome;
    use haft_ir::builder::FunctionBuilder;
    use haft_ir::inst::Operand;
    use haft_ir::module::GlobalId;
    use haft_ir::types::Ty;
    use haft_passes::{HardenConfig, PassManager};

    fn harden(m: &Module, cfg: &HardenConfig) -> Module {
        PassManager::from_config(cfg).run_on(m).0
    }

    /// A small single-threaded reduction program with some dead state
    /// (the scratch global never reaches the output, so faults landing in
    /// that flow are masked — the Table 1 "Masked" class).
    fn program() -> Module {
        let mut m = Module::new("t");
        m.add_global("acc", 8);
        m.add_global("scratch", 8);
        let g = Operand::GlobalAddr(GlobalId(0));
        let dead = Operand::GlobalAddr(GlobalId(1));
        let mut fb = FunctionBuilder::new("fini", &[], None);
        fb.set_non_local();
        fb.counted_loop(fb.iconst(Ty::I64, 0), fb.iconst(Ty::I64, 120), |b, i| {
            let cur = b.load(Ty::I64, g);
            let x = b.mul(Ty::I64, i, b.iconst(Ty::I64, 7));
            let nxt = b.add(Ty::I64, cur, x);
            b.store(Ty::I64, nxt, g);
            // Dead flow: computed, stored, never read back into output.
            let d = b.load(Ty::I64, dead);
            let d2 = b.bin(haft_ir::inst::BinOp::Xor, Ty::I64, d, x);
            let d3 = b.mul(Ty::I64, d2, b.iconst(Ty::I64, 13));
            b.store(Ty::I64, d3, dead);
        });
        let v = fb.load(Ty::I64, g);
        fb.emit_out(Ty::I64, v);
        fb.ret(None);
        m.push_func(fb.finish());
        m
    }

    fn spec() -> RunSpec<'static> {
        RunSpec { fini: Some("fini"), ..Default::default() }
    }

    fn campaign(n: u64) -> CampaignConfig {
        CampaignConfig {
            injections: n,
            seed: 42,
            parallelism: 2,
            vm: VmConfig { n_threads: 1, max_instructions: 5_000_000, ..Default::default() },
            forensics: false,
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let m = program();
        let a = run_campaign(&m, spec(), &campaign(60));
        let b = run_campaign(&m, spec(), &campaign(60));
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.runs, 60);
    }

    #[test]
    fn zero_parallelism_is_clamped_to_serial() {
        // Regression: `parallelism: 0` must behave exactly like serial
        // execution — same run count, same outcome histogram — instead of
        // dividing by zero or dropping the plans.
        let m = program();
        let mut zero = campaign(40);
        zero.parallelism = 0;
        let a = run_campaign(&m, spec(), &zero);
        let b = run_campaign(&m, spec(), &campaign(40));
        assert_eq!(a.runs, 40);
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn native_program_shows_sdc_and_masking() {
        let m = program();
        let r = run_campaign(&m, spec(), &campaign(150));
        assert!(r.pct(Outcome::Sdc) > 5.0, "native must corrupt: {}", r.summary());
        assert!(r.pct(Outcome::Masked) > 2.0, "some faults mask: {}", r.summary());
        assert_eq!(r.pct(Outcome::HaftCorrected), 0.0, "no recovery without HAFT");
        assert_eq!(r.pct(Outcome::IlrDetected), 0.0, "no detection without ILR");
    }

    #[test]
    fn ilr_converts_sdc_to_detection() {
        let m = program();
        let native = run_campaign(&m, spec(), &campaign(150));
        let hardened = harden(&m, &HardenConfig::ilr_only());
        let r = run_campaign(&hardened, spec(), &campaign(150));
        assert!(
            r.pct(Outcome::Sdc) < native.pct(Outcome::Sdc) / 2.0,
            "ILR {} vs native {}",
            r.summary(),
            native.summary()
        );
        assert!(r.pct(Outcome::IlrDetected) > 10.0, "{}", r.summary());
    }

    #[test]
    fn haft_recovers_detected_faults() {
        let m = program();
        let hardened = harden(&m, &HardenConfig::haft());
        let r = run_campaign(&hardened, spec(), &campaign(150));
        assert!(r.pct(Outcome::HaftCorrected) > 10.0, "{}", r.summary());
        assert!(
            r.pct(Outcome::IlrDetected) < 20.0,
            "most detections should recover: {}",
            r.summary()
        );
        assert!(r.pct(Outcome::Sdc) < 5.0, "{}", r.summary());
    }

    #[test]
    fn tmr_masks_faults_without_rollback() {
        // The masking backend: a campaign against a TMR-hardened program
        // reports corrected-by-masking outcomes, with zero transactions
        // and therefore zero rollback recoveries.
        let m = program();
        let hardened = harden(&m, &HardenConfig::tmr());
        let r = run_campaign(&hardened, spec(), &campaign(150));
        assert!(r.pct(Outcome::VoteCorrected) > 10.0, "{}", r.summary());
        assert_eq!(r.pct(Outcome::HaftCorrected), 0.0, "no rollback machinery in TMR");
        assert!(r.pct(Outcome::Sdc) < 5.0, "{}", r.summary());
    }

    #[test]
    fn sampled_masks_survive_narrow_truncation() {
        // Regression for the bit-0 skew: every planned mask must keep at
        // least one bit after truncation to any destination width, so the
        // forced-single-bit fallback in `effective_mask` never fires for
        // campaign-planned faults.
        let plans = plan_injections(42, 500, 1000);
        assert_eq!(plans.len(), 500);
        for p in &plans {
            assert_ne!(p.xor_mask & 0xff, 0);
            for ty in [Ty::I8, Ty::I16, Ty::I32, Ty::I64] {
                assert_eq!(
                    p.effective_mask(ty),
                    p.xor_mask & ty.mask(),
                    "fallback fired for {ty:?} on mask {:#x}",
                    p.xor_mask
                );
            }
        }
    }

    #[test]
    fn forensics_records_the_actual_applied_mask() {
        // A program whose first register write is an i8 add. With a mask
        // whose low byte is empty, the i8 truncation is zero and the
        // forced-bit-0 fallback fires — forensics must record the bit
        // actually flipped, not the drawn mask.
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("fini", &[], None);
        fb.set_non_local();
        let a = fb.iconst(Ty::I8, 5);
        let b = fb.iconst(Ty::I8, 2);
        let x = fb.add(Ty::I8, a, b);
        fb.emit_out(Ty::I8, x);
        fb.ret(None);
        m.push_func(fb.finish());

        let run = |mask: u64| {
            let cfg = VmConfig {
                n_threads: 1,
                fault: Some(FaultPlan { occurrence: 0, xor_mask: mask }),
                forensics: true,
                ..Default::default()
            };
            Vm::run(&m, cfg, spec()).forensics.expect("fault must fire").site.applied_mask
        };
        assert_eq!(run(0xFF00), 1, "fallback path must be recorded as bit 0");
        assert_eq!(run(0x0F), 0x0F, "truncated mask applied verbatim");
    }

    #[test]
    fn forensics_campaign_aggregates_without_changing_outcomes() {
        let m = program();
        let hardened = harden(&m, &HardenConfig::haft());
        let plain = run_campaign(&hardened, spec(), &campaign(80));
        let mut cfg = campaign(80);
        cfg.forensics = true;
        let traced = run_campaign(&hardened, spec(), &cfg);
        assert_eq!(plain.counts, traced.counts, "forensics must not change outcomes");
        assert!(plain.forensics.is_none());
        let s = traced.forensics.as_ref().expect("forensics aggregate");
        assert!(s.fired > 0);
        assert_eq!(s.fired, s.sites.values().map(|v| v.injections).sum::<u64>());
        let metrics = traced.metrics();
        assert_eq!(
            metrics.get("faults.detect_latency.ilr.count").map(|v| v as u64),
            s.latency_insts.get(&haft_vm::FaultDetector::Ilr).map(|h| h.count).or(Some(0))
        );
    }

    #[test]
    #[should_panic(expected = "reference run must complete")]
    fn broken_reference_panics() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("fini", &[], None);
        fb.set_non_local();
        let l = fb.new_block();
        fb.br(l);
        fb.switch_to(l);
        fb.br(l);
        m.push_func(fb.finish());
        let mut c = campaign(1);
        c.vm.max_instructions = 1000;
        run_campaign(&m, spec(), &c);
    }
}
