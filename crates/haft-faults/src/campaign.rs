//! Campaign driver: plan, inject, classify — in parallel.

use haft_ir::module::Module;
use haft_ir::rng::Prng;
use haft_vm::{FaultPlan, RunOutcome, RunSpec, Vm, VmConfig};

use crate::classify::classify;
use crate::report::CampaignReport;

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Number of injection runs (the paper uses 2,500 per program; the
    /// in-repo default campaigns are smaller, see the bench harness).
    pub injections: u64,
    /// Seed for fault planning.
    pub seed: u64,
    /// OS threads to spread the runs over. A value of `0` is clamped to
    /// `1` by [`run_campaign`] (serial execution) rather than treated as
    /// an error.
    pub parallelism: usize,
    /// VM configuration for every run (simulated thread count, HTM
    /// parameters, ...). The fault plan field is overwritten per run.
    pub vm: VmConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            injections: 200,
            seed: 0xFA_17,
            parallelism: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            vm: VmConfig { n_threads: 2, ..Default::default() },
        }
    }
}

/// Runs a full campaign against `module` and returns the aggregated
/// report plus the golden (fault-free) output.
///
/// # Panics
///
/// Panics if the fault-free reference run does not complete — the program
/// under test must be correct before injecting faults into it.
pub fn run_campaign(module: &Module, spec: RunSpec<'_>, cfg: &CampaignConfig) -> CampaignReport {
    // Step 1: reference run — trace size and golden output.
    let mut ref_cfg = cfg.vm.clone();
    ref_cfg.fault = None;
    let golden = Vm::run(module, ref_cfg, spec);
    run_campaign_from(module, spec, cfg, &golden)
}

/// Like [`run_campaign`], but reuses a `golden` reference run the caller
/// has already performed (with `cfg.vm` and no fault) instead of
/// re-executing it. Used by the `haft` facade's `Experiment`, which needs
/// the reference [`haft_vm::RunResult`] for its own report anyway.
///
/// # Panics
///
/// Panics if `golden` is not a completed run.
pub fn run_campaign_from(
    module: &Module,
    spec: RunSpec<'_>,
    cfg: &CampaignConfig,
    golden: &haft_vm::RunResult,
) -> CampaignReport {
    assert_eq!(golden.outcome, RunOutcome::Completed, "reference run must complete cleanly");
    let population = golden.register_writes.max(1);

    // Step 2: plan the injections (uniform over the dynamic trace, random
    // XOR masks — the paper's weighted-random selection).
    let mut rng = Prng::new(cfg.seed);
    let plans: Vec<FaultPlan> = (0..cfg.injections)
        .map(|_| FaultPlan { occurrence: rng.below(population), xor_mask: rng.next_u64() })
        .collect();

    // Step 3: execute and classify, fanned out over OS threads.
    // `parallelism: 0` clamps to serial execution; outcome counts are
    // identical at any worker count (each run is independent).
    let workers = cfg.parallelism.max(1);
    let chunk = plans.len().div_ceil(workers);
    let mut report = CampaignReport::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for piece in plans.chunks(chunk.max(1)) {
            let vm_cfg = cfg.vm.clone();
            let golden_out = &golden.output;
            handles.push(scope.spawn(move || {
                let mut local = CampaignReport::default();
                for plan in piece {
                    let mut c = vm_cfg.clone();
                    c.fault = Some(*plan);
                    let r = Vm::run(module, c, spec);
                    local.record(classify(&r, golden_out));
                }
                local
            }));
        }
        for h in handles {
            report.merge(&h.join().expect("campaign worker panicked"));
        }
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Outcome;
    use haft_ir::builder::FunctionBuilder;
    use haft_ir::inst::Operand;
    use haft_ir::module::GlobalId;
    use haft_ir::types::Ty;
    use haft_passes::{HardenConfig, PassManager};

    fn harden(m: &Module, cfg: &HardenConfig) -> Module {
        PassManager::from_config(cfg).run_on(m).0
    }

    /// A small single-threaded reduction program with some dead state
    /// (the scratch global never reaches the output, so faults landing in
    /// that flow are masked — the Table 1 "Masked" class).
    fn program() -> Module {
        let mut m = Module::new("t");
        m.add_global("acc", 8);
        m.add_global("scratch", 8);
        let g = Operand::GlobalAddr(GlobalId(0));
        let dead = Operand::GlobalAddr(GlobalId(1));
        let mut fb = FunctionBuilder::new("fini", &[], None);
        fb.set_non_local();
        fb.counted_loop(fb.iconst(Ty::I64, 0), fb.iconst(Ty::I64, 120), |b, i| {
            let cur = b.load(Ty::I64, g);
            let x = b.mul(Ty::I64, i, b.iconst(Ty::I64, 7));
            let nxt = b.add(Ty::I64, cur, x);
            b.store(Ty::I64, nxt, g);
            // Dead flow: computed, stored, never read back into output.
            let d = b.load(Ty::I64, dead);
            let d2 = b.bin(haft_ir::inst::BinOp::Xor, Ty::I64, d, x);
            let d3 = b.mul(Ty::I64, d2, b.iconst(Ty::I64, 13));
            b.store(Ty::I64, d3, dead);
        });
        let v = fb.load(Ty::I64, g);
        fb.emit_out(Ty::I64, v);
        fb.ret(None);
        m.push_func(fb.finish());
        m
    }

    fn spec() -> RunSpec<'static> {
        RunSpec { fini: Some("fini"), ..Default::default() }
    }

    fn campaign(n: u64) -> CampaignConfig {
        CampaignConfig {
            injections: n,
            seed: 42,
            parallelism: 2,
            vm: VmConfig { n_threads: 1, max_instructions: 5_000_000, ..Default::default() },
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let m = program();
        let a = run_campaign(&m, spec(), &campaign(60));
        let b = run_campaign(&m, spec(), &campaign(60));
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.runs, 60);
    }

    #[test]
    fn zero_parallelism_is_clamped_to_serial() {
        // Regression: `parallelism: 0` must behave exactly like serial
        // execution — same run count, same outcome histogram — instead of
        // dividing by zero or dropping the plans.
        let m = program();
        let mut zero = campaign(40);
        zero.parallelism = 0;
        let a = run_campaign(&m, spec(), &zero);
        let b = run_campaign(&m, spec(), &campaign(40));
        assert_eq!(a.runs, 40);
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn native_program_shows_sdc_and_masking() {
        let m = program();
        let r = run_campaign(&m, spec(), &campaign(150));
        assert!(r.pct(Outcome::Sdc) > 5.0, "native must corrupt: {}", r.summary());
        assert!(r.pct(Outcome::Masked) > 2.0, "some faults mask: {}", r.summary());
        assert_eq!(r.pct(Outcome::HaftCorrected), 0.0, "no recovery without HAFT");
        assert_eq!(r.pct(Outcome::IlrDetected), 0.0, "no detection without ILR");
    }

    #[test]
    fn ilr_converts_sdc_to_detection() {
        let m = program();
        let native = run_campaign(&m, spec(), &campaign(150));
        let hardened = harden(&m, &HardenConfig::ilr_only());
        let r = run_campaign(&hardened, spec(), &campaign(150));
        assert!(
            r.pct(Outcome::Sdc) < native.pct(Outcome::Sdc) / 2.0,
            "ILR {} vs native {}",
            r.summary(),
            native.summary()
        );
        assert!(r.pct(Outcome::IlrDetected) > 10.0, "{}", r.summary());
    }

    #[test]
    fn haft_recovers_detected_faults() {
        let m = program();
        let hardened = harden(&m, &HardenConfig::haft());
        let r = run_campaign(&hardened, spec(), &campaign(150));
        assert!(r.pct(Outcome::HaftCorrected) > 10.0, "{}", r.summary());
        assert!(
            r.pct(Outcome::IlrDetected) < 20.0,
            "most detections should recover: {}",
            r.summary()
        );
        assert!(r.pct(Outcome::Sdc) < 5.0, "{}", r.summary());
    }

    #[test]
    fn tmr_masks_faults_without_rollback() {
        // The masking backend: a campaign against a TMR-hardened program
        // reports corrected-by-masking outcomes, with zero transactions
        // and therefore zero rollback recoveries.
        let m = program();
        let hardened = harden(&m, &HardenConfig::tmr());
        let r = run_campaign(&hardened, spec(), &campaign(150));
        assert!(r.pct(Outcome::VoteCorrected) > 10.0, "{}", r.summary());
        assert_eq!(r.pct(Outcome::HaftCorrected), 0.0, "no rollback machinery in TMR");
        assert!(r.pct(Outcome::Sdc) < 5.0, "{}", r.summary());
    }

    #[test]
    #[should_panic(expected = "reference run must complete")]
    fn broken_reference_panics() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("fini", &[], None);
        fb.set_non_local();
        let l = fb.new_block();
        fb.br(l);
        fb.switch_to(l);
        fb.br(l);
        m.push_func(fb.finish());
        let mut c = campaign(1);
        c.vm.max_instructions = 1000;
        run_campaign(&m, spec(), &c);
    }
}
