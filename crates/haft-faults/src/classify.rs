//! Outcome classification (the paper's Table 1).

use haft_vm::{RunOutcome, RunResult};

/// Classification of one fault-injection run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Outcome {
    /// The program exceeded its budget (unresponsive).
    Hang,
    /// The OS terminated the program (trap).
    OsDetected,
    /// An ILR check fired and the program fail-stopped
    /// (no transaction to roll back, or retries exhausted).
    IlrDetected,
    /// An ILR check fired inside a transaction, the rollback re-executed
    /// cleanly, and the output is correct.
    HaftCorrected,
    /// A majority vote observed a divergent copy and masked the fault in
    /// place (the TMR backend), and the output is correct — corrected by
    /// masking, with no rollback involved.
    VoteCorrected,
    /// The fault had no effect on the output.
    Masked,
    /// Silent data corruption: the run completed with wrong output.
    Sdc,
}

impl Outcome {
    /// The paper's three summary groups (Table 1's right column).
    pub fn group(self) -> Group {
        match self {
            Outcome::Hang | Outcome::OsDetected | Outcome::IlrDetected => Group::Crashed,
            Outcome::HaftCorrected | Outcome::VoteCorrected | Outcome::Masked => Group::Correct,
            Outcome::Sdc => Group::Corrupted,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Hang => "hang",
            Outcome::OsDetected => "os-detected",
            Outcome::IlrDetected => "ilr-detected",
            Outcome::HaftCorrected => "haft-corrected",
            Outcome::VoteCorrected => "vote-corrected",
            Outcome::Masked => "masked",
            Outcome::Sdc => "sdc",
        }
    }

    /// All outcomes, in reporting order.
    pub const ALL: [Outcome; 7] = [
        Outcome::Hang,
        Outcome::OsDetected,
        Outcome::IlrDetected,
        Outcome::HaftCorrected,
        Outcome::VoteCorrected,
        Outcome::Masked,
        Outcome::Sdc,
    ];
}

/// Availability groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Group {
    Crashed,
    Correct,
    Corrupted,
}

/// Classifies one injected run against the golden reference.
pub fn classify(run: &RunResult, golden: &[u64]) -> Outcome {
    match run.outcome {
        RunOutcome::Hang => Outcome::Hang,
        RunOutcome::Trapped(_) => Outcome::OsDetected,
        RunOutcome::Detected => Outcome::IlrDetected,
        RunOutcome::Completed => {
            if run.output == golden {
                if run.recoveries > 0 {
                    Outcome::HaftCorrected
                } else if run.corrected_by_vote > 0 {
                    Outcome::VoteCorrected
                } else {
                    Outcome::Masked
                }
            } else {
                Outcome::Sdc
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haft_htm::HtmStats;

    fn result(outcome: RunOutcome, output: Vec<u64>, recoveries: u64) -> RunResult {
        RunResult {
            outcome,
            output,
            wall_cycles: 1,
            cpu_cycles: 1,
            instructions: 1,
            register_writes: 1,
            htm: HtmStats::default(),
            detections: recoveries,
            recoveries,
            corrected_by_vote: 0,
            mispredicts: 0,
        }
    }

    #[test]
    fn table1_mapping() {
        let golden = vec![1, 2, 3];
        assert_eq!(classify(&result(RunOutcome::Hang, vec![], 0), &golden), Outcome::Hang);
        assert_eq!(
            classify(&result(RunOutcome::Trapped(haft_vm::Trap::DivByZero), vec![], 0), &golden),
            Outcome::OsDetected
        );
        assert_eq!(
            classify(&result(RunOutcome::Detected, vec![], 0), &golden),
            Outcome::IlrDetected
        );
        assert_eq!(
            classify(&result(RunOutcome::Completed, vec![1, 2, 3], 0), &golden),
            Outcome::Masked
        );
        assert_eq!(
            classify(&result(RunOutcome::Completed, vec![1, 2, 3], 2), &golden),
            Outcome::HaftCorrected
        );
        assert_eq!(
            classify(&result(RunOutcome::Completed, vec![9, 2, 3], 0), &golden),
            Outcome::Sdc
        );
    }

    #[test]
    fn vote_correction_classifies_as_corrected_by_masking() {
        let golden = vec![1, 2, 3];
        let mut r = result(RunOutcome::Completed, vec![1, 2, 3], 0);
        r.corrected_by_vote = 4;
        assert_eq!(classify(&r, &golden), Outcome::VoteCorrected);
        // Rollback recovery takes precedence (a hybrid run that did both
        // still reports the rollback, which is the costlier event).
        r.recoveries = 1;
        assert_eq!(classify(&r, &golden), Outcome::HaftCorrected);
    }

    #[test]
    fn recovery_with_wrong_output_is_still_sdc() {
        let golden = vec![1];
        let r = result(RunOutcome::Completed, vec![2], 3);
        assert_eq!(classify(&r, &golden), Outcome::Sdc);
        let mut v = result(RunOutcome::Completed, vec![2], 0);
        v.corrected_by_vote = 2;
        assert_eq!(classify(&v, &golden), Outcome::Sdc, "a wrong vote is still corruption");
    }

    #[test]
    fn groups() {
        assert_eq!(Outcome::Hang.group(), Group::Crashed);
        assert_eq!(Outcome::OsDetected.group(), Group::Crashed);
        assert_eq!(Outcome::IlrDetected.group(), Group::Crashed);
        assert_eq!(Outcome::HaftCorrected.group(), Group::Correct);
        assert_eq!(Outcome::VoteCorrected.group(), Group::Correct);
        assert_eq!(Outcome::Masked.group(), Group::Correct);
        assert_eq!(Outcome::Sdc.group(), Group::Corrupted);
    }
}
