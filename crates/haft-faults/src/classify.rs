//! Outcome classification (the paper's Table 1).

use haft_vm::{RunOutcome, RunResult};

/// Classification of one fault-injection run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Outcome {
    /// The program exceeded its budget (unresponsive).
    Hang,
    /// The OS terminated the program (trap).
    OsDetected,
    /// An ILR check fired and the program fail-stopped
    /// (no transaction to roll back, or retries exhausted).
    IlrDetected,
    /// An ILR check fired inside a transaction, the rollback re-executed
    /// cleanly, and the output is correct.
    HaftCorrected,
    /// A majority vote observed a divergent copy and masked the fault in
    /// place (the TMR backend), and the output is correct — corrected by
    /// masking, with no rollback involved.
    VoteCorrected,
    /// A checksum verify-and-correct observed one divergent lane and
    /// reconstructed the value from the other two (the ABFT backend),
    /// and the output is correct.
    ChecksumCorrected,
    /// The fault had no effect on the output.
    Masked,
    /// Silent data corruption: the run completed with wrong output.
    Sdc,
}

impl Outcome {
    /// The paper's three summary groups (Table 1's right column).
    pub fn group(self) -> Group {
        match self {
            Outcome::Hang | Outcome::OsDetected | Outcome::IlrDetected => Group::Crashed,
            Outcome::HaftCorrected
            | Outcome::VoteCorrected
            | Outcome::ChecksumCorrected
            | Outcome::Masked => Group::Correct,
            Outcome::Sdc => Group::Corrupted,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Hang => "hang",
            Outcome::OsDetected => "os-detected",
            Outcome::IlrDetected => "ilr-detected",
            Outcome::HaftCorrected => "haft-corrected",
            Outcome::VoteCorrected => "vote-corrected",
            Outcome::ChecksumCorrected => "checksum-corrected",
            Outcome::Masked => "masked",
            Outcome::Sdc => "sdc",
        }
    }

    /// All outcomes, in reporting order.
    pub const ALL: [Outcome; 8] = [
        Outcome::Hang,
        Outcome::OsDetected,
        Outcome::IlrDetected,
        Outcome::HaftCorrected,
        Outcome::VoteCorrected,
        Outcome::ChecksumCorrected,
        Outcome::Masked,
        Outcome::Sdc,
    ];

    /// Stable dotted name in the unified metrics registry
    /// (`faults.outcome.<label>`); pinned by the haft-trace schema test.
    pub fn metric_name(self) -> &'static str {
        match self {
            Outcome::Hang => "faults.outcome.hang",
            Outcome::OsDetected => "faults.outcome.os-detected",
            Outcome::IlrDetected => "faults.outcome.ilr-detected",
            Outcome::HaftCorrected => "faults.outcome.haft-corrected",
            Outcome::VoteCorrected => "faults.outcome.vote-corrected",
            Outcome::ChecksumCorrected => "faults.outcome.checksum-corrected",
            Outcome::Masked => "faults.outcome.masked",
            Outcome::Sdc => "faults.outcome.sdc",
        }
    }
}

/// Availability groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Group {
    Crashed,
    Correct,
    Corrupted,
}

impl Group {
    /// Stable dotted name in the unified metrics registry
    /// (`faults.group.<label>`); pinned by the haft-trace schema test.
    pub fn metric_name(self) -> &'static str {
        match self {
            Group::Crashed => "faults.group.crashed",
            Group::Correct => "faults.group.correct",
            Group::Corrupted => "faults.group.corrupted",
        }
    }
}

/// Classifies one injected run against the golden reference.
pub fn classify(run: &RunResult, golden: &[u64]) -> Outcome {
    match run.outcome {
        RunOutcome::Hang => Outcome::Hang,
        RunOutcome::Trapped(_) => Outcome::OsDetected,
        RunOutcome::Detected => Outcome::IlrDetected,
        RunOutcome::Completed => {
            if run.output == golden {
                if run.recoveries > 0 {
                    Outcome::HaftCorrected
                } else if run.corrected_by_vote > 0 {
                    Outcome::VoteCorrected
                } else if run.corrected_by_checksum > 0 {
                    Outcome::ChecksumCorrected
                } else {
                    Outcome::Masked
                }
            } else {
                Outcome::Sdc
            }
        }
    }
}

/// Outcome of one *request* inside a service batch run — the per-request
/// refinement of [`Outcome`], which only knows whole runs. A service
/// harness cares about a different axis than Table 1: did each client get
/// a correct reply, and at what cost?
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RequestOutcome {
    /// Correct reply from an undisturbed run.
    Served,
    /// Correct reply from a run that fired a recovery mechanism
    /// (transactional rollback or majority-vote masking) — served, but
    /// the batch paid the recovery latency.
    ServedCorrected,
    /// The run completed but this request's reply is wrong: silent data
    /// corruption delivered to a client.
    Sdc,
    /// The run did not complete (hang, trap, fail-stop): the batch was
    /// dropped and this request never got a reply.
    Failed,
}

impl RequestOutcome {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            RequestOutcome::Served => "served",
            RequestOutcome::ServedCorrected => "served-corrected",
            RequestOutcome::Sdc => "sdc",
            RequestOutcome::Failed => "failed",
        }
    }

    /// True when the client received a correct reply (the availability
    /// numerator).
    pub fn is_served(self) -> bool {
        matches!(self, RequestOutcome::Served | RequestOutcome::ServedCorrected)
    }
}

/// Aggregated per-request outcome counts; the invariant every consumer
/// leans on is `total()` equals the number of requests offered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestCounts {
    pub served: u64,
    pub served_corrected: u64,
    pub sdc: u64,
    pub failed: u64,
}

impl RequestCounts {
    /// Records one request outcome.
    pub fn record(&mut self, o: RequestOutcome) {
        match o {
            RequestOutcome::Served => self.served += 1,
            RequestOutcome::ServedCorrected => self.served_corrected += 1,
            RequestOutcome::Sdc => self.sdc += 1,
            RequestOutcome::Failed => self.failed += 1,
        }
    }

    /// Merges another count set.
    pub fn merge(&mut self, other: &RequestCounts) {
        self.served += other.served;
        self.served_corrected += other.served_corrected;
        self.sdc += other.sdc;
        self.failed += other.failed;
    }

    /// Total requests classified.
    pub fn total(&self) -> u64 {
        self.served + self.served_corrected + self.sdc + self.failed
    }

    /// Correct replies delivered, as a percentage of requests offered —
    /// the datacenter-availability view of fault tolerance.
    pub fn availability_pct(&self) -> f64 {
        if self.total() == 0 {
            return 100.0;
        }
        100.0 * (self.served + self.served_corrected) as f64 / self.total() as f64
    }

    /// Silent corruptions per million requests (the service-level SDC
    /// rate the paper's per-run histogram cannot express).
    pub fn sdc_per_million(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        1e6 * self.sdc as f64 / self.total() as f64
    }
}

/// Classifies every request of one service batch run against its
/// per-request golden replies (`golden[i]` is the correct reply to
/// request `i`; the run's `output[i]` is the reply it actually produced).
///
/// A run that did not complete marks the whole batch [`RequestOutcome::Failed`]
/// — no replies were externalized. A completed run classifies
/// reply-by-reply; correct replies downgrade to
/// [`RequestOutcome::ServedCorrected`] when the run fired a recovery
/// mechanism, because the whole batch shared the recovery stall. A
/// completed run that emitted the wrong number of replies is corruption
/// on every slot that disagrees (missing replies classify as SDC: the
/// client got a malformed response, not none).
pub fn classify_requests(run: &RunResult, golden: &[u64]) -> Vec<RequestOutcome> {
    if run.outcome != RunOutcome::Completed {
        return vec![RequestOutcome::Failed; golden.len()];
    }
    let corrected =
        run.recoveries > 0 || run.corrected_by_vote > 0 || run.corrected_by_checksum > 0;
    golden
        .iter()
        .enumerate()
        .map(|(i, want)| match run.output.get(i) {
            Some(got) if got == want => {
                if corrected {
                    RequestOutcome::ServedCorrected
                } else {
                    RequestOutcome::Served
                }
            }
            _ => RequestOutcome::Sdc,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use haft_htm::HtmStats;

    fn result(outcome: RunOutcome, output: Vec<u64>, recoveries: u64) -> RunResult {
        RunResult {
            outcome,
            output,
            wall_cycles: 1,
            phases: haft_vm::PhaseCycles::default(),
            cpu_cycles: 1,
            instructions: 1,
            register_writes: 1,
            htm: HtmStats::default(),
            detections: recoveries,
            recoveries,
            corrected_by_vote: 0,
            corrected_by_checksum: 0,
            mispredicts: 0,
            forensics: None,
        }
    }

    #[test]
    fn table1_mapping() {
        let golden = vec![1, 2, 3];
        assert_eq!(classify(&result(RunOutcome::Hang, vec![], 0), &golden), Outcome::Hang);
        assert_eq!(
            classify(&result(RunOutcome::Trapped(haft_vm::Trap::DivByZero), vec![], 0), &golden),
            Outcome::OsDetected
        );
        assert_eq!(
            classify(&result(RunOutcome::Detected, vec![], 0), &golden),
            Outcome::IlrDetected
        );
        assert_eq!(
            classify(&result(RunOutcome::Completed, vec![1, 2, 3], 0), &golden),
            Outcome::Masked
        );
        assert_eq!(
            classify(&result(RunOutcome::Completed, vec![1, 2, 3], 2), &golden),
            Outcome::HaftCorrected
        );
        assert_eq!(
            classify(&result(RunOutcome::Completed, vec![9, 2, 3], 0), &golden),
            Outcome::Sdc
        );
    }

    #[test]
    fn vote_correction_classifies_as_corrected_by_masking() {
        let golden = vec![1, 2, 3];
        let mut r = result(RunOutcome::Completed, vec![1, 2, 3], 0);
        r.corrected_by_vote = 4;
        assert_eq!(classify(&r, &golden), Outcome::VoteCorrected);
        // Rollback recovery takes precedence (a hybrid run that did both
        // still reports the rollback, which is the costlier event).
        r.recoveries = 1;
        assert_eq!(classify(&r, &golden), Outcome::HaftCorrected);
    }

    #[test]
    fn checksum_correction_classifies_below_rollback_and_vote() {
        let golden = vec![1, 2, 3];
        let mut r = result(RunOutcome::Completed, vec![1, 2, 3], 0);
        r.corrected_by_checksum = 1;
        assert_eq!(classify(&r, &golden), Outcome::ChecksumCorrected);
        // An ABFT module's fallback functions can also roll back; the
        // costlier event wins the classification.
        r.recoveries = 1;
        assert_eq!(classify(&r, &golden), Outcome::HaftCorrected);
        let mut wrong = result(RunOutcome::Completed, vec![9, 2, 3], 0);
        wrong.corrected_by_checksum = 1;
        assert_eq!(classify(&wrong, &golden), Outcome::Sdc, "a wrong correction is corruption");
    }

    #[test]
    fn recovery_with_wrong_output_is_still_sdc() {
        let golden = vec![1];
        let r = result(RunOutcome::Completed, vec![2], 3);
        assert_eq!(classify(&r, &golden), Outcome::Sdc);
        let mut v = result(RunOutcome::Completed, vec![2], 0);
        v.corrected_by_vote = 2;
        assert_eq!(classify(&v, &golden), Outcome::Sdc, "a wrong vote is still corruption");
    }

    #[test]
    fn per_request_classification_is_reply_by_reply() {
        let golden = vec![10, 20, 30, 40];
        // Clean completed run: every request served.
        let clean = result(RunOutcome::Completed, vec![10, 20, 30, 40], 0);
        assert_eq!(classify_requests(&clean, &golden), vec![RequestOutcome::Served; 4]);
        // One wrong reply: only that request is SDC.
        let one_bad = result(RunOutcome::Completed, vec![10, 99, 30, 40], 0);
        assert_eq!(
            classify_requests(&one_bad, &golden),
            vec![
                RequestOutcome::Served,
                RequestOutcome::Sdc,
                RequestOutcome::Served,
                RequestOutcome::Served
            ]
        );
        // Recovery fired: correct replies are served-corrected.
        let recovered = result(RunOutcome::Completed, vec![10, 20, 30, 40], 2);
        assert_eq!(
            classify_requests(&recovered, &golden),
            vec![RequestOutcome::ServedCorrected; 4]
        );
        let mut voted = result(RunOutcome::Completed, vec![10, 20, 30, 40], 0);
        voted.corrected_by_vote = 1;
        assert_eq!(classify_requests(&voted, &golden), vec![RequestOutcome::ServedCorrected; 4]);
        let mut chk = result(RunOutcome::Completed, vec![10, 20, 30, 40], 0);
        chk.corrected_by_checksum = 1;
        assert_eq!(classify_requests(&chk, &golden), vec![RequestOutcome::ServedCorrected; 4]);
        // A failed run drops the whole batch.
        let dead = result(RunOutcome::Detected, vec![], 0);
        assert_eq!(classify_requests(&dead, &golden), vec![RequestOutcome::Failed; 4]);
        // Truncated output: the missing tail is corruption.
        let short = result(RunOutcome::Completed, vec![10, 20], 0);
        assert_eq!(
            classify_requests(&short, &golden),
            vec![
                RequestOutcome::Served,
                RequestOutcome::Served,
                RequestOutcome::Sdc,
                RequestOutcome::Sdc
            ]
        );
    }

    #[test]
    fn request_counts_sum_and_rates() {
        let golden = vec![1, 2, 3, 4, 5];
        let run = result(RunOutcome::Completed, vec![1, 2, 9, 4, 5], 0);
        let mut counts = RequestCounts::default();
        for o in classify_requests(&run, &golden) {
            counts.record(o);
        }
        assert_eq!(counts.total(), 5, "outcome counts must sum to the request total");
        assert_eq!(counts.sdc, 1);
        assert!((counts.availability_pct() - 80.0).abs() < 1e-9);
        assert!((counts.sdc_per_million() - 200_000.0).abs() < 1e-6);
        // Merging preserves the invariant.
        let mut more = RequestCounts::default();
        for o in classify_requests(&result(RunOutcome::Hang, vec![], 0), &golden) {
            more.record(o);
        }
        counts.merge(&more);
        assert_eq!(counts.total(), 10);
        assert_eq!(counts.failed, 5);
        // Empty counts: vacuously fully available.
        assert_eq!(RequestCounts::default().availability_pct(), 100.0);
        assert_eq!(RequestCounts::default().sdc_per_million(), 0.0);
    }

    #[test]
    fn groups() {
        assert_eq!(Outcome::Hang.group(), Group::Crashed);
        assert_eq!(Outcome::OsDetected.group(), Group::Crashed);
        assert_eq!(Outcome::IlrDetected.group(), Group::Crashed);
        assert_eq!(Outcome::HaftCorrected.group(), Group::Correct);
        assert_eq!(Outcome::VoteCorrected.group(), Group::Correct);
        assert_eq!(Outcome::ChecksumCorrected.group(), Group::Correct);
        assert_eq!(Outcome::Masked.group(), Group::Correct);
        assert_eq!(Outcome::Sdc.group(), Group::Corrupted);
    }
}
