//! Campaign-level fault forensics: latency histograms and the
//! vulnerability map.
//!
//! Each injection run with forensics enabled yields one per-run
//! [`haft_vm::Forensics`] record. This module folds those records into
//! campaign aggregates:
//!
//! * **Detection-latency histograms** — dynamic instructions (and
//!   scoreboard cycles) between the bit flip and the moment the fault was
//!   masked, detected, or escaped, bucketed by power of two and split by
//!   detector (`ilr`, `vote`, `htm-abort`, ...). This is the paper's
//!   "window of vulnerability" view: ILR detects within a handful of
//!   instructions, while escapes drift for thousands.
//! * **Per-site vulnerability map** — AVF-style statistics keyed by
//!   `(function, op-class)`: of the flips landing at that site, what
//!   fraction ended corrupted / crashed / correct.
//!
//! Aggregates export through the unified metrics registry under stable
//! `faults.*` dotted names. Per-site rows are deliberately *not* metrics:
//! function names are program-specific and would break the pinned schema,
//! so they surface through [`ForensicsSummary::top_sites`] and the report
//! section instead.

use std::collections::BTreeMap;

use haft_trace::{MetricsSnapshot, TraceBuf, TraceEvent};
use haft_vm::{FaultDetector, Forensics};

use crate::classify::{Group, Outcome};

/// Log2 bucket count: bucket 0 holds value 0, bucket `i` (1..=64) holds
/// values in `[2^(i-1), 2^i)`.
const BUCKETS: usize = 65;

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// A power-of-two histogram with exact count / sum / max side channels.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyHistogram {
    /// `buckets[0]` counts zeros; `buckets[i]` counts `[2^(i-1), 2^i)`.
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: vec![0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl LatencyHistogram {
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate percentile (0.0..=100.0): the inclusive upper bound of
    /// the first bucket where the cumulative count reaches `p` percent.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if i == 0 { 0 } else { (1u64 << i).wrapping_sub(1).max(1) };
            }
        }
        self.max
    }

    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Human-readable range label for bucket `i` (`"0"`, `"1"`, `"2-3"`,
    /// `"4-7"`, ...).
    pub fn bucket_label(i: usize) -> String {
        match i {
            0 => "0".to_string(),
            1 => "1".to_string(),
            i => format!("{}-{}", 1u64 << (i - 1), (1u64 << i) - 1),
        }
    }
}

/// AVF-style statistics for one `(function, op-class)` site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SiteStats {
    pub injections: u64,
    /// Outcome group Corrupted (SDC reached the output).
    pub corrupted: u64,
    /// Outcome group Crashed (hang / OS or ILR detection without recovery).
    pub crashed: u64,
    /// Outcome group Correct (masked or corrected).
    pub correct: u64,
}

impl SiteStats {
    /// Architectural-vulnerability-style score: the percentage of flips at
    /// this site that ended user-visible (corrupted or crashed).
    pub fn avf(&self) -> f64 {
        if self.injections == 0 {
            0.0
        } else {
            100.0 * (self.corrupted + self.crashed) as f64 / self.injections as f64
        }
    }
}

/// Campaign-level forensics aggregate. Built per worker and merged
/// order-independently (all fields are counters).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ForensicsSummary {
    /// Injection runs whose fault actually fired and produced a record.
    pub fired: u64,
    /// Detection latency in dynamic instructions, split by detector.
    pub latency_insts: BTreeMap<FaultDetector, LatencyHistogram>,
    /// Detection latency in scoreboard cycles, all detectors pooled.
    pub latency_cycles: LatencyHistogram,
    /// Peak propagation width (tainted registers + memory bytes).
    pub propagation: LatencyHistogram,
    /// Runs whose taint reached transactionally committed memory.
    pub escaped_to_memory: u64,
    /// Vulnerability map keyed by `(function, op-class)`.
    pub sites: BTreeMap<(String, &'static str), SiteStats>,
}

impl ForensicsSummary {
    /// Folds one per-run record in, paired with its Table-1 outcome.
    pub fn record(&mut self, outcome: Outcome, fx: &Forensics) {
        self.fired += 1;
        self.latency_insts.entry(fx.detector).or_default().record(fx.detect_latency_insts);
        self.latency_cycles.record(fx.detect_latency_cycles);
        self.propagation.record(fx.propagation_width);
        if fx.escaped_to_memory {
            self.escaped_to_memory += 1;
        }
        let key = (fx.site.func.clone(), fx.site.op_class);
        let s = self.sites.entry(key).or_default();
        s.injections += 1;
        match outcome.group() {
            Group::Corrupted => s.corrupted += 1,
            Group::Crashed => s.crashed += 1,
            Group::Correct => s.correct += 1,
        }
    }

    pub fn merge(&mut self, other: &ForensicsSummary) {
        self.fired += other.fired;
        for (d, h) in &other.latency_insts {
            self.latency_insts.entry(*d).or_default().merge(h);
        }
        self.latency_cycles.merge(&other.latency_cycles);
        self.propagation.merge(&other.propagation);
        self.escaped_to_memory += other.escaped_to_memory;
        for (k, s) in &other.sites {
            let e = self.sites.entry(k.clone()).or_default();
            e.injections += s.injections;
            e.corrupted += s.corrupted;
            e.crashed += s.crashed;
            e.correct += s.correct;
        }
    }

    /// The `n` most vulnerable sites, ordered by AVF score descending
    /// (ties broken by injection count, then key, for determinism).
    pub fn top_sites(&self, n: usize) -> Vec<(&(String, &'static str), &SiteStats)> {
        let mut v: Vec<_> = self.sites.iter().collect();
        v.sort_by(|a, b| {
            b.1.avf()
                .partial_cmp(&a.1.avf())
                .unwrap()
                .then(b.1.injections.cmp(&a.1.injections))
                .then(a.0.cmp(b.0))
        });
        v.truncate(n);
        v
    }

    /// Histogram for one detector (empty default if it never fired).
    pub fn detector_histogram(&self, d: FaultDetector) -> LatencyHistogram {
        self.latency_insts.get(&d).cloned().unwrap_or_default()
    }

    /// Exports the aggregate under stable `faults.*` dotted names. Every
    /// detector row is emitted even at zero so the schema never depends on
    /// which detectors happened to fire.
    pub fn metrics_into(&self, m: &mut MetricsSnapshot) {
        m.set("faults.forensics.fired", self.fired as f64);
        m.set("faults.forensics.escaped_to_memory", self.escaped_to_memory as f64);
        for d in FaultDetector::ALL {
            let h = self.latency_insts.get(&d).cloned().unwrap_or_default();
            let base = format!("faults.detect_latency.{}", d.label());
            m.set(format!("{base}.count"), h.count as f64);
            m.set(format!("{base}.mean_insts"), h.mean());
            m.set(format!("{base}.max_insts"), h.max as f64);
        }
        m.set("faults.detect_latency.mean_cycles", self.latency_cycles.mean());
        m.set("faults.detect_latency.max_cycles", self.latency_cycles.max as f64);
        m.set("faults.propagation.mean", self.propagation.mean());
        m.set("faults.propagation.max", self.propagation.max as f64);
    }

    /// Emits the aggregate as instant events (one per detector) so the
    /// campaign summary shows up alongside the per-run `fault.flip` /
    /// `fault.window` events the VM traced.
    pub fn trace_into(&self, buf: &mut TraceBuf) {
        for d in FaultDetector::ALL {
            let h = self.latency_insts.get(&d).cloned().unwrap_or_default();
            if h.count == 0 {
                continue;
            }
            buf.push(
                TraceEvent::instant("faults", "detect-latency", 0)
                    .arg("detector", d.label())
                    .arg("count", h.count)
                    .arg("mean_insts", h.mean())
                    .arg("max_insts", h.max),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haft_vm::FaultSite;

    fn rec(det: FaultDetector, insts: u64, func: &str, class: &'static str) -> Forensics {
        Forensics {
            site: FaultSite {
                func: func.to_string(),
                op_class: class,
                occurrence: 7,
                applied_mask: 1,
            },
            detector: det,
            detect_latency_insts: insts,
            detect_latency_cycles: insts * 3,
            propagation_width: 2,
            escaped_to_memory: det == FaultDetector::Escaped,
        }
    }

    #[test]
    fn histogram_buckets_and_percentile() {
        let mut h = LatencyHistogram::default();
        for v in [0, 1, 2, 3, 4, 9, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.max, 1000);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 1); // 4
        assert_eq!(h.buckets[4], 1); // 9
        assert_eq!(h.buckets[10], 1); // 1000
        assert_eq!(h.percentile(50.0), 3); // 4th of 7 lands in bucket 2
        assert_eq!(LatencyHistogram::bucket_label(4), "8-15");
        assert_eq!(h.percentile(100.0), 1023);
    }

    #[test]
    fn summary_records_and_merges_order_independently() {
        let mut a = ForensicsSummary::default();
        let mut b = ForensicsSummary::default();
        a.record(Outcome::IlrDetected, &rec(FaultDetector::Ilr, 4, "f", "int-alu"));
        a.record(Outcome::Sdc, &rec(FaultDetector::Escaped, 900, "g", "load"));
        b.record(Outcome::Masked, &rec(FaultDetector::Masked, 12, "f", "int-alu"));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.fired, 3);
        assert_eq!(ab.escaped_to_memory, 1);
        assert_eq!(ab.sites[&("f".to_string(), "int-alu")].injections, 2);
        assert_eq!(ab.sites[&("g".to_string(), "load")].corrupted, 1);
    }

    #[test]
    fn top_sites_ranks_by_avf() {
        let mut s = ForensicsSummary::default();
        s.record(Outcome::Sdc, &rec(FaultDetector::Escaped, 10, "bad", "store"));
        s.record(Outcome::Masked, &rec(FaultDetector::Masked, 1, "ok", "int-alu"));
        s.record(Outcome::Masked, &rec(FaultDetector::Masked, 1, "ok", "int-alu"));
        let top = s.top_sites(2);
        assert_eq!(top[0].0 .0, "bad");
        assert!((top[0].1.avf() - 100.0).abs() < 1e-9);
        assert_eq!(top[1].1.avf(), 0.0);
    }

    #[test]
    fn metrics_schema_is_complete_even_when_empty() {
        let mut m = MetricsSnapshot::new();
        ForensicsSummary::default().metrics_into(&mut m);
        for d in FaultDetector::ALL {
            assert_eq!(m.get(&format!("faults.detect_latency.{}.count", d.label())), Some(0.0));
        }
        assert_eq!(m.get("faults.forensics.fired"), Some(0.0));
        assert_eq!(m.get("faults.propagation.max"), Some(0.0));
    }

    #[test]
    fn trace_events_cover_only_fired_detectors() {
        let mut s = ForensicsSummary::default();
        s.record(Outcome::IlrDetected, &rec(FaultDetector::Ilr, 4, "f", "int-alu"));
        let mut buf = TraceBuf::new();
        s.trace_into(&mut buf);
        assert_eq!(buf.len(), 1);
    }
}
