//! Fault-injection campaigns.
//!
//! Reproduces the paper's two-step methodology (§4.2): a reference run
//! establishes the dynamic trace (the population of register-writing
//! instructions) and the golden output; each injection run then flips one
//! randomly chosen occurrence's output register with a random mask and the
//! outcome is classified per the paper's Table 1:
//!
//! | Result         | Meaning                                   |
//! |----------------|-------------------------------------------|
//! | Hang           | program became unresponsive               |
//! | OS-detected    | the OS terminated the program             |
//! | ILR-detected   | ILR detected, TX did not recover          |
//! | HAFT-corrected | ILR detected, TX recovered                |
//! | Vote-corrected | a majority vote masked the fault (TMR)    |
//! | Checksum-corrected | a checksum verify-and-correct reconstructed the value (ABFT) |
//! | Masked         | fault did not affect output               |
//! | SDC            | silent data corruption in the output      |
//!
//! Campaigns are deterministic (seeded) and parallelized across OS
//! threads with `std::thread::scope` — the in-process stand-in for the
//! paper's 25-machine injection cluster.

pub mod campaign;
pub mod classify;
pub mod forensics;
pub mod report;

pub use campaign::{run_campaign, run_campaign_from, CampaignConfig};
pub use classify::{classify, classify_requests, Group, Outcome, RequestCounts, RequestOutcome};
pub use forensics::{ForensicsSummary, LatencyHistogram, SiteStats};
pub use report::CampaignReport;
