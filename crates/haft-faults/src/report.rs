//! Aggregation of campaign results.

use std::collections::BTreeMap;

use haft_trace::MetricsSnapshot;
use haft_vm::Forensics;

use crate::classify::{Group, Outcome};
use crate::forensics::ForensicsSummary;

/// Aggregated results of one injection campaign.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    pub counts: BTreeMap<Outcome, u64>,
    pub runs: u64,
    /// Forensics aggregate; `Some` iff the campaign ran with
    /// [`crate::CampaignConfig::forensics`] enabled.
    pub forensics: Option<ForensicsSummary>,
}

impl CampaignReport {
    /// Records one outcome.
    pub fn record(&mut self, o: Outcome) {
        *self.counts.entry(o).or_insert(0) += 1;
        self.runs += 1;
    }

    /// Folds one per-run forensics record in (creates the aggregate on
    /// first use, so callers never pre-initialize).
    pub fn record_forensics(&mut self, o: Outcome, fx: &Forensics) {
        self.forensics.get_or_insert_with(ForensicsSummary::default).record(o, fx);
    }

    /// Percentage of runs with this outcome.
    pub fn pct(&self, o: Outcome) -> f64 {
        if self.runs == 0 {
            return 0.0;
        }
        100.0 * self.counts.get(&o).copied().unwrap_or(0) as f64 / self.runs as f64
    }

    /// Percentage of runs in a Table-1 group.
    pub fn group_pct(&self, g: Group) -> f64 {
        Outcome::ALL.iter().filter(|o| o.group() == g).map(|o| self.pct(*o)).sum()
    }

    /// Detection rate: faults that did not result in SDC, as a percentage
    /// (the paper's "98.9 % of data corruptions detected" headline is
    /// `100 - pct(Sdc)` against the native SDC population).
    pub fn non_sdc_pct(&self) -> f64 {
        100.0 - self.pct(Outcome::Sdc)
    }

    /// Merges another report (for parallel workers).
    pub fn merge(&mut self, other: &CampaignReport) {
        for (o, n) in &other.counts {
            *self.counts.entry(*o).or_insert(0) += n;
        }
        self.runs += other.runs;
        if let Some(fx) = &other.forensics {
            self.forensics.get_or_insert_with(ForensicsSummary::default).merge(fx);
        }
    }

    /// The campaign as unified metrics: run/outcome counters under
    /// `faults.outcome.*`, Table-1 group percentages under
    /// `faults.group.*`, and — when forensics ran — the
    /// `faults.detect_latency.*` / `faults.propagation.*` aggregate. All
    /// names are static; the schema is pinned by the facade trace tests.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        m.set("faults.runs", self.runs as f64);
        for o in Outcome::ALL {
            m.set(o.metric_name(), self.counts.get(&o).copied().unwrap_or(0) as f64);
        }
        for g in [Group::Correct, Group::Crashed, Group::Corrupted] {
            m.set(g.metric_name(), self.group_pct(g));
        }
        if let Some(fx) = &self.forensics {
            fx.metrics_into(&mut m);
        }
        m
    }

    /// One-line summary used by the bench harness.
    pub fn summary(&self) -> String {
        let cols: Vec<String> =
            Outcome::ALL.iter().map(|o| format!("{} {:5.1}%", o.label(), self.pct(*o))).collect();
        format!("[{} runs] {}", self.runs, cols.join("  "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages_sum_to_100() {
        let mut r = CampaignReport::default();
        for _ in 0..3 {
            r.record(Outcome::Masked);
        }
        r.record(Outcome::Sdc);
        let total: f64 = Outcome::ALL.iter().map(|o| r.pct(*o)).sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert!((r.pct(Outcome::Masked) - 75.0).abs() < 1e-9);
        assert!((r.non_sdc_pct() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn group_percentages() {
        let mut r = CampaignReport::default();
        r.record(Outcome::Hang);
        r.record(Outcome::IlrDetected);
        r.record(Outcome::HaftCorrected);
        r.record(Outcome::Sdc);
        assert!((r.group_pct(Group::Crashed) - 50.0).abs() < 1e-9);
        assert!((r.group_pct(Group::Correct) - 25.0).abs() < 1e-9);
        assert!((r.group_pct(Group::Corrupted) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CampaignReport::default();
        a.record(Outcome::Masked);
        let mut b = CampaignReport::default();
        b.record(Outcome::Sdc);
        b.record(Outcome::Sdc);
        a.merge(&b);
        assert_eq!(a.runs, 3);
        assert_eq!(a.counts[&Outcome::Sdc], 2);
    }

    #[test]
    fn metrics_export_uses_stable_names() {
        let mut r = CampaignReport::default();
        r.record(Outcome::Sdc);
        r.record(Outcome::Masked);
        let m = r.metrics();
        assert_eq!(m.get("faults.runs"), Some(2.0));
        assert_eq!(m.get("faults.outcome.sdc"), Some(1.0));
        assert_eq!(m.get("faults.outcome.ilr-detected"), Some(0.0));
        assert_eq!(m.get("faults.group.corrupted"), Some(50.0));
        // The forensics block only appears when forensics actually ran.
        assert_eq!(m.get("faults.forensics.fired"), None);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = CampaignReport::default();
        assert_eq!(r.pct(Outcome::Sdc), 0.0);
        assert!(r.summary().contains("[0 runs]"));
    }
}
