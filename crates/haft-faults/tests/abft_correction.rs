//! Fault-correction battery for the ABFT backend.
//!
//! Three properties, swept with proptest-planned single-event upsets:
//!
//! 1. A flip landing in checksummed state is corrected in place — every
//!    run the campaign would classify `ChecksumCorrected` produces
//!    bit-clean output (zero SDC among corrected runs).
//! 2. A flip in a function that fell back to full HAFT produces only the
//!    existing HAFT outcomes — the checksum counter never fires where no
//!    checksum was installed.
//! 3. Campaign outcome counts always sum to the planned injection total.

use proptest::prelude::*;

use haft_faults::{run_campaign, CampaignConfig, Outcome};
use haft_ir::builder::FunctionBuilder;
use haft_ir::inst::Operand;
use haft_ir::module::{GlobalId, Module};
use haft_ir::types::Ty;
use haft_passes::{HardenConfig, PassManager};
use haft_vm::{FaultPlan, RunOutcome, RunResult, RunSpec, Vm, VmConfig};

/// An update-loop kernel the ABFT pass covers: `acc += i * 7` through a
/// memory cell, the carried state checksummed in three lanes.
fn covered_module() -> Module {
    let mut m = Module::new("abft-covered");
    m.add_global("acc", 8);
    let g = Operand::GlobalAddr(GlobalId(0));
    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    fb.counted_loop(fb.iconst(Ty::I64, 0), fb.iconst(Ty::I64, 100), |b, i| {
        let cur = b.load(Ty::I64, g);
        let x = b.mul(Ty::I64, i, b.iconst(Ty::I64, 7));
        let nxt = b.add(Ty::I64, cur, x);
        b.store(Ty::I64, nxt, g);
    });
    let v = fb.load(Ty::I64, g);
    fb.emit_out(Ty::I64, v);
    fb.ret(None);
    m.push_func(fb.finish());
    m
}

/// A counter kernel with no data chain (constant stride): the whole
/// function falls back to full HAFT under the ABFT backend.
fn fallback_module() -> Module {
    let mut m = Module::new("abft-fallback");
    m.add_global("count", 8);
    let g = Operand::GlobalAddr(GlobalId(0));
    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    fb.counted_loop(fb.iconst(Ty::I64, 0), fb.iconst(Ty::I64, 100), |b, _i| {
        let cur = b.load(Ty::I64, g);
        let nxt = b.add(Ty::I64, cur, b.iconst(Ty::I64, 1));
        b.store(Ty::I64, nxt, g);
    });
    let v = fb.load(Ty::I64, g);
    fb.emit_out(Ty::I64, v);
    fb.ret(None);
    m.push_func(fb.finish());
    m
}

/// Hardens each fixture once for the whole battery (a proptest case runs
/// dozens of times; the module is immutable across them).
fn harden_abft(m: &Module) -> &'static Module {
    use std::sync::OnceLock;
    static COVERED: OnceLock<Module> = OnceLock::new();
    static FALLBACK: OnceLock<Module> = OnceLock::new();
    let cell = if m.name == "abft-covered" { &COVERED } else { &FALLBACK };
    cell.get_or_init(|| PassManager::from_config(&HardenConfig::abft()).run_on(m).0)
}

fn spec() -> RunSpec<'static> {
    RunSpec { fini: Some("fini"), ..Default::default() }
}

fn vm() -> VmConfig {
    VmConfig { n_threads: 1, max_instructions: 10_000_000, ..Default::default() }
}

fn inject(m: &Module, occurrence: u64, xor_mask: u64) -> RunResult {
    let cfg = VmConfig { fault: Some(FaultPlan { occurrence, xor_mask }), ..vm() };
    Vm::run(m, cfg, spec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn checksum_corrected_runs_are_bit_clean(occ in any::<u64>(), mask in 1u64..u64::MAX) {
        let hardened = harden_abft(&covered_module());
        let clean = Vm::run(hardened, vm(), spec());
        prop_assert_eq!(clean.outcome, RunOutcome::Completed);
        let r = inject(hardened, occ % clean.register_writes, mask);
        // The covered function carries no transactions, so rollback
        // recovery cannot shadow a checksum event.
        prop_assert_eq!(r.recoveries, 0);
        prop_assert_eq!(r.corrected_by_vote, 0);
        if r.corrected_by_checksum > 0 && r.outcome == RunOutcome::Completed {
            prop_assert_eq!(&r.output, &clean.output);
            prop_assert_eq!(
                haft_faults::classify(&r, &clean.output),
                Outcome::ChecksumCorrected
            );
        }
    }

    #[test]
    fn fallback_functions_keep_the_haft_outcome_set(occ in any::<u64>(), mask in 1u64..u64::MAX) {
        let hardened = harden_abft(&fallback_module());
        let clean = Vm::run(hardened, vm(), spec());
        prop_assert_eq!(clean.outcome, RunOutcome::Completed);
        let r = inject(hardened, occ % clean.register_writes, mask);
        // No checksum was installed, so the counter must never move and
        // classification stays inside HAFT's Table 1 rows.
        prop_assert_eq!(r.corrected_by_checksum, 0);
        let o = haft_faults::classify(&r, &clean.output);
        prop_assert_ne!(o, Outcome::ChecksumCorrected);
        prop_assert_ne!(o, Outcome::VoteCorrected);
    }
}

#[test]
fn campaign_counts_sum_to_plan_total_and_include_corrections() {
    let hardened = harden_abft(&covered_module());
    let cfg =
        CampaignConfig { injections: 150, seed: 7, parallelism: 2, vm: vm(), forensics: false };
    let r = run_campaign(hardened, spec(), &cfg);
    assert_eq!(r.runs, 150);
    assert_eq!(r.counts.values().sum::<u64>(), 150, "counts must sum to the plan total");
    assert!(
        r.pct(Outcome::ChecksumCorrected) > 0.0,
        "a campaign over checksummed state corrects something: {}",
        r.summary()
    );
    assert_eq!(r.pct(Outcome::VoteCorrected), 0.0, "no votes in the ABFT backend");
    assert_eq!(r.pct(Outcome::HaftCorrected), 0.0, "covered code has no rollback machinery");
}

#[test]
fn fallback_campaign_recovers_like_haft() {
    let hardened = harden_abft(&fallback_module());
    let cfg =
        CampaignConfig { injections: 150, seed: 7, parallelism: 2, vm: vm(), forensics: false };
    let r = run_campaign(hardened, spec(), &cfg);
    assert_eq!(r.counts.values().sum::<u64>(), 150);
    assert_eq!(r.pct(Outcome::ChecksumCorrected), 0.0, "{}", r.summary());
    assert!(
        r.pct(Outcome::HaftCorrected) > 10.0,
        "fallback code rolls back like HAFT: {}",
        r.summary()
    );
}
