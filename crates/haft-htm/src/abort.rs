//! Transaction abort causes, classified as the paper's Table 3 does.

/// Why a transaction aborted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbortCause {
    /// Another thread's access conflicted with our read/write set.
    Conflict,
    /// A write-set line was evicted from L1 (or the read-set bound was
    /// exceeded).
    Capacity,
    /// Explicit `XABORT` issued by an ILR detection check.
    IlrDetected,
    /// Explicit `XABORT` for any other reason (tests, lock-elision
    /// fallback).
    Explicit,
    /// An instruction that TSX cannot execute transactionally (syscall,
    /// I/O, x87 — the paper's "unfriendly instructions").
    Unfriendly,
    /// The transaction outlived the timer-interrupt budget.
    Timer,
    /// Residual spontaneous abort (the paper's "other" causes).
    Spontaneous,
}

impl AbortCause {
    /// Every cause, in declaration order — the stable metric schema:
    /// `htm.aborts.{metric_name}` exists for each, zero or not.
    pub const ALL: [AbortCause; 7] = [
        AbortCause::Conflict,
        AbortCause::Capacity,
        AbortCause::IlrDetected,
        AbortCause::Explicit,
        AbortCause::Unfriendly,
        AbortCause::Timer,
        AbortCause::Spontaneous,
    ];

    /// Stable lowercase name used as the `htm.aborts.{reason}` metric
    /// suffix (and the `Display` rendering).
    pub fn metric_name(self) -> &'static str {
        match self {
            AbortCause::Conflict => "conflict",
            AbortCause::Capacity => "capacity",
            AbortCause::IlrDetected => "ilr-detected",
            AbortCause::Explicit => "explicit",
            AbortCause::Unfriendly => "unfriendly",
            AbortCause::Timer => "timer",
            AbortCause::Spontaneous => "spontaneous",
        }
    }

    /// Maps the cause onto the paper's three reporting buckets
    /// (Table 3: Capacity / Conflict / Other).
    ///
    /// Explicit ILR aborts are *recovery*, not failures; they are excluded
    /// from abort-cause breakdowns (`None`).
    pub fn table3_bucket(self) -> Option<Table3Bucket> {
        match self {
            AbortCause::Capacity => Some(Table3Bucket::Capacity),
            AbortCause::Conflict => Some(Table3Bucket::Conflict),
            AbortCause::Unfriendly
            | AbortCause::Timer
            | AbortCause::Spontaneous
            | AbortCause::Explicit => Some(Table3Bucket::Other),
            AbortCause::IlrDetected => None,
        }
    }
}

/// The three abort-cause buckets of the paper's Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Table3Bucket {
    Capacity,
    Conflict,
    Other,
}

impl std::fmt::Display for AbortCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.metric_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_match_table3() {
        assert_eq!(AbortCause::Capacity.table3_bucket(), Some(Table3Bucket::Capacity));
        assert_eq!(AbortCause::Conflict.table3_bucket(), Some(Table3Bucket::Conflict));
        assert_eq!(AbortCause::Timer.table3_bucket(), Some(Table3Bucket::Other));
        assert_eq!(AbortCause::Spontaneous.table3_bucket(), Some(Table3Bucket::Other));
        assert_eq!(AbortCause::Unfriendly.table3_bucket(), Some(Table3Bucket::Other));
        assert_eq!(AbortCause::IlrDetected.table3_bucket(), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(AbortCause::Conflict.to_string(), "conflict");
        assert_eq!(AbortCause::IlrDetected.to_string(), "ilr-detected");
    }
}
