//! L1 set-associative occupancy model.
//!
//! Real TSX pins the write set in L1: a write-set line forced out of its
//! set aborts the transaction, while read-set lines can spill (they are
//! tracked by a secondary structure). We model each physical core's L1 as
//! per-set LRU rings of line tags; every access (transactional or not, and
//! from either hyper-thread of the core) touches the ring, and the model
//! reports which line — if any — was evicted. The HTM system then checks
//! the victim line against the resident transactions' write sets.

/// Per-core L1 occupancy tracker.
#[derive(Clone, Debug)]
pub struct L1Model {
    sets: Vec<Vec<u64>>,
    ways: usize,
}

impl L1Model {
    /// Creates an empty L1 with `n_sets` sets of `ways` ways.
    pub fn new(n_sets: usize, ways: usize) -> Self {
        L1Model { sets: vec![Vec::with_capacity(ways); n_sets], ways }
    }

    /// Records an access to `line` mapping to `set`; returns the evicted
    /// line, if the access forced one out.
    pub fn touch(&mut self, set: usize, line: u64) -> Option<u64> {
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&l| l == line) {
            // MRU promotion.
            let l = s.remove(pos);
            s.push(l);
            return None;
        }
        let evicted = if s.len() == self.ways { Some(s.remove(0)) } else { None };
        s.push(line);
        evicted
    }

    /// Returns true if `line` is currently resident in `set`.
    pub fn resident(&self, set: usize, line: u64) -> bool {
        self.sets[set].contains(&line)
    }

    /// Number of resident lines in `set`.
    pub fn occupancy(&self, set: usize) -> usize {
        self.sets[set].len()
    }

    /// Drops all resident lines (e.g. between independent experiments).
    pub fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_up_to_ways_without_eviction() {
        let mut l1 = L1Model::new(4, 2);
        assert_eq!(l1.touch(0, 10), None);
        assert_eq!(l1.touch(0, 20), None);
        assert_eq!(l1.occupancy(0), 2);
        assert!(l1.resident(0, 10));
    }

    #[test]
    fn evicts_lru_line() {
        let mut l1 = L1Model::new(4, 2);
        l1.touch(0, 10);
        l1.touch(0, 20);
        // 10 is LRU; a third line evicts it.
        assert_eq!(l1.touch(0, 30), Some(10));
        assert!(!l1.resident(0, 10));
        assert!(l1.resident(0, 20));
        assert!(l1.resident(0, 30));
    }

    #[test]
    fn touch_promotes_to_mru() {
        let mut l1 = L1Model::new(4, 2);
        l1.touch(0, 10);
        l1.touch(0, 20);
        l1.touch(0, 10); // Promote 10; now 20 is LRU.
        assert_eq!(l1.touch(0, 30), Some(20));
    }

    #[test]
    fn sets_are_independent() {
        let mut l1 = L1Model::new(4, 1);
        assert_eq!(l1.touch(0, 10), None);
        assert_eq!(l1.touch(1, 20), None);
        assert_eq!(l1.touch(0, 30), Some(10));
        assert!(l1.resident(1, 20));
    }

    #[test]
    fn clear_empties_all_sets() {
        let mut l1 = L1Model::new(2, 2);
        l1.touch(0, 1);
        l1.touch(1, 2);
        l1.clear();
        assert_eq!(l1.occupancy(0), 0);
        assert_eq!(l1.occupancy(1), 0);
    }
}
