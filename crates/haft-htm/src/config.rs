//! HTM simulator configuration.

/// Parameters of the simulated TSX implementation.
///
/// Defaults model the paper's Haswell testbed: 32 KB 8-way L1 with 64-byte
/// lines (64 sets), a ~1 MB read-set soft bound, and a timer-interrupt
/// budget of one million cycles (~0.3 ms at 2 GHz — the thresholds quoted
/// in §2.2 after which "more than 10 % of transactions abort").
#[derive(Clone, Debug)]
pub struct HtmConfig {
    /// Cache-line size in bytes.
    pub line_bytes: u64,
    /// Number of L1 sets.
    pub l1_sets: usize,
    /// L1 associativity; evicting a write-set way aborts.
    pub l1_ways: usize,
    /// Maximum distinct read-set lines before a capacity abort.
    pub read_set_lines: usize,
    /// Cycles a transaction may run before the timer interrupt aborts it.
    pub cycle_budget: u64,
    /// Probability of a spontaneous abort per 1000 transactional cycles
    /// (the residual "other" causes of Table 3).
    pub spontaneous_per_kcycle: f64,
    /// Hyper-threading: logical thread pairs `(2k, 2k+1)` share one L1.
    pub smt: bool,
}

impl Default for HtmConfig {
    fn default() -> Self {
        HtmConfig {
            line_bytes: 64,
            l1_sets: 64,
            l1_ways: 8,
            read_set_lines: 16 * 1024, // 1 MB of 64-byte lines.
            cycle_budget: 1_000_000,
            spontaneous_per_kcycle: 2e-4,
            smt: false,
        }
    }
}

impl HtmConfig {
    /// Returns the cache line containing `addr`.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes
    }

    /// Returns the L1 set index of a line.
    pub fn set_of(&self, line: u64) -> usize {
        (line as usize) % self.l1_sets
    }

    /// Returns the lines covered by `[addr, addr + len)`.
    pub fn lines_of_range(&self, addr: u64, len: u64) -> impl Iterator<Item = u64> + '_ {
        let first = self.line_of(addr);
        let last = self.line_of(addr + len.max(1) - 1);
        first..=last
    }

    /// Returns the physical core hosting a logical thread.
    pub fn core_of(&self, tid: usize) -> usize {
        if self.smt {
            tid / 2
        } else {
            tid
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_models_haswell_l1() {
        let c = HtmConfig::default();
        assert_eq!(c.line_bytes * c.l1_sets as u64 * c.l1_ways as u64, 32 * 1024);
    }

    #[test]
    fn line_and_set_math() {
        let c = HtmConfig::default();
        assert_eq!(c.line_of(0), 0);
        assert_eq!(c.line_of(63), 0);
        assert_eq!(c.line_of(64), 1);
        assert_eq!(c.set_of(63), 63);
        assert_eq!(c.set_of(64), 0);
    }

    #[test]
    fn range_spanning_lines() {
        let c = HtmConfig::default();
        let lines: Vec<u64> = c.lines_of_range(60, 8).collect();
        assert_eq!(lines, vec![0, 1]);
        let one: Vec<u64> = c.lines_of_range(0, 1).collect();
        assert_eq!(one, vec![0]);
        let zero_len: Vec<u64> = c.lines_of_range(128, 0).collect();
        assert_eq!(zero_len, vec![2]);
    }

    #[test]
    fn smt_pairs_share_cores() {
        let mut c = HtmConfig::default();
        assert_eq!(c.core_of(3), 3);
        c.smt = true;
        assert_eq!(c.core_of(0), 0);
        assert_eq!(c.core_of(1), 0);
        assert_eq!(c.core_of(2), 1);
        assert_eq!(c.core_of(3), 1);
    }
}
