//! Deterministic multiply-rotate hasher for line-set bookkeeping.
//!
//! The conflict-detection maps (`line_users` and the per-thread
//! read/write sets) are keyed by cache-line numbers and sit on the
//! per-memory-access hot path of the VM. SipHash's per-lookup cost
//! dominates there; this FxHash-style mixer is an order of magnitude
//! cheaper and — unlike `RandomState` — fully deterministic, which the
//! simulator wants anyway (no map in this crate is iterated in an
//! order-sensitive way, but determinism keeps that a non-question).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-shot multiply-rotate hasher (the rustc FxHasher construction).
#[derive(Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Deterministic `HashMap` over the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// Deterministic `HashSet` over the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_bucket_across_maps() {
        let mut a: FxHashMap<u64, u32> = FxHashMap::default();
        let mut b: FxHashSet<u64> = FxHashSet::default();
        for k in [0u64, 1, 64, u64::MAX] {
            a.insert(k, 1);
            b.insert(k);
        }
        assert_eq!(a.len(), 4);
        assert!(b.contains(&64));
    }

    #[test]
    fn hashes_are_deterministic() {
        let h = |n: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(n);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }
}
