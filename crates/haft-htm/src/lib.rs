//! TSX-like hardware-transactional-memory simulator.
//!
//! HAFT's recovery component (the TX pass) wraps the whole program in
//! best-effort hardware transactions. This crate models the Intel TSX/RTM
//! properties that determine whether that strategy works (paper §2.2):
//!
//! * read- and write-sets tracked at 64-byte cache-line granularity;
//! * the write set bounded by L1 geometry (32 KB, 8-way: evicting a
//!   write-set line always aborts), the read set by a larger soft bound;
//! * conflict detection through the coherence protocol — a remote write to
//!   a line in our read- or write-set, or a remote read of a line in our
//!   write-set, aborts us (requester wins);
//! * explicit aborts (`XABORT`, used by ILR checks), "unfriendly"
//!   operations (syscalls/IO), timer interrupts, and rare spontaneous
//!   aborts;
//! * a hyper-threading mode in which two logical threads share one L1,
//!   halving the effective capacity and evicting each other's lines
//!   (paper §5.4).
//!
//! The simulator is *policy only*: it tracks line sets and decides who
//! aborts; buffering of speculative values and register rollback live in
//! the VM (`haft-vm`), exactly as real TSX splits responsibilities between
//! the cache and the core.

pub mod abort;
pub mod cache;
pub mod config;
pub mod fxhash;
pub mod stats;
pub mod system;

pub use abort::AbortCause;
pub use config::HtmConfig;
pub use stats::HtmStats;
pub use system::{AccessKind, Htm};
