//! Commit/abort accounting.

use std::collections::HashMap;

use haft_trace::MetricsSnapshot;

use crate::abort::{AbortCause, Table3Bucket};

/// Aggregate transaction statistics for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HtmStats {
    /// Transactions begun (including retries).
    pub started: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Aborts by cause.
    pub aborts: HashMap<AbortCause, u64>,
    /// Times the retry budget was exhausted and execution fell back to
    /// non-transactional mode.
    pub fallbacks: u64,
    /// Cycles spent inside transactions (attempted, whether or not they
    /// committed) — the numerator of the paper's code-coverage metric.
    pub tx_cycles: u64,
    /// Total cycles of the measured phase (coverage denominator).
    pub total_cycles: u64,
}

impl HtmStats {
    /// Total aborts across causes.
    pub fn total_aborts(&self) -> u64 {
        self.aborts.values().sum()
    }

    /// Aborts excluding explicit ILR-recovery aborts (the paper's Table 3
    /// reports only environment-caused aborts).
    pub fn environment_aborts(&self) -> u64 {
        self.aborts.iter().filter(|(c, _)| c.table3_bucket().is_some()).map(|(_, n)| *n).sum()
    }

    /// Abort rate in percent: aborts / started, as the paper reports it.
    pub fn abort_rate_pct(&self) -> f64 {
        if self.started == 0 {
            return 0.0;
        }
        100.0 * self.environment_aborts() as f64 / self.started as f64
    }

    /// Percentage of environment aborts falling into a Table 3 bucket.
    pub fn bucket_pct(&self, bucket: Table3Bucket) -> f64 {
        let total = self.environment_aborts();
        if total == 0 {
            return 0.0;
        }
        let n: u64 = self
            .aborts
            .iter()
            .filter(|(c, _)| c.table3_bucket() == Some(bucket))
            .map(|(_, n)| *n)
            .sum();
        100.0 * n as f64 / total as f64
    }

    /// Fraction of measured cycles spent inside transactions, in percent
    /// (Table 2's code-coverage column).
    pub fn coverage_pct(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        100.0 * self.tx_cycles as f64 / self.total_cycles as f64
    }

    /// Records one abort.
    pub fn record_abort(&mut self, cause: AbortCause) {
        *self.aborts.entry(cause).or_insert(0) += 1;
    }

    /// Publishes the counters into the unified registry under the stable
    /// `htm.*` names. Every `htm.aborts.{cause}` key is present (zero or
    /// not) so the schema never varies with the run.
    pub fn export_metrics(&self, m: &mut MetricsSnapshot) {
        m.set("htm.started", self.started as f64);
        m.set("htm.commits", self.commits as f64);
        m.set("htm.fallbacks", self.fallbacks as f64);
        m.set("htm.tx_cycles", self.tx_cycles as f64);
        m.set("htm.total_cycles", self.total_cycles as f64);
        for cause in AbortCause::ALL {
            let n = self.aborts.get(&cause).copied().unwrap_or(0);
            m.set(format!("htm.aborts.{}", cause.metric_name()), n as f64);
        }
    }

    /// Merges another stats block into this one (per-thread → aggregate).
    pub fn merge(&mut self, other: &HtmStats) {
        self.started += other.started;
        self.commits += other.commits;
        self.fallbacks += other.fallbacks;
        self.tx_cycles += other.tx_cycles;
        self.total_cycles += other.total_cycles;
        for (c, n) in &other.aborts {
            *self.aborts.entry(*c).or_insert(0) += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HtmStats {
        let mut s = HtmStats { started: 200, commits: 180, ..Default::default() };
        s.record_abort(AbortCause::Conflict);
        s.record_abort(AbortCause::Conflict);
        s.record_abort(AbortCause::Capacity);
        s.record_abort(AbortCause::Spontaneous);
        s.record_abort(AbortCause::IlrDetected);
        s
    }

    #[test]
    fn abort_rate_excludes_ilr_recovery() {
        let s = sample();
        assert_eq!(s.total_aborts(), 5);
        assert_eq!(s.environment_aborts(), 4);
        assert!((s.abort_rate_pct() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_percentages_sum_to_100() {
        let s = sample();
        let sum = s.bucket_pct(Table3Bucket::Capacity)
            + s.bucket_pct(Table3Bucket::Conflict)
            + s.bucket_pct(Table3Bucket::Other);
        assert!((sum - 100.0).abs() < 1e-9);
        assert!((s.bucket_pct(Table3Bucket::Conflict) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn coverage() {
        let s = HtmStats { tx_cycles: 90, total_cycles: 100, ..Default::default() };
        assert!((s.coverage_pct() - 90.0).abs() < 1e-9);
        let empty = HtmStats::default();
        assert_eq!(empty.coverage_pct(), 0.0);
        assert_eq!(empty.abort_rate_pct(), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.started, 400);
        assert_eq!(a.total_aborts(), 10);
        assert_eq!(a.aborts[&AbortCause::Conflict], 4);
    }
}
