//! The HTM system: per-thread transactions, conflict detection, capacity.

use haft_ir::rng::Prng;

use crate::abort::AbortCause;
use crate::cache::L1Model;
use crate::config::HtmConfig;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::stats::HtmStats;

/// Whether an access reads or writes memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
}

/// Per-thread transactional state.
#[derive(Clone, Debug, Default)]
struct ThreadTx {
    active: bool,
    doomed: Option<AbortCause>,
    read_lines: FxHashSet<u64>,
    write_lines: FxHashSet<u64>,
    start_cycle: u64,
}

/// Which transactions hold a line in their sets (bitmasks by thread id).
#[derive(Clone, Copy, Debug, Default)]
struct LineUsers {
    readers: u64,
    writers: u64,
}

/// The transactional-memory system shared by all simulated threads.
///
/// The system only decides *who aborts and why*; speculative data
/// buffering and register rollback are the VM's job. Aborts are delivered
/// asynchronously through a per-thread `doomed` flag, the way a real core
/// learns of a conflict from a coherence message: the victim discovers the
/// abort at its next instruction boundary.
#[derive(Clone, Debug)]
pub struct Htm {
    cfg: HtmConfig,
    threads: Vec<ThreadTx>,
    cores: Vec<L1Model>,
    line_users: FxHashMap<u64, LineUsers>,
    /// The immediately preceding `access` call, if nothing else mutated
    /// the system since. An identical repeat — the common case under ILR,
    /// where master and shadow touch the same line back to back — is
    /// fully idempotent (MRU re-touch, set re-insert, same conflict
    /// victims, all already applied) and by construction hits, so it can
    /// short-circuit without replaying the bookkeeping.
    last_access: Option<(usize, u64, u64, AccessKind)>,
    /// Number of threads currently inside a transaction. When zero,
    /// `access` skips conflict and read/write-set bookkeeping entirely.
    active_count: usize,
    /// Aggregate statistics.
    pub stats: HtmStats,
}

impl Htm {
    /// Creates a system for `n_threads` logical threads.
    pub fn new(cfg: HtmConfig, n_threads: usize) -> Self {
        assert!(n_threads <= 64, "thread bitmasks are u64");
        let n_cores = if cfg.smt { n_threads.div_ceil(2) } else { n_threads };
        Htm {
            threads: vec![ThreadTx::default(); n_threads],
            cores: (0..n_cores.max(1)).map(|_| L1Model::new(cfg.l1_sets, cfg.l1_ways)).collect(),
            line_users: FxHashMap::default(),
            last_access: None,
            active_count: 0,
            stats: HtmStats::default(),
            cfg,
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &HtmConfig {
        &self.cfg
    }

    /// Returns true if `tid` is inside a transaction (`XTEST`).
    pub fn in_tx(&self, tid: usize) -> bool {
        self.threads[tid].active
    }

    /// Returns the pending asynchronous abort for `tid`, if any.
    pub fn doomed(&self, tid: usize) -> Option<AbortCause> {
        self.threads[tid].doomed
    }

    /// Begins a transaction (`XBEGIN`).
    ///
    /// # Panics
    ///
    /// Panics if `tid` is already transactional (no nesting in this model;
    /// the TX pass never produces nested begins).
    pub fn begin(&mut self, tid: usize, now_cycles: u64) {
        let t = &mut self.threads[tid];
        assert!(!t.active, "nested transaction");
        t.active = true;
        t.doomed = None;
        t.start_cycle = now_cycles;
        self.active_count += 1;
        // The next access must re-run tracking now that a tx is live.
        self.last_access = None;
        self.stats.started += 1;
    }

    /// Commits the transaction of `tid` (`XEND`).
    ///
    /// Returns false (and treats the commit as an abort) if an
    /// asynchronous abort was already pending.
    pub fn commit(&mut self, tid: usize) -> bool {
        if let Some(cause) = self.threads[tid].doomed {
            self.abort(tid, cause);
            return false;
        }
        self.release_lines(tid);
        let t = &mut self.threads[tid];
        t.active = false;
        t.doomed = None;
        self.active_count -= 1;
        self.stats.commits += 1;
        true
    }

    /// Aborts the transaction of `tid` with `cause` (explicit `XABORT` or
    /// the delivery of a pending asynchronous abort).
    pub fn abort(&mut self, tid: usize, cause: AbortCause) {
        self.release_lines(tid);
        let t = &mut self.threads[tid];
        t.active = false;
        t.doomed = None;
        self.active_count -= 1;
        self.stats.record_abort(cause);
    }

    /// Records that a thread exhausted its retries and fell back to
    /// non-transactional execution.
    pub fn note_fallback(&mut self) {
        self.stats.fallbacks += 1;
    }

    fn release_lines(&mut self, tid: usize) {
        // Released lines leave the tracking sets, so a repeated access is
        // no longer a no-op.
        self.last_access = None;
        let mask = !(1u64 << tid);
        let t = &mut self.threads[tid];
        for line in t.read_lines.drain().chain(t.write_lines.drain()) {
            if let Some(u) = self.line_users.get_mut(&line) {
                u.readers &= mask;
                u.writers &= mask;
                if u.readers == 0 && u.writers == 0 {
                    self.line_users.remove(&line);
                }
            }
        }
    }

    /// Registers a memory access by `tid` over `[addr, addr + len)`.
    ///
    /// Applies conflict detection (requester wins: victims are doomed, the
    /// requester proceeds), updates the requester's read/write set if it is
    /// transactional, and models L1 pressure — an evicted write-set line
    /// dooms its owner with a capacity abort.
    ///
    /// Returns true if every touched line was already L1-resident (the VM
    /// uses this to pick hit vs. miss latency).
    pub fn access(&mut self, tid: usize, addr: u64, len: u64, kind: AccessKind) -> bool {
        // Inline `lines_of_range` so the iterator does not borrow `cfg`
        // across the mutations below (which would force a per-access
        // collect into a heap `Vec` — this is the VM's hottest call).
        let first = addr / self.cfg.line_bytes;
        let last = (addr + len.max(1) - 1) / self.cfg.line_bytes;
        // Exact repeat of the previous access: every effect is already
        // applied and the lines were just made resident.
        if self.last_access == Some((tid, first, last, kind)) {
            return true;
        }
        let core = self.cfg.core_of(tid);
        if self.active_count == 0 {
            // No transaction live anywhere: no conflict scan, no set
            // tracking, no eviction dooms. Only the cache model advances.
            let mut all_hit = true;
            for line in first..=last {
                let set = self.cfg.set_of(line);
                if !self.cores[core].resident(set, line) {
                    all_hit = false;
                }
                self.cores[core].touch(set, line);
            }
            self.last_access = Some((tid, first, last, kind));
            return all_hit;
        }
        let self_bit = 1u64 << tid;
        let mut all_hit = true;
        for line in first..=last {
            if !self.cores[core].resident(self.cfg.set_of(line), line) {
                all_hit = false;
            }
            // Conflict detection against other transactions.
            let users = self.line_users.get(&line).copied().unwrap_or_default();
            let others = match kind {
                AccessKind::Write => (users.readers | users.writers) & !self_bit,
                AccessKind::Read => users.writers & !self_bit,
            };
            if others != 0 {
                for victim in iter_bits(others) {
                    self.doom(victim, AbortCause::Conflict);
                }
            }

            // Track in our own sets.
            let active = self.threads[tid].active && self.threads[tid].doomed.is_none();
            if active {
                let entry = self.line_users.entry(line).or_default();
                match kind {
                    AccessKind::Read => {
                        entry.readers |= self_bit;
                        self.threads[tid].read_lines.insert(line);
                    }
                    AccessKind::Write => {
                        entry.writers |= self_bit;
                        self.threads[tid].write_lines.insert(line);
                    }
                }
                if self.threads[tid].read_lines.len() > self.cfg.read_set_lines {
                    self.doom(tid, AbortCause::Capacity);
                }
            }

            // L1 pressure: every access touches the core's cache; an
            // evicted line aborts any resident transaction holding it in
            // its *write* set (read lines may spill, as in TSX).
            if let Some(evicted) = self.cores[core].touch(self.cfg.set_of(line), line) {
                let (peers, n) =
                    if self.cfg.smt { ([core * 2, core * 2 + 1], 2) } else { ([core, 0], 1) };
                for &peer in peers.iter().take(n) {
                    if peer < self.threads.len()
                        && self.threads[peer].active
                        && self.threads[peer].write_lines.contains(&evicted)
                    {
                        self.doom(peer, AbortCause::Capacity);
                    }
                }
            }
        }
        self.last_access = Some((tid, first, last, kind));
        all_hit
    }

    fn doom(&mut self, tid: usize, cause: AbortCause) {
        let t = &mut self.threads[tid];
        if t.active && t.doomed.is_none() {
            t.doomed = Some(cause);
        }
    }

    /// Delivers time-based asynchronous aborts: the timer-interrupt budget
    /// and the residual spontaneous-abort rate, evaluated over the
    /// `delta_cycles` that elapsed since the last poll.
    pub fn poll_async(&mut self, tid: usize, now_cycles: u64, delta_cycles: u64, rng: &mut Prng) {
        let t = &self.threads[tid];
        if !t.active || t.doomed.is_some() {
            return;
        }
        if now_cycles.saturating_sub(t.start_cycle) > self.cfg.cycle_budget {
            self.doom(tid, AbortCause::Timer);
            return;
        }
        let p = self.cfg.spontaneous_per_kcycle * delta_cycles as f64 / 1000.0;
        if p > 0.0 && rng.chance(p.min(1.0)) {
            self.doom(tid, AbortCause::Spontaneous);
        }
    }

    /// Dooms `tid` for executing a transaction-unfriendly instruction.
    pub fn unfriendly(&mut self, tid: usize) {
        self.doom(tid, AbortCause::Unfriendly);
    }

    /// Current read/write-set sizes in lines (for tests and diagnostics).
    pub fn set_sizes(&self, tid: usize) -> (usize, usize) {
        (self.threads[tid].read_lines.len(), self.threads[tid].write_lines.len())
    }
}

fn iter_bits(mut mask: u64) -> impl Iterator<Item = usize> {
    std::iter::from_fn(move || {
        if mask == 0 {
            None
        } else {
            let i = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            Some(i)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn htm(n: usize) -> Htm {
        Htm::new(HtmConfig::default(), n)
    }

    #[test]
    fn begin_commit_cycle() {
        let mut h = htm(1);
        assert!(!h.in_tx(0));
        h.begin(0, 0);
        assert!(h.in_tx(0));
        h.access(0, 0, 8, AccessKind::Write);
        assert!(h.commit(0));
        assert!(!h.in_tx(0));
        assert_eq!(h.stats.commits, 1);
        assert_eq!(h.stats.started, 1);
    }

    #[test]
    fn remote_write_aborts_reader() {
        let mut h = htm(2);
        h.begin(0, 0);
        h.access(0, 128, 8, AccessKind::Read);
        // Thread 1 (non-transactional) writes the same line.
        h.access(1, 130, 4, AccessKind::Write);
        assert_eq!(h.doomed(0), Some(AbortCause::Conflict));
        // Commit fails and is recorded as an abort.
        assert!(!h.commit(0));
        assert_eq!(h.stats.aborts[&AbortCause::Conflict], 1);
        assert_eq!(h.stats.commits, 0);
    }

    #[test]
    fn remote_read_aborts_writer_only() {
        let mut h = htm(2);
        h.begin(0, 0);
        h.access(0, 0, 8, AccessKind::Write);
        h.begin(1, 0);
        h.access(1, 0, 8, AccessKind::Read);
        // Requester (1) wins; writer (0) is doomed.
        assert_eq!(h.doomed(0), Some(AbortCause::Conflict));
        assert_eq!(h.doomed(1), None);
    }

    #[test]
    fn readers_do_not_conflict_with_readers() {
        let mut h = htm(2);
        h.begin(0, 0);
        h.begin(1, 0);
        h.access(0, 0, 8, AccessKind::Read);
        h.access(1, 0, 8, AccessKind::Read);
        assert_eq!(h.doomed(0), None);
        assert_eq!(h.doomed(1), None);
        assert!(h.commit(0));
        assert!(h.commit(1));
    }

    #[test]
    fn write_set_eviction_capacity_aborts() {
        let cfg = HtmConfig { l1_sets: 1, l1_ways: 2, ..Default::default() };
        let mut h = Htm::new(cfg, 1);
        h.begin(0, 0);
        // Three distinct lines into a 2-way single-set cache: the first
        // write-set line is evicted.
        h.access(0, 0, 8, AccessKind::Write);
        h.access(0, 64, 8, AccessKind::Write);
        h.access(0, 128, 8, AccessKind::Write);
        assert_eq!(h.doomed(0), Some(AbortCause::Capacity));
    }

    #[test]
    fn read_set_eviction_does_not_abort() {
        let cfg = HtmConfig { l1_sets: 1, l1_ways: 2, ..Default::default() };
        let mut h = Htm::new(cfg, 1);
        h.begin(0, 0);
        h.access(0, 0, 8, AccessKind::Read);
        h.access(0, 64, 8, AccessKind::Read);
        h.access(0, 128, 8, AccessKind::Read);
        assert_eq!(h.doomed(0), None, "read lines may spill without aborting");
    }

    #[test]
    fn read_set_soft_bound_aborts() {
        let cfg = HtmConfig { read_set_lines: 4, ..Default::default() };
        let mut h = Htm::new(cfg, 1);
        h.begin(0, 0);
        for i in 0..6u64 {
            h.access(0, i * 64, 8, AccessKind::Read);
        }
        assert_eq!(h.doomed(0), Some(AbortCause::Capacity));
    }

    #[test]
    fn smt_neighbor_evictions_abort_partner() {
        let cfg = HtmConfig { l1_sets: 1, l1_ways: 2, smt: true, ..Default::default() };
        let mut h = Htm::new(cfg, 2);
        h.begin(0, 0);
        h.access(0, 0, 8, AccessKind::Write); // Line 0 in write set.

        // The hyper-thread partner streams through the shared set.
        h.access(1, 64, 8, AccessKind::Read);
        h.access(1, 128, 8, AccessKind::Read);
        assert_eq!(h.doomed(0), Some(AbortCause::Capacity));
    }

    #[test]
    fn without_smt_neighbor_traffic_is_isolated() {
        let cfg = HtmConfig { l1_sets: 1, l1_ways: 2, smt: false, ..Default::default() };
        let mut h = Htm::new(cfg, 2);
        h.begin(0, 0);
        h.access(0, 0, 8, AccessKind::Write);
        h.access(1, 64, 8, AccessKind::Read);
        h.access(1, 128, 8, AccessKind::Read);
        h.access(1, 192, 8, AccessKind::Read);
        assert_eq!(h.doomed(0), None);
    }

    #[test]
    fn timer_abort_after_budget() {
        let cfg = HtmConfig { cycle_budget: 1000, ..Default::default() };
        let mut h = Htm::new(cfg, 1);
        let mut rng = Prng::new(1);
        h.begin(0, 0);
        h.poll_async(0, 500, 500, &mut rng);
        assert_eq!(h.doomed(0), None);
        h.poll_async(0, 1500, 1000, &mut rng);
        assert_eq!(h.doomed(0), Some(AbortCause::Timer));
    }

    #[test]
    fn spontaneous_aborts_happen_at_configured_rate() {
        let cfg = HtmConfig { spontaneous_per_kcycle: 0.5, ..Default::default() };
        let mut h = Htm::new(cfg, 1);
        let mut rng = Prng::new(7);
        let mut doomed = 0;
        for _ in 0..200 {
            h.begin(0, 0);
            h.poll_async(0, 100, 1000, &mut rng);
            if h.doomed(0).is_some() {
                doomed += 1;
            }
            h.abort(0, AbortCause::Explicit);
        }
        // p = 0.5 per poll; expect ~100.
        assert!((60..140).contains(&doomed), "doomed = {doomed}");
    }

    #[test]
    fn abort_releases_lines() {
        let mut h = htm(2);
        h.begin(0, 0);
        h.access(0, 0, 8, AccessKind::Write);
        h.abort(0, AbortCause::Explicit);
        // Thread 1 can now write the line without dooming anyone.
        h.begin(1, 0);
        h.access(1, 0, 8, AccessKind::Write);
        assert_eq!(h.doomed(1), None);
        assert!(h.commit(1));
    }

    #[test]
    fn unfriendly_dooms_only_active() {
        let mut h = htm(1);
        h.unfriendly(0);
        assert_eq!(h.doomed(0), None, "no active transaction to doom");
        h.begin(0, 0);
        h.unfriendly(0);
        assert_eq!(h.doomed(0), Some(AbortCause::Unfriendly));
    }

    #[test]
    #[should_panic(expected = "nested transaction")]
    fn nested_begin_panics() {
        let mut h = htm(1);
        h.begin(0, 0);
        h.begin(0, 0);
    }

    #[test]
    fn set_sizes_report_lines_not_bytes() {
        let mut h = htm(1);
        h.begin(0, 0);
        h.access(0, 0, 8, AccessKind::Read);
        h.access(0, 8, 8, AccessKind::Read); // Same line.
        h.access(0, 64, 8, AccessKind::Write);
        assert_eq!(h.set_sizes(0), (1, 1));
    }
}
