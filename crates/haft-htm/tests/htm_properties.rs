//! Property tests on the HTM system's accounting and isolation
//! invariants under random access sequences.

use haft_htm::{AccessKind, Htm, HtmConfig};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Act {
    Begin(u8),
    Commit(u8),
    ExplicitAbort(u8),
    Read(u8, u16),
    Write(u8, u16),
}

fn act_strategy(threads: u8) -> impl Strategy<Value = Act> {
    prop_oneof![
        (0..threads).prop_map(Act::Begin),
        (0..threads).prop_map(Act::Commit),
        (0..threads).prop_map(Act::ExplicitAbort),
        (0..threads, any::<u16>()).prop_map(|(t, a)| Act::Read(t, a)),
        (0..threads, any::<u16>()).prop_map(|(t, a)| Act::Write(t, a)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every started transaction ends exactly once: started == commits +
    /// aborts, and no thread is left with a pending doom after its
    /// transaction ends.
    #[test]
    fn accounting_balances(acts in proptest::collection::vec(act_strategy(4), 1..200)) {
        let mut htm = Htm::new(HtmConfig::default(), 4);
        for act in &acts {
            match *act {
                Act::Begin(t) => {
                    let t = t as usize;
                    if !htm.in_tx(t) {
                        htm.begin(t, 0);
                    }
                }
                Act::Commit(t) => {
                    let t = t as usize;
                    if htm.in_tx(t) {
                        htm.commit(t);
                        prop_assert!(htm.doomed(t).is_none());
                    }
                }
                Act::ExplicitAbort(t) => {
                    let t = t as usize;
                    if htm.in_tx(t) {
                        htm.abort(t, haft_htm::AbortCause::Explicit);
                        prop_assert!(htm.doomed(t).is_none());
                    }
                }
                Act::Read(t, a) => {
                    htm.access(t as usize, a as u64 * 8, 8, AccessKind::Read);
                }
                Act::Write(t, a) => {
                    htm.access(t as usize, a as u64 * 8, 8, AccessKind::Write);
                }
            }
        }
        // Close everything out.
        for t in 0..4 {
            if htm.in_tx(t) {
                htm.abort(t, haft_htm::AbortCause::Explicit);
            }
        }
        let s = &htm.stats;
        prop_assert_eq!(s.started, s.commits + s.total_aborts(),
            "started {} != commits {} + aborts {}", s.started, s.commits, s.total_aborts());
    }

    /// Isolation: if two live transactions touched the same line and at
    /// least one wrote it, at least one of them is doomed.
    #[test]
    fn conflicting_writers_never_both_survive(line in 0u64..64, reader_first in any::<bool>()) {
        let mut htm = Htm::new(HtmConfig::default(), 2);
        htm.begin(0, 0);
        htm.begin(1, 0);
        let addr = line * 64;
        if reader_first {
            htm.access(0, addr, 8, AccessKind::Read);
            htm.access(1, addr, 8, AccessKind::Write);
        } else {
            htm.access(0, addr, 8, AccessKind::Write);
            htm.access(1, addr, 8, AccessKind::Write);
        }
        prop_assert!(htm.doomed(0).is_some() || htm.doomed(1).is_some());
    }

    /// Disjoint lines never conflict, regardless of interleaving.
    #[test]
    fn disjoint_transactions_commit(offsets in proptest::collection::vec(0u64..1000, 1..30)) {
        let mut htm = Htm::new(HtmConfig { l1_sets: 1 << 14, ..Default::default() }, 2);
        htm.begin(0, 0);
        htm.begin(1, 0);
        for (i, off) in offsets.iter().enumerate() {
            // Thread 0 in even lines, thread 1 in odd lines: disjoint.
            let base = off * 128;
            if i % 2 == 0 {
                htm.access(0, base, 8, AccessKind::Write);
            } else {
                htm.access(1, base + 64, 8, AccessKind::Write);
            }
        }
        prop_assert!(htm.doomed(0).is_none(), "{:?}", htm.doomed(0));
        prop_assert!(htm.doomed(1).is_none(), "{:?}", htm.doomed(1));
        prop_assert!(htm.commit(0));
        prop_assert!(htm.commit(1));
    }

    /// Capacity: writing more distinct same-set lines than the
    /// associativity always aborts; staying within it never does.
    #[test]
    fn capacity_boundary_is_exact(extra in 0usize..4) {
        let cfg = HtmConfig { l1_sets: 4, l1_ways: 4, ..Default::default() };
        let sets = cfg.l1_sets as u64;
        let mut htm = Htm::new(cfg, 1);
        htm.begin(0, 0);
        let n = 4 + extra;
        for i in 0..n {
            // All map to set 0.
            htm.access(0, i as u64 * 64 * sets, 8, AccessKind::Write);
        }
        if extra == 0 {
            prop_assert!(htm.doomed(0).is_none());
        } else {
            prop_assert_eq!(htm.doomed(0), Some(haft_htm::AbortCause::Capacity));
        }
    }
}
