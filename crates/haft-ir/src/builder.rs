//! Ergonomic construction of IR functions.
//!
//! The builder is how workload kernels and tests author programs; it keeps
//! a current insertion block and offers one method per opcode, plus a
//! structured counted-loop helper that creates the header/body/exit blocks
//! and induction-variable phi that the TX pass's loop transformation
//! expects to find.

use crate::function::{BlockId, Function, InstId, ValueId};
use crate::inst::{BinOp, Callee, CastKind, CmpOp, Op, Operand, RmwOp, UnOp};
use crate::module::FuncId;
use crate::types::Ty;

/// Builds one [`Function`] instruction by instruction.
pub struct FunctionBuilder {
    f: Function,
    cur: BlockId,
}

impl FunctionBuilder {
    /// Starts a new function; the insertion point is the entry block.
    pub fn new(name: impl Into<String>, params: &[Ty], ret_ty: Option<Ty>) -> Self {
        let f = Function::new(name, params, ret_ty);
        let cur = f.entry();
        FunctionBuilder { f, cur }
    }

    /// Marks the function as external (never transformed by HAFT).
    pub fn set_external(&mut self) {
        self.f.attrs.external = true;
    }

    /// Marks the function as non-local (callable from outside; TX will use
    /// unconditional transaction boundaries for it).
    pub fn set_non_local(&mut self) {
        self.f.attrs.local = false;
    }

    /// Returns the `i`-th parameter value.
    pub fn param(&self, i: usize) -> ValueId {
        self.f.param_value(i)
    }

    /// Returns the entry block id.
    pub fn entry(&self) -> BlockId {
        self.f.entry()
    }

    /// Creates a new (empty) block.
    pub fn new_block(&mut self) -> BlockId {
        self.f.add_block()
    }

    /// Moves the insertion point to `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// Returns the current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Emits an opcode at the insertion point, returning its result if any.
    pub fn emit_op(&mut self, op: Op) -> Option<ValueId> {
        let (id, res) = self.f.create_inst(op);
        self.f.push_to_block(self.cur, id);
        res
    }

    fn emit_valued(&mut self, op: Op) -> ValueId {
        self.emit_op(op).expect("opcode must produce a value")
    }

    /// Returns the id of the most recently emitted instruction.
    pub fn last_inst(&self) -> InstId {
        InstId(self.f.insts.len() as u32 - 1)
    }

    // --- constants -----------------------------------------------------------

    /// Integer immediate operand of type `ty`.
    pub fn iconst(&self, ty: Ty, v: i64) -> Operand {
        Operand::Imm(v, ty)
    }

    /// `f64` immediate operand.
    pub fn fconst(&self, v: f64) -> Operand {
        Operand::f64(v)
    }

    // --- compute ---------------------------------------------------------------

    pub fn bin(
        &mut self,
        op: BinOp,
        ty: Ty,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> ValueId {
        self.emit_valued(Op::Bin { op, ty, a: a.into(), b: b.into() })
    }

    pub fn add(&mut self, ty: Ty, a: impl Into<Operand>, b: impl Into<Operand>) -> ValueId {
        self.bin(BinOp::Add, ty, a, b)
    }

    pub fn sub(&mut self, ty: Ty, a: impl Into<Operand>, b: impl Into<Operand>) -> ValueId {
        self.bin(BinOp::Sub, ty, a, b)
    }

    pub fn mul(&mut self, ty: Ty, a: impl Into<Operand>, b: impl Into<Operand>) -> ValueId {
        self.bin(BinOp::Mul, ty, a, b)
    }

    pub fn un(&mut self, op: UnOp, ty: Ty, a: impl Into<Operand>) -> ValueId {
        self.emit_valued(Op::Un { op, ty, a: a.into() })
    }

    pub fn cmp(
        &mut self,
        op: CmpOp,
        ty: Ty,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> ValueId {
        self.emit_valued(Op::Cmp { op, ty, a: a.into(), b: b.into() })
    }

    pub fn mov(&mut self, ty: Ty, a: impl Into<Operand>) -> ValueId {
        self.emit_valued(Op::Move { ty, a: a.into() })
    }

    pub fn cast(&mut self, kind: CastKind, to: Ty, a: impl Into<Operand>) -> ValueId {
        self.emit_valued(Op::Cast { kind, to, a: a.into() })
    }

    pub fn select(
        &mut self,
        ty: Ty,
        c: impl Into<Operand>,
        t: impl Into<Operand>,
        f: impl Into<Operand>,
    ) -> ValueId {
        self.emit_valued(Op::Select { ty, c: c.into(), t: t.into(), f: f.into() })
    }

    /// `base + index * scale + offset` address arithmetic.
    pub fn gep(
        &mut self,
        base: impl Into<Operand>,
        index: impl Into<Operand>,
        scale: u32,
        offset: i64,
    ) -> ValueId {
        self.emit_valued(Op::Gep { base: base.into(), index: index.into(), scale, offset })
    }

    /// Creates a phi of type `ty` with no incomings yet.
    pub fn phi(&mut self, ty: Ty) -> ValueId {
        self.emit_valued(Op::Phi { ty, incomings: vec![] })
    }

    /// Adds an incoming edge to a phi created with [`Self::phi`].
    ///
    /// # Panics
    ///
    /// Panics if `phi` is not a phi instruction result.
    pub fn phi_incoming(&mut self, phi: ValueId, v: impl Into<Operand>, from: BlockId) {
        let def = self.f.value_def(phi);
        let crate::function::ValueDef::Inst(id) = def else {
            panic!("phi_incoming on a parameter");
        };
        match &mut self.f.inst_mut(id).op {
            Op::Phi { incomings, .. } => incomings.push((v.into(), from)),
            other => panic!("phi_incoming on non-phi {other:?}"),
        }
    }

    // --- memory ----------------------------------------------------------------

    pub fn load(&mut self, ty: Ty, addr: impl Into<Operand>) -> ValueId {
        self.emit_valued(Op::Load { ty, addr: addr.into(), atomic: false })
    }

    pub fn load_atomic(&mut self, ty: Ty, addr: impl Into<Operand>) -> ValueId {
        self.emit_valued(Op::Load { ty, addr: addr.into(), atomic: true })
    }

    pub fn store(&mut self, ty: Ty, val: impl Into<Operand>, addr: impl Into<Operand>) {
        self.emit_op(Op::Store { ty, val: val.into(), addr: addr.into(), atomic: false });
    }

    pub fn store_atomic(&mut self, ty: Ty, val: impl Into<Operand>, addr: impl Into<Operand>) {
        self.emit_op(Op::Store { ty, val: val.into(), addr: addr.into(), atomic: true });
    }

    pub fn rmw(
        &mut self,
        op: RmwOp,
        ty: Ty,
        addr: impl Into<Operand>,
        val: impl Into<Operand>,
    ) -> ValueId {
        self.emit_valued(Op::Rmw { op, ty, addr: addr.into(), val: val.into() })
    }

    pub fn cmpxchg(
        &mut self,
        ty: Ty,
        addr: impl Into<Operand>,
        expected: impl Into<Operand>,
        new: impl Into<Operand>,
    ) -> ValueId {
        self.emit_valued(Op::CmpXchg {
            ty,
            addr: addr.into(),
            expected: expected.into(),
            new: new.into(),
        })
    }

    pub fn alloc(&mut self, size: impl Into<Operand>) -> ValueId {
        self.emit_valued(Op::Alloc { size: size.into() })
    }

    // --- control ---------------------------------------------------------------

    pub fn br(&mut self, dest: BlockId) {
        self.emit_op(Op::Br { dest });
    }

    pub fn condbr(&mut self, cond: impl Into<Operand>, t: BlockId, f: BlockId) {
        self.emit_op(Op::CondBr { cond: cond.into(), t, f });
    }

    pub fn call(
        &mut self,
        callee: FuncId,
        args: &[Operand],
        ret_ty: Option<Ty>,
    ) -> Option<ValueId> {
        self.emit_op(Op::Call { callee: Callee::Direct(callee), args: args.to_vec(), ret_ty })
    }

    pub fn call_indirect(
        &mut self,
        target: impl Into<Operand>,
        args: &[Operand],
        ret_ty: Option<Ty>,
    ) -> Option<ValueId> {
        self.emit_op(Op::Call {
            callee: Callee::Indirect(target.into()),
            args: args.to_vec(),
            ret_ty,
        })
    }

    pub fn ret(&mut self, val: Option<Operand>) {
        self.emit_op(Op::Ret { val });
    }

    // --- intrinsics --------------------------------------------------------------

    pub fn lock(&mut self, addr: impl Into<Operand>) {
        self.emit_op(Op::Lock { addr: addr.into() });
    }

    pub fn unlock(&mut self, addr: impl Into<Operand>) {
        self.emit_op(Op::Unlock { addr: addr.into() });
    }

    pub fn emit_out(&mut self, ty: Ty, val: impl Into<Operand>) {
        self.emit_op(Op::Emit { ty, val: val.into() });
    }

    pub fn thread_id(&mut self) -> ValueId {
        self.emit_valued(Op::ThreadId)
    }

    pub fn num_threads(&mut self) -> ValueId {
        self.emit_valued(Op::NumThreads)
    }

    // --- structured helpers --------------------------------------------------------

    /// Builds a counted loop `for i in from..to { body }` and returns after
    /// positioning the insertion point in the exit block.
    ///
    /// `body` receives the builder and the induction value `i` (type `I64`)
    /// and must leave the insertion point in a block that falls through to
    /// the latch (i.e. must not emit its own terminator last).
    pub fn counted_loop(
        &mut self,
        from: impl Into<Operand>,
        to: impl Into<Operand>,
        body: impl FnOnce(&mut Self, ValueId),
    ) {
        let from = from.into();
        let to = to.into();
        let pre = self.cur;
        let header = self.new_block();
        let body_blk = self.new_block();
        let exit = self.new_block();

        self.br(header);
        self.switch_to(header);
        let i = self.phi(Ty::I64);
        self.phi_incoming(i, from, pre);
        let cond = self.cmp(CmpOp::SLt, Ty::I64, i, to);
        self.condbr(cond, body_blk, exit);

        self.switch_to(body_blk);
        body(self, i);
        // The block the body left us in is the latch.
        let latch = self.cur;
        let next = self.add(Ty::I64, i, self.iconst(Ty::I64, 1));
        self.phi_incoming(i, next, latch);
        self.br(header);

        self.switch_to(exit);
    }

    /// Builds an `if cond { then }` diamond; leaves the insertion point in
    /// the join block.
    pub fn if_then(&mut self, cond: impl Into<Operand>, then: impl FnOnce(&mut Self)) {
        let then_blk = self.new_block();
        let join = self.new_block();
        self.condbr(cond, then_blk, join);
        self.switch_to(then_blk);
        then(self);
        self.br(join);
        self.switch_to(join);
    }

    /// Builds an `if cond { a } else { b }` diamond returning a value of
    /// type `ty` (merged with a phi); leaves the insertion point in the
    /// join block.
    pub fn if_then_else(
        &mut self,
        ty: Ty,
        cond: impl Into<Operand>,
        then: impl FnOnce(&mut Self) -> Operand,
        els: impl FnOnce(&mut Self) -> Operand,
    ) -> ValueId {
        let then_blk = self.new_block();
        let else_blk = self.new_block();
        let join = self.new_block();
        self.condbr(cond, then_blk, else_blk);

        self.switch_to(then_blk);
        let tv = then(self);
        let t_end = self.cur;
        self.br(join);

        self.switch_to(else_blk);
        let ev = els(self);
        let e_end = self.cur;
        self.br(join);

        self.switch_to(join);
        let phi = self.phi(ty);
        self.phi_incoming(phi, tv, t_end);
        self.phi_incoming(phi, ev, e_end);
        phi
    }

    /// Finishes building and returns the function.
    pub fn finish(self) -> Function {
        self.f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_func;

    #[test]
    fn straight_line_function_verifies() {
        let mut fb = FunctionBuilder::new("f", &[Ty::I64], Some(Ty::I64));
        let x = fb.param(0);
        let y = fb.mul(Ty::I64, x, fb.iconst(Ty::I64, 3));
        let z = fb.add(Ty::I64, y, x);
        fb.ret(Some(z.into()));
        let f = fb.finish();
        verify_func(&f, &[], &[]).expect("valid function");
        assert_eq!(f.placed_inst_count(), 3);
    }

    #[test]
    fn counted_loop_builds_valid_loop() {
        let mut fb = FunctionBuilder::new("sumto", &[Ty::I64], Some(Ty::I64));
        let n = fb.param(0);
        let acc_cell = fb.alloc(fb.iconst(Ty::I64, 8));
        fb.store(Ty::I64, fb.iconst(Ty::I64, 0), acc_cell);
        fb.counted_loop(fb.iconst(Ty::I64, 0), n, |b, i| {
            let cur = b.load(Ty::I64, acc_cell);
            let nxt = b.add(Ty::I64, cur, i);
            b.store(Ty::I64, nxt, acc_cell);
        });
        let total = fb.load(Ty::I64, acc_cell);
        fb.ret(Some(total.into()));
        let f = fb.finish();
        verify_func(&f, &[], &[]).expect("valid loop");
        // Entry, header, body, exit.
        assert_eq!(f.blocks.len(), 4);
    }

    #[test]
    fn if_then_else_produces_phi() {
        let mut fb = FunctionBuilder::new("max", &[Ty::I64, Ty::I64], Some(Ty::I64));
        let a = fb.param(0);
        let b = fb.param(1);
        let c = fb.cmp(CmpOp::SGt, Ty::I64, a, b);
        let m = fb.if_then_else(Ty::I64, c, |_| a.into(), |_| b.into());
        fb.ret(Some(m.into()));
        let f = fb.finish();
        verify_func(&f, &[], &[]).expect("valid diamond");
    }

    #[test]
    fn if_then_joins() {
        let mut fb = FunctionBuilder::new("clamp0", &[Ty::I64], Some(Ty::I64));
        let g = fb.alloc(fb.iconst(Ty::I64, 8));
        let a = fb.param(0);
        fb.store(Ty::I64, a, g);
        let neg = fb.cmp(CmpOp::SLt, Ty::I64, a, fb.iconst(Ty::I64, 0));
        fb.if_then(neg, |b| {
            b.store(Ty::I64, b.iconst(Ty::I64, 0), g);
        });
        let out = fb.load(Ty::I64, g);
        fb.ret(Some(out.into()));
        verify_func(&fb.finish(), &[], &[]).expect("valid if-then");
    }

    #[test]
    #[should_panic(expected = "phi_incoming on non-phi")]
    fn phi_incoming_on_non_phi_panics() {
        let mut fb = FunctionBuilder::new("f", &[], None);
        let v = fb.add(Ty::I64, fb.iconst(Ty::I64, 1), fb.iconst(Ty::I64, 2));
        fb.phi_incoming(v, fb.iconst(Ty::I64, 0), fb.entry());
    }
}
