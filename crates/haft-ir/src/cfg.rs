//! Control-flow-graph utilities: predecessors, reachability, orderings.

use crate::function::{BlockId, Function};

/// Predecessor lists and traversal orders for one function.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Predecessors of each block, in deterministic discovery order.
    pub preds: Vec<Vec<BlockId>>,
    /// Successors of each block (cached from terminators).
    pub succs: Vec<Vec<BlockId>>,
    /// Reverse postorder over reachable blocks, starting at the entry.
    pub rpo: Vec<BlockId>,
    /// Position of each block in `rpo`; `usize::MAX` for unreachable blocks.
    pub rpo_index: Vec<usize>,
}

impl Cfg {
    /// Computes the CFG of `f`.
    pub fn compute(f: &Function) -> Self {
        let n = f.blocks.len();
        let succs: Vec<Vec<BlockId>> = (0..n).map(|i| f.successors(BlockId(i as u32))).collect();
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for (b, ss) in succs.iter().enumerate() {
            for s in ss {
                let from = BlockId(b as u32);
                if !preds[s.0 as usize].contains(&from) {
                    preds[s.0 as usize].push(from);
                }
            }
        }

        // Iterative DFS postorder.
        let mut post = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // Stack entries: (block, next-successor-index).
        let mut stack: Vec<(BlockId, usize)> = vec![(f.entry(), 0)];
        visited[f.entry().0 as usize] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let ss = &succs[b.0 as usize];
            if *i < ss.len() {
                let s = ss[*i];
                *i += 1;
                if !visited[s.0 as usize] {
                    visited[s.0 as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        let rpo = post;
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.0 as usize] = i;
        }
        Cfg { preds, succs, rpo, rpo_index }
    }

    /// Returns true if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.0 as usize] != usize::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    use crate::types::Ty;

    /// entry -> header <-> body, header -> exit.
    fn loop_func() -> Function {
        let mut fb = FunctionBuilder::new("l", &[Ty::I64], None);
        let n = fb.param(0);
        fb.counted_loop(fb.iconst(Ty::I64, 0), n, |_, _| {});
        fb.ret(None);
        fb.finish()
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable_blocks() {
        let f = loop_func();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.rpo[0], f.entry());
        assert_eq!(cfg.rpo.len(), 4);
        for b in &cfg.rpo {
            assert!(cfg.is_reachable(*b));
        }
    }

    #[test]
    fn preds_are_inverse_of_succs() {
        let f = loop_func();
        let cfg = Cfg::compute(&f);
        for (b, ss) in cfg.succs.iter().enumerate() {
            for s in ss {
                assert!(cfg.preds[s.0 as usize].contains(&BlockId(b as u32)));
            }
        }
        // The loop header has two preds: entry and the latch.
        let header = BlockId(1);
        assert_eq!(cfg.preds[header.0 as usize].len(), 2);
    }

    #[test]
    fn unreachable_block_is_flagged() {
        let mut fb = FunctionBuilder::new("u", &[], None);
        fb.ret(None);
        let dead = fb.new_block();
        fb.switch_to(dead);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.rpo.len(), 1);
    }

    #[test]
    fn rpo_orders_header_before_body_and_exit() {
        let f = loop_func();
        let cfg = Cfg::compute(&f);
        let pos = |b: u32| cfg.rpo_index[b as usize];
        // entry(0) < header(1); header < body(2); header < exit(3).
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
        assert!(pos(1) < pos(3));
    }
}
