//! Dominator-tree construction (Cooper–Harvey–Kennedy).

use crate::cfg::Cfg;
use crate::function::{BlockId, Function};

/// Immediate-dominator tree over the reachable blocks of one function.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// `idom[b]` is the immediate dominator of block `b`; the entry's idom
    /// is itself; unreachable blocks map to `None`.
    pub idom: Vec<Option<BlockId>>,
}

impl DomTree {
    /// Computes the dominator tree using the Cooper–Harvey–Kennedy
    /// iterative algorithm over reverse postorder.
    pub fn compute(f: &Function, cfg: &Cfg) -> Self {
        let n = f.blocks.len();
        let entry = f.entry();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.0 as usize] = Some(entry);

        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                // First processed predecessor (must already have an idom).
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.preds[b.0 as usize] {
                    if idom[p.0 as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => Self::intersect(&idom, &cfg.rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0 as usize] != Some(ni) {
                        idom[b.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom }
    }

    fn intersect(
        idom: &[Option<BlockId>],
        rpo_index: &[usize],
        mut a: BlockId,
        mut b: BlockId,
    ) -> BlockId {
        while a != b {
            while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
                a = idom[a.0 as usize].expect("processed block has idom");
            }
            while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
                b = idom[b.0 as usize].expect("processed block has idom");
            }
        }
        a
    }

    /// Returns true if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.0 as usize] {
                Some(i) if i != cur => cur = i,
                _ => return false,
            }
        }
    }

    /// Returns true if `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::CmpOp;
    use crate::types::Ty;

    fn diamond() -> Function {
        let mut fb = FunctionBuilder::new("d", &[Ty::I64], Some(Ty::I64));
        let a = fb.param(0);
        let c = fb.cmp(CmpOp::SGt, Ty::I64, a, fb.iconst(Ty::I64, 0));
        let r = fb.if_then_else(Ty::I64, c, |b| b.iconst(Ty::I64, 1), |b| b.iconst(Ty::I64, 2));
        fb.ret(Some(r.into()));
        fb.finish()
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let entry = BlockId(0);
        let then_b = BlockId(1);
        let else_b = BlockId(2);
        let join = BlockId(3);
        assert!(dt.dominates(entry, join));
        assert!(dt.dominates(entry, then_b));
        assert!(!dt.dominates(then_b, join), "join has two preds");
        assert!(!dt.dominates(else_b, join));
        assert_eq!(dt.idom[join.0 as usize], Some(entry));
        assert!(dt.strictly_dominates(entry, join));
        assert!(!dt.strictly_dominates(entry, entry));
    }

    #[test]
    fn loop_header_dominates_body_and_exit() {
        let mut fb = FunctionBuilder::new("l", &[Ty::I64], None);
        let n = fb.param(0);
        fb.counted_loop(fb.iconst(Ty::I64, 0), n, |_, _| {});
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let header = BlockId(1);
        let body = BlockId(2);
        let exit = BlockId(3);
        assert!(dt.dominates(header, body));
        assert!(dt.dominates(header, exit));
        assert!(!dt.dominates(body, exit));
    }

    #[test]
    fn entry_is_its_own_idom() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        assert_eq!(dt.idom[0], Some(BlockId(0)));
    }
}
