//! Functions, basic blocks, and SSA value bookkeeping.

use crate::inst::{Inst, InstMeta, Op, Operand};
use crate::types::Ty;

/// Identifies an SSA value within one function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// Identifies an instruction within one function's arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

/// Identifies a basic block within one function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// How an SSA value is defined.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValueDef {
    /// The `n`-th function parameter.
    Param(u32),
    /// The result of an instruction.
    Inst(InstId),
}

/// Type and definition of one SSA value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValueInfo {
    pub ty: Ty,
    pub def: ValueDef,
}

/// A basic block: an ordered list of instruction ids ending in a terminator.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Block {
    pub insts: Vec<InstId>,
}

/// Function attributes relevant to the HAFT passes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FnAttrs {
    /// External functions are never transformed (the paper's unprotected
    /// library code, e.g. libc functions outside the hardened musl subset).
    pub external: bool,
    /// Local functions are only called from other hardened functions, which
    /// enables the TX local-call optimization (paper §3.3). Functions called
    /// from outside (e.g. `main`, thread entry points) must be black-listed
    /// by clearing this flag.
    pub local: bool,
}

/// A function in SSA form.
///
/// Instructions live in an arena (`insts`); blocks hold ordered id lists so
/// that passes can splice new instructions cheaply. Every result-producing
/// instruction has an entry in `results`, and `values` maps [`ValueId`] to
/// its type and definition.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    pub name: String,
    pub params: Vec<Ty>,
    pub ret_ty: Option<Ty>,
    pub blocks: Vec<Block>,
    pub insts: Vec<Inst>,
    /// Result value of each instruction (parallel to `insts`).
    pub results: Vec<Option<ValueId>>,
    pub values: Vec<ValueInfo>,
    pub attrs: FnAttrs,
}

impl Function {
    /// Creates an empty function with a single (empty) entry block.
    ///
    /// Parameters are assigned the first `params.len()` value ids.
    pub fn new(name: impl Into<String>, params: &[Ty], ret_ty: Option<Ty>) -> Self {
        let values = params
            .iter()
            .enumerate()
            .map(|(i, &ty)| ValueInfo { ty, def: ValueDef::Param(i as u32) })
            .collect();
        Function {
            name: name.into(),
            params: params.to_vec(),
            ret_ty,
            blocks: vec![Block::default()],
            insts: Vec::new(),
            results: Vec::new(),
            values,
            attrs: FnAttrs { external: false, local: true },
        }
    }

    /// Returns the entry block (always block 0).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Returns the value id of the `i`-th parameter.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param_value(&self, i: usize) -> ValueId {
        assert!(i < self.params.len(), "parameter index out of range");
        ValueId(i as u32)
    }

    /// Returns the type of a value.
    pub fn value_ty(&self, v: ValueId) -> Ty {
        self.values[v.0 as usize].ty
    }

    /// Returns the definition of a value.
    pub fn value_def(&self, v: ValueId) -> ValueDef {
        self.values[v.0 as usize].def
    }

    /// Returns the type of an operand.
    pub fn operand_ty(&self, o: &Operand) -> Ty {
        match o {
            Operand::Value(v) => self.value_ty(*v),
            Operand::Imm(_, ty) => *ty,
            Operand::F64Bits(_) => Ty::F64,
            Operand::GlobalAddr(_) | Operand::FuncAddr(_) => Ty::Ptr,
        }
    }

    /// Appends a new empty block and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Creates an instruction in the arena (not yet placed in any block).
    ///
    /// Returns the instruction id and, if the opcode produces a value, the
    /// freshly allocated result value id.
    pub fn create_inst(&mut self, op: Op) -> (InstId, Option<ValueId>) {
        self.create_inst_meta(op, InstMeta::default())
    }

    /// Creates an instruction with explicit metadata.
    pub fn create_inst_meta(&mut self, op: Op, meta: InstMeta) -> (InstId, Option<ValueId>) {
        let id = InstId(self.insts.len() as u32);
        let result = op.result_ty().map(|ty| {
            let v = ValueId(self.values.len() as u32);
            self.values.push(ValueInfo { ty, def: ValueDef::Inst(id) });
            v
        });
        self.insts.push(Inst { op, meta });
        self.results.push(result);
        result.inspect(|_| ()); // Keep clippy quiet about unused inspect pattern.
        (id, result)
    }

    /// Appends an already-created instruction to a block.
    pub fn push_to_block(&mut self, b: BlockId, inst: InstId) {
        self.blocks[b.0 as usize].insts.push(inst);
    }

    /// Inserts an already-created instruction at `pos` within a block.
    pub fn insert_in_block(&mut self, b: BlockId, pos: usize, inst: InstId) {
        self.blocks[b.0 as usize].insts.insert(pos, inst);
    }

    /// Returns the result value of an instruction, if any.
    pub fn inst_result(&self, id: InstId) -> Option<ValueId> {
        self.results[id.0 as usize]
    }

    /// Returns a reference to an instruction.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.0 as usize]
    }

    /// Returns a mutable reference to an instruction.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.0 as usize]
    }

    /// Returns the terminator instruction id of a block, if the block ends
    /// in one.
    pub fn terminator(&self, b: BlockId) -> Option<InstId> {
        let last = *self.blocks[b.0 as usize].insts.last()?;
        self.inst(last).op.is_terminator().then_some(last)
    }

    /// Returns the successors of a block (empty for `ret`/`tx_abort`).
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        match self.terminator(b) {
            Some(t) => self.inst(t).op.successors(),
            None => vec![],
        }
    }

    /// Iterates over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Counts instructions currently placed in blocks (excluding `Nop`s).
    pub fn placed_inst_count(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|id| !matches!(self.inst(**id).op, Op::Nop))
            .count()
    }

    /// Removes `Nop` instructions from all block lists.
    pub fn compact_nops(&mut self) {
        let insts = &self.insts;
        for b in &mut self.blocks {
            b.insts.retain(|id| !matches!(insts[id.0 as usize].op, Op::Nop));
        }
    }

    /// Replaces every use of value `from` with operand `to` in all placed
    /// instructions.
    pub fn replace_uses(&mut self, from: ValueId, to: Operand) {
        for inst in &mut self.insts {
            inst.op.map_operands(|o| {
                if *o == Operand::Value(from) {
                    *o = to;
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, Operand};

    fn sample() -> Function {
        let mut f = Function::new("f", &[Ty::I64, Ty::I64], Some(Ty::I64));
        let a = f.param_value(0);
        let b = f.param_value(1);
        let (add, sum) =
            f.create_inst(Op::Bin { op: BinOp::Add, ty: Ty::I64, a: a.into(), b: b.into() });
        f.push_to_block(f.entry(), add);
        let (ret, _) = f.create_inst(Op::Ret { val: Some(sum.unwrap().into()) });
        f.push_to_block(f.entry(), ret);
        f
    }

    #[test]
    fn params_get_first_value_ids() {
        let f = sample();
        assert_eq!(f.param_value(0), ValueId(0));
        assert_eq!(f.param_value(1), ValueId(1));
        assert_eq!(f.value_ty(ValueId(0)), Ty::I64);
        assert_eq!(f.value_def(ValueId(0)), ValueDef::Param(0));
    }

    #[test]
    fn instruction_results_are_tracked() {
        let f = sample();
        let add = InstId(0);
        let v = f.inst_result(add).expect("add produces a value");
        assert_eq!(f.value_ty(v), Ty::I64);
        assert_eq!(f.value_def(v), ValueDef::Inst(add));
        assert_eq!(f.inst_result(InstId(1)), None, "ret produces no value");
    }

    #[test]
    fn terminator_detection() {
        let f = sample();
        assert_eq!(f.terminator(f.entry()), Some(InstId(1)));
        assert!(f.successors(f.entry()).is_empty());
    }

    #[test]
    fn block_insertion_preserves_order() {
        let mut f = sample();
        let (nop, _) = f.create_inst(Op::Nop);
        f.insert_in_block(f.entry(), 1, nop);
        assert_eq!(f.blocks[0].insts, vec![InstId(0), InstId(2), InstId(1)]);
        assert_eq!(f.placed_inst_count(), 2, "nop not counted");
        f.compact_nops();
        assert_eq!(f.blocks[0].insts, vec![InstId(0), InstId(1)]);
    }

    #[test]
    fn replace_uses_rewrites_operands() {
        let mut f = sample();
        let sum = f.inst_result(InstId(0)).unwrap();
        f.replace_uses(sum, Operand::imm(7, Ty::I64));
        match &f.inst(InstId(1)).op {
            Op::Ret { val: Some(Operand::Imm(7, Ty::I64)) } => {}
            other => panic!("ret not rewritten: {other:?}"),
        }
    }

    #[test]
    fn operand_types() {
        let f = sample();
        assert_eq!(f.operand_ty(&Operand::imm(1, Ty::I32)), Ty::I32);
        assert_eq!(f.operand_ty(&Operand::f64(1.0)), Ty::F64);
        assert_eq!(f.operand_ty(&Operand::Value(ValueId(0))), Ty::I64);
    }

    #[test]
    #[should_panic(expected = "parameter index out of range")]
    fn param_out_of_range_panics() {
        sample().param_value(5);
    }
}
