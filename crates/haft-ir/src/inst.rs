//! Instruction set of the IR.
//!
//! The grouping of opcodes mirrors the classification the HAFT passes need
//! (paper §3.2): *replicable compute* is duplicated by ILR, *memory* and
//! *control flow* are not, and the `Tx*` intrinsics are inserted by the TX
//! pass to delimit hardware transactions.

use crate::function::{BlockId, ValueId};
use crate::module::{FuncId, GlobalId};
use crate::types::Ty;

/// An instruction operand.
///
/// Constants are immediate operands rather than interned values; this makes
/// shadow-flow construction in ILR trivial (the shadow of a constant is the
/// constant itself, exactly as in the paper's LLVM implementation where
/// immediates need no duplication).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Operand {
    /// An SSA value (function parameter or instruction result).
    Value(ValueId),
    /// An integer (or pointer) immediate of the given type.
    Imm(i64, Ty),
    /// A floating-point immediate, stored as raw IEEE-754 bits.
    F64Bits(u64),
    /// The base address of a global.
    GlobalAddr(GlobalId),
    /// The "address" of a function, for indirect calls.
    FuncAddr(FuncId),
}

impl Operand {
    /// Builds an `f64` immediate.
    pub fn f64(v: f64) -> Self {
        Operand::F64Bits(v.to_bits())
    }

    /// Builds an integer immediate of type `ty`.
    pub fn imm(v: i64, ty: Ty) -> Self {
        Operand::Imm(v, ty)
    }

    /// Returns the contained SSA value, if this operand is one.
    pub fn as_value(self) -> Option<ValueId> {
        match self {
            Operand::Value(v) => Some(v),
            _ => None,
        }
    }

    /// Returns true if this operand is a compile-time constant.
    pub fn is_const(self) -> bool {
        !matches!(self, Operand::Value(_))
    }
}

impl From<ValueId> for Operand {
    fn from(v: ValueId) -> Self {
        Operand::Value(v)
    }
}

/// Integer and floating-point binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Signed division; traps on division by zero (OS-detected fault).
    SDiv,
    UDiv,
    SRem,
    URem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
    FAdd,
    FSub,
    FMul,
    FDiv,
}

impl BinOp {
    /// Returns true for the floating-point operators.
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }

    /// Returns true for operators that can trap at run time.
    pub fn can_trap(self) -> bool {
        matches!(self, BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem)
    }
}

/// Unary operators, including the "math unit" ops the FP kernels need.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer two's-complement negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Floating-point negation.
    FNeg,
    /// Floating-point square root.
    FSqrt,
    /// Floating-point natural exponential.
    FExp,
    /// Floating-point natural logarithm.
    FLn,
    /// Floating-point absolute value.
    FAbs,
}

/// Comparison predicates (result type is always `i1`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    SLt,
    SLe,
    SGt,
    SGe,
    ULt,
    ULe,
    UGt,
    UGe,
    FLt,
    FLe,
    FGt,
    FGe,
    FEq,
    FNe,
}

impl CmpOp {
    /// Returns the predicate with operands swapped sides.
    pub fn swapped(self) -> Self {
        use CmpOp::*;
        match self {
            Eq => Eq,
            Ne => Ne,
            SLt => SGt,
            SLe => SGe,
            SGt => SLt,
            SGe => SLe,
            ULt => UGt,
            ULe => UGe,
            UGt => ULt,
            UGe => ULe,
            FLt => FGt,
            FLe => FGe,
            FGt => FLt,
            FGe => FLe,
            FEq => FEq,
            FNe => FNe,
        }
    }
}

/// Value conversions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CastKind {
    /// Zero-extend (or reinterpret low bits when narrowing is impossible).
    ZExt,
    /// Sign-extend.
    SExt,
    /// Truncate to a narrower integer.
    Trunc,
    /// Signed integer to floating point.
    SiToFp,
    /// Floating point to signed integer (round toward zero).
    FpToSi,
    /// Reinterpret bits between `i64`/`f64`/`ptr`.
    Bitcast,
}

/// Read-modify-write atomic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RmwOp {
    /// Atomic fetch-add; returns the old value.
    Add,
    /// Atomic exchange; returns the old value.
    Xchg,
}

/// Target of a call.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Callee {
    /// Statically-known callee.
    Direct(FuncId),
    /// Indirect call through a function-pointer value.
    ///
    /// HAFT treats indirect callees conservatively as external functions
    /// (the paper's SQLite case study pays exactly this cost).
    Indirect(Operand),
}

/// Transaction-abort codes, mirroring TSX `XABORT` immediate codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbortCode {
    /// An ILR check detected a master/shadow divergence.
    IlrDetected,
    /// Explicit user abort (used in tests and lock-elision fallback).
    Explicit,
}

/// An instruction opcode with its operands.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    // --- replicable compute -------------------------------------------------
    /// Binary arithmetic/logic.
    Bin { op: BinOp, ty: Ty, a: Operand, b: Operand },
    /// Unary arithmetic.
    Un { op: UnOp, ty: Ty, a: Operand },
    /// Comparison producing `i1`.
    Cmp { op: CmpOp, ty: Ty, a: Operand, b: Operand },
    /// Register-to-register copy.
    ///
    /// ILR uses moves to replicate the results of non-replicated
    /// instructions (loads in unoptimized mode, calls, atomics); the paper
    /// keeps them opaque to the optimizer via pseudo-instructions, which we
    /// model by simply never folding moves.
    Move { ty: Ty, a: Operand },
    /// Conversion.
    Cast { kind: CastKind, to: Ty, a: Operand },
    /// `c ? t : f` without control flow.
    Select { ty: Ty, c: Operand, t: Operand, f: Operand },
    /// Address arithmetic: `base + index * scale + offset`.
    Gep { base: Operand, index: Operand, scale: u32, offset: i64 },
    /// SSA phi node.
    Phi { ty: Ty, incomings: Vec<(Operand, BlockId)> },

    // --- memory -------------------------------------------------------------
    /// Memory load. `atomic` loads are never replicated by ILR.
    Load { ty: Ty, addr: Operand, atomic: bool },
    /// Memory store. `atomic` stores are externalization events for ILR.
    Store { ty: Ty, val: Operand, addr: Operand, atomic: bool },
    /// Atomic read-modify-write; returns the old value.
    Rmw { op: RmwOp, ty: Ty, addr: Operand, val: Operand },
    /// Atomic compare-exchange; returns the old value.
    CmpXchg { ty: Ty, addr: Operand, expected: Operand, new: Operand },
    /// Heap allocation (bump arena); returns a pointer.
    Alloc { size: Operand },

    // --- control flow -------------------------------------------------------
    /// Unconditional branch.
    Br { dest: BlockId },
    /// Conditional branch on an `i1`.
    CondBr { cond: Operand, t: BlockId, f: BlockId },
    /// Function call.
    Call { callee: Callee, args: Vec<Operand>, ret_ty: Option<Ty> },
    /// Function return.
    Ret { val: Option<Operand> },

    // --- runtime intrinsics ---------------------------------------------------
    /// Begin a hardware transaction (TX pass; paper's `tx-begin()`).
    TxBegin,
    /// Commit the current transaction (paper's `tx-end()`).
    TxEnd,
    /// Commit-and-restart if the instruction counter exceeds the threshold
    /// (paper's `tx-cond-split()`).
    TxCondSplit,
    /// Increment the per-thread instruction counter (paper's
    /// `tx-counter-inc(n)`).
    TxCounterInc { amount: u32 },
    /// Abort: roll back the active transaction, or terminate the program
    /// when executing non-transactionally (ILR's fail-stop fallback).
    TxAbort { code: AbortCode },
    /// Acquire a lock word (elidable by HAFT's lock-elision wrapper).
    Lock { addr: Operand },
    /// Release a lock word.
    Unlock { addr: Operand },
    /// Majority vote over three copies of a value (TMR pass; Elzar's
    /// `vote()` at synchronization points). Returns the two-of-three
    /// majority and lets execution continue — a fault in a single copy is
    /// *masked* rather than rolled back. If all three copies disagree the
    /// VM treats it like a failed ILR check (fail-stop, or transactional
    /// rollback when inside a transaction).
    Vote { ty: Ty, a: Operand, b: Operand, c: Operand },
    /// Checksum verify-and-correct over three redundant computations of a
    /// value (ABFT pass). Semantically a two-of-three majority like
    /// [`Op::Vote`], but attributed to the checksum epilogue: a masked
    /// single-lane divergence counts as a *checksum correction* rather
    /// than a vote. Three-way divergence is uncorrectable and fail-stops
    /// through the ILR detect path.
    ChkCorrect { ty: Ty, a: Operand, b: Operand, c: Operand },
    /// Externalize a value to the program output (an I/O event; unfriendly
    /// to transactions, like a syscall under TSX).
    Emit { ty: Ty, val: Operand },
    /// Current simulated thread index as `i64`.
    ThreadId,
    /// Total simulated thread count as `i64`.
    NumThreads,
    /// No-op (placeholder produced by peepholes before compaction).
    Nop,
}

/// Per-instruction metadata flags used for pass-to-pass communication.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstMeta {
    /// Set by ILR on instructions belonging to the shadow data flow.
    pub shadow: bool,
    /// Set by ILR on fault-propagation checks so that TX can hoist them
    /// into the conditional transaction split (paper §3.3).
    pub fprop_check: bool,
    /// Set by ILR on the compare/branch pair of a detection check.
    pub ilr_check: bool,
}

/// A complete instruction: opcode plus metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct Inst {
    pub op: Op,
    pub meta: InstMeta,
}

impl Inst {
    /// Wraps an opcode with default metadata.
    pub fn new(op: Op) -> Self {
        Inst { op, meta: InstMeta::default() }
    }
}

impl Op {
    /// Returns true if ILR replicates this instruction into the shadow flow.
    ///
    /// Per the paper (§3.2): everything except control flow and memory
    /// accesses is replicated; phis are replicated so the shadow flow stays
    /// closed under SSA.
    pub fn is_replicable(&self) -> bool {
        matches!(
            self,
            Op::Bin { .. }
                | Op::Un { .. }
                | Op::Cmp { .. }
                | Op::Move { .. }
                | Op::Cast { .. }
                | Op::Select { .. }
                | Op::Gep { .. }
                | Op::Phi { .. }
        )
    }

    /// Returns true for block terminators.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Op::Br { .. } | Op::CondBr { .. } | Op::Ret { .. } | Op::TxAbort { .. })
    }

    /// Returns true for memory-touching instructions.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Op::Load { .. }
                | Op::Store { .. }
                | Op::Rmw { .. }
                | Op::CmpXchg { .. }
                | Op::Alloc { .. }
        )
    }

    /// Returns true for atomic memory operations.
    pub fn is_atomic(&self) -> bool {
        match self {
            Op::Load { atomic, .. } | Op::Store { atomic, .. } => *atomic,
            Op::Rmw { .. } | Op::CmpXchg { .. } => true,
            _ => false,
        }
    }

    /// Returns true for phi nodes.
    pub fn is_phi(&self) -> bool {
        matches!(self, Op::Phi { .. })
    }

    /// Returns the result type, or `None` for void instructions.
    pub fn result_ty(&self) -> Option<Ty> {
        match self {
            Op::Bin { ty, .. } | Op::Un { ty, .. } | Op::Move { ty, .. } => Some(*ty),
            Op::Cmp { .. } => Some(Ty::I1),
            Op::Cast { to, .. } => Some(*to),
            Op::Select { ty, .. } => Some(*ty),
            Op::Gep { .. } => Some(Ty::Ptr),
            Op::Phi { ty, .. } => Some(*ty),
            Op::Load { ty, .. } => Some(*ty),
            Op::Rmw { ty, .. } | Op::CmpXchg { ty, .. } => Some(*ty),
            Op::Alloc { .. } => Some(Ty::Ptr),
            Op::Call { ret_ty, .. } => *ret_ty,
            Op::Vote { ty, .. } | Op::ChkCorrect { ty, .. } => Some(*ty),
            Op::ThreadId | Op::NumThreads => Some(Ty::I64),
            _ => None,
        }
    }

    /// Visits every operand.
    pub fn for_each_operand(&self, mut f: impl FnMut(&Operand)) {
        match self {
            Op::Bin { a, b, .. } | Op::Cmp { a, b, .. } => {
                f(a);
                f(b);
            }
            Op::Un { a, .. } | Op::Move { a, .. } | Op::Cast { a, .. } => f(a),
            Op::Select { c, t, f: fv, .. } => {
                f(c);
                f(t);
                f(fv);
            }
            Op::Gep { base, index, .. } => {
                f(base);
                f(index);
            }
            Op::Phi { incomings, .. } => {
                for (v, _) in incomings {
                    f(v);
                }
            }
            Op::Load { addr, .. } => f(addr),
            Op::Store { val, addr, .. } => {
                f(val);
                f(addr);
            }
            Op::Rmw { addr, val, .. } => {
                f(addr);
                f(val);
            }
            Op::CmpXchg { addr, expected, new, .. } => {
                f(addr);
                f(expected);
                f(new);
            }
            Op::Alloc { size } => f(size),
            Op::CondBr { cond, .. } => f(cond),
            Op::Call { callee, args, .. } => {
                if let Callee::Indirect(v) = callee {
                    f(v);
                }
                for a in args {
                    f(a);
                }
            }
            Op::Ret { val: Some(v) } => f(v),
            Op::Vote { a, b, c, .. } | Op::ChkCorrect { a, b, c, .. } => {
                f(a);
                f(b);
                f(c);
            }
            Op::Lock { addr } | Op::Unlock { addr } => f(addr),
            Op::Emit { val, .. } => f(val),
            Op::Br { .. }
            | Op::Ret { val: None }
            | Op::TxBegin
            | Op::TxEnd
            | Op::TxCondSplit
            | Op::TxCounterInc { .. }
            | Op::TxAbort { .. }
            | Op::ThreadId
            | Op::NumThreads
            | Op::Nop => {}
        }
    }

    /// Rewrites every operand in place.
    pub fn map_operands(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Op::Bin { a, b, .. } | Op::Cmp { a, b, .. } => {
                f(a);
                f(b);
            }
            Op::Un { a, .. } | Op::Move { a, .. } | Op::Cast { a, .. } => f(a),
            Op::Select { c, t, f: fv, .. } => {
                f(c);
                f(t);
                f(fv);
            }
            Op::Gep { base, index, .. } => {
                f(base);
                f(index);
            }
            Op::Phi { incomings, .. } => {
                for (v, _) in incomings {
                    f(v);
                }
            }
            Op::Load { addr, .. } => f(addr),
            Op::Store { val, addr, .. } => {
                f(val);
                f(addr);
            }
            Op::Rmw { addr, val, .. } => {
                f(addr);
                f(val);
            }
            Op::CmpXchg { addr, expected, new, .. } => {
                f(addr);
                f(expected);
                f(new);
            }
            Op::Alloc { size } => f(size),
            Op::CondBr { cond, .. } => f(cond),
            Op::Call { callee, args, .. } => {
                if let Callee::Indirect(v) = callee {
                    f(v);
                }
                for a in args {
                    f(a);
                }
            }
            Op::Ret { val: Some(v) } => f(v),
            Op::Vote { a, b, c, .. } | Op::ChkCorrect { a, b, c, .. } => {
                f(a);
                f(b);
                f(c);
            }
            Op::Lock { addr } | Op::Unlock { addr } => f(addr),
            Op::Emit { val, .. } => f(val),
            _ => {}
        }
    }

    /// Returns the blocks this terminator may transfer control to.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Op::Br { dest } => vec![*dest],
            Op::CondBr { t, f, .. } => vec![*t, *f],
            _ => vec![],
        }
    }

    /// Rewrites successor block ids in place.
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Op::Br { dest } => *dest = f(*dest),
            Op::CondBr { t, f: fb, .. } => {
                *t = f(*t);
                *fb = f(*fb);
            }
            Op::Phi { incomings, .. } => {
                for (_, b) in incomings {
                    *b = f(*b);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> Operand {
        Operand::Value(ValueId(n))
    }

    #[test]
    fn replicable_classification_matches_paper() {
        // Compute is replicated.
        assert!(Op::Bin { op: BinOp::Add, ty: Ty::I64, a: v(0), b: v(1) }.is_replicable());
        assert!(Op::Phi { ty: Ty::I64, incomings: vec![] }.is_replicable());
        assert!(Op::Gep { base: v(0), index: v(1), scale: 8, offset: 0 }.is_replicable());
        // Memory and control flow are not.
        assert!(!Op::Load { ty: Ty::I64, addr: v(0), atomic: false }.is_replicable());
        assert!(!Op::Store { ty: Ty::I64, val: v(0), addr: v(1), atomic: false }.is_replicable());
        assert!(!Op::Br { dest: BlockId(0) }.is_replicable());
        assert!(!Op::Call { callee: Callee::Direct(FuncId(0)), args: vec![], ret_ty: None }
            .is_replicable());
        // Runtime intrinsics are not.
        assert!(!Op::TxBegin.is_replicable());
        assert!(!Op::Emit { ty: Ty::I64, val: v(0) }.is_replicable());
        // Votes are synchronization points, never replicated themselves.
        assert!(!Op::Vote { ty: Ty::I64, a: v(0), b: v(1), c: v(2) }.is_replicable());
        // Checksum corrections are synchronization points too.
        assert!(!Op::ChkCorrect { ty: Ty::I64, a: v(0), b: v(1), c: v(2) }.is_replicable());
    }

    #[test]
    fn terminators() {
        assert!(Op::Br { dest: BlockId(0) }.is_terminator());
        assert!(Op::CondBr { cond: v(0), t: BlockId(0), f: BlockId(1) }.is_terminator());
        assert!(Op::Ret { val: None }.is_terminator());
        assert!(Op::TxAbort { code: AbortCode::IlrDetected }.is_terminator());
        assert!(!Op::TxEnd.is_terminator());
    }

    #[test]
    fn atomicity_classification() {
        assert!(Op::Load { ty: Ty::I64, addr: v(0), atomic: true }.is_atomic());
        assert!(!Op::Load { ty: Ty::I64, addr: v(0), atomic: false }.is_atomic());
        assert!(Op::Rmw { op: RmwOp::Add, ty: Ty::I64, addr: v(0), val: v(1) }.is_atomic());
        assert!(Op::CmpXchg { ty: Ty::I64, addr: v(0), expected: v(1), new: v(2) }.is_atomic());
    }

    #[test]
    fn result_types() {
        assert_eq!(
            Op::Cmp { op: CmpOp::Eq, ty: Ty::I64, a: v(0), b: v(1) }.result_ty(),
            Some(Ty::I1)
        );
        assert_eq!(
            Op::Gep { base: v(0), index: v(1), scale: 1, offset: 0 }.result_ty(),
            Some(Ty::Ptr)
        );
        assert_eq!(
            Op::Store { ty: Ty::I64, val: v(0), addr: v(1), atomic: false }.result_ty(),
            None
        );
        assert_eq!(Op::ThreadId.result_ty(), Some(Ty::I64));
    }

    #[test]
    fn operand_visitation_covers_all_uses() {
        let op = Op::CmpXchg { ty: Ty::I64, addr: v(0), expected: v(1), new: v(2) };
        let mut seen = vec![];
        op.for_each_operand(|o| seen.push(*o));
        assert_eq!(seen, vec![v(0), v(1), v(2)]);

        let call = Op::Call {
            callee: Callee::Indirect(v(9)),
            args: vec![v(1), Operand::imm(3, Ty::I64)],
            ret_ty: Some(Ty::I64),
        };
        let mut count = 0;
        call.for_each_operand(|_| count += 1);
        assert_eq!(count, 3);

        let vote = Op::Vote { ty: Ty::I64, a: v(4), b: v(5), c: v(6) };
        let mut seen = vec![];
        vote.for_each_operand(|o| seen.push(*o));
        assert_eq!(seen, vec![v(4), v(5), v(6)]);
        assert_eq!(vote.result_ty(), Some(Ty::I64));

        let chk = Op::ChkCorrect { ty: Ty::F64, a: v(4), b: v(5), c: v(6) };
        let mut seen = vec![];
        chk.for_each_operand(|o| seen.push(*o));
        assert_eq!(seen, vec![v(4), v(5), v(6)]);
        assert_eq!(chk.result_ty(), Some(Ty::F64));
    }

    #[test]
    fn map_operands_rewrites_in_place() {
        let mut op = Op::Bin { op: BinOp::Add, ty: Ty::I64, a: v(0), b: v(1) };
        op.map_operands(|o| {
            if let Operand::Value(id) = o {
                *o = Operand::Value(ValueId(id.0 + 10));
            }
        });
        assert_eq!(op, Op::Bin { op: BinOp::Add, ty: Ty::I64, a: v(10), b: v(11) });
    }

    #[test]
    fn successors_and_remap() {
        let mut op = Op::CondBr { cond: v(0), t: BlockId(1), f: BlockId(2) };
        assert_eq!(op.successors(), vec![BlockId(1), BlockId(2)]);
        op.map_successors(|b| BlockId(b.0 + 5));
        assert_eq!(op.successors(), vec![BlockId(6), BlockId(7)]);
    }

    #[test]
    fn cmp_swapped_is_involutive_on_symmetric_ops() {
        assert_eq!(CmpOp::Eq.swapped(), CmpOp::Eq);
        assert_eq!(CmpOp::SLt.swapped(), CmpOp::SGt);
        assert_eq!(CmpOp::SLt.swapped().swapped(), CmpOp::SLt);
    }

    #[test]
    fn const_operands() {
        assert!(Operand::imm(1, Ty::I64).is_const());
        assert!(Operand::f64(1.5).is_const());
        assert!(!v(3).is_const());
        assert_eq!(v(3).as_value(), Some(ValueId(3)));
        assert_eq!(Operand::imm(1, Ty::I64).as_value(), None);
    }
}
