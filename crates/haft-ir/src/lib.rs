//! SSA-based compiler IR for the HAFT reproduction.
//!
//! HAFT ("Hardware-Assisted Fault Tolerance", EuroSys 2016) is implemented in
//! the paper as a pair of LLVM passes. This crate provides the IR those
//! passes operate on: a small, typed, SSA-form intermediate representation
//! with the exact instruction classes the HAFT transformations distinguish —
//! replicable compute, memory accesses (regular and atomic), control flow,
//! and the runtime intrinsics inserted by the ILR and TX passes
//! (`tx_begin`, `tx_end`, `tx_cond_split`, `tx_counter_inc`, `tx_abort`).
//!
//! The crate also contains the analyses the passes need: CFG utilities,
//! dominator trees, and natural-loop detection, plus a verifier that checks
//! SSA dominance and type agreement after every transformation.
//!
//! # Examples
//!
//! ```
//! use haft_ir::builder::FunctionBuilder;
//! use haft_ir::module::Module;
//! use haft_ir::types::Ty;
//!
//! let mut m = Module::new("demo");
//! let mut fb = FunctionBuilder::new("add1", &[Ty::I64], Some(Ty::I64));
//! let x = fb.param(0);
//! let one = fb.iconst(Ty::I64, 1);
//! let y = fb.add(Ty::I64, x, one);
//! fb.ret(Some(y.into()));
//! m.push_func(fb.finish());
//! assert!(haft_ir::verify::verify_module(&m).is_ok());
//! ```

pub mod builder;
pub mod cfg;
pub mod dom;
pub mod function;
pub mod inst;
pub mod loops;
pub mod module;
pub mod parser;
pub mod printer;
pub mod rng;
pub mod types;
pub mod verify;

pub use function::{BlockId, Function, InstId, ValueDef, ValueId};
pub use inst::{
    AbortCode, BinOp, Callee, CastKind, CmpOp, Inst, InstMeta, Op, Operand, RmwOp, UnOp,
};
pub use module::{FuncId, Global, GlobalId, GlobalInit, Module};
pub use types::Ty;
