//! Natural-loop detection and loop utilities for the TX pass.
//!
//! The TX transactification algorithm (paper §3.2) needs, per loop: the
//! header (where the conditional transaction split goes), every latch
//! (where the instruction counter is incremented), and the longest acyclic
//! instruction path from the header to each latch (the increment amount —
//! "an upper bound of the transaction size"). The fault-propagation check
//! (§3.3) additionally needs loop nesting to identify *innermost* loops and
//! their header phis (induction variables).

use std::collections::BTreeSet;

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::function::{BlockId, Function};

/// One natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The unique entry block of the loop.
    pub header: BlockId,
    /// Blocks with a back edge to the header.
    pub latches: Vec<BlockId>,
    /// All blocks of the loop, including the header.
    pub body: BTreeSet<BlockId>,
    /// Index of the enclosing loop in [`LoopForest::loops`], if nested.
    pub parent: Option<usize>,
    /// Nesting depth (outermost = 1).
    pub depth: u32,
}

/// All natural loops of one function.
#[derive(Clone, Debug, Default)]
pub struct LoopForest {
    pub loops: Vec<Loop>,
}

impl LoopForest {
    /// Finds all natural loops of `f`.
    ///
    /// Back edges are edges `latch -> header` where `header` dominates
    /// `latch`; loops sharing a header are merged (as LLVM does).
    pub fn compute(_f: &Function, cfg: &Cfg, dom: &DomTree) -> Self {
        // Collect back edges grouped by header.
        let mut by_header: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for &b in &cfg.rpo {
            for s in &cfg.succs[b.0 as usize] {
                if dom.dominates(*s, b) {
                    match by_header.iter_mut().find(|(h, _)| h == s) {
                        Some((_, latches)) => latches.push(b),
                        None => by_header.push((*s, vec![b])),
                    }
                }
            }
        }

        // Natural loop body: header plus reverse-reachable blocks from the
        // latches that do not pass through the header.
        let mut loops: Vec<Loop> = by_header
            .into_iter()
            .map(|(header, latches)| {
                let mut body: BTreeSet<BlockId> = BTreeSet::new();
                body.insert(header);
                let mut stack: Vec<BlockId> = latches.clone();
                while let Some(b) = stack.pop() {
                    if body.insert(b) {
                        for &p in &cfg.preds[b.0 as usize] {
                            stack.push(p);
                        }
                    }
                }
                Loop { header, latches, body, parent: None, depth: 1 }
            })
            .collect();

        // Establish nesting: the parent of loop L is the smallest loop
        // strictly containing L's header (other than L itself).
        let snapshots: Vec<(BlockId, BTreeSet<BlockId>)> =
            loops.iter().map(|l| (l.header, l.body.clone())).collect();
        for (i, l) in loops.iter_mut().enumerate() {
            let mut best: Option<usize> = None;
            for (j, (hj, bodyj)) in snapshots.iter().enumerate() {
                if i == j || !bodyj.contains(&l.header) || *hj == l.header {
                    continue;
                }
                best = match best {
                    None => Some(j),
                    Some(cur) if bodyj.len() < snapshots[cur].1.len() => Some(j),
                    keep => keep,
                };
            }
            l.parent = best;
        }
        // Depths.
        for i in 0..loops.len() {
            let mut d = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p].parent;
            }
            loops[i].depth = d;
        }
        LoopForest { loops }
    }

    /// Returns true if loop `i` contains no other loop.
    pub fn is_innermost(&self, i: usize) -> bool {
        !self.loops.iter().any(|l| l.parent == Some(i))
    }

    /// Returns the index of the innermost loop whose header is `b`, if any.
    pub fn loop_with_header(&self, b: BlockId) -> Option<usize> {
        self.loops.iter().position(|l| l.header == b)
    }
}

/// Computes the longest acyclic instruction path from the loop header to
/// each latch, following only edges inside the loop body and ignoring back
/// edges into the header.
///
/// The result is the paper's counter-increment amount: a worst-case upper
/// bound on the instructions executed in one iteration (shadow instructions
/// included, since TX runs after ILR).
pub fn longest_paths_to_latches(f: &Function, cfg: &Cfg, l: &Loop) -> Vec<(BlockId, u32)> {
    // Longest path in a DAG via memoized DFS from the header. Edges into
    // the header are ignored (they are the back edges), which makes the
    // subgraph acyclic for natural loops with a single header. Inner-loop
    // back edges are handled by skipping edges to already-on-stack nodes
    // (conservative: the longest *acyclic* path is what we bound).
    fn weight(f: &Function, b: BlockId) -> u32 {
        f.blocks[b.0 as usize].insts.len() as u32
    }

    fn dfs(
        f: &Function,
        cfg: &Cfg,
        l: &Loop,
        b: BlockId,
        memo: &mut Vec<Option<u32>>,
        on_stack: &mut Vec<bool>,
    ) -> u32 {
        if let Some(w) = memo[b.0 as usize] {
            return w;
        }
        on_stack[b.0 as usize] = true;
        let mut best = 0;
        for &s in &cfg.succs[b.0 as usize] {
            if s == l.header || !l.body.contains(&s) || on_stack[s.0 as usize] {
                continue;
            }
            best = best.max(dfs(f, cfg, l, s, memo, on_stack));
        }
        on_stack[b.0 as usize] = false;
        let w = weight(f, b) + best;
        memo[b.0 as usize] = Some(w);
        w
    }

    // Longest path from header to a specific latch: compute longest path
    // *ending* at the latch by DFS over reversed edges is more direct, but
    // for counter purposes the paper uses the longest path through the body
    // leading to the latch; we approximate per-latch with the total longest
    // path from the header (a safe upper bound, and exact for single-latch
    // loops, which is what the builder produces).
    let mut memo = vec![None; f.blocks.len()];
    let mut on_stack = vec![false; f.blocks.len()];
    let total = dfs(f, cfg, l, l.header, &mut memo, &mut on_stack);
    l.latches.iter().map(|&latch| (latch, total)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Ty;

    fn analyze(f: &Function) -> (Cfg, DomTree, LoopForest) {
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let lf = LoopForest::compute(f, &cfg, &dom);
        (cfg, dom, lf)
    }

    #[test]
    fn single_loop_is_found() {
        let mut fb = FunctionBuilder::new("l", &[Ty::I64], None);
        let n = fb.param(0);
        fb.counted_loop(fb.iconst(Ty::I64, 0), n, |b, i| {
            b.mul(Ty::I64, i, i);
        });
        fb.ret(None);
        let f = fb.finish();
        let (_, _, lf) = analyze(&f);
        assert_eq!(lf.loops.len(), 1);
        let l = &lf.loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(2)]);
        assert!(l.body.contains(&BlockId(1)) && l.body.contains(&BlockId(2)));
        assert_eq!(l.depth, 1);
        assert!(lf.is_innermost(0));
    }

    #[test]
    fn nested_loops_have_correct_depths() {
        let mut fb = FunctionBuilder::new("n", &[Ty::I64], None);
        let n = fb.param(0);
        fb.counted_loop(fb.iconst(Ty::I64, 0), n, |b, _| {
            b.counted_loop(b.iconst(Ty::I64, 0), n, |b2, j| {
                b2.add(Ty::I64, j, j);
            });
        });
        fb.ret(None);
        let f = fb.finish();
        let (_, _, lf) = analyze(&f);
        assert_eq!(lf.loops.len(), 2);
        let outer = lf.loops.iter().position(|l| l.depth == 1).unwrap();
        let inner = lf.loops.iter().position(|l| l.depth == 2).unwrap();
        assert_eq!(lf.loops[inner].parent, Some(outer));
        assert!(lf.is_innermost(inner));
        assert!(!lf.is_innermost(outer));
        // The inner loop's body is a subset of the outer's.
        assert!(lf.loops[inner].body.is_subset(&lf.loops[outer].body));
    }

    #[test]
    fn straight_line_code_has_no_loops() {
        let mut fb = FunctionBuilder::new("s", &[], None);
        fb.ret(None);
        let f = fb.finish();
        let (_, _, lf) = analyze(&f);
        assert!(lf.loops.is_empty());
    }

    #[test]
    fn longest_path_counts_body_instructions() {
        let mut fb = FunctionBuilder::new("l", &[Ty::I64], None);
        let n = fb.param(0);
        fb.counted_loop(fb.iconst(Ty::I64, 0), n, |b, i| {
            b.mul(Ty::I64, i, i);
            b.add(Ty::I64, i, i);
        });
        fb.ret(None);
        let f = fb.finish();
        let (cfg, _, lf) = analyze(&f);
        let paths = longest_paths_to_latches(&f, &cfg, &lf.loops[0]);
        assert_eq!(paths.len(), 1);
        // Header: phi + cmp + condbr = 3; body: mul + add + i+1 + br = 4.
        assert_eq!(paths[0].1, 7);
    }
}
