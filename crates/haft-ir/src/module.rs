//! Modules and global variables.

use crate::function::Function;

/// Identifies a function within a module.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Identifies a global within a module.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// Initial contents of a global region.
#[derive(Clone, Debug, PartialEq)]
pub enum GlobalInit {
    /// Zero-initialized.
    Zero,
    /// Explicit bytes (padded with zeros up to the declared size).
    Bytes(Vec<u8>),
}

/// A named global memory region.
///
/// The VM lays globals out contiguously (64-byte aligned, so that distinct
/// globals never falsely share a cache line unless a workload wants them
/// to — false sharing is introduced *within* a global on purpose, e.g. by
/// the `wordcount` kernel).
#[derive(Clone, Debug, PartialEq)]
pub struct Global {
    pub name: String,
    pub size: u64,
    pub init: GlobalInit,
}

/// A whole program: functions plus global data.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Module {
    pub name: String,
    pub funcs: Vec<Function>,
    pub globals: Vec<Global>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module { name: name.into(), funcs: Vec::new(), globals: Vec::new() }
    }

    /// Appends a function and returns its id.
    pub fn push_func(&mut self, f: Function) -> FuncId {
        self.funcs.push(f);
        FuncId(self.funcs.len() as u32 - 1)
    }

    /// Appends a zero-initialized global of `size` bytes.
    pub fn add_global(&mut self, name: impl Into<String>, size: u64) -> GlobalId {
        self.globals.push(Global { name: name.into(), size, init: GlobalInit::Zero });
        GlobalId(self.globals.len() as u32 - 1)
    }

    /// Appends a global initialized with `bytes`.
    pub fn add_global_init(&mut self, name: impl Into<String>, bytes: Vec<u8>) -> GlobalId {
        let size = bytes.len() as u64;
        self.globals.push(Global { name: name.into(), size, init: GlobalInit::Bytes(bytes) });
        GlobalId(self.globals.len() as u32 - 1)
    }

    /// Looks a function up by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs.iter().position(|f| f.name == name).map(|i| FuncId(i as u32))
    }

    /// Looks a global up by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals.iter().position(|g| g.name == name).map(|i| GlobalId(i as u32))
    }

    /// Returns a reference to a function.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Returns a mutable reference to a function.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.0 as usize]
    }

    /// Returns a reference to a global.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.0 as usize]
    }

    /// Total placed (non-`Nop`) instruction count across all functions.
    pub fn total_inst_count(&self) -> usize {
        self.funcs.iter().map(|f| f.placed_inst_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Ty;

    #[test]
    fn function_and_global_lookup() {
        let mut m = Module::new("m");
        let f = m.push_func(Function::new("foo", &[], None));
        let g = m.add_global("data", 128);
        assert_eq!(m.func_by_name("foo"), Some(f));
        assert_eq!(m.func_by_name("bar"), None);
        assert_eq!(m.global_by_name("data"), Some(g));
        assert_eq!(m.global(g).size, 128);
        assert_eq!(m.global(g).init, GlobalInit::Zero);
    }

    #[test]
    fn initialized_global_gets_size_from_bytes() {
        let mut m = Module::new("m");
        let g = m.add_global_init("tab", vec![1, 2, 3, 4]);
        assert_eq!(m.global(g).size, 4);
        assert_eq!(m.global(g).init, GlobalInit::Bytes(vec![1, 2, 3, 4]));
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut m = Module::new("m");
        let f0 = m.push_func(Function::new("a", &[Ty::I64], None));
        let f1 = m.push_func(Function::new("b", &[], Some(Ty::I64)));
        assert_eq!(f0, FuncId(0));
        assert_eq!(f1, FuncId(1));
        assert_eq!(m.func(f1).name, "b");
    }
}
