//! Parser for the textual IR format produced by [`crate::printer`].
//!
//! The grammar is line-oriented: one directive, label, or instruction per
//! line; `;` starts a comment. The parser reconstructs value ids exactly as
//! printed (`%N`), so `parse(print(m))` is the identity on well-formed
//! modules — a property the test suite checks with proptest-generated
//! programs.

use std::collections::HashMap;

use crate::function::{BlockId, Function, ValueId};
use crate::inst::{AbortCode, BinOp, Callee, CastKind, CmpOp, InstMeta, Op, Operand, RmwOp, UnOp};
use crate::module::{FuncId, GlobalId, GlobalInit, Module};
use crate::types::Ty;

/// A parse failure with a line number (1-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a module from its textual form.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    Parser::new(text).parse()
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.split(';').next().unwrap_or("").trim()))
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser { lines, pos: 0 }
    }

    fn err<T>(&self, line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { line, msg: msg.into() })
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next_line(&mut self) -> Option<(usize, &'a str)> {
        let l = self.peek();
        if l.is_some() {
            self.pos += 1;
        }
        l
    }

    fn parse(&mut self) -> Result<Module, ParseError> {
        let mut m = Module::new("");
        while let Some((ln, line)) = self.next_line() {
            if let Some(rest) = line.strip_prefix("module ") {
                m.name = parse_quoted(rest)
                    .ok_or(ParseError { line: ln, msg: "expected module \"name\"".into() })?;
            } else if let Some(rest) = line.strip_prefix("global ") {
                let (name, rest) = split_quoted(rest)
                    .ok_or(ParseError { line: ln, msg: "expected global \"name\"".into() })?;
                let mut it = rest.split_whitespace();
                let size: u64 = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or(ParseError { line: ln, msg: "expected global size".into() })?;
                match it.next() {
                    Some("zero") => {
                        m.globals.push(crate::module::Global {
                            name,
                            size,
                            init: GlobalInit::Zero,
                        });
                    }
                    Some("bytes") => {
                        let hex = it.next().unwrap_or("");
                        let bytes = parse_hex(hex)
                            .ok_or(ParseError { line: ln, msg: "bad hex bytes".into() })?;
                        m.globals.push(crate::module::Global {
                            name,
                            size,
                            init: GlobalInit::Bytes(bytes),
                        });
                    }
                    _ => return self.err(ln, "expected 'zero' or 'bytes'"),
                }
            } else if line.starts_with("func ") {
                self.pos -= 1;
                let f = self.parse_func()?;
                m.funcs.push(f);
            } else {
                return self.err(ln, format!("unexpected line: {line}"));
            }
        }
        Ok(m)
    }

    fn parse_func(&mut self) -> Result<Function, ParseError> {
        let (ln, header) = self.next_line().expect("caller checked");
        let rest = header.strip_prefix("func ").expect("caller checked");
        let (name, rest) = split_quoted(rest)
            .ok_or(ParseError { line: ln, msg: "expected func \"name\"".into() })?;
        let rest = rest.trim();
        let open =
            rest.find('(').ok_or(ParseError { line: ln, msg: "expected parameter list".into() })?;
        let close =
            rest.find(')').ok_or(ParseError { line: ln, msg: "unclosed parameter list".into() })?;
        let params: Vec<Ty> = rest[open + 1..close]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| parse_ty(s).ok_or(ParseError { line: ln, msg: format!("bad type {s}") }))
            .collect::<Result<_, _>>()?;
        let tail = rest[close + 1..].trim().trim_end_matches('{').trim();
        let mut ret_ty = None;
        let mut external = false;
        let mut local = true;
        let mut toks = tail.split_whitespace().peekable();
        if toks.peek() == Some(&"->") {
            toks.next();
            let t =
                toks.next().ok_or(ParseError { line: ln, msg: "expected return type".into() })?;
            ret_ty =
                Some(parse_ty(t).ok_or(ParseError { line: ln, msg: format!("bad type {t}") })?);
        }
        for t in toks {
            match t {
                "external" => external = true,
                "nonlocal" => local = false,
                other => return self.err(ln, format!("unknown attribute {other}")),
            }
        }

        let mut f = Function::new(name, &params, ret_ty);
        f.attrs.external = external;
        f.attrs.local = local;
        f.blocks.clear();

        // First pass within the function: gather lines and block labels.
        let mut body: Vec<(usize, &str)> = Vec::new();
        loop {
            let Some((ln2, line)) = self.next_line() else {
                return self.err(ln, "unterminated function (missing })");
            };
            if line == "}" {
                break;
            }
            body.push((ln2, line));
        }

        // Map value names: parameters are %0..%k-1; instruction results are
        // assigned in order of appearance, which matches the printer.
        let mut cur_block: Option<BlockId> = None;
        let mut value_map: HashMap<u32, ValueId> = HashMap::new();
        for i in 0..params.len() as u32 {
            value_map.insert(i, ValueId(i));
        }

        // Pre-scan for the number of blocks so branch targets resolve.
        let nblocks = body.iter().filter(|(_, l)| l.ends_with(':')).count();
        for _ in 0..nblocks.max(1) {
            f.add_block();
        }

        // Pre-scan result names in order so that forward value references
        // (phis over back edges) resolve.
        {
            let mut next = params.len() as u32;
            for (_, line) in &body {
                if line.ends_with(':') {
                    continue;
                }
                if let Some(eq) = line.find('=') {
                    let lhs = line[..eq].trim();
                    if let Some(n) = lhs.strip_prefix('%').and_then(|s| s.parse::<u32>().ok()) {
                        value_map.insert(n, ValueId(next));
                        next += 1;
                    }
                }
            }
        }

        let mut bidx = 0u32;
        for (ln2, line) in body {
            if let Some(label) = line.strip_suffix(':') {
                if !label.starts_with('b') {
                    return self.err(ln2, format!("bad block label {label}"));
                }
                cur_block = Some(BlockId(bidx));
                bidx += 1;
                continue;
            }
            let Some(cb) = cur_block else {
                return self.err(ln2, "instruction before first block label");
            };
            let (op, meta) = self.parse_inst(ln2, line, &value_map)?;
            let (iid, _res) = f.create_inst_meta(op, meta);
            f.push_to_block(cb, iid);
        }
        Ok(f)
    }

    fn parse_inst(
        &self,
        ln: usize,
        line: &str,
        vals: &HashMap<u32, ValueId>,
    ) -> Result<(Op, InstMeta), ParseError> {
        // Strip meta suffixes.
        let mut meta = InstMeta::default();
        let mut text = line.trim();
        loop {
            if let Some(rest) = text.strip_suffix("!shadow") {
                meta.shadow = true;
                text = rest.trim_end();
            } else if let Some(rest) = text.strip_suffix("!fprop") {
                meta.fprop_check = true;
                text = rest.trim_end();
            } else if let Some(rest) = text.strip_suffix("!check") {
                meta.ilr_check = true;
                text = rest.trim_end();
            } else {
                break;
            }
        }

        // Strip result assignment (result ids are re-derived in order).
        let text = match text.find('=') {
            Some(eq) if text.trim_start().starts_with('%') => text[eq + 1..].trim(),
            _ => text,
        };

        let opnd = |s: &str| -> Result<Operand, ParseError> {
            parse_operand(s, vals).ok_or(ParseError { line: ln, msg: format!("bad operand {s}") })
        };
        let blk = |s: &str| -> Result<BlockId, ParseError> {
            s.trim()
                .strip_prefix('b')
                .and_then(|x| x.parse().ok())
                .map(BlockId)
                .ok_or(ParseError { line: ln, msg: format!("bad block {s}") })
        };

        let (mnemonic, rest) = match text.find(' ') {
            Some(i) => (&text[..i], text[i + 1..].trim()),
            None => (text, ""),
        };

        let op = match mnemonic {
            "add" | "sub" | "mul" | "sdiv" | "udiv" | "srem" | "urem" | "and" | "or" | "xor"
            | "shl" | "lshr" | "ashr" | "fadd" | "fsub" | "fmul" | "fdiv" => {
                let op = parse_binop(mnemonic).unwrap();
                let (ty, args) = split_ty(rest, ln)?;
                let (a, b) = two(args, ln)?;
                Op::Bin { op, ty, a: opnd(a)?, b: opnd(b)? }
            }
            "neg" | "not" | "fneg" | "fsqrt" | "fexp" | "fln" | "fabs" => {
                let op = parse_unop(mnemonic).unwrap();
                let (ty, args) = split_ty(rest, ln)?;
                Op::Un { op, ty, a: opnd(args)? }
            }
            "cmp" => {
                let (pred, rest2) = head(rest, ln)?;
                let op = parse_cmpop(pred)
                    .ok_or(ParseError { line: ln, msg: format!("bad predicate {pred}") })?;
                let (ty, args) = split_ty(rest2, ln)?;
                let (a, b) = two(args, ln)?;
                Op::Cmp { op, ty, a: opnd(a)?, b: opnd(b)? }
            }
            "move" => {
                let (ty, args) = split_ty(rest, ln)?;
                Op::Move { ty, a: opnd(args)? }
            }
            "cast" => {
                let (kind, rest2) = head(rest, ln)?;
                let kind = parse_cast(kind)
                    .ok_or(ParseError { line: ln, msg: format!("bad cast {kind}") })?;
                let (to, args) = split_ty(rest2, ln)?;
                Op::Cast { kind, to, a: opnd(args)? }
            }
            "select" => {
                let (ty, args) = split_ty(rest, ln)?;
                let parts = commas(args);
                if parts.len() != 3 {
                    return self.err(ln, "select needs 3 operands");
                }
                Op::Select { ty, c: opnd(parts[0])?, t: opnd(parts[1])?, f: opnd(parts[2])? }
            }
            "gep" => {
                let parts = commas(rest);
                if parts.len() != 4 {
                    return self.err(ln, "gep needs base, index, scale, offset");
                }
                let scale: u32 = parts[2]
                    .trim()
                    .parse()
                    .map_err(|_| ParseError { line: ln, msg: "bad gep scale".into() })?;
                let offset: i64 = parts[3]
                    .trim()
                    .parse()
                    .map_err(|_| ParseError { line: ln, msg: "bad gep offset".into() })?;
                Op::Gep { base: opnd(parts[0])?, index: opnd(parts[1])?, scale, offset }
            }
            "phi" => {
                let (ty, args) = split_ty(rest, ln)?;
                let mut incomings = Vec::new();
                let mut cursor = args;
                while let Some(open) = cursor.find('[') {
                    let close = cursor[open..]
                        .find(']')
                        .map(|i| i + open)
                        .ok_or(ParseError { line: ln, msg: "unclosed phi incoming".into() })?;
                    let inner = &cursor[open + 1..close];
                    let (v, b) = two(inner, ln)?;
                    incomings.push((opnd(v)?, blk(b)?));
                    cursor = &cursor[close + 1..];
                }
                Op::Phi { ty, incomings }
            }
            "load" | "load_atomic" => {
                let (ty, args) = split_ty(rest, ln)?;
                Op::Load { ty, addr: opnd(args)?, atomic: mnemonic == "load_atomic" }
            }
            "store" | "store_atomic" => {
                let (ty, args) = split_ty(rest, ln)?;
                let (v, a) = two(args, ln)?;
                Op::Store { ty, val: opnd(v)?, addr: opnd(a)?, atomic: mnemonic == "store_atomic" }
            }
            "rmw" => {
                let (which, rest2) = head(rest, ln)?;
                let op = match which {
                    "add" => RmwOp::Add,
                    "xchg" => RmwOp::Xchg,
                    other => return self.err(ln, format!("bad rmw op {other}")),
                };
                let (ty, args) = split_ty(rest2, ln)?;
                let (a, v) = two(args, ln)?;
                Op::Rmw { op, ty, addr: opnd(a)?, val: opnd(v)? }
            }
            "cmpxchg" => {
                let (ty, args) = split_ty(rest, ln)?;
                let parts = commas(args);
                if parts.len() != 3 {
                    return self.err(ln, "cmpxchg needs 3 operands");
                }
                Op::CmpXchg {
                    ty,
                    addr: opnd(parts[0])?,
                    expected: opnd(parts[1])?,
                    new: opnd(parts[2])?,
                }
            }
            "alloc" => Op::Alloc { size: opnd(rest)? },
            "br" => Op::Br { dest: blk(rest)? },
            "condbr" => {
                let parts = commas(rest);
                if parts.len() != 3 {
                    return self.err(ln, "condbr needs cond, t, f");
                }
                Op::CondBr { cond: opnd(parts[0])?, t: blk(parts[1])?, f: blk(parts[2])? }
            }
            "call" | "call_indirect" => {
                let open = rest
                    .find('(')
                    .ok_or(ParseError { line: ln, msg: "call needs arg list".into() })?;
                let close = rest
                    .rfind(')')
                    .ok_or(ParseError { line: ln, msg: "unclosed arg list".into() })?;
                let target = rest[..open].trim();
                let args: Vec<Operand> = commas(&rest[open + 1..close])
                    .into_iter()
                    .filter(|s| !s.trim().is_empty())
                    .map(&opnd)
                    .collect::<Result<_, _>>()?;
                let tail = rest[close + 1..].trim();
                let ret_ty = if let Some(t) = tail.strip_prefix("->") {
                    Some(
                        parse_ty(t.trim())
                            .ok_or(ParseError { line: ln, msg: format!("bad return type {t}") })?,
                    )
                } else {
                    None
                };
                let callee = if mnemonic == "call" {
                    let fid = target
                        .strip_prefix("@f")
                        .and_then(|s| s.parse::<u32>().ok())
                        .ok_or(ParseError { line: ln, msg: format!("bad callee {target}") })?;
                    Callee::Direct(FuncId(fid))
                } else {
                    Callee::Indirect(opnd(target)?)
                };
                Op::Call { callee, args, ret_ty }
            }
            "ret" => {
                if rest.is_empty() {
                    Op::Ret { val: None }
                } else {
                    Op::Ret { val: Some(opnd(rest)?) }
                }
            }
            "tx_begin" => Op::TxBegin,
            "tx_end" => Op::TxEnd,
            "tx_cond_split" => Op::TxCondSplit,
            "tx_counter_inc" => {
                let amount: u32 = rest
                    .parse()
                    .map_err(|_| ParseError { line: ln, msg: "bad counter amount".into() })?;
                Op::TxCounterInc { amount }
            }
            "tx_abort" => {
                let code = match rest {
                    "ilr" => AbortCode::IlrDetected,
                    "explicit" => AbortCode::Explicit,
                    other => return self.err(ln, format!("bad abort code {other}")),
                };
                Op::TxAbort { code }
            }
            "vote" => {
                let (ty, args) = split_ty(rest, ln)?;
                let parts = commas(args);
                if parts.len() != 3 {
                    return self.err(ln, "vote needs 3 operands");
                }
                Op::Vote { ty, a: opnd(parts[0])?, b: opnd(parts[1])?, c: opnd(parts[2])? }
            }
            "chk_correct" => {
                let (ty, args) = split_ty(rest, ln)?;
                let parts = commas(args);
                if parts.len() != 3 {
                    return self.err(ln, "chk_correct needs 3 operands");
                }
                Op::ChkCorrect { ty, a: opnd(parts[0])?, b: opnd(parts[1])?, c: opnd(parts[2])? }
            }
            "lock" => Op::Lock { addr: opnd(rest)? },
            "unlock" => Op::Unlock { addr: opnd(rest)? },
            "emit" => {
                let (ty, args) = split_ty(rest, ln)?;
                Op::Emit { ty, val: opnd(args)? }
            }
            "thread_id" => Op::ThreadId,
            "num_threads" => Op::NumThreads,
            "nop" => Op::Nop,
            other => return self.err(ln, format!("unknown mnemonic {other}")),
        };
        Ok((op, meta))
    }
}

fn parse_quoted(s: &str) -> Option<String> {
    let s = s.trim();
    let s = s.strip_prefix('"')?;
    let end = s.find('"')?;
    Some(s[..end].to_string())
}

/// Splits `"name" rest` into the name and the remainder.
fn split_quoted(s: &str) -> Option<(String, &str)> {
    let s = s.trim();
    let inner = s.strip_prefix('"')?;
    let end = inner.find('"')?;
    Some((inner[..end].to_string(), &inner[end + 1..]))
}

fn parse_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2).map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok()).collect()
}

fn parse_ty(s: &str) -> Option<Ty> {
    match s {
        "i1" => Some(Ty::I1),
        "i8" => Some(Ty::I8),
        "i16" => Some(Ty::I16),
        "i32" => Some(Ty::I32),
        "i64" => Some(Ty::I64),
        "f64" => Some(Ty::F64),
        "ptr" => Some(Ty::Ptr),
        _ => None,
    }
}

fn parse_binop(s: &str) -> Option<BinOp> {
    use BinOp::*;
    Some(match s {
        "add" => Add,
        "sub" => Sub,
        "mul" => Mul,
        "sdiv" => SDiv,
        "udiv" => UDiv,
        "srem" => SRem,
        "urem" => URem,
        "and" => And,
        "or" => Or,
        "xor" => Xor,
        "shl" => Shl,
        "lshr" => LShr,
        "ashr" => AShr,
        "fadd" => FAdd,
        "fsub" => FSub,
        "fmul" => FMul,
        "fdiv" => FDiv,
        _ => return None,
    })
}

fn parse_unop(s: &str) -> Option<UnOp> {
    use UnOp::*;
    Some(match s {
        "neg" => Neg,
        "not" => Not,
        "fneg" => FNeg,
        "fsqrt" => FSqrt,
        "fexp" => FExp,
        "fln" => FLn,
        "fabs" => FAbs,
        _ => return None,
    })
}

fn parse_cmpop(s: &str) -> Option<CmpOp> {
    use CmpOp::*;
    Some(match s {
        "eq" => Eq,
        "ne" => Ne,
        "slt" => SLt,
        "sle" => SLe,
        "sgt" => SGt,
        "sge" => SGe,
        "ult" => ULt,
        "ule" => ULe,
        "ugt" => UGt,
        "uge" => UGe,
        "flt" => FLt,
        "fle" => FLe,
        "fgt" => FGt,
        "fge" => FGe,
        "feq" => FEq,
        "fne" => FNe,
        _ => return None,
    })
}

fn parse_cast(s: &str) -> Option<CastKind> {
    use CastKind::*;
    Some(match s {
        "zext" => ZExt,
        "sext" => SExt,
        "trunc" => Trunc,
        "sitofp" => SiToFp,
        "fptosi" => FpToSi,
        "bitcast" => Bitcast,
        _ => return None,
    })
}

fn parse_operand(s: &str, vals: &HashMap<u32, ValueId>) -> Option<Operand> {
    let s = s.trim();
    if let Some(n) = s.strip_prefix('%') {
        let n: u32 = n.parse().ok()?;
        return Some(Operand::Value(*vals.get(&n)?));
    }
    if let Some(bits) = s.strip_prefix("f64#") {
        return Some(Operand::F64Bits(u64::from_str_radix(bits, 16).ok()?));
    }
    if let Some(g) = s.strip_prefix("@g") {
        return Some(Operand::GlobalAddr(GlobalId(g.parse().ok()?)));
    }
    if let Some(f) = s.strip_prefix("@f") {
        return Some(Operand::FuncAddr(FuncId(f.parse().ok()?)));
    }
    // Immediate: value:type.
    let (v, t) = s.rsplit_once(':')?;
    Some(Operand::Imm(v.parse().ok()?, parse_ty(t)?))
}

/// Splits a leading type token from the rest.
fn split_ty(s: &str, ln: usize) -> Result<(Ty, &str), ParseError> {
    let s = s.trim();
    let (t, rest) = match s.find(' ') {
        Some(i) => (&s[..i], s[i + 1..].trim()),
        None => (s, ""),
    };
    match parse_ty(t) {
        Some(ty) => Ok((ty, rest)),
        None => Err(ParseError { line: ln, msg: format!("expected type, got {t}") }),
    }
}

fn head(s: &str, ln: usize) -> Result<(&str, &str), ParseError> {
    let s = s.trim();
    match s.find(' ') {
        Some(i) => Ok((&s[..i], s[i + 1..].trim())),
        None if !s.is_empty() => Ok((s, "")),
        None => Err(ParseError { line: ln, msg: "unexpected end of line".into() }),
    }
}

fn two(s: &str, ln: usize) -> Result<(&str, &str), ParseError> {
    let parts = commas(s);
    if parts.len() != 2 {
        return Err(ParseError { line: ln, msg: format!("expected 2 items in '{s}'") });
    }
    Ok((parts[0], parts[1]))
}

fn commas(s: &str) -> Vec<&str> {
    s.split(',').map(str::trim).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::printer::print_module;
    use crate::verify::verify_module;

    fn roundtrip(m: &Module) {
        let text = print_module(m);
        let parsed = parse_module(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        assert_eq!(print_module(&parsed), text, "round-trip mismatch");
        verify_module(&parsed).expect("parsed module verifies");
    }

    #[test]
    fn roundtrip_simple_function() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("f", &[Ty::I64, Ty::I64], Some(Ty::I64));
        let a = fb.param(0);
        let b = fb.param(1);
        let s = fb.add(Ty::I64, a, b);
        let p = fb.mul(Ty::I64, s, fb.iconst(Ty::I64, 3));
        fb.ret(Some(p.into()));
        m.push_func(fb.finish());
        roundtrip(&m);
    }

    #[test]
    fn roundtrip_loop_with_phi() {
        let mut m = Module::new("t");
        m.add_global("acc", 8);
        let mut fb = FunctionBuilder::new("l", &[Ty::I64], None);
        let n = fb.param(0);
        let g = Operand::GlobalAddr(GlobalId(0));
        fb.counted_loop(fb.iconst(Ty::I64, 0), n, |b, i| {
            let cur = b.load(Ty::I64, g);
            let nxt = b.add(Ty::I64, cur, i);
            b.store(Ty::I64, nxt, g);
        });
        fb.ret(None);
        m.push_func(fb.finish());
        roundtrip(&m);
    }

    #[test]
    fn roundtrip_calls_and_intrinsics() {
        let mut m = Module::new("t");
        let mut callee = FunctionBuilder::new("callee", &[Ty::I64], Some(Ty::I64));
        let x = callee.param(0);
        callee.ret(Some(x.into()));
        let cid = m.push_func(callee.finish());

        let mut fb = FunctionBuilder::new("main", &[], None);
        fb.set_non_local();
        let t = fb.thread_id();
        let r = fb.call(cid, &[t.into()], Some(Ty::I64)).unwrap();
        fb.emit_out(Ty::I64, r);
        fb.emit_op(Op::TxBegin);
        fb.emit_op(Op::TxCounterInc { amount: 9 });
        fb.emit_op(Op::TxCondSplit);
        fb.emit_op(Op::TxEnd);
        fb.ret(None);
        m.push_func(fb.finish());
        roundtrip(&m);
    }

    #[test]
    fn roundtrip_floats_and_casts() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("f", &[Ty::I64], Some(Ty::F64));
        let x = fb.param(0);
        let xf = fb.cast(CastKind::SiToFp, Ty::F64, x);
        let y = fb.bin(BinOp::FMul, Ty::F64, xf, fb.fconst(2.5));
        let z = fb.un(UnOp::FSqrt, Ty::F64, y);
        fb.ret(Some(z.into()));
        m.push_func(fb.finish());
        roundtrip(&m);
    }

    #[test]
    fn roundtrip_globals_with_bytes() {
        let mut m = Module::new("t");
        m.add_global_init("tab", vec![1, 2, 0xff]);
        roundtrip(&m);
    }

    #[test]
    fn roundtrip_atomic_ops() {
        let mut m = Module::new("t");
        m.add_global("w", 8);
        let g = Operand::GlobalAddr(GlobalId(0));
        let mut fb = FunctionBuilder::new("a", &[], None);
        let old = fb.rmw(RmwOp::Add, Ty::I64, g, fb.iconst(Ty::I64, 1));
        let _seen = fb.cmpxchg(Ty::I64, g, old, fb.iconst(Ty::I64, 0));
        let v = fb.load_atomic(Ty::I64, g);
        fb.store_atomic(Ty::I64, v, g);
        fb.lock(g);
        fb.unlock(g);
        fb.ret(None);
        m.push_func(fb.finish());
        roundtrip(&m);
    }

    #[test]
    fn parse_error_reports_line() {
        let text = "module \"m\"\nfunc \"f\" () {\nb0:\n  frobnicate\n}\n";
        let err = parse_module(text).unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.msg.contains("frobnicate"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "; a comment\nmodule \"m\"\n\n; another\n";
        let m = parse_module(text).unwrap();
        assert_eq!(m.name, "m");
    }

    #[test]
    fn meta_flags_roundtrip() {
        let text =
            "module \"m\"\nfunc \"f\" () {\nb0:\n  %0 = cmp ne i64 1:i64, 2:i64 !check\n  ret\n}\n";
        let m = parse_module(text).unwrap();
        assert!(m.funcs[0].inst(crate::function::InstId(0)).meta.ilr_check);
        let printed = print_module(&m);
        assert!(printed.contains("!check"));
    }
}
