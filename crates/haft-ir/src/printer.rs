//! Textual printing of modules and functions.
//!
//! The format round-trips through [`crate::parser`]; it is used by golden
//! tests and for inspecting pass output.

use std::fmt::Write as _;

use crate::function::{BlockId, Function};
use crate::inst::{AbortCode, BinOp, Callee, CastKind, CmpOp, Inst, Op, Operand, RmwOp, UnOp};
use crate::module::{GlobalInit, Module};

/// Renders a whole module.
pub fn print_module(m: &Module) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "module \"{}\"", m.name);
    for g in &m.globals {
        match &g.init {
            GlobalInit::Zero => {
                let _ = writeln!(s, "global \"{}\" {} zero", g.name, g.size);
            }
            GlobalInit::Bytes(b) => {
                let hex: String = b.iter().map(|x| format!("{x:02x}")).collect();
                let _ = writeln!(s, "global \"{}\" {} bytes {}", g.name, g.size, hex);
            }
        }
    }
    for f in &m.funcs {
        s.push('\n');
        s.push_str(&print_func(f));
    }
    s
}

/// Renders a single function.
pub fn print_func(f: &Function) -> String {
    let mut s = String::new();
    let params: Vec<String> = f.params.iter().map(|t| t.to_string()).collect();
    let ret = match f.ret_ty {
        Some(t) => format!(" -> {t}"),
        None => String::new(),
    };
    let mut attrs = String::new();
    if f.attrs.external {
        attrs.push_str(" external");
    }
    if !f.attrs.local {
        attrs.push_str(" nonlocal");
    }
    let _ = writeln!(s, "func \"{}\" ({}){}{} {{", f.name, params.join(", "), ret, attrs);
    for (bid, b) in f.iter_blocks() {
        let _ = writeln!(s, "b{}:", bid.0);
        for &iid in &b.insts {
            let inst = f.inst(iid);
            let _ = writeln!(s, "  {}", print_inst(f, iid.0 as usize, inst));
        }
    }
    s.push_str("}\n");
    s
}

fn operand(o: &Operand) -> String {
    match o {
        Operand::Value(v) => format!("%{}", v.0),
        Operand::Imm(v, ty) => format!("{v}:{ty}"),
        Operand::F64Bits(b) => format!("f64#{b:016x}"),
        Operand::GlobalAddr(g) => format!("@g{}", g.0),
        Operand::FuncAddr(f) => format!("@f{}", f.0),
    }
}

fn block(b: BlockId) -> String {
    format!("b{}", b.0)
}

/// Mnemonic tables shared with the parser.
pub(crate) fn binop_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::SDiv => "sdiv",
        BinOp::UDiv => "udiv",
        BinOp::SRem => "srem",
        BinOp::URem => "urem",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::LShr => "lshr",
        BinOp::AShr => "ashr",
        BinOp::FAdd => "fadd",
        BinOp::FSub => "fsub",
        BinOp::FMul => "fmul",
        BinOp::FDiv => "fdiv",
    }
}

pub(crate) fn unop_name(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "neg",
        UnOp::Not => "not",
        UnOp::FNeg => "fneg",
        UnOp::FSqrt => "fsqrt",
        UnOp::FExp => "fexp",
        UnOp::FLn => "fln",
        UnOp::FAbs => "fabs",
    }
}

pub(crate) fn cmp_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::SLt => "slt",
        CmpOp::SLe => "sle",
        CmpOp::SGt => "sgt",
        CmpOp::SGe => "sge",
        CmpOp::ULt => "ult",
        CmpOp::ULe => "ule",
        CmpOp::UGt => "ugt",
        CmpOp::UGe => "uge",
        CmpOp::FLt => "flt",
        CmpOp::FLe => "fle",
        CmpOp::FGt => "fgt",
        CmpOp::FGe => "fge",
        CmpOp::FEq => "feq",
        CmpOp::FNe => "fne",
    }
}

pub(crate) fn cast_name(k: CastKind) -> &'static str {
    match k {
        CastKind::ZExt => "zext",
        CastKind::SExt => "sext",
        CastKind::Trunc => "trunc",
        CastKind::SiToFp => "sitofp",
        CastKind::FpToSi => "fptosi",
        CastKind::Bitcast => "bitcast",
    }
}

fn print_inst(f: &Function, idx: usize, inst: &Inst) -> String {
    let res = match f.results[idx] {
        Some(v) => format!("%{} = ", v.0),
        None => String::new(),
    };
    let body = match &inst.op {
        Op::Bin { op, ty, a, b } => {
            format!("{} {} {}, {}", binop_name(*op), ty, operand(a), operand(b))
        }
        Op::Un { op, ty, a } => format!("{} {} {}", unop_name(*op), ty, operand(a)),
        Op::Cmp { op, ty, a, b } => {
            format!("cmp {} {} {}, {}", cmp_name(*op), ty, operand(a), operand(b))
        }
        Op::Move { ty, a } => format!("move {} {}", ty, operand(a)),
        Op::Cast { kind, to, a } => format!("cast {} {} {}", cast_name(*kind), to, operand(a)),
        Op::Select { ty, c, t, f: fv } => {
            format!("select {} {}, {}, {}", ty, operand(c), operand(t), operand(fv))
        }
        Op::Gep { base, index, scale, offset } => {
            format!("gep {}, {}, {}, {}", operand(base), operand(index), scale, offset)
        }
        Op::Phi { ty, incomings } => {
            let incs: Vec<String> =
                incomings.iter().map(|(v, b)| format!("[{}, {}]", operand(v), block(*b))).collect();
            format!("phi {} {}", ty, incs.join(", "))
        }
        Op::Load { ty, addr, atomic } => {
            let m = if *atomic { "load_atomic" } else { "load" };
            format!("{m} {} {}", ty, operand(addr))
        }
        Op::Store { ty, val, addr, atomic } => {
            let m = if *atomic { "store_atomic" } else { "store" };
            format!("{m} {} {}, {}", ty, operand(val), operand(addr))
        }
        Op::Rmw { op, ty, addr, val } => {
            let m = match op {
                RmwOp::Add => "add",
                RmwOp::Xchg => "xchg",
            };
            format!("rmw {m} {} {}, {}", ty, operand(addr), operand(val))
        }
        Op::CmpXchg { ty, addr, expected, new } => {
            format!("cmpxchg {} {}, {}, {}", ty, operand(addr), operand(expected), operand(new))
        }
        Op::Alloc { size } => format!("alloc {}", operand(size)),
        Op::Br { dest } => format!("br {}", block(*dest)),
        Op::CondBr { cond, t, f: fb } => {
            format!("condbr {}, {}, {}", operand(cond), block(*t), block(*fb))
        }
        Op::Call { callee, args, ret_ty } => {
            let argl: Vec<String> = args.iter().map(operand).collect();
            let rt = match ret_ty {
                Some(t) => format!(" -> {t}"),
                None => String::new(),
            };
            match callee {
                Callee::Direct(fid) => format!("call @f{}({}){}", fid.0, argl.join(", "), rt),
                Callee::Indirect(v) => {
                    format!("call_indirect {}({}){}", operand(v), argl.join(", "), rt)
                }
            }
        }
        Op::Ret { val } => match val {
            Some(v) => format!("ret {}", operand(v)),
            None => "ret".to_string(),
        },
        Op::TxBegin => "tx_begin".to_string(),
        Op::TxEnd => "tx_end".to_string(),
        Op::TxCondSplit => "tx_cond_split".to_string(),
        Op::TxCounterInc { amount } => format!("tx_counter_inc {amount}"),
        Op::TxAbort { code } => match code {
            AbortCode::IlrDetected => "tx_abort ilr".to_string(),
            AbortCode::Explicit => "tx_abort explicit".to_string(),
        },
        Op::Vote { ty, a, b, c } => {
            format!("vote {} {}, {}, {}", ty, operand(a), operand(b), operand(c))
        }
        Op::ChkCorrect { ty, a, b, c } => {
            format!("chk_correct {} {}, {}, {}", ty, operand(a), operand(b), operand(c))
        }
        Op::Lock { addr } => format!("lock {}", operand(addr)),
        Op::Unlock { addr } => format!("unlock {}", operand(addr)),
        Op::Emit { ty, val } => format!("emit {} {}", ty, operand(val)),
        Op::ThreadId => "thread_id".to_string(),
        Op::NumThreads => "num_threads".to_string(),
        Op::Nop => "nop".to_string(),
    };
    let mut meta = String::new();
    if inst.meta.shadow {
        meta.push_str(" !shadow");
    }
    if inst.meta.fprop_check {
        meta.push_str(" !fprop");
    }
    if inst.meta.ilr_check {
        meta.push_str(" !check");
    }
    format!("{res}{body}{meta}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::CmpOp;
    use crate::types::Ty;

    #[test]
    fn prints_simple_function() {
        let mut fb = FunctionBuilder::new("f", &[Ty::I64], Some(Ty::I64));
        let p = fb.param(0);
        let v = fb.add(Ty::I64, p, fb.iconst(Ty::I64, 1));
        fb.ret(Some(v.into()));
        let text = print_func(&fb.finish());
        assert!(text.contains("func \"f\" (i64) -> i64 {"), "{text}");
        assert!(text.contains("%1 = add i64 %0, 1:i64"), "{text}");
        assert!(text.contains("ret %1"), "{text}");
    }

    #[test]
    fn prints_phi_and_branches() {
        let mut fb = FunctionBuilder::new("l", &[Ty::I64], None);
        let n = fb.param(0);
        fb.counted_loop(fb.iconst(Ty::I64, 0), n, |_, _| {});
        fb.ret(None);
        let text = print_func(&fb.finish());
        assert!(text.contains("phi i64 [0:i64, b0]"), "{text}");
        assert!(text.contains("condbr"), "{text}");
        assert!(text.contains("cmp slt i64"), "{text}");
    }

    #[test]
    fn prints_module_with_globals() {
        let mut m = Module::new("test");
        m.add_global("zeros", 64);
        m.add_global_init("tab", vec![0xde, 0xad]);
        let mut fb = FunctionBuilder::new("main", &[], None);
        fb.ret(None);
        m.push_func(fb.finish());
        let text = print_module(&m);
        assert!(text.contains("module \"test\""), "{text}");
        assert!(text.contains("global \"zeros\" 64 zero"), "{text}");
        assert!(text.contains("global \"tab\" 2 bytes dead"), "{text}");
    }

    #[test]
    fn prints_f64_as_bits() {
        let mut fb = FunctionBuilder::new("f", &[], Some(Ty::F64));
        let v = fb.bin(crate::inst::BinOp::FAdd, Ty::F64, fb.fconst(1.5), fb.fconst(2.5));
        fb.ret(Some(v.into()));
        let text = print_func(&fb.finish());
        assert!(text.contains(&format!("f64#{:016x}", 1.5f64.to_bits())), "{text}");
    }

    #[test]
    fn prints_meta_flags() {
        let mut f = Function::new("f", &[], None);
        let (id, _) = f.create_inst_meta(
            Op::Cmp {
                op: CmpOp::Ne,
                ty: Ty::I64,
                a: Operand::imm(0, Ty::I64),
                b: Operand::imm(0, Ty::I64),
            },
            crate::inst::InstMeta { shadow: false, fprop_check: true, ilr_check: true },
        );
        f.push_to_block(f.entry(), id);
        let (r, _) = f.create_inst(Op::Ret { val: None });
        f.push_to_block(f.entry(), r);
        let text = print_func(&f);
        assert!(text.contains("!fprop"), "{text}");
        assert!(text.contains("!check"), "{text}");
    }
}
