//! Deterministic pseudo-random number generation for reproducible
//! experiments.
//!
//! Every stochastic component of the reproduction (workload data, schedule
//! jitter, spontaneous aborts, fault planning, YCSB key distributions)
//! draws from this splitmix64 generator so that a seed fully determines an
//! experiment — the property the paper's fault-injection methodology needs
//! to attribute outcome differences to the injected fault alone.

/// A splitmix64 pseudo-random generator.
///
/// Passes BigCrush as the stream `z -> mix(z)`; statistically more than
/// adequate for simulation jitter and input synthesis.
#[derive(Clone, Debug)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Prng { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Lemire-style rejection to avoid modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            if r >= threshold {
                return r % bound;
            }
        }
    }

    /// Returns a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns true with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Forks an independent generator (seeded from this stream).
    pub fn fork(&mut self) -> Prng {
        Prng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut p = Prng::new(7);
        for _ in 0..10_000 {
            assert!(p.below(13) < 13);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut p = Prng::new(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[p.below(8) as usize] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut p = Prng::new(11);
        for _ in 0..10_000 {
            let v = p.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut p = Prng::new(5);
        assert!(!(0..1000).any(|_| p.chance(0.0)));
        assert!((0..1000).all(|_| p.chance(1.0)));
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = Prng::new(9);
        let mut f = a.fork();
        // The fork must not mirror the parent.
        let same = (0..32).filter(|_| a.next_u64() == f.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Prng::new(0).below(0);
    }
}
