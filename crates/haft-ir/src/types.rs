//! Value types of the IR.

use std::fmt;

/// A first-class value type.
///
/// The set intentionally mirrors the subset of LLVM types the HAFT passes
/// care about: small integers for byte/word data, `i1` for branch
/// conditions (the moral equivalent of `EFLAGS` bits — a class of state the
/// paper's control-flow protection exists to defend), `f64` for the
/// floating-point kernels, and an address type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ty {
    /// One-bit boolean, produced by comparisons and consumed by branches.
    I1,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// IEEE-754 double.
    F64,
    /// Byte address into the simulated flat memory.
    Ptr,
}

impl Ty {
    /// Returns the size of a value of this type in bytes as stored in memory.
    ///
    /// `I1` occupies a full byte, as it would after an `i1` store in LLVM.
    pub fn size_bytes(self) -> u32 {
        match self {
            Ty::I1 | Ty::I8 => 1,
            Ty::I16 => 2,
            Ty::I32 => 4,
            Ty::I64 | Ty::F64 | Ty::Ptr => 8,
        }
    }

    /// Returns true for the integer types (including `I1` and `Ptr`).
    pub fn is_int(self) -> bool {
        !matches!(self, Ty::F64)
    }

    /// Returns true for the floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F64)
    }

    /// Returns the mask selecting the valid low bits of a register holding
    /// a value of this type.
    pub fn mask(self) -> u64 {
        match self {
            Ty::I1 => 0x1,
            Ty::I8 => 0xff,
            Ty::I16 => 0xffff,
            Ty::I32 => 0xffff_ffff,
            Ty::I64 | Ty::F64 | Ty::Ptr => u64::MAX,
        }
    }

    /// Returns the number of valid bits in a register of this type.
    pub fn bits(self) -> u32 {
        match self {
            Ty::I1 => 1,
            Ty::I8 => 8,
            Ty::I16 => 16,
            Ty::I32 => 32,
            Ty::I64 | Ty::F64 | Ty::Ptr => 64,
        }
    }

    /// Sign-extends the masked `bits` of this type to a full `i64`.
    pub fn sext(self, raw: u64) -> i64 {
        let masked = raw & self.mask();
        match self {
            Ty::I1 => {
                if masked != 0 {
                    -1
                } else {
                    0
                }
            }
            Ty::I8 => masked as u8 as i8 as i64,
            Ty::I16 => masked as u16 as i16 as i64,
            Ty::I32 => masked as u32 as i32 as i64,
            Ty::I64 | Ty::F64 | Ty::Ptr => masked as i64,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::I1 => "i1",
            Ty::I8 => "i8",
            Ty::I16 => "i16",
            Ty::I32 => "i32",
            Ty::I64 => "i64",
            Ty::F64 => "f64",
            Ty::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_llvm_conventions() {
        assert_eq!(Ty::I1.size_bytes(), 1);
        assert_eq!(Ty::I8.size_bytes(), 1);
        assert_eq!(Ty::I16.size_bytes(), 2);
        assert_eq!(Ty::I32.size_bytes(), 4);
        assert_eq!(Ty::I64.size_bytes(), 8);
        assert_eq!(Ty::F64.size_bytes(), 8);
        assert_eq!(Ty::Ptr.size_bytes(), 8);
    }

    #[test]
    fn masks_cover_exactly_the_type_bits() {
        assert_eq!(Ty::I1.mask(), 1);
        assert_eq!(Ty::I8.mask(), 0xff);
        assert_eq!(Ty::I32.mask(), 0xffff_ffff);
        assert_eq!(Ty::I64.mask(), u64::MAX);
    }

    #[test]
    fn sign_extension_is_correct_for_negative_values() {
        assert_eq!(Ty::I8.sext(0xff), -1);
        assert_eq!(Ty::I8.sext(0x7f), 127);
        assert_eq!(Ty::I16.sext(0x8000), i16::MIN as i64);
        assert_eq!(Ty::I32.sext(0xffff_ffff), -1);
        assert_eq!(Ty::I1.sext(1), -1);
        assert_eq!(Ty::I1.sext(0), 0);
    }

    #[test]
    fn int_float_classification() {
        assert!(Ty::I64.is_int());
        assert!(Ty::Ptr.is_int());
        assert!(!Ty::F64.is_int());
        assert!(Ty::F64.is_float());
    }

    #[test]
    fn display_round_trips_names() {
        for (ty, name) in [
            (Ty::I1, "i1"),
            (Ty::I8, "i8"),
            (Ty::I16, "i16"),
            (Ty::I32, "i32"),
            (Ty::I64, "i64"),
            (Ty::F64, "f64"),
            (Ty::Ptr, "ptr"),
        ] {
            assert_eq!(ty.to_string(), name);
        }
    }
}
