//! IR verifier: SSA dominance, type agreement, and structural invariants.
//!
//! Every HAFT pass output is expected to re-verify; the test suites run the
//! verifier after each transformation, which is how the reproduction guards
//! against the classes of pass bugs the paper's authors debugged at the
//! LLVM CodeGen level.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::function::{BlockId, Function, ValueDef, ValueId};
use crate::inst::{Callee, Op, Operand};
use crate::module::{Global, Module};
use crate::types::Ty;

/// Function signature used for cross-function call checking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnSig {
    pub params: Vec<Ty>,
    pub ret_ty: Option<Ty>,
}

/// Verifies a whole module; returns all diagnostics on failure.
pub fn verify_module(m: &Module) -> Result<(), Vec<String>> {
    let sigs: Vec<FnSig> =
        m.funcs.iter().map(|f| FnSig { params: f.params.clone(), ret_ty: f.ret_ty }).collect();
    let mut errs = Vec::new();
    for f in &m.funcs {
        if let Err(mut e) = verify_func(f, &sigs, &m.globals) {
            errs.append(&mut e);
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Verifies one function against the module's signatures and globals.
pub fn verify_func(f: &Function, sigs: &[FnSig], globals: &[Global]) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    let name = &f.name;

    // Locate every placed instruction.
    let mut location: Vec<Option<(BlockId, usize)>> = vec![None; f.insts.len()];
    for (bid, b) in f.iter_blocks() {
        for (pos, &iid) in b.insts.iter().enumerate() {
            if iid.0 as usize >= f.insts.len() {
                errs.push(format!("{name}: block {bid:?} references bogus inst {iid:?}"));
                continue;
            }
            if location[iid.0 as usize].is_some() {
                errs.push(format!("{name}: inst {iid:?} placed more than once"));
            }
            location[iid.0 as usize] = Some((bid, pos));
        }
    }

    // Structural checks per block: one trailing terminator, phis first.
    for (bid, b) in f.iter_blocks() {
        if b.insts.is_empty() {
            errs.push(format!("{name}: block {bid:?} is empty"));
            continue;
        }
        let last = *b.insts.last().unwrap();
        if !f.inst(last).op.is_terminator() {
            errs.push(format!("{name}: block {bid:?} does not end in a terminator"));
        }
        let mut seen_non_phi = false;
        for (pos, &iid) in b.insts.iter().enumerate() {
            let op = &f.inst(iid).op;
            if op.is_terminator() && pos + 1 != b.insts.len() {
                errs.push(format!("{name}: terminator in the middle of block {bid:?}"));
            }
            if op.is_phi() {
                if seen_non_phi {
                    errs.push(format!("{name}: phi after non-phi in block {bid:?}"));
                }
            } else {
                seen_non_phi = true;
            }
            for succ in op.successors() {
                if succ.0 as usize >= f.blocks.len() {
                    errs.push(format!("{name}: branch to bogus block {succ:?}"));
                }
            }
        }
    }
    if !errs.is_empty() {
        // CFG-dependent checks below assume structural sanity.
        return Err(errs);
    }

    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(f, &cfg);

    // Returns the defining location of a value, or None for params.
    let def_loc = |v: ValueId| -> Result<Option<(BlockId, usize)>, String> {
        match f.values.get(v.0 as usize) {
            None => Err(format!("{name}: use of bogus value {v:?}")),
            Some(info) => match info.def {
                ValueDef::Param(_) => Ok(None),
                ValueDef::Inst(iid) => match location[iid.0 as usize] {
                    Some(loc) => Ok(Some(loc)),
                    None => Err(format!("{name}: use of unplaced def {v:?}")),
                },
            },
        }
    };

    // Dominance + type checks per placed instruction.
    for (bid, b) in f.iter_blocks() {
        if !cfg.is_reachable(bid) {
            continue;
        }
        for (pos, &iid) in b.insts.iter().enumerate() {
            let op = &f.inst(iid).op;

            // Dominance of operands (phis handled separately).
            if !op.is_phi() {
                let mut check = |o: &Operand| {
                    if let Operand::Value(v) = o {
                        match def_loc(*v) {
                            Err(e) => errs.push(e),
                            Ok(None) => {}
                            Ok(Some((db, dpos))) => {
                                let ok = if db == bid {
                                    dpos < pos
                                } else {
                                    dom.strictly_dominates(db, bid)
                                };
                                if !ok {
                                    errs.push(format!(
                                        "{name}: {v:?} used in {bid:?}#{pos} does not dominate use"
                                    ));
                                }
                            }
                        }
                    }
                };
                op.for_each_operand(&mut check);
            }

            // Type and shape checks.
            match op {
                Op::Bin { ty, a, b, .. } => {
                    expect_ty(f, name, a, *ty, &mut errs);
                    expect_ty(f, name, b, *ty, &mut errs);
                }
                Op::Cmp { ty, a, b, .. } => {
                    expect_ty(f, name, a, *ty, &mut errs);
                    expect_ty(f, name, b, *ty, &mut errs);
                }
                Op::Un { ty, a, .. } | Op::Move { ty, a } => {
                    expect_ty(f, name, a, *ty, &mut errs);
                }
                Op::Select { ty, c, t, f: fv } => {
                    expect_ty(f, name, c, Ty::I1, &mut errs);
                    expect_ty(f, name, t, *ty, &mut errs);
                    expect_ty(f, name, fv, *ty, &mut errs);
                }
                Op::Gep { base, .. } => {
                    expect_ty(f, name, base, Ty::Ptr, &mut errs);
                }
                Op::Load { addr, .. } => expect_ty(f, name, addr, Ty::Ptr, &mut errs),
                Op::Store { ty, val, addr, .. } => {
                    expect_ty(f, name, val, *ty, &mut errs);
                    expect_ty(f, name, addr, Ty::Ptr, &mut errs);
                }
                Op::Rmw { ty, addr, val, .. } => {
                    expect_ty(f, name, addr, Ty::Ptr, &mut errs);
                    expect_ty(f, name, val, *ty, &mut errs);
                }
                Op::CmpXchg { ty, addr, expected, new } => {
                    expect_ty(f, name, addr, Ty::Ptr, &mut errs);
                    expect_ty(f, name, expected, *ty, &mut errs);
                    expect_ty(f, name, new, *ty, &mut errs);
                }
                Op::CondBr { cond, .. } => expect_ty(f, name, cond, Ty::I1, &mut errs),
                Op::Call { callee: Callee::Direct(fid), args, ret_ty } => {
                    match sigs.get(fid.0 as usize) {
                        None => errs.push(format!("{name}: call to bogus function {fid:?}")),
                        Some(sig) => {
                            if sig.params.len() != args.len() {
                                errs.push(format!(
                                    "{name}: call to #{} with {} args, expected {}",
                                    fid.0,
                                    args.len(),
                                    sig.params.len()
                                ));
                            } else {
                                for (a, ty) in args.iter().zip(&sig.params) {
                                    expect_ty(f, name, a, *ty, &mut errs);
                                }
                            }
                            if sig.ret_ty != *ret_ty {
                                errs.push(format!(
                                    "{name}: call to #{} return-type mismatch",
                                    fid.0
                                ));
                            }
                        }
                    }
                }
                Op::Ret { val } => match (val, f.ret_ty) {
                    (Some(v), Some(ty)) => expect_ty(f, name, v, ty, &mut errs),
                    (None, None) => {}
                    _ => errs.push(format!("{name}: ret arity mismatch")),
                },
                Op::Phi { ty, incomings } => {
                    // Incoming blocks must be exactly the CFG predecessors.
                    let mut preds = cfg.preds[bid.0 as usize].clone();
                    preds.sort();
                    let mut inc: Vec<BlockId> = incomings.iter().map(|(_, b)| *b).collect();
                    inc.sort();
                    if preds != inc {
                        errs.push(format!(
                            "{name}: phi in {bid:?} incomings {inc:?} != preds {preds:?}"
                        ));
                    }
                    for (v, from) in incomings {
                        expect_ty(f, name, v, *ty, &mut errs);
                        if let Operand::Value(val) = v {
                            match def_loc(*val) {
                                Err(e) => errs.push(e),
                                Ok(None) => {}
                                Ok(Some((db, _))) => {
                                    if !dom.dominates(db, *from) {
                                        errs.push(format!(
                                            "{name}: phi incoming {val:?} does not dominate edge from {from:?}"
                                        ));
                                    }
                                }
                            }
                        }
                    }
                }
                Op::Vote { ty, a, b, c } | Op::ChkCorrect { ty, a, b, c } => {
                    expect_ty(f, name, a, *ty, &mut errs);
                    expect_ty(f, name, b, *ty, &mut errs);
                    expect_ty(f, name, c, *ty, &mut errs);
                }
                Op::Emit { ty, val } => expect_ty(f, name, val, *ty, &mut errs),
                Op::Lock { addr } | Op::Unlock { addr } => {
                    expect_ty(f, name, addr, Ty::Ptr, &mut errs)
                }
                Op::Alloc { size } => expect_ty(f, name, size, Ty::I64, &mut errs),
                _ => {}
            }

            // Global references must exist.
            op.for_each_operand(|o| {
                if let Operand::GlobalAddr(g) = o {
                    if g.0 as usize >= globals.len() {
                        errs.push(format!("{name}: reference to bogus global {g:?}"));
                    }
                }
            });
        }
    }

    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

fn expect_ty(f: &Function, name: &str, o: &Operand, want: Ty, errs: &mut Vec<String>) {
    let got = f.operand_ty(o);
    // Pointer/integer immediates interoperate: an `i64` immediate may feed
    // a `ptr` slot and vice versa (address arithmetic).
    let compatible =
        got == want || (got == Ty::Ptr && want == Ty::I64) || (got == Ty::I64 && want == Ty::Ptr);
    if !compatible {
        errs.push(format!("{name}: operand {o:?} has type {got}, expected {want}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, CmpOp};

    #[test]
    fn missing_terminator_is_rejected() {
        let mut f = Function::new("f", &[], None);
        let (add, _) = f.create_inst(Op::Bin {
            op: BinOp::Add,
            ty: Ty::I64,
            a: Operand::imm(1, Ty::I64),
            b: Operand::imm(2, Ty::I64),
        });
        f.push_to_block(f.entry(), add);
        let errs = verify_func(&f, &[], &[]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("terminator")), "{errs:?}");
    }

    #[test]
    fn use_before_def_in_same_block_is_rejected() {
        let mut f = Function::new("f", &[], None);
        // Create the def but place the use first.
        let (def, v) = f.create_inst(Op::Bin {
            op: BinOp::Add,
            ty: Ty::I64,
            a: Operand::imm(1, Ty::I64),
            b: Operand::imm(2, Ty::I64),
        });
        let (useit, _) = f.create_inst(Op::Bin {
            op: BinOp::Add,
            ty: Ty::I64,
            a: v.unwrap().into(),
            b: Operand::imm(1, Ty::I64),
        });
        let (ret, _) = f.create_inst(Op::Ret { val: None });
        f.push_to_block(f.entry(), useit);
        f.push_to_block(f.entry(), def);
        f.push_to_block(f.entry(), ret);
        let errs = verify_func(&f, &[], &[]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("dominate")), "{errs:?}");
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let mut fb = FunctionBuilder::new("f", &[Ty::I32], None);
        let p = fb.param(0);
        // i32 param fed into an i64 add.
        fb.add(Ty::I64, p, fb.iconst(Ty::I64, 1));
        fb.ret(None);
        let errs = verify_func(&fb.finish(), &[], &[]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("type")), "{errs:?}");
    }

    #[test]
    fn condbr_requires_i1() {
        let mut fb = FunctionBuilder::new("f", &[Ty::I64], None);
        let p = fb.param(0);
        let b1 = fb.new_block();
        let b2 = fb.new_block();
        fb.condbr(p, b1, b2);
        fb.switch_to(b1);
        fb.ret(None);
        fb.switch_to(b2);
        fb.ret(None);
        let errs = verify_func(&fb.finish(), &[], &[]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("expected i1")), "{errs:?}");
    }

    #[test]
    fn phi_incomings_must_match_preds() {
        let mut fb = FunctionBuilder::new("f", &[Ty::I64], Some(Ty::I64));
        let n = fb.param(0);
        let join = fb.new_block();
        let cmp = fb.cmp(CmpOp::SGt, Ty::I64, n, fb.iconst(Ty::I64, 0));
        let other = fb.new_block();
        fb.condbr(cmp, join, other);
        fb.switch_to(other);
        fb.br(join);
        fb.switch_to(join);
        let phi = fb.phi(Ty::I64);
        // Only one incoming registered although join has two preds.
        fb.phi_incoming(phi, n, fb.entry());
        fb.ret(Some(phi.into()));
        let errs = verify_func(&fb.finish(), &[], &[]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("incomings")), "{errs:?}");
    }

    #[test]
    fn call_arity_is_checked() {
        let mut fb = FunctionBuilder::new("caller", &[], None);
        fb.call(crate::module::FuncId(0), &[], Some(Ty::I64));
        fb.ret(None);
        let sig = FnSig { params: vec![Ty::I64], ret_ty: Some(Ty::I64) };
        let errs = verify_func(&fb.finish(), &[sig], &[]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("args")), "{errs:?}");
    }

    #[test]
    fn valid_module_passes() {
        let mut m = Module::new("m");
        let mut fb = FunctionBuilder::new("f", &[Ty::I64], Some(Ty::I64));
        let p = fb.param(0);
        fb.ret(Some(p.into()));
        m.push_func(fb.finish());
        verify_module(&m).expect("valid");
    }

    #[test]
    fn bogus_global_reference_is_rejected() {
        let mut fb = FunctionBuilder::new("f", &[], None);
        fb.load(Ty::I64, Operand::GlobalAddr(crate::module::GlobalId(3)));
        fb.ret(None);
        let errs = verify_func(&fb.finish(), &[], &[]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("global")), "{errs:?}");
    }

    #[test]
    fn ptr_and_i64_interoperate() {
        let mut fb = FunctionBuilder::new("f", &[Ty::Ptr], Some(Ty::I64));
        let p = fb.param(0);
        // Pointer used as i64 in arithmetic: allowed.
        let x = fb.add(Ty::I64, p, fb.iconst(Ty::I64, 8));
        fb.ret(Some(x.into()));
        verify_func(&fb.finish(), &[], &[]).expect("ptr/i64 interop");
    }
}
