//! Property tests on the CFG/dominator/loop analyses over randomly
//! generated (structured) control flow.

use haft_ir::builder::FunctionBuilder;
use haft_ir::cfg::Cfg;
use haft_ir::dom::DomTree;
use haft_ir::function::Function;
use haft_ir::inst::CmpOp;
use haft_ir::loops::LoopForest;
use haft_ir::types::Ty;
use haft_ir::verify::verify_func;
use proptest::prelude::*;

/// Structured program shapes: sequences of loops and diamonds, possibly
/// nested one level.
#[derive(Clone, Debug)]
enum Shape {
    Loop(u8),
    Diamond,
    LoopInLoop(u8, u8),
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (1u8..20).prop_map(Shape::Loop),
        Just(Shape::Diamond),
        (1u8..8, 1u8..8).prop_map(|(a, b)| Shape::LoopInLoop(a, b)),
    ]
}

fn build(shapes: &[Shape]) -> Function {
    let mut fb = FunctionBuilder::new("f", &[Ty::I64], None);
    let p = fb.param(0);
    for s in shapes {
        match s {
            Shape::Loop(n) => {
                fb.counted_loop(fb.iconst(Ty::I64, 0), fb.iconst(Ty::I64, *n as i64), |b, i| {
                    b.add(Ty::I64, i, p);
                });
            }
            Shape::Diamond => {
                let c = fb.cmp(CmpOp::SGt, Ty::I64, p, fb.iconst(Ty::I64, 3));
                fb.if_then(c, |b| {
                    b.mul(Ty::I64, p, p);
                });
            }
            Shape::LoopInLoop(a, b) => {
                let (a, b) = (*a as i64, *b as i64);
                fb.counted_loop(fb.iconst(Ty::I64, 0), fb.iconst(Ty::I64, a), move |bb, i| {
                    bb.counted_loop(bb.iconst(Ty::I64, 0), bb.iconst(Ty::I64, b), move |b2, j| {
                        b2.add(Ty::I64, i, j);
                    });
                });
            }
        }
    }
    fb.ret(None);
    fb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dominator facts: the entry dominates every reachable block; every
    /// idom strictly dominates its block; every block's predecessors are
    /// dominated by the idom (the defining property of immediate
    /// dominators).
    #[test]
    fn dominator_invariants(shapes in proptest::collection::vec(shape_strategy(), 1..6)) {
        let f = build(&shapes);
        verify_func(&f, &[], &[]).unwrap();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&f, &cfg);
        for &b in &cfg.rpo {
            prop_assert!(dom.dominates(f.entry(), b));
            if b != f.entry() {
                let idom = dom.idom[b.0 as usize].unwrap();
                prop_assert!(dom.strictly_dominates(idom, b));
                for &p in &cfg.preds[b.0 as usize] {
                    if cfg.is_reachable(p) {
                        prop_assert!(dom.dominates(idom, p) || idom == b,
                            "idom {idom:?} of {b:?} must dominate pred {p:?}");
                    }
                }
            }
        }
    }

    /// Loop facts: headers dominate their bodies and latches; bodies are
    /// closed under predecessors (except through the header); nesting
    /// depths are consistent with parent links.
    #[test]
    fn loop_invariants(shapes in proptest::collection::vec(shape_strategy(), 1..6)) {
        let f = build(&shapes);
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&f, &cfg);
        let forest = LoopForest::compute(&f, &cfg, &dom);
        // Structured builders: loop count equals the loops requested.
        let expected: usize = shapes.iter().map(|s| match s {
            Shape::Loop(_) => 1,
            Shape::Diamond => 0,
            Shape::LoopInLoop(_, _) => 2,
        }).sum();
        prop_assert_eq!(forest.loops.len(), expected);
        for l in &forest.loops {
            for b in &l.body {
                prop_assert!(dom.dominates(l.header, *b),
                    "header {:?} must dominate body block {b:?}", l.header);
            }
            for latch in &l.latches {
                prop_assert!(l.body.contains(latch));
            }
        }
        for (i, l) in forest.loops.iter().enumerate() {
            if let Some(parent) = l.parent {
                prop_assert_eq!(l.depth, forest.loops[parent].depth + 1);
                prop_assert!(forest.loops[parent].body.contains(&l.header));
                prop_assert!(i != parent);
            } else {
                prop_assert_eq!(l.depth, 1);
            }
        }
    }

    /// RPO is a topological order w.r.t. dominance: a dominator always
    /// precedes the blocks it dominates.
    #[test]
    fn rpo_respects_dominance(shapes in proptest::collection::vec(shape_strategy(), 1..6)) {
        let f = build(&shapes);
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&f, &cfg);
        for &a in &cfg.rpo {
            for &b in &cfg.rpo {
                if a != b && dom.strictly_dominates(a, b) {
                    prop_assert!(cfg.rpo_index[a.0 as usize] < cfg.rpo_index[b.0 as usize]);
                }
            }
        }
    }
}
