//! Dense continuous-time Markov chains with a uniformization-based
//! transient solver.

/// A CTMC over `n` states given by its generator matrix `Q` (row-major):
/// `q[i][j]` is the transition rate `i -> j` for `i != j`, and each
/// diagonal entry is minus the row's off-diagonal sum.
#[derive(Clone, Debug)]
pub struct Ctmc {
    n: usize,
    q: Vec<f64>,
}

impl Ctmc {
    /// Builds a chain from off-diagonal rates; diagonals are derived.
    ///
    /// # Panics
    ///
    /// Panics if `rates` is not `n × n` or contains negative
    /// off-diagonal entries.
    pub fn from_rates(n: usize, rates: &[f64]) -> Self {
        assert_eq!(rates.len(), n * n, "rate matrix must be n*n");
        let mut q = rates.to_vec();
        for i in 0..n {
            let mut sum = 0.0;
            for j in 0..n {
                if i != j {
                    assert!(q[i * n + j] >= 0.0, "negative rate");
                    sum += q[i * n + j];
                }
            }
            q[i * n + i] = -sum;
        }
        Ctmc { n, q }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true if the chain has no states.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Rate `i -> j`.
    pub fn rate(&self, i: usize, j: usize) -> f64 {
        self.q[i * self.n + j]
    }

    /// Expected fraction of `[0, horizon]` spent in each state, starting
    /// from distribution `pi0`, via uniformization:
    ///
    /// `∫₀ᵀ π(t) dt = (1/Λ) Σ_k π₀ Pᵏ · Pr[Poisson(ΛT) > k]`
    ///
    /// with `P = I + Q/Λ`. The series is truncated once the remaining
    /// Poisson tail mass is below `1e-10`.
    pub fn occupancy(&self, pi0: &[f64], horizon: f64) -> Vec<f64> {
        assert_eq!(pi0.len(), self.n);
        assert!(horizon > 0.0);
        let lambda =
            (0..self.n).map(|i| -self.q[i * self.n + i]).fold(0.0f64, f64::max).max(1e-12) * 1.0001;
        let lt = lambda * horizon;

        // P = I + Q/Λ.
        let mut p = vec![0.0; self.n * self.n];
        for i in 0..self.n {
            for j in 0..self.n {
                p[i * self.n + j] =
                    self.q[i * self.n + j] / lambda + if i == j { 1.0 } else { 0.0 };
            }
        }

        // Iterate v_k = π₀ Pᵏ while accumulating tail weights.
        // poisson(k) computed iteratively in log space via scaling.
        let mut v = pi0.to_vec();
        let mut acc = vec![0.0; self.n];
        // Start with Pr[N > -1] = 1; tail_k = Pr[N > k] = tail_{k-1} - pmf(k).
        // pmf(0) = exp(-lt); use stable iterative pmf with renormalizing
        // for very large lt via the normal-approximation starting point.
        let mut tail = 1.0f64;
        let mut log_pmf = -lt; // ln pmf(0).
        let max_iter = (lt + 12.0 * lt.sqrt() + 64.0) as usize;
        for k in 0..max_iter {
            let pmf = log_pmf.exp();
            tail -= pmf;
            let w = tail.max(0.0);
            for (a, x) in acc.iter_mut().zip(&v) {
                *a += x * w;
            }
            if w < 1e-10 && k as f64 > lt {
                break;
            }
            // v <- v P.
            let mut next = vec![0.0; self.n];
            for i in 0..self.n {
                let vi = v[i];
                if vi == 0.0 {
                    continue;
                }
                for j in 0..self.n {
                    next[j] += vi * p[i * self.n + j];
                }
            }
            v = next;
            // pmf(k+1) = pmf(k) * lt / (k+1).
            log_pmf += (lt / (k as f64 + 1.0)).ln();
        }
        // Normalize: ∫ dt / (Λ·T) gives fractions.
        for a in &mut acc {
            *a /= lt / lambda * lambda; // = lt; kept explicit for clarity.
        }
        acc
    }

    /// Steady-state distribution via power iteration on the uniformized
    /// chain.
    pub fn steady_state(&self) -> Vec<f64> {
        let lambda =
            (0..self.n).map(|i| -self.q[i * self.n + i]).fold(0.0f64, f64::max).max(1e-12) * 1.0001;
        let mut v = vec![1.0 / self.n as f64; self.n];
        for _ in 0..200_000 {
            let mut next = vec![0.0; self.n];
            for (i, vi) in v.iter().enumerate() {
                for (j, nj) in next.iter_mut().enumerate() {
                    let p = self.q[i * self.n + j] / lambda + if i == j { 1.0 } else { 0.0 };
                    *nj += vi * p;
                }
            }
            let mut diff = 0.0;
            for (a, b) in v.iter().zip(&next) {
                diff += (a - b).abs();
            }
            v = next;
            if diff < 1e-13 {
                break;
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-state up/down chain with known availability.
    fn updown(fail: f64, repair: f64) -> Ctmc {
        Ctmc::from_rates(2, &[0.0, fail, repair, 0.0])
    }

    #[test]
    fn diagonal_is_negative_row_sum() {
        let c = updown(0.5, 2.0);
        assert!((c.rate(0, 0) + 0.5).abs() < 1e-12);
        assert!((c.rate(1, 1) + 2.0).abs() < 1e-12);
    }

    #[test]
    fn steady_state_matches_closed_form() {
        let c = updown(0.5, 2.0);
        let ss = c.steady_state();
        // up = repair / (fail + repair) = 0.8.
        assert!((ss[0] - 0.8).abs() < 1e-6, "{ss:?}");
        assert!((ss[1] - 0.2).abs() < 1e-6);
    }

    #[test]
    fn long_horizon_occupancy_approaches_steady_state() {
        let c = updown(0.5, 2.0);
        let occ = c.occupancy(&[1.0, 0.0], 1000.0);
        assert!((occ[0] - 0.8).abs() < 0.01, "{occ:?}");
        assert!((occ.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn short_horizon_occupancy_stays_near_initial_state() {
        let c = updown(0.001, 0.001);
        let occ = c.occupancy(&[1.0, 0.0], 1.0);
        assert!(occ[0] > 0.999, "{occ:?}");
    }

    #[test]
    fn occupancy_sums_to_one() {
        let c = Ctmc::from_rates(
            3,
            &[
                0.0, 0.3, 0.1, //
                2.0, 0.0, 0.0, //
                0.5, 0.0, 0.0,
            ],
        );
        for t in [0.1, 1.0, 10.0, 500.0] {
            let occ = c.occupancy(&[1.0, 0.0, 0.0], t);
            let sum: f64 = occ.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "t={t}: {occ:?}");
        }
    }

    #[test]
    fn transient_matches_analytic_two_state() {
        // For an up/down chain starting up, expected up-occupancy over
        // [0,T] is a/(a+b) + b/(a+b)^2/T * (1 - exp(-(a+b)T)) with
        // a=repair, b=fail.
        let (fail, repair) = (0.7, 1.3);
        let c = updown(fail, repair);
        let t = 3.0;
        let s = fail + repair;
        let expected = repair / s + fail / (s * s * t) * (1.0 - (-s * t).exp());
        let occ = c.occupancy(&[1.0, 0.0], t);
        assert!((occ[0] - expected).abs() < 1e-6, "{} vs {}", occ[0], expected);
    }

    #[test]
    #[should_panic(expected = "rate matrix must be n*n")]
    fn wrong_size_panics() {
        Ctmc::from_rates(2, &[0.0, 1.0]);
    }
}
