//! The paper's Figure 5 chain: Correct / Crashed / Corrupted /
//! HAFT-correctable.

use crate::ctmc::Ctmc;

/// Fault-outcome probabilities (the paper's Table 4, measured by the
/// fault-injection campaigns).
#[derive(Clone, Copy, Debug)]
pub struct FaultProbabilities {
    pub masked: f64,
    pub sdc: f64,
    pub crashed: f64,
    pub haft_correctable: f64,
}

impl FaultProbabilities {
    /// Table 4, "Native" column.
    pub fn native_paper() -> Self {
        FaultProbabilities { masked: 0.613, sdc: 0.262, crashed: 0.125, haft_correctable: 0.0 }
    }

    /// Table 4, "ILR" column.
    pub fn ilr_paper() -> Self {
        FaultProbabilities { masked: 0.242, sdc: 0.008, crashed: 0.750, haft_correctable: 0.0 }
    }

    /// Table 4, "HAFT" column.
    pub fn haft_paper() -> Self {
        FaultProbabilities { masked: 0.242, sdc: 0.011, crashed: 0.077, haft_correctable: 0.670 }
    }
}

/// Recovery rates (1/mean-recovery-time, per second).
#[derive(Clone, Copy, Debug)]
pub struct RecoveryRates {
    /// Manual recovery from corruption (the paper: 6 hours, from the
    /// Amazon S3 incident report).
    pub manual: f64,
    /// Machine reboot (the paper: 10 seconds).
    pub reboot: f64,
    /// Transactional re-execution (the paper: 2.5 µs — a 5,000-instruction
    /// transaction on a 2 GHz core).
    pub tx: f64,
}

impl Default for RecoveryRates {
    fn default() -> Self {
        RecoveryRates { manual: 1.0 / (6.0 * 3600.0), reboot: 1.0 / 10.0, tx: 1.0 / 2.5e-6 }
    }
}

/// Which hardening variant a chain models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemKind {
    Native,
    Ilr,
    Haft,
}

/// State indices of the chain.
const CORRECT: usize = 0;
#[expect(dead_code, reason = "named for documentation symmetry with the chain layout")]
const CRASHED: usize = 1;
const CORRUPTED: usize = 2;
const CORRECTABLE: usize = 3;

/// One point of Figure 10.
#[derive(Clone, Copy, Debug)]
pub struct AvailabilityPoint {
    /// Fault rate (faults/second).
    pub fault_rate: f64,
    /// Expected fraction of the horizon spent available (Correct, plus
    /// the microsecond-scale transactional recoveries).
    pub availability: f64,
    /// Expected fraction spent in the Corrupted state.
    pub corruption: f64,
}

/// The Figure 5 model for one system variant.
#[derive(Clone, Debug)]
pub struct HaftChain {
    pub probs: FaultProbabilities,
    pub rates: RecoveryRates,
}

impl HaftChain {
    /// Builds the chain for a paper-parameterized system.
    pub fn paper(kind: SystemKind) -> Self {
        let probs = match kind {
            SystemKind::Native => FaultProbabilities::native_paper(),
            SystemKind::Ilr => FaultProbabilities::ilr_paper(),
            SystemKind::Haft => FaultProbabilities::haft_paper(),
        };
        HaftChain { probs, rates: RecoveryRates::default() }
    }

    /// The CTMC for a given fault rate λ (faults/second). Masked faults
    /// are self-loops and do not appear as transitions.
    ///
    /// The transactional-recovery rate is capped at 10²/s to keep
    /// uniformization tractable over hour-long horizons; the state's
    /// occupancy stays ≤ λ·p/10² < 1 % either way, so the curves are
    /// unaffected at plotting resolution.
    pub fn ctmc(&self, fault_rate: f64) -> Ctmc {
        let p = &self.probs;
        let r = &self.rates;
        let tx = r.tx.min(1e2);
        #[rustfmt::skip]
        let rates = [
            // Correct ->            Crashed                 Corrupted             Correctable
            0.0,                     fault_rate * p.crashed, fault_rate * p.sdc,   fault_rate * p.haft_correctable,
            r.reboot,                0.0,                    0.0,                  0.0,
            r.manual,                0.0,                    0.0,                  0.0,
            tx,                      0.0,                    0.0,                  0.0,
        ];
        Ctmc::from_rates(4, &rates)
    }

    /// Evaluates one Figure 10 point over `horizon` seconds (the paper
    /// uses one hour), starting from the Correct state.
    pub fn evaluate(&self, fault_rate: f64, horizon: f64) -> AvailabilityPoint {
        let occ = self.ctmc(fault_rate).occupancy(&[1.0, 0.0, 0.0, 0.0], horizon);
        AvailabilityPoint {
            fault_rate,
            // Clamp sub-1e-6 numerical overshoot from the truncated
            // uniformization series.
            availability: (occ[CORRECT] + occ[CORRECTABLE]).clamp(0.0, 1.0),
            corruption: occ[CORRUPTED].clamp(0.0, 1.0),
        }
    }

    /// Sweeps fault rates log-uniformly, as Figure 10 does
    /// (0.00028 ≈ once an hour, up to once a second).
    pub fn sweep(&self, lo: f64, hi: f64, points: usize, horizon: f64) -> Vec<AvailabilityPoint> {
        (0..points)
            .map(|i| {
                let f = i as f64 / (points - 1).max(1) as f64;
                let rate = lo * (hi / lo).powf(f);
                self.evaluate(rate, horizon)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: f64 = 3600.0;

    #[test]
    fn zero_ish_fault_rate_is_fully_available() {
        for kind in [SystemKind::Native, SystemKind::Ilr, SystemKind::Haft] {
            let p = HaftChain::paper(kind).evaluate(1e-9, HOUR);
            assert!(p.availability > 0.999, "{kind:?}: {p:?}");
            assert!(p.corruption < 1e-3);
        }
    }

    #[test]
    fn availability_decreases_with_fault_rate() {
        let chain = HaftChain::paper(SystemKind::Haft);
        let pts = chain.sweep(0.00028, 1.0, 8, HOUR);
        for w in pts.windows(2) {
            assert!(w[1].availability <= w[0].availability + 1e-9, "monotone: {pts:?}");
        }
    }

    #[test]
    fn native_corrupts_more_than_hardened() {
        // Figure 10 (right) ordering: native corrupts the most; the
        // hardened variants' 20-30x lower SDC probability keeps them
        // below it at every rate. (Magnitudes differ from the paper at
        // high rates: with a 6-hour manual repair, transient analysis
        // saturates once the first SDC lands within the hour — see
        // EXPERIMENTS.md.)
        for rate in [0.00028, 0.01, 0.1, 1.0] {
            let native = HaftChain::paper(SystemKind::Native).evaluate(rate, HOUR);
            let ilr = HaftChain::paper(SystemKind::Ilr).evaluate(rate, HOUR);
            let haft = HaftChain::paper(SystemKind::Haft).evaluate(rate, HOUR);
            assert!(ilr.corruption < native.corruption, "rate {rate}: {ilr:?}");
            assert!(haft.corruption < native.corruption, "rate {rate}: {haft:?}");
        }
        let native = HaftChain::paper(SystemKind::Native).evaluate(1.0, HOUR);
        assert!(native.corruption > 0.6, "{native:?}");
    }

    #[test]
    fn haft_beats_native_availability_everywhere() {
        let native = HaftChain::paper(SystemKind::Native);
        let haft = HaftChain::paper(SystemKind::Haft);
        for rate in [0.001, 0.01, 0.1, 1.0] {
            let n = native.evaluate(rate, HOUR);
            let h = haft.evaluate(rate, HOUR);
            assert!(h.availability > n.availability, "rate {rate}: {h:?} vs {n:?}");
        }
    }

    #[test]
    fn correctable_state_has_negligible_occupancy() {
        let chain = HaftChain::paper(SystemKind::Haft);
        let occ = chain.ctmc(1.0).occupancy(&[1.0, 0.0, 0.0, 0.0], HOUR);
        assert!(occ[CORRECTABLE] < 0.01, "{occ:?}");
    }

    #[test]
    fn sweep_is_log_spaced_and_covers_range() {
        let chain = HaftChain::paper(SystemKind::Haft);
        let pts = chain.sweep(0.00028, 1.0, 5, HOUR);
        assert_eq!(pts.len(), 5);
        assert!((pts[0].fault_rate - 0.00028).abs() < 1e-9);
        assert!((pts[4].fault_rate - 1.0).abs() < 1e-9);
        assert!(pts[1].fault_rate / pts[0].fault_rate > 2.0);
    }
}
