//! Probabilistic availability model (the paper's PRISM substitute).
//!
//! The paper models HAFT's long-run behaviour as a continuous-time Markov
//! chain (Figure 5): the system leaves the `Correct` state at rate
//! `λ · p(outcome)` — with the outcome probabilities measured by fault
//! injection (Table 4) — and returns at outcome-specific recovery rates
//! (6 h manual recovery, 10 s reboot, 2.5 µs transactional rollback).
//! Figure 10 plots the expected fraction of one hour spent available or
//! corrupted as the fault rate sweeps from once an hour to once a second.
//!
//! This crate implements a small dense-CTMC library with a
//! uniformization-based transient solver (expected state occupancy over a
//! finite horizon) and the four-state HAFT chain on top of it.

pub mod ctmc;
pub mod haft_chain;

pub use ctmc::Ctmc;
pub use haft_chain::{AvailabilityPoint, FaultProbabilities, HaftChain, RecoveryRates, SystemKind};
