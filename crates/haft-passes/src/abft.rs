//! Algorithm-Based Fault Tolerance (ABFT) — checksum-protected kernels.
//!
//! The third hardening backend, after algorithm-based checksum schemes
//! (Huang & Abraham's checksum matrices; Bosilca et al.'s ABFT for
//! iterative kernels): instead of replicating *every* instruction (HAFT's
//! 2×, TMR's 3×), the pass recognizes the accumulation/update loops that
//! dominate matrix-shaped compute and protects only their *carried
//! state* with two redundant checksum lanes, verified and corrected at
//! the points where the state becomes observable.
//!
//! Recognition is structural, over SSA:
//!
//! * **Register accumulation chains** — a phi whose loop-carried incoming
//!   is produced from the phi itself through a short slice of plain
//!   arithmetic (`add`/`sub`/`mul` and their FP twins). This is the
//!   `sx += x` family of reduction loops.
//! * **Memory-cell chains** — a non-atomic `load`, a slice of plain
//!   arithmetic over the loaded value, and a non-atomic `store` back
//!   through a syntactically identical address. This is the
//!   `acc[i] += f(x)` family of update loops.
//!
//! A chain only counts if its slice takes at least one *data* operand
//! from outside the chain (a loaded element, a computed product):
//! induction variables and constant-stride counters carry no information
//! a checksum could protect, so they are left alone. Functions with at
//! least [`AbftConfig::min_data_chains`] such chains are *covered*:
//! every chain's state is maintained in three lanes, and a
//! [`Op::ChkCorrect`] verify-and-correct replaces each externalizing use
//! — a single divergent lane is reconstructed from the other two (the
//! row×column intersection pinpoints exactly one element), while an
//! uncorrectable three-way divergence fail-stops through the existing
//! ILR detect path. Everything else in a covered function runs
//! unprotected: that is ABFT's coverage-for-overhead trade, and it is
//! what the fault-injection campaign measures.
//!
//! Functions with no recognizable chains fall back to full HAFT
//! hardening (ILR + TX), so a covered module is never *less* protected
//! than the paper's pipeline outside its kernels. The split is recorded
//! per function in [`crate::PassStats`] (`abft.functions_covered` /
//! `abft.functions_fallback`), making coverage a measured number.

use std::collections::{HashMap, HashSet};

use haft_ir::cfg::Cfg;
use haft_ir::function::{Function, InstId, ValueDef, ValueId};
use haft_ir::inst::{BinOp, InstMeta, Op, Operand};
use haft_ir::module::Module;
use haft_ir::types::Ty;

use crate::ilr::{run_ilr, IlrConfig};
use crate::tx::{run_tx, CalleeKind, TxConfig};

/// ABFT configuration: how aggressively the pass claims functions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbftConfig {
    /// Minimum number of recognized data chains for a function to be
    /// covered by checksums instead of falling back to full HAFT.
    /// Raising it makes the backend fallback-heavy: only functions whose
    /// compute is dominated by several independent accumulations keep
    /// the cheap protection.
    pub min_data_chains: usize,
    /// Maximum instructions in one chain's arithmetic slice. Chains
    /// longer than this are not checksum-maintainable at a profitable
    /// cost and are ignored.
    pub max_slice: usize,
}

impl Default for AbftConfig {
    fn default() -> Self {
        AbftConfig { min_data_chains: 1, max_slice: 8 }
    }
}

impl AbftConfig {
    /// The fallback-heavy variant: a single accumulation chain no longer
    /// qualifies, so only multi-reduction kernels stay covered.
    pub fn fallback_heavy() -> Self {
        AbftConfig { min_data_chains: 2, ..AbftConfig::default() }
    }
}

/// What [`run_abft_module`] did, for [`crate::PassStats`] publication.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AbftStats {
    /// Functions protected by checksum lanes.
    pub functions_covered: u64,
    /// Functions that fell back to full HAFT (ILR + TX).
    pub functions_fallback: u64,
    /// Data chains instrumented across all covered functions.
    pub chains: u64,
    /// `chk_correct` instructions inserted.
    pub corrections: u64,
}

/// Applies ABFT to every non-external function: checksum lanes where a
/// function is amenable, full HAFT hardening where it is not.
pub fn run_abft_module(m: &mut Module, cfg: &AbftConfig) -> AbftStats {
    let mut stats = AbftStats::default();

    // Phase 1: analysis over the untransformed module.
    let plans: Vec<Option<Plan>> = m
        .funcs
        .iter()
        .map(|f| {
            if f.attrs.external {
                return None;
            }
            let plan = find_chains(f, cfg);
            (plan.chains >= cfg.min_data_chains as u64).then_some(plan)
        })
        .collect();

    // Callee-kind snapshot for the HAFT fallback's TX pass. Covered
    // functions carry no transaction machinery of their own, so a
    // fallback caller must treat them like unprotected library code and
    // split its transaction around the call.
    let kinds: Vec<CalleeKind> = m
        .funcs
        .iter()
        .zip(&plans)
        .map(|(f, plan)| {
            if f.attrs.external || plan.is_some() {
                CalleeKind::External
            } else if f.attrs.local {
                CalleeKind::Local
            } else {
                CalleeKind::NonLocal
            }
        })
        .collect();

    // Phase 2: transform.
    for (f, plan) in m.funcs.iter_mut().zip(&plans) {
        if f.attrs.external {
            continue;
        }
        match plan {
            Some(plan) => {
                stats.functions_covered += 1;
                stats.chains += plan.chains;
                stats.corrections += instrument(f, plan);
            }
            None => {
                stats.functions_fallback += 1;
                run_ilr(f, &IlrConfig::default());
                run_tx(f, &TxConfig::default(), &kinds);
            }
        }
    }
    stats
}

/// Arithmetic a checksum can be maintained through: the closed,
/// trap-free ring operations. Division, shifts, and bitwise logic do
/// not commute with the lane construction and end a slice.
fn allowed(op: BinOp) -> bool {
    matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::FAdd | BinOp::FSub | BinOp::FMul)
}

/// Checksummable carried-state types. `Ptr` chains (address induction)
/// and `i1` are never data state.
fn chain_ty(ty: Ty) -> bool {
    matches!(ty, Ty::I64 | Ty::F64)
}

/// Everything the instrumentation walk needs about one function, unified
/// across its chains so a slice shared by two chains is replicated once.
#[derive(Default)]
struct Plan {
    /// Carrier phis of register accumulation chains.
    phis: HashSet<InstId>,
    /// Carrier loads of memory-cell chains (re-loaded per lane).
    loads: HashSet<InstId>,
    /// Stores closing memory-cell chains (value verified-and-corrected).
    stores: HashSet<InstId>,
    /// Arithmetic slices to replicate per lane.
    slices: HashSet<InstId>,
    /// Recognized data chains.
    chains: u64,
}

/// Walks backward from `v` and reports whether it reaches `carrier`
/// through allowed arithmetic only, collecting the on-path instructions
/// into `slice` in operands-before-consumers order. Off-path operands
/// (loads, parameters, other phis, disallowed ops) are the chain's
/// shared external contributions, not part of the slice.
fn reaches(
    f: &Function,
    v: ValueId,
    carrier: ValueId,
    memo: &mut HashMap<ValueId, bool>,
    slice: &mut Vec<InstId>,
) -> bool {
    if v == carrier {
        return true;
    }
    if let Some(&r) = memo.get(&v) {
        return r;
    }
    memo.insert(v, false);
    let r = match f.value_def(v) {
        ValueDef::Param(_) => false,
        ValueDef::Inst(id) => match &f.inst(id).op {
            Op::Bin { op, .. } if allowed(*op) => {
                let op = f.inst(id).op.clone();
                let mut any = false;
                op.for_each_operand(|o| {
                    if let Operand::Value(u) = o {
                        any |= reaches(f, *u, carrier, memo, slice);
                    }
                });
                if any && !slice.contains(&id) {
                    slice.push(id);
                }
                any
            }
            _ => false,
        },
    };
    memo.insert(v, r);
    r
}

/// The slice from `head` back to `carrier`, or `None` if there is no
/// all-arithmetic cycle or it exceeds `max`.
fn slice_for(f: &Function, head: ValueId, carrier: ValueId, max: usize) -> Option<Vec<InstId>> {
    let mut memo = HashMap::new();
    let mut slice = Vec::new();
    if !reaches(f, head, carrier, &mut memo, &mut slice) || slice.is_empty() || slice.len() > max {
        return None;
    }
    Some(slice)
}

/// True if the slice folds in at least one external *value* operand —
/// the loaded element or computed product a checksum exists to protect.
/// Constant-only chains (induction variables, histogram counters) carry
/// nothing worth checksumming.
fn is_data_chain(f: &Function, slice: &[InstId], carrier: ValueId) -> bool {
    let internal: HashSet<ValueId> = slice.iter().filter_map(|id| f.inst_result(*id)).collect();
    slice.iter().any(|id| {
        let mut external = false;
        f.inst(*id).op.for_each_operand(|o| {
            if let Operand::Value(v) = o {
                if *v != carrier && !internal.contains(v) {
                    external = true;
                }
            }
        });
        external
    })
}

/// Finds every data chain in `f` and unifies them into one [`Plan`].
fn find_chains(f: &Function, cfg: &AbftConfig) -> Plan {
    let mut plan = Plan::default();

    for (_, block) in f.iter_blocks() {
        // Register accumulation chains: phis carried through arithmetic.
        for &iid in &block.insts {
            let Op::Phi { ty, incomings } = &f.inst(iid).op else { continue };
            if !chain_ty(*ty) {
                continue;
            }
            let Some(p) = f.inst_result(iid) else { continue };
            let mut slice: Vec<InstId> = Vec::new();
            for (o, _) in incomings {
                if let Operand::Value(u) = o {
                    if *u == p {
                        continue;
                    }
                    if let Some(s) = slice_for(f, *u, p, cfg.max_slice) {
                        for id in s {
                            if !slice.contains(&id) {
                                slice.push(id);
                            }
                        }
                    }
                }
            }
            if !slice.is_empty() && is_data_chain(f, &slice, p) {
                plan.phis.insert(iid);
                plan.slices.extend(slice.iter().copied());
                plan.chains += 1;
            }
        }

        // Memory-cell chains: load → arithmetic → store, same cell.
        for (j, &sid) in block.insts.iter().enumerate() {
            let Op::Store { ty, val: Operand::Value(v), addr, atomic: false } = &f.inst(sid).op
            else {
                continue;
            };
            let (ty, v, addr) = (*ty, *v, *addr);
            if !chain_ty(ty) || plan.stores.contains(&sid) {
                continue;
            }
            for &lid in &block.insts[..j] {
                if plan.loads.contains(&lid) {
                    continue;
                }
                let Op::Load { ty: lty, addr: laddr, atomic: false } = &f.inst(lid).op else {
                    continue;
                };
                if *lty != ty || *laddr != addr {
                    continue;
                }
                let Some(carrier) = f.inst_result(lid) else { continue };
                let Some(slice) = slice_for(f, v, carrier, cfg.max_slice) else { continue };
                if !is_data_chain(f, &slice, carrier) {
                    continue;
                }
                plan.loads.insert(lid);
                plan.stores.insert(sid);
                plan.slices.extend(slice.iter().copied());
                plan.chains += 1;
                break;
            }
        }
    }
    plan
}

/// Applies the checksum-lane instrumentation for one covered function;
/// returns the number of `chk_correct` instructions inserted.
fn instrument(f: &mut Function, plan: &Plan) -> u64 {
    let mut st = Abft { map: HashMap::new(), phi_tris: Vec::new(), corrections: 0 };
    let order = Cfg::compute(f).rpo.clone();
    for &b in &order {
        st.rewrite_block(f, b, plan);
    }
    st.fill_lane_phis(f);
    st.corrections
}

struct Abft {
    /// Protected master value -> its two checksum-lane twins.
    map: HashMap<ValueId, [ValueId; 2]>,
    /// (master phi, lane phi, lane phi) to fill after rewriting (the
    /// carried incoming only acquires lanes once its block has run).
    phi_tris: Vec<(InstId, InstId, InstId)>,
    corrections: u64,
}

impl Abft {
    fn lane_of(&self, lane: usize, o: &Operand) -> Operand {
        match o {
            Operand::Value(v) => self.map.get(v).map(|l| Operand::Value(l[lane])).unwrap_or(*o),
            other => *other,
        }
    }

    fn rewrite_block(&mut self, f: &mut Function, b: haft_ir::function::BlockId, plan: &Plan) {
        let old = std::mem::take(&mut f.blocks[b.0 as usize].insts);
        let mut insts: Vec<InstId> = Vec::with_capacity(old.len() + 8);
        let meta = InstMeta { shadow: true, ..Default::default() };

        for iid in old {
            if plan.phis.contains(&iid) {
                // Carrier phi: two lane phis ride directly behind it so
                // phis stay contiguous at the block head.
                let ty = f.inst(iid).op.result_ty().expect("phi has a type");
                insts.push(iid);
                let (p1, r1) = f.create_inst_meta(Op::Phi { ty, incomings: Vec::new() }, meta);
                let (p2, r2) = f.create_inst_meta(Op::Phi { ty, incomings: Vec::new() }, meta);
                insts.push(p1);
                insts.push(p2);
                let master = f.inst_result(iid).expect("phi has result");
                self.map.insert(master, [r1.expect("phi result"), r2.expect("phi result")]);
                self.phi_tris.push((iid, p1, p2));
            } else if plan.loads.contains(&iid) {
                // Carrier load: each lane re-reads the (race-free) cell
                // so the three lanes hold independently loaded state.
                let Op::Load { ty, addr, .. } = &f.inst(iid).op else {
                    unreachable!("plan load is a load")
                };
                let (ty, addr) = (*ty, *addr);
                insts.push(iid);
                let mut lanes = [None, None];
                for slot in lanes.iter_mut() {
                    let (cid, cres) =
                        f.create_inst_meta(Op::Load { ty, addr, atomic: false }, meta);
                    insts.push(cid);
                    *slot = cres;
                }
                let master = f.inst_result(iid).expect("load has result");
                self.map.insert(
                    master,
                    [lanes[0].expect("load result"), lanes[1].expect("load result")],
                );
            } else if plan.slices.contains(&iid) {
                // Chain arithmetic: replicate per lane, carried operands
                // swapped for the lane twins, external contributions
                // shared with the master.
                insts.push(iid);
                let mut lanes = [None, None];
                for (lane, slot) in lanes.iter_mut().enumerate() {
                    let mut cop = f.inst(iid).op.clone();
                    cop.map_operands(|o| *o = self.lane_of(lane, o));
                    let (cid, cres) = f.create_inst_meta(cop, meta);
                    insts.push(cid);
                    *slot = cres;
                }
                if let Some(master) = f.inst_result(iid) {
                    self.map.insert(
                        master,
                        [lanes[0].expect("slice result"), lanes[1].expect("slice result")],
                    );
                }
            } else if plan.stores.contains(&iid) {
                // Chain store: the written-back state is the observable
                // — verify and correct it on the way out.
                let Op::Store { ty, val, .. } = &f.inst(iid).op else {
                    unreachable!("plan store is a store")
                };
                let (ty, val) = (*ty, *val);
                if let Operand::Value(v) = val {
                    if let Some(l) = self.map.get(&v).copied() {
                        let (cid, cres) = f.create_inst(Op::ChkCorrect {
                            ty,
                            a: val,
                            b: Operand::Value(l[0]),
                            c: Operand::Value(l[1]),
                        });
                        insts.push(cid);
                        let corrected = Operand::Value(cres.expect("chk_correct result"));
                        if let Op::Store { val, .. } = &mut f.inst_mut(iid).op {
                            *val = corrected;
                        }
                        self.corrections += 1;
                    }
                }
                insts.push(iid);
            } else {
                // Any other use of protected state externalizes it:
                // verify-and-correct each such operand first. Phis keep
                // their master incomings (the lane phis carry the lane
                // flow; a correction cannot precede a phi anyway).
                if !f.inst(iid).op.is_phi() {
                    let mut planned: Vec<(ValueId, [ValueId; 2])> = Vec::new();
                    f.inst(iid).op.for_each_operand(|o| {
                        if let Operand::Value(v) = o {
                            if let Some(l) = self.map.get(v) {
                                if !planned.iter().any(|(pv, _)| pv == v) {
                                    planned.push((*v, *l));
                                }
                            }
                        }
                    });
                    let mut subs: Vec<(ValueId, ValueId)> = Vec::new();
                    for (v, l) in planned {
                        let ty = f.value_ty(v);
                        let (cid, cres) = f.create_inst(Op::ChkCorrect {
                            ty,
                            a: Operand::Value(v),
                            b: Operand::Value(l[0]),
                            c: Operand::Value(l[1]),
                        });
                        insts.push(cid);
                        subs.push((v, cres.expect("chk_correct result")));
                        self.corrections += 1;
                    }
                    if !subs.is_empty() {
                        f.inst_mut(iid).op.map_operands(|o| {
                            if let Operand::Value(v) = o {
                                if let Some((_, n)) = subs.iter().find(|(pv, _)| *pv == *v) {
                                    *o = Operand::Value(*n);
                                }
                            }
                        });
                    }
                }
                insts.push(iid);
            }
        }
        f.blocks[b.0 as usize].insts = insts;
    }

    /// Fills the lane phis' incomings once every block has been
    /// rewritten: the carried incoming maps to its lane twin, shared
    /// (initial) incomings stay the master's.
    fn fill_lane_phis(&mut self, f: &mut Function) {
        for (master, p1, p2) in self.phi_tris.clone() {
            let incomings = match &f.inst(master).op {
                Op::Phi { incomings, .. } => incomings.clone(),
                _ => unreachable!("phi triple holds phis"),
            };
            for (lane, copy) in [(0, p1), (1, p2)] {
                let mapped: Vec<_> =
                    incomings.iter().map(|(v, b)| (self.lane_of(lane, v), *b)).collect();
                if let Op::Phi { incomings, .. } = &mut f.inst_mut(copy).op {
                    *incomings = mapped;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests;
