//! ABFT pass tests: chain recognition, instrumented-IR structure,
//! per-function fallback, and semantic preservation plus checksum
//! correction under the VM.

use haft_ir::builder::FunctionBuilder;
use haft_ir::inst::{CmpOp, Op, Operand};
use haft_ir::module::{GlobalId, Module};
use haft_ir::verify::verify_module;
use haft_vm::{FaultPlan, RunOutcome, RunSpec, Vm, VmConfig};

use super::*;

fn count_ops(f: &Function, pred: impl Fn(&Op) -> bool) -> usize {
    f.blocks.iter().flat_map(|b| &b.insts).filter(|i| pred(&f.inst(**i).op)).count()
}

/// `fini` reduces `data[]` into a phi-carried register accumulator:
/// the `sx += data[i]` family.
fn reduction_module() -> Module {
    let mut m = Module::new("t");
    m.add_global("data", 64 * 8);
    let data = Operand::GlobalAddr(GlobalId(0));

    let mut init = FunctionBuilder::new("init", &[], None);
    init.set_non_local();
    init.counted_loop(init.iconst(Ty::I64, 0), init.iconst(Ty::I64, 64), |b, i| {
        let cell = b.gep(data, i, 8, 0);
        let v = b.mul(Ty::I64, i, b.iconst(Ty::I64, 3));
        b.store(Ty::I64, v, cell);
    });
    init.ret(None);
    m.push_func(init.finish());

    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    let pre = fb.current_block();
    let header = fb.new_block();
    let body = fb.new_block();
    let exit = fb.new_block();
    fb.br(header);
    fb.switch_to(header);
    let i = fb.phi(Ty::I64);
    fb.phi_incoming(i, fb.iconst(Ty::I64, 0), pre);
    let acc = fb.phi(Ty::I64);
    fb.phi_incoming(acc, fb.iconst(Ty::I64, 0), pre);
    let cond = fb.cmp(CmpOp::SLt, Ty::I64, i, fb.iconst(Ty::I64, 64));
    fb.condbr(cond, body, exit);
    fb.switch_to(body);
    let cell = fb.gep(data, i, 8, 0);
    let v = fb.load(Ty::I64, cell);
    let acc2 = fb.add(Ty::I64, acc, v);
    fb.phi_incoming(acc, acc2, body);
    let next = fb.add(Ty::I64, i, fb.iconst(Ty::I64, 1));
    fb.phi_incoming(i, next, body);
    fb.br(header);
    fb.switch_to(exit);
    fb.emit_out(Ty::I64, acc);
    fb.ret(None);
    m.push_func(fb.finish());
    m
}

/// `fini` updates a memory cell in place: the `acc += f(data[i])` family.
fn memcell_module() -> Module {
    let mut m = Module::new("t");
    m.add_global("data", 64 * 8);
    m.add_global("acc", 8);
    let data = Operand::GlobalAddr(GlobalId(0));
    let acc = Operand::GlobalAddr(GlobalId(1));

    let mut init = FunctionBuilder::new("init", &[], None);
    init.set_non_local();
    init.counted_loop(init.iconst(Ty::I64, 0), init.iconst(Ty::I64, 64), |b, i| {
        let cell = b.gep(data, i, 8, 0);
        let v = b.mul(Ty::I64, i, i);
        b.store(Ty::I64, v, cell);
    });
    init.ret(None);
    m.push_func(init.finish());

    let mut fini = FunctionBuilder::new("fini", &[], None);
    fini.set_non_local();
    fini.counted_loop(fini.iconst(Ty::I64, 0), fini.iconst(Ty::I64, 64), |b, i| {
        let cell = b.gep(data, i, 8, 0);
        let v = b.load(Ty::I64, cell);
        let cur = b.load(Ty::I64, acc);
        let nxt = b.add(Ty::I64, cur, v);
        b.store(Ty::I64, nxt, acc);
    });
    let total = fini.load(Ty::I64, acc);
    fini.emit_out(Ty::I64, total);
    fini.ret(None);
    m.push_func(fini.finish());
    m
}

#[test]
fn register_accumulation_chain_is_recognized_and_instrumented() {
    let mut m = reduction_module();
    let phis_before = count_ops(&m.funcs[1], |o| matches!(o, Op::Phi { .. }));
    let stats = run_abft_module(&mut m, &AbftConfig::default());
    verify_module(&m).unwrap_or_else(|e| panic!("{e:?}"));
    assert_eq!(stats.functions_covered, 1, "{stats:?}");
    assert_eq!(stats.functions_fallback, 1, "init has no data chain");
    assert_eq!(stats.chains, 1);
    let f = &m.funcs[1];
    // The accumulator phi gains two lane phis; the induction phi carries
    // only a constant stride and is left alone.
    assert_eq!(count_ops(f, |o| matches!(o, Op::Phi { .. })), phis_before + 2);
    // The externalizing emit is guarded by a verify-and-correct.
    assert!(count_ops(f, |o| matches!(o, Op::ChkCorrect { .. })) >= 1);
    // A covered function carries no HAFT machinery of its own.
    assert_eq!(count_ops(f, |o| matches!(o, Op::TxBegin)), 0);
    assert_eq!(count_ops(f, |o| matches!(o, Op::TxAbort { .. })), 0);
}

#[test]
fn memory_cell_chain_triplicates_the_carrier_load() {
    let mut m = memcell_module();
    let stats = run_abft_module(&mut m, &AbftConfig::default());
    verify_module(&m).unwrap_or_else(|e| panic!("{e:?}"));
    assert_eq!(stats.functions_covered, 1, "{stats:?}");
    assert!(stats.chains >= 1);
    let f = &m.funcs[1];
    // The carrier load of the cell chain is re-read once per lane; the
    // chain-closing store is fed by a chk_correct.
    assert!(count_ops(f, |o| matches!(o, Op::Load { .. })) >= 5, "lane re-loads");
    assert!(count_ops(f, |o| matches!(o, Op::ChkCorrect { .. })) >= 1);
    assert_eq!(count_ops(f, |o| matches!(o, Op::TxBegin)), 0);
}

#[test]
fn constant_counters_fall_back_to_full_haft() {
    // A histogram-style counter folds in no external data: nothing for a
    // checksum to protect, so the function takes the HAFT path.
    let mut m = Module::new("t");
    m.add_global("count", 8);
    let g = Operand::GlobalAddr(GlobalId(0));
    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    fb.counted_loop(fb.iconst(Ty::I64, 0), fb.iconst(Ty::I64, 16), |b, _i| {
        let cur = b.load(Ty::I64, g);
        let nxt = b.add(Ty::I64, cur, b.iconst(Ty::I64, 1));
        b.store(Ty::I64, nxt, g);
    });
    fb.ret(None);
    m.push_func(fb.finish());
    let stats = run_abft_module(&mut m, &AbftConfig::default());
    verify_module(&m).unwrap_or_else(|e| panic!("{e:?}"));
    assert_eq!(stats.functions_covered, 0, "{stats:?}");
    assert_eq!(stats.functions_fallback, 1);
    let f = &m.funcs[0];
    assert!(count_ops(f, |o| matches!(o, Op::TxBegin)) >= 1, "fallback is transactified");
    assert_eq!(count_ops(f, |o| matches!(o, Op::ChkCorrect { .. })), 0);
}

#[test]
fn fallback_heavy_config_demotes_single_chain_functions() {
    let mut m = reduction_module();
    let stats = run_abft_module(&mut m, &AbftConfig::fallback_heavy());
    verify_module(&m).unwrap_or_else(|e| panic!("{e:?}"));
    assert_eq!(stats.functions_covered, 0, "{stats:?}");
    assert_eq!(stats.functions_fallback, 2);
    assert_eq!(count_ops(&m.funcs[1], |o| matches!(o, Op::ChkCorrect { .. })), 0);
    assert!(count_ops(&m.funcs[1], |o| matches!(o, Op::TxBegin)) >= 1);
}

#[test]
fn external_functions_are_untouched() {
    let mut m = Module::new("t");
    let mut fb = FunctionBuilder::new("libc_thing", &[Ty::I64], Some(Ty::I64));
    fb.set_external();
    let x = fb.param(0);
    let y = fb.add(Ty::I64, x, fb.iconst(Ty::I64, 1));
    fb.ret(Some(y.into()));
    m.push_func(fb.finish());
    let before = m.funcs[0].clone();
    let stats = run_abft_module(&mut m, &AbftConfig::default());
    assert_eq!(m.funcs[0], before);
    assert_eq!(stats.functions_covered + stats.functions_fallback, 0);
}

// --- semantic preservation and correction under the VM ----------------------

#[test]
fn abft_preserves_program_semantics() {
    for native in [reduction_module(), memcell_module()] {
        let spec = RunSpec { init: Some("init"), fini: Some("fini"), ..Default::default() };
        let base = Vm::run(&native, VmConfig::default(), spec);
        assert_eq!(base.outcome, RunOutcome::Completed);

        for cfg in [AbftConfig::default(), AbftConfig::fallback_heavy()] {
            let mut hardened = native.clone();
            run_abft_module(&mut hardened, &cfg);
            verify_module(&hardened).unwrap_or_else(|e| panic!("{e:?}"));
            let r = Vm::run(&hardened, VmConfig::default(), spec);
            assert_eq!(r.outcome, RunOutcome::Completed);
            assert_eq!(r.output, base.output, "cfg {cfg:?}");
            assert_eq!(r.corrected_by_checksum, 0, "fault-free runs never correct");
            assert_eq!(r.corrected_by_vote, 0);
        }
    }
}

#[test]
fn abft_is_cheaper_than_whole_program_hardening() {
    // The whole point of the backend: protecting only the carried state
    // costs fewer dynamic instructions than duplicating everything.
    let native = memcell_module();
    let spec = RunSpec { init: Some("init"), fini: Some("fini"), ..Default::default() };

    let mut abft = native.clone();
    run_abft_module(&mut abft, &AbftConfig::default());
    let mut haft = native.clone();
    run_ilr_module_for_test(&mut haft);

    let ra = Vm::run(&abft, VmConfig::default(), spec);
    let rh = Vm::run(&haft, VmConfig::default(), spec);
    assert_eq!(ra.outcome, RunOutcome::Completed);
    assert_eq!(rh.outcome, RunOutcome::Completed);
    // `init` falls back to full HAFT under ABFT too, so restrict the
    // comparison to total dynamic work: the covered `fini` dominates.
    assert!(
        ra.instructions < rh.instructions,
        "abft {} >= haft {}",
        ra.instructions,
        rh.instructions
    );
}

fn run_ilr_module_for_test(m: &mut Module) {
    crate::ilr::run_ilr_module(m, &IlrConfig::default());
    crate::tx::run_tx_module(m, &TxConfig::default());
}

#[test]
fn single_lane_divergence_is_corrected_with_clean_output() {
    // Sweep single-bit-flip injections over the dynamic trace of the
    // hardened module. Every run the checksum classifies as corrected
    // must produce bit-clean output — the acceptance bar for the
    // `ChecksumCorrected` outcome.
    let native = memcell_module();
    let mut hardened = native.clone();
    run_abft_module(&mut hardened, &AbftConfig::default());
    let spec = RunSpec { init: Some("init"), fini: Some("fini"), ..Default::default() };
    let clean = Vm::run(&hardened, VmConfig::default(), spec);
    assert_eq!(clean.outcome, RunOutcome::Completed);
    let total = clean.register_writes;

    let (mut corrected, mut runs) = (0u32, 0u32);
    let mut occ = 0u64;
    while occ < total {
        let cfg = VmConfig {
            fault: Some(FaultPlan { occurrence: occ, xor_mask: 0x10 }),
            max_instructions: 10_000_000,
            ..Default::default()
        };
        let r = Vm::run(&hardened, cfg, spec);
        runs += 1;
        if r.corrected_by_checksum > 0 && r.outcome == RunOutcome::Completed {
            corrected += 1;
            assert_eq!(
                r.output, clean.output,
                "checksum-corrected run diverged at occurrence {occ}"
            );
        }
        occ += 7; // Sample the trace.
    }
    assert!(runs > 50, "sweep too small: {runs}");
    assert!(corrected > 0, "no fault was ever checksum-corrected");
}
