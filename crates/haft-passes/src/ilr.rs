//! Instruction-Level Redundancy (ILR) — fault detection.
//!
//! The pass creates a *shadow* data flow alongside the master flow
//! (paper Figure 1b): every replicable instruction is cloned to operate on
//! shadow registers, and checks comparing master and shadow copies are
//! inserted before every event that lets a corrupted value escape — memory
//! updates, atomics, calls, returns, externalizations, and branches.
//! A failed check transfers control to a per-function *detect block*
//! holding `tx_abort ilr`: inside a transaction this rolls the transaction
//! back (recovery); outside, it terminates the program (fail-stop).

use std::collections::{HashMap, HashSet};

use haft_ir::cfg::Cfg;
use haft_ir::dom::DomTree;
use haft_ir::function::{BlockId, Function, InstId, ValueId};
use haft_ir::inst::{AbortCode, CmpOp, InstMeta, Op, Operand};
use haft_ir::loops::LoopForest;
use haft_ir::module::Module;
use haft_ir::types::Ty;

/// ILR configuration; each flag corresponds to one of the paper's
/// optimizations (§3.3, evaluated cumulatively in Figure 7).
#[derive(Clone, Debug)]
pub struct IlrConfig {
    /// Figure 3b: duplicate race-free loads instead of checking addresses,
    /// and check race-free stores after the fact via a shadow re-load.
    pub shared_mem_opt: bool,
    /// Figure 4b: protect branch conditions with shadow basic blocks
    /// instead of an explicit pre-branch check.
    pub control_flow_protection: bool,
    /// Add checks on unchecked loop induction variables, coordinated with
    /// TX's conditional transaction split.
    pub fault_prop_check: bool,
    /// Elide checks that immediately follow the creation of a shadow copy.
    pub check_elision: bool,
}

impl Default for IlrConfig {
    fn default() -> Self {
        IlrConfig {
            shared_mem_opt: true,
            control_flow_protection: true,
            fault_prop_check: true,
            check_elision: true,
        }
    }
}

impl IlrConfig {
    /// The unoptimized baseline (Figure 7's "None").
    pub fn unoptimized() -> Self {
        IlrConfig {
            shared_mem_opt: false,
            control_flow_protection: false,
            fault_prop_check: false,
            check_elision: false,
        }
    }
}

/// Applies ILR to every non-external function of the module.
pub fn run_ilr_module(m: &mut Module, cfg: &IlrConfig) {
    for f in &mut m.funcs {
        if !f.attrs.external {
            run_ilr(f, cfg);
        }
    }
}

/// Applies ILR to one function in place.
pub fn run_ilr(f: &mut Function, cfg: &IlrConfig) {
    let mut pass = IlrPass {
        cfg: cfg.clone(),
        shadow: HashMap::new(),
        detect: None,
        edge_fix: HashMap::new(),
        phi_pairs: Vec::new(),
        new_lists: Vec::new(),
    };
    pass.run(f);
}

struct IlrPass {
    cfg: IlrConfig,
    /// Master value -> shadow operand.
    shadow: HashMap<ValueId, Operand>,
    detect: Option<BlockId>,
    /// (successor, original pred) -> actual pred after transformation.
    edge_fix: HashMap<(BlockId, BlockId), BlockId>,
    /// (master phi, shadow phi) pairs to fill after edge fixing.
    phi_pairs: Vec<(InstId, InstId)>,
    new_lists: Vec<(BlockId, Vec<InstId>)>,
}

/// Builder state for one original block being rewritten into segments.
struct Seg {
    block: BlockId,
    insts: Vec<InstId>,
    /// Master operand and its just-created shadow copy, for check elision.
    last_move: Option<(Operand, ValueId)>,
}

impl IlrPass {
    fn run(&mut self, f: &mut Function) {
        let order = Cfg::compute(f).rpo.clone();
        for &b in &order {
            self.rewrite_block(f, b);
        }
        // Install the rewritten block bodies.
        for (b, insts) in std::mem::take(&mut self.new_lists) {
            f.blocks[b.0 as usize].insts = insts;
        }
        self.apply_edge_fixes(f);
        self.fill_shadow_phis(f);
        if self.cfg.fault_prop_check {
            self.insert_fault_propagation_checks(f);
        }
    }

    fn detect_block(&mut self, f: &mut Function) -> BlockId {
        if let Some(d) = self.detect {
            return d;
        }
        let d = f.add_block();
        let (abort, _) = f.create_inst(Op::TxAbort { code: AbortCode::IlrDetected });
        f.blocks[d.0 as usize].insts.push(abort);
        self.detect = Some(d);
        d
    }

    fn shadow_of(&self, o: &Operand) -> Operand {
        match o {
            Operand::Value(v) => self.shadow.get(v).copied().unwrap_or(*o),
            other => *other,
        }
    }

    fn set_shadow(&mut self, master: Option<ValueId>, shadow: Option<ValueId>) {
        if let (Some(m), Some(s)) = (master, shadow) {
            self.shadow.insert(m, Operand::Value(s));
        }
    }

    /// Emits `v2 = move v` as the shadow copy of a non-replicated result.
    fn shadow_move(&mut self, f: &mut Function, seg: &mut Seg, master: ValueId) {
        let ty = f.value_ty(master);
        let (mv, res) = f.create_inst_meta(
            Op::Move { ty, a: Operand::Value(master) },
            InstMeta { shadow: true, ..Default::default() },
        );
        seg.insts.push(mv);
        self.set_shadow(Some(master), res);
        seg.last_move = Some((Operand::Value(master), res.expect("move has result")));
    }

    /// Inserts `cmp ne a, b; condbr -> detect | continuation`, splitting the
    /// current segment.
    fn emit_check(&mut self, f: &mut Function, seg: &mut Seg, a: Operand, b: Operand, ty: Ty) {
        if a == b {
            return; // Tautological (constant operands share their shadow).
        }
        if self.cfg.check_elision {
            if let Some((m, s)) = seg.last_move {
                if m == a && b == Operand::Value(s) {
                    // The shadow was copied from the master by the previous
                    // instruction; the check cannot fire (paper peephole).
                    return;
                }
            }
        }
        let detect = self.detect_block(f);
        let meta = InstMeta { ilr_check: true, ..Default::default() };
        let (cmp, d) = f.create_inst_meta(Op::Cmp { op: CmpOp::Ne, ty, a, b }, meta);
        seg.insts.push(cmp);
        let cont = f.add_block();
        let (cbr, _) = f.create_inst_meta(
            Op::CondBr { cond: d.expect("cmp result").into(), t: detect, f: cont },
            meta,
        );
        seg.insts.push(cbr);
        let finished =
            std::mem::replace(seg, Seg { block: cont, insts: Vec::new(), last_move: None });
        self.new_lists.push((finished.block, finished.insts));
    }

    fn rewrite_block(&mut self, f: &mut Function, b: BlockId) {
        let old = std::mem::take(&mut f.blocks[b.0 as usize].insts);
        let mut seg = Seg { block: b, insts: Vec::new(), last_move: None };

        // Replicate function arguments on entry (register-to-register
        // moves, as the paper does for non-replicated value sources).
        if b == f.entry() {
            for i in 0..f.params.len() {
                let p = f.param_value(i);
                self.shadow_move(f, &mut seg, p);
            }
            seg.last_move = None;
        }

        for iid in old {
            let inst = f.inst(iid).clone();
            let result = f.inst_result(iid);
            match &inst.op {
                // --- replicable compute ------------------------------------
                Op::Phi { ty, .. } => {
                    seg.insts.push(iid);
                    let (sp, sres) = f.create_inst_meta(
                        Op::Phi { ty: *ty, incomings: Vec::new() },
                        InstMeta { shadow: true, ..Default::default() },
                    );
                    seg.insts.push(sp);
                    self.set_shadow(result, sres);
                    self.phi_pairs.push((iid, sp));
                    seg.last_move = None;
                }
                op if op.is_replicable() => {
                    seg.insts.push(iid);
                    let mut sop = op.clone();
                    sop.map_operands(|o| *o = self.shadow_of(o));
                    let (sid, sres) =
                        f.create_inst_meta(sop, InstMeta { shadow: true, ..Default::default() });
                    seg.insts.push(sid);
                    self.set_shadow(result, sres);
                    seg.last_move = None;
                }

                // --- memory -------------------------------------------------
                Op::Load { ty, addr, atomic } => {
                    if !*atomic && self.cfg.shared_mem_opt {
                        // Figure 3b: duplicate the load through the shadow
                        // address; data-race freedom guarantees both copies
                        // read the same value in the error-free case.
                        seg.insts.push(iid);
                        let saddr = self.shadow_of(addr);
                        let (sl, sres) = f.create_inst_meta(
                            Op::Load { ty: *ty, addr: saddr, atomic: false },
                            InstMeta { shadow: true, ..Default::default() },
                        );
                        seg.insts.push(sl);
                        self.set_shadow(result, sres);
                        seg.last_move = None;
                    } else {
                        // Figure 3a: check the address, then replicate the
                        // loaded value with a move.
                        let saddr = self.shadow_of(addr);
                        self.emit_check(f, &mut seg, *addr, saddr, Ty::Ptr);
                        seg.insts.push(iid);
                        self.shadow_move(f, &mut seg, result.expect("load result"));
                    }
                }
                Op::Store { ty, val, addr, atomic } => {
                    if !*atomic && self.cfg.shared_mem_opt {
                        // Figure 3b: store first, then verify through the
                        // shadow address (store-buffer forwarding makes the
                        // re-load cheap on real hardware).
                        seg.insts.push(iid);
                        let saddr = self.shadow_of(addr);
                        let sval = self.shadow_of(val);
                        let (tmp, tres) = f.create_inst_meta(
                            Op::Load { ty: *ty, addr: saddr, atomic: false },
                            InstMeta { shadow: true, ..Default::default() },
                        );
                        seg.insts.push(tmp);
                        self.emit_check(
                            f,
                            &mut seg,
                            Operand::Value(tres.expect("load result")),
                            sval,
                            *ty,
                        );
                    } else {
                        // Figure 3a: atomic stores are irreversible
                        // externalization events — all checks up front.
                        let sval = self.shadow_of(val);
                        let saddr = self.shadow_of(addr);
                        self.emit_check(f, &mut seg, *val, sval, *ty);
                        self.emit_check(f, &mut seg, *addr, saddr, Ty::Ptr);
                        seg.insts.push(iid);
                    }
                }
                Op::Rmw { ty, addr, val, .. } => {
                    let saddr = self.shadow_of(addr);
                    let sval = self.shadow_of(val);
                    self.emit_check(f, &mut seg, *addr, saddr, Ty::Ptr);
                    self.emit_check(f, &mut seg, *val, sval, *ty);
                    seg.insts.push(iid);
                    self.shadow_move(f, &mut seg, result.expect("rmw result"));
                }
                Op::CmpXchg { ty, addr, expected, new } => {
                    let saddr = self.shadow_of(addr);
                    let sexp = self.shadow_of(expected);
                    let snew = self.shadow_of(new);
                    self.emit_check(f, &mut seg, *addr, saddr, Ty::Ptr);
                    self.emit_check(f, &mut seg, *expected, sexp, *ty);
                    self.emit_check(f, &mut seg, *new, snew, *ty);
                    seg.insts.push(iid);
                    self.shadow_move(f, &mut seg, result.expect("cmpxchg result"));
                }
                Op::Alloc { .. } => {
                    seg.insts.push(iid);
                    self.shadow_move(f, &mut seg, result.expect("alloc result"));
                }

                // --- control ------------------------------------------------
                Op::Call { args, .. } => {
                    let checks: Vec<(Operand, Operand, Ty)> =
                        args.iter().map(|a| (*a, self.shadow_of(a), f.operand_ty(a))).collect();
                    for (a, s, ty) in checks {
                        self.emit_check(f, &mut seg, a, s, ty);
                    }
                    seg.insts.push(iid);
                    if let Some(r) = result {
                        self.shadow_move(f, &mut seg, r);
                    }
                }
                Op::Ret { val } => {
                    if let Some(v) = val {
                        let sv = self.shadow_of(v);
                        let ty = f.operand_ty(v);
                        self.emit_check(f, &mut seg, *v, sv, ty);
                    }
                    seg.insts.push(iid);
                }
                Op::Br { dest } => {
                    seg.insts.push(iid);
                    self.edge_fix.insert((*dest, b), seg.block);
                }
                Op::CondBr { cond, t, f: fb } => {
                    if t == fb {
                        // Degenerate branch: rewrite as an unconditional one.
                        let (br, _) = f.create_inst(Op::Br { dest: *t });
                        seg.insts.push(br);
                        self.edge_fix.insert((*t, b), seg.block);
                    } else if self.cfg.control_flow_protection {
                        // Figure 4b: route through shadow blocks that
                        // re-evaluate the shadow condition, so a fault in
                        // the "flags" between check and branch is caught.
                        let scond = self.shadow_of(cond);
                        let detect = self.detect_block(f);
                        let st = f.add_block();
                        let sf = f.add_block();
                        let meta = InstMeta { shadow: true, ilr_check: true, ..Default::default() };
                        let (cbr, _) = f.create_inst(Op::CondBr { cond: *cond, t: st, f: sf });
                        seg.insts.push(cbr);
                        let (tb, _) =
                            f.create_inst_meta(Op::CondBr { cond: scond, t: *t, f: detect }, meta);
                        f.blocks[st.0 as usize].insts.push(tb);
                        let (fb2, _) =
                            f.create_inst_meta(Op::CondBr { cond: scond, t: detect, f: *fb }, meta);
                        f.blocks[sf.0 as usize].insts.push(fb2);
                        self.edge_fix.insert((*t, b), st);
                        self.edge_fix.insert((*fb, b), sf);
                    } else {
                        // Figure 4a: naive pre-branch check on the condition.
                        let scond = self.shadow_of(cond);
                        self.emit_check(f, &mut seg, *cond, scond, Ty::I1);
                        seg.insts.push(iid);
                        self.edge_fix.insert((*t, b), seg.block);
                        self.edge_fix.insert((*fb, b), seg.block);
                    }
                }

                // --- externalization and intrinsics ----------------------------
                Op::Emit { ty, val } => {
                    let sv = self.shadow_of(val);
                    self.emit_check(f, &mut seg, *val, sv, *ty);
                    seg.insts.push(iid);
                }
                Op::Lock { addr } | Op::Unlock { addr } => {
                    let sa = self.shadow_of(addr);
                    self.emit_check(f, &mut seg, *addr, sa, Ty::Ptr);
                    seg.insts.push(iid);
                }
                Op::ThreadId | Op::NumThreads => {
                    seg.insts.push(iid);
                    self.shadow_move(f, &mut seg, result.expect("intrinsic result"));
                }
                // Tx intrinsics (robustness: ILR normally runs first) and
                // terminally-aborting or inert instructions pass through.
                _ => {
                    seg.insts.push(iid);
                    seg.last_move = None;
                }
            }
        }
        self.new_lists.push((seg.block, seg.insts));
    }

    fn apply_edge_fixes(&mut self, f: &mut Function) {
        for b in 0..f.blocks.len() {
            let bid = BlockId(b as u32);
            let insts: Vec<InstId> = f.blocks[b].insts.clone();
            for iid in insts {
                let fix = &self.edge_fix;
                if let Op::Phi { incomings, .. } = &mut f.inst_mut(iid).op {
                    for (_, pred) in incomings.iter_mut() {
                        if let Some(np) = fix.get(&(bid, *pred)) {
                            *pred = *np;
                        }
                    }
                } else {
                    break;
                }
            }
        }
    }

    fn fill_shadow_phis(&mut self, f: &mut Function) {
        for (master, shadow) in self.phi_pairs.clone() {
            let incomings = match &f.inst(master).op {
                Op::Phi { incomings, .. } => incomings.clone(),
                _ => unreachable!("phi pair holds phis"),
            };
            let mapped: Vec<(Operand, BlockId)> =
                incomings.into_iter().map(|(v, b)| (self.shadow_of(&v), b)).collect();
            if let Op::Phi { incomings, .. } = &mut f.inst_mut(shadow).op {
                *incomings = mapped;
            }
        }
    }

    /// Paper §3.3 "fault propagation check": loop induction variables that
    /// are not covered by any in-loop check get an explicit check at the
    /// loop header, marked so TX hoists it into the conditional split.
    fn insert_fault_propagation_checks(&mut self, f: &mut Function) {
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(f, &cfg, &dom);
        let mut plans: Vec<(BlockId, ValueId, Operand, Ty)> = Vec::new();
        for (i, l) in forest.loops.iter().enumerate() {
            if !forest.is_innermost(i) {
                continue;
            }
            // Values referenced by checks inside the loop body.
            let mut checked: HashSet<ValueId> = HashSet::new();
            for b in &l.body {
                for &iid in &f.blocks[b.0 as usize].insts {
                    let inst = f.inst(iid);
                    if inst.meta.ilr_check {
                        inst.op.for_each_operand(|o| {
                            if let Operand::Value(v) = o {
                                checked.insert(*v);
                            }
                        });
                    }
                }
            }
            for &iid in &f.blocks[l.header.0 as usize].insts {
                let inst = f.inst(iid);
                if !inst.op.is_phi() || inst.meta.shadow {
                    continue;
                }
                let Some(res) = f.inst_result(iid) else { continue };
                let Some(shadow) = self.shadow.get(&res).copied() else { continue };
                if shadow == Operand::Value(res) {
                    continue;
                }
                // "Covered" means either copy of the variable feeds a check
                // somewhere in the body.
                let shadow_checked = matches!(shadow, Operand::Value(s) if checked.contains(&s));
                if checked.contains(&res) || shadow_checked {
                    continue;
                }
                let ty = f.value_ty(res);
                plans.push((l.header, res, shadow, ty));
            }
        }
        for (header, master, shadow, ty) in plans {
            self.split_with_fprop_check(f, header, master, shadow, ty);
        }
    }

    /// Splits `header` after its phi group, inserting a fprop-marked check
    /// whose continuation holds the rest of the block.
    fn split_with_fprop_check(
        &mut self,
        f: &mut Function,
        header: BlockId,
        master: ValueId,
        shadow: Operand,
        ty: Ty,
    ) {
        let insts = f.blocks[header.0 as usize].insts.clone();
        let phi_end = insts.iter().position(|i| !f.inst(*i).op.is_phi()).unwrap_or(insts.len());
        let detect = self.detect_block(f);
        let meta = InstMeta { ilr_check: true, fprop_check: true, ..Default::default() };
        let (cmp, d) = f.create_inst_meta(
            Op::Cmp { op: CmpOp::Ne, ty, a: Operand::Value(master), b: shadow },
            meta,
        );
        let cont = f.add_block();
        let (cbr, _) = f.create_inst_meta(
            Op::CondBr { cond: d.expect("cmp result").into(), t: detect, f: cont },
            meta,
        );
        let (head, rest) = insts.split_at(phi_end);
        let mut head = head.to_vec();
        head.push(cmp);
        head.push(cbr);
        f.blocks[header.0 as usize].insts = head;
        f.blocks[cont.0 as usize].insts = rest.to_vec();
        // Every edge that used to leave `header` now leaves `cont`.
        for b in 0..f.blocks.len() {
            let ids: Vec<InstId> = f.blocks[b].insts.clone();
            for iid in ids {
                if let Op::Phi { incomings, .. } = &mut f.inst_mut(iid).op {
                    for (_, pred) in incomings.iter_mut() {
                        if *pred == header {
                            *pred = cont;
                        }
                    }
                } else {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests;
