//! ILR pass tests: structure of the transformed IR plus semantic
//! preservation and fault-detection behaviour under the VM.

use haft_ir::builder::FunctionBuilder;
use haft_ir::inst::{AbortCode, CmpOp, Op, Operand};
use haft_ir::module::{GlobalId, Module};
use haft_ir::types::Ty;
use haft_ir::verify::verify_module;
use haft_vm::{FaultPlan, RunOutcome, RunSpec, Vm, VmConfig};

use super::*;

fn count_ops(f: &Function, pred: impl Fn(&Op) -> bool) -> usize {
    f.blocks.iter().flat_map(|b| &b.insts).filter(|i| pred(&f.inst(**i).op)).count()
}

fn count_shadow(f: &Function) -> usize {
    f.blocks.iter().flat_map(|b| &b.insts).filter(|i| f.inst(**i).meta.shadow).count()
}

fn simple_module() -> Module {
    let mut m = Module::new("t");
    m.add_global("out", 8);
    let g = Operand::GlobalAddr(GlobalId(0));
    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    let a = fb.add(Ty::I64, fb.iconst(Ty::I64, 20), fb.iconst(Ty::I64, 22));
    let b = fb.mul(Ty::I64, a, a);
    fb.store(Ty::I64, b, g);
    let v = fb.load(Ty::I64, g);
    fb.emit_out(Ty::I64, v);
    fb.ret(None);
    m.push_func(fb.finish());
    m
}

#[test]
fn replication_creates_shadow_flow_and_verifies() {
    let mut m = simple_module();
    run_ilr_module(&mut m, &IlrConfig::default());
    verify_module(&m).unwrap_or_else(|e| panic!("{e:?}"));
    let f = &m.funcs[0];
    // The two compute instructions are replicated, the load is duplicated,
    // the store gained a verification re-load, and checks exist.
    assert!(count_shadow(f) >= 4, "shadow insts = {}", count_shadow(f));
    assert!(count_ops(f, |o| matches!(o, Op::TxAbort { code: AbortCode::IlrDetected })) == 1);
    let checks =
        f.blocks.iter().flat_map(|b| &b.insts).filter(|i| f.inst(**i).meta.ilr_check).count();
    assert!(checks >= 2, "checks = {checks}");
}

#[test]
fn shared_mem_opt_duplicates_loads_without_address_checks() {
    let mut m = simple_module();
    run_ilr_module(&mut m, &IlrConfig::default());
    let f = &m.funcs[0];
    // Two regular loads from the original one (master + shadow) plus the
    // store verification re-load.
    assert_eq!(count_ops(f, |o| matches!(o, Op::Load { .. })), 3);
    assert_eq!(count_ops(f, |o| matches!(o, Op::Move { .. })), 0, "no moves needed");
}

#[test]
fn unoptimized_loads_use_move_and_address_check() {
    let mut m = simple_module();
    run_ilr_module(&mut m, &IlrConfig::unoptimized());
    let f = &m.funcs[0];
    // One master load plus no duplicate (shadow via move).
    assert_eq!(count_ops(f, |o| matches!(o, Op::Load { .. })), 1);
    assert!(count_ops(f, |o| matches!(o, Op::Move { .. })) >= 1);
}

#[test]
fn store_checks_flow_in_both_modes() {
    // Optimized: check after the store; unoptimized: checks before.
    for (cfg, loads) in [(IlrConfig::default(), 3), (IlrConfig::unoptimized(), 1)] {
        let mut m = simple_module();
        run_ilr_module(&mut m, &cfg);
        verify_module(&m).unwrap_or_else(|e| panic!("{e:?}"));
        let f = &m.funcs[0];
        assert_eq!(count_ops(f, |o| matches!(o, Op::Load { .. })), loads);
        assert_eq!(count_ops(f, |o| matches!(o, Op::Store { .. })), 1);
    }
}

#[test]
fn atomic_accesses_are_never_duplicated() {
    let mut m = Module::new("t");
    m.add_global("w", 8);
    let g = Operand::GlobalAddr(GlobalId(0));
    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    let v = fb.load_atomic(Ty::I64, g);
    fb.store_atomic(Ty::I64, v, g);
    fb.ret(None);
    m.push_func(fb.finish());
    run_ilr_module(&mut m, &IlrConfig::default());
    verify_module(&m).unwrap_or_else(|e| panic!("{e:?}"));
    let f = &m.funcs[0];
    // Exactly one load (atomic), shadowed by a move; the atomic store is
    // checked before executing.
    assert_eq!(count_ops(f, |o| matches!(o, Op::Load { atomic: true, .. })), 1);
    assert_eq!(count_ops(f, |o| matches!(o, Op::Load { atomic: false, .. })), 0);
    assert!(count_ops(f, |o| matches!(o, Op::Move { .. })) >= 1);
}

#[test]
fn safe_control_flow_adds_shadow_blocks() {
    let mut m = Module::new("t");
    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    let c = fb.cmp(CmpOp::SGt, Ty::I64, fb.iconst(Ty::I64, 2), fb.iconst(Ty::I64, 1));
    let t = fb.new_block();
    let e = fb.new_block();
    fb.condbr(c, t, e);
    fb.switch_to(t);
    fb.ret(None);
    fb.switch_to(e);
    fb.ret(None);
    m.push_func(fb.finish());
    let blocks_before = m.funcs[0].blocks.len();

    let mut safe = m.clone();
    run_ilr_module(&mut safe, &IlrConfig::default());
    verify_module(&safe).unwrap_or_else(|e| panic!("{e:?}"));
    // Shadow true/false blocks plus detect block.
    assert!(safe.funcs[0].blocks.len() >= blocks_before + 3);
    let cond_brs = count_ops(&safe.funcs[0], |o| matches!(o, Op::CondBr { .. }));
    assert_eq!(cond_brs, 3, "master + two shadow-block branches");

    let mut naive = m;
    run_ilr_module(
        &mut naive,
        &IlrConfig { control_flow_protection: false, ..IlrConfig::default() },
    );
    verify_module(&naive).unwrap_or_else(|e| panic!("{e:?}"));
    // Naive: original branch + one check branch.
    let cond_brs = count_ops(&naive.funcs[0], |o| matches!(o, Op::CondBr { .. }));
    assert_eq!(cond_brs, 2);
}

#[test]
fn params_get_shadow_copies_at_entry() {
    let mut m = Module::new("t");
    let mut fb = FunctionBuilder::new("f", &[Ty::I64, Ty::I64], Some(Ty::I64));
    let a = fb.param(0);
    let b = fb.param(1);
    let s = fb.add(Ty::I64, a, b);
    fb.ret(Some(s.into()));
    m.push_func(fb.finish());
    run_ilr_module(&mut m, &IlrConfig::default());
    let f = &m.funcs[0];
    let entry = &f.blocks[0].insts;
    assert!(matches!(f.inst(entry[0]).op, Op::Move { .. }));
    assert!(matches!(f.inst(entry[1]).op, Op::Move { .. }));
    assert!(f.inst(entry[0]).meta.shadow);
}

#[test]
fn external_functions_are_untouched() {
    let mut m = Module::new("t");
    let mut fb = FunctionBuilder::new("libc_thing", &[Ty::I64], Some(Ty::I64));
    fb.set_external();
    let x = fb.param(0);
    let y = fb.add(Ty::I64, x, fb.iconst(Ty::I64, 1));
    fb.ret(Some(y.into()));
    m.push_func(fb.finish());
    let before = m.funcs[0].clone();
    run_ilr_module(&mut m, &IlrConfig::default());
    assert_eq!(m.funcs[0], before);
}

#[test]
fn check_elision_removes_check_after_fresh_copy() {
    // ret of a call result: the shadow is a move created immediately
    // before, so the return-value check is elided.
    let mut m = Module::new("t");
    let mut id_f = FunctionBuilder::new("id", &[Ty::I64], Some(Ty::I64));
    let x = id_f.param(0);
    id_f.ret(Some(x.into()));
    let id = m.push_func(id_f.finish());
    let mut fb = FunctionBuilder::new("f", &[], Some(Ty::I64));
    let r = fb.call(id, &[Operand::imm(5, Ty::I64)], Some(Ty::I64)).unwrap();
    fb.ret(Some(r.into()));
    m.push_func(fb.finish());

    let mut with = m.clone();
    run_ilr_module(&mut with, &IlrConfig::default());
    let mut without = m;
    run_ilr_module(&mut without, &IlrConfig { check_elision: false, ..IlrConfig::default() });
    let c = |m: &Module| {
        m.funcs[1]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| m.funcs[1].inst(**i).meta.ilr_check)
            .count()
    };
    assert!(c(&with) < c(&without), "elision must drop at least one check");
}

#[test]
fn fprop_check_inserted_for_hoisted_loop_variable() {
    // The paper's Figure 2 pattern: a loop counting in registers with the
    // store hoisted past the loop.
    let mut m = Module::new("t");
    m.add_global("c", 8);
    let g = Operand::GlobalAddr(GlobalId(0));
    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    let pre = fb.current_block();
    let header = fb.new_block();
    let exit = fb.new_block();
    fb.br(header);
    fb.switch_to(header);
    let c = fb.phi(Ty::I64);
    fb.phi_incoming(c, fb.iconst(Ty::I64, 123), pre);
    let cn = fb.add(Ty::I64, c, fb.iconst(Ty::I64, 1));
    fb.phi_incoming(c, cn, header);
    let done = fb.cmp(CmpOp::SGe, Ty::I64, cn, fb.iconst(Ty::I64, 1000));
    fb.condbr(done, exit, header);
    fb.switch_to(exit);
    fb.store(Ty::I64, cn, g);
    fb.ret(None);
    m.push_func(fb.finish());

    run_ilr_module(&mut m, &IlrConfig::default());
    verify_module(&m).unwrap_or_else(|e| panic!("{e:?}"));
    let f = &m.funcs[0];
    let fprop =
        f.blocks.iter().flat_map(|b| &b.insts).filter(|i| f.inst(**i).meta.fprop_check).count();
    assert!(fprop >= 2, "cmp + condbr marked fprop, got {fprop}");
}

// --- semantic preservation under the VM -------------------------------------

fn loopy_module() -> Module {
    let mut m = Module::new("t");
    m.add_global("data", 64 * 8);
    m.add_global("acc", 8);
    let data = Operand::GlobalAddr(GlobalId(0));
    let acc = Operand::GlobalAddr(GlobalId(1));

    let mut init = FunctionBuilder::new("init", &[], None);
    init.set_non_local();
    init.counted_loop(init.iconst(Ty::I64, 0), init.iconst(Ty::I64, 64), |b, i| {
        let cell = b.gep(data, i, 8, 0);
        let v = b.mul(Ty::I64, i, i);
        b.store(Ty::I64, v, cell);
    });
    init.ret(None);
    m.push_func(init.finish());

    let mut fini = FunctionBuilder::new("fini", &[], None);
    fini.set_non_local();
    fini.counted_loop(fini.iconst(Ty::I64, 0), fini.iconst(Ty::I64, 64), |b, i| {
        let cell = b.gep(data, i, 8, 0);
        let v = b.load(Ty::I64, cell);
        let odd = b.bin(haft_ir::inst::BinOp::And, Ty::I64, v, b.iconst(Ty::I64, 1));
        let is_odd = b.cmp(CmpOp::Eq, Ty::I64, odd, b.iconst(Ty::I64, 1));
        b.if_then(is_odd, |b2| {
            let cur = b2.load(Ty::I64, acc);
            let nxt = b2.add(Ty::I64, cur, v);
            b2.store(Ty::I64, nxt, acc);
        });
    });
    let total = fini.load(Ty::I64, acc);
    fini.emit_out(Ty::I64, total);
    fini.ret(None);
    m.push_func(fini.finish());
    m
}

#[test]
fn ilr_preserves_program_semantics() {
    let native = loopy_module();
    let spec = RunSpec { init: Some("init"), fini: Some("fini"), ..Default::default() };
    let base = Vm::run(&native, VmConfig::default(), spec);
    assert_eq!(base.outcome, RunOutcome::Completed);

    for cfg in [IlrConfig::default(), IlrConfig::unoptimized()] {
        let mut hardened = native.clone();
        run_ilr_module(&mut hardened, &cfg);
        verify_module(&hardened).unwrap_or_else(|e| panic!("{e:?}"));
        let r = Vm::run(&hardened, VmConfig::default(), spec);
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert_eq!(r.output, base.output, "cfg {cfg:?}");
        assert!(r.instructions > base.instructions, "replication adds work");
    }
}

#[test]
fn ilr_detects_most_injected_faults_that_would_corrupt_output() {
    // Sweep single-bit-flip injections over the whole dynamic trace of the
    // hardened program; ILR (without TX) must convert would-be SDCs into
    // detections. Windows of vulnerability make a few SDCs possible; the
    // paper reports 0.8% for ILR vs. 26.2% native. With this small
    // program we accept anything under 6%.
    let native = loopy_module();
    let mut hardened = native.clone();
    run_ilr_module(&mut hardened, &IlrConfig::default());
    let spec = RunSpec { init: Some("init"), fini: Some("fini"), ..Default::default() };
    let clean = Vm::run(&hardened, VmConfig::default(), spec);
    assert_eq!(clean.outcome, RunOutcome::Completed);
    let total = clean.register_writes;

    let mut sdc = 0u32;
    let mut detected = 0u32;
    let mut runs = 0u32;
    let mut occ = 0u64;
    while occ < total {
        let cfg = VmConfig {
            fault: Some(FaultPlan { occurrence: occ, xor_mask: 0x10 }),
            max_instructions: 10_000_000,
            ..Default::default()
        };
        let r = Vm::run(&hardened, cfg, spec);
        runs += 1;
        match r.outcome {
            RunOutcome::Detected => detected += 1,
            RunOutcome::Completed if r.output != clean.output => sdc += 1,
            _ => {}
        }
        occ += 7; // Sample the trace.
    }
    assert!(runs > 50);
    assert!(detected > 0, "some faults must be detected");
    let sdc_rate = sdc as f64 / runs as f64;
    assert!(sdc_rate < 0.06, "SDC rate {sdc_rate} too high ({sdc}/{runs})");
}

#[test]
fn native_program_has_substantial_sdc_rate() {
    // The same sweep on the unhardened program shows why ILR matters.
    let native = loopy_module();
    let spec = RunSpec { init: Some("init"), fini: Some("fini"), ..Default::default() };
    let clean = Vm::run(&native, VmConfig::default(), spec);
    let total = clean.register_writes;
    let mut sdc = 0u32;
    let mut runs = 0u32;
    let mut occ = 0u64;
    while occ < total {
        let cfg = VmConfig {
            fault: Some(FaultPlan { occurrence: occ, xor_mask: 0x10 }),
            max_instructions: 10_000_000,
            ..Default::default()
        };
        let r = Vm::run(&native, cfg, spec);
        runs += 1;
        if r.outcome == RunOutcome::Completed && r.output != clean.output {
            sdc += 1;
        }
        occ += 3;
    }
    assert!(sdc as f64 / runs as f64 > 0.10, "native SDC rate suspiciously low: {sdc}/{runs}");
}
