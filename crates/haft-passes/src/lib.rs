//! The HAFT compiler passes.
//!
//! This crate is the reproduction of the paper's primary contribution: two
//! IR-to-IR transformations that together make an unmodified multithreaded
//! program fault-tolerant.
//!
//! * [`ilr`] — **Instruction-Level Redundancy** (paper §3.2/§3.3, the
//!   ~830-LoC LLVM pass): replicates every computational instruction into
//!   a *shadow* data flow inside the same thread, inserts master/shadow
//!   checks before memory updates, externalizations, and control flow, and
//!   implements the paper's refinements — the shared-memory access
//!   optimization (Figure 3), safe control-flow protection via shadow
//!   basic blocks (Figure 4), the fault-propagation check for loop
//!   induction variables, and the check-elision peephole.
//!
//! * [`tx`] — **Transactification** (the ~540-LoC LLVM pass): covers the
//!   program in hardware transactions at function and loop granularity,
//!   using per-thread instruction counters with conditional transaction
//!   splits to bound transaction sizes, the local-function-call
//!   optimization, pessimistic splits around external calls and
//!   transaction-unfriendly operations, and the begin/end peephole.
//!
//! * [`tmr`] — **Triple Modular Redundancy** (the alternative *masking*
//!   backend, after Elzar, DSN'16): triplicates every replicable
//!   instruction and inserts majority-vote instructions at
//!   synchronization points, so a single-copy fault is corrected in
//!   place with no transactions and no rollback.
//!
//! * [`abft`] — **Algorithm-Based Fault Tolerance** (the third backend):
//!   recognizes checksum-maintainable accumulation chains in matrix-style
//!   kernels, carries two checksum lanes alongside each chain, and
//!   verifies-and-corrects at externalization points — correcting a
//!   single divergent lane in place and fail-stopping on uncorrectable
//!   three-way divergence. Functions with no recognizable chains fall
//!   back to the full HAFT pipeline, per function.
//!
//! * [`manager`] — the trait-based pass pipeline: [`Pass`] is the unit of
//!   composition, [`PassManager`] owns ordering, per-pass instruction
//!   deltas ([`PassStats`]), and debug-build IR verification at every
//!   pass boundary.
//!
//! * [`pipeline`] — configuration plumbing: the [`Backend`] selector
//!   (HAFT's detect-and-rollback vs. TMR's triplicate-and-vote) and the
//!   composition of the passes into the paper's evaluated variants
//!   (native / ILR-only / TX-only / HAFT / TMR) and the cumulative
//!   optimization levels of Figure 7.
//!
//! # Examples
//!
//! ```
//! use haft_ir::builder::FunctionBuilder;
//! use haft_ir::module::Module;
//! use haft_ir::types::Ty;
//! use haft_passes::{HardenConfig, PassManager};
//!
//! let mut m = Module::new("demo");
//! let mut fb = FunctionBuilder::new("f", &[Ty::I64], Some(Ty::I64));
//! let x = fb.param(0);
//! let y = fb.add(Ty::I64, x, fb.iconst(Ty::I64, 1));
//! fb.ret(Some(y.into()));
//! m.push_func(fb.finish());
//!
//! let (hardened, stats) = PassManager::from_config(&HardenConfig::haft()).run_on(&m);
//! assert!(haft_ir::verify::verify_module(&hardened).is_ok());
//! // Both passes grew the function: the shadow flow and the transaction
//! // boundaries.
//! assert_eq!(stats.pass_names(), vec!["ilr", "tx"]);
//! assert!(hardened.total_inst_count() > m.total_inst_count());
//! ```

pub mod abft;
pub mod ilr;
pub mod manager;
pub mod pipeline;
pub mod tmr;
pub mod tx;

pub use abft::AbftConfig;
pub use ilr::IlrConfig;
pub use manager::{
    harden_runs_for, AbftPass, IlrPass, Pass, PassManager, PassRecord, PassStats, TmrPass, TxPass,
};
#[allow(deprecated)]
pub use pipeline::harden;
pub use pipeline::{Backend, HardenConfig, OptLevel};
pub use tmr::TmrConfig;
pub use tx::TxConfig;
