//! Trait-based pass management.
//!
//! The paper's pipeline is a fixed two-pass sequence (ILR then TX), but
//! everything downstream — the `Experiment` API in the `haft` facade, the
//! bench harness, ablations — wants to compose, reorder, and instrument
//! passes uniformly. [`Pass`] is the unit of composition; [`PassManager`]
//! owns ordering, optional IR verification at every pass boundary, and
//! per-pass instruction-delta accounting in [`PassStats`].
//!
//! ```
//! use haft_ir::builder::FunctionBuilder;
//! use haft_ir::module::Module;
//! use haft_ir::types::Ty;
//! use haft_passes::{HardenConfig, PassManager};
//!
//! let mut m = Module::new("demo");
//! let mut fb = FunctionBuilder::new("f", &[Ty::I64], Some(Ty::I64));
//! let x = fb.param(0);
//! let y = fb.add(Ty::I64, x, fb.iconst(Ty::I64, 1));
//! fb.ret(Some(y.into()));
//! m.push_func(fb.finish());
//!
//! let (hardened, stats) = PassManager::from_config(&HardenConfig::haft()).run_on(&m);
//! assert_eq!(stats.pass_names(), vec!["ilr", "tx"]);
//! // Both passes add instructions: the shadow flow and the tx brackets.
//! assert!(stats.records.iter().all(|r| r.added() > 0));
//! assert_eq!(hardened.total_inst_count() as i64,
//!            m.total_inst_count() as i64 + stats.total_added());
//! ```

use haft_ir::module::Module;
use haft_ir::verify::verify_module;

use crate::abft::{run_abft_module, AbftConfig};
use crate::ilr::{run_ilr_module, IlrConfig};
use crate::tmr::{run_tmr_module, TmrConfig};
use crate::tx::{run_tx_module, TxConfig};

/// What one pass did to the module, measured by the manager around the
/// pass's `run` call.
#[derive(Clone, Debug)]
pub struct PassRecord {
    /// The pass's [`Pass::name`].
    pub name: &'static str,
    /// Module-wide instruction count before the pass ran.
    pub insts_before: usize,
    /// Module-wide instruction count after the pass ran.
    pub insts_after: usize,
}

impl PassRecord {
    /// Net instructions added (negative when the pass shrank the module).
    pub fn added(&self) -> i64 {
        self.insts_after as i64 - self.insts_before as i64
    }
}

/// Accumulated statistics for one pipeline run.
///
/// The manager appends one [`PassRecord`] per pass; passes themselves may
/// additionally publish named counters through [`PassStats::bump`] (e.g.
/// how many functions they transformed).
#[derive(Clone, Debug, Default)]
pub struct PassStats {
    /// One record per executed pass, in execution order.
    pub records: Vec<PassRecord>,
    /// Pass-published counters, in publication order.
    pub counters: Vec<(&'static str, u64)>,
}

impl PassStats {
    /// Adds `n` to the named pass-published counter.
    pub fn bump(&mut self, name: &'static str, n: u64) {
        match self.counters.iter_mut().find(|(k, _)| *k == name) {
            Some((_, v)) => *v += n,
            None => self.counters.push((name, n)),
        }
    }

    /// Reads a pass-published counter.
    #[deprecated(note = "use `PassStats::metrics` (the unified registry's `pass.*` names)")]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| *k == name).map(|(_, v)| *v)
    }

    /// Publishes the pass-published counters and the pipeline's net
    /// instruction delta into the unified registry: each counter `x`
    /// becomes `pass.x`, plus `pass.added.total`.
    pub fn metrics(&self) -> haft_trace::MetricsSnapshot {
        let mut m = haft_trace::MetricsSnapshot::new();
        for (name, n) in &self.counters {
            m.set(format!("pass.{name}"), *n as f64);
        }
        m.set("pass.added.total", self.total_added() as f64);
        m
    }

    /// Names of the executed passes, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.records.iter().map(|r| r.name).collect()
    }

    /// Net instruction delta of one pass, if it ran.
    pub fn added_by(&self, pass: &str) -> Option<i64> {
        self.records.iter().find(|r| r.name == pass).map(|r| r.added())
    }

    /// Net instruction delta over the whole pipeline.
    pub fn total_added(&self) -> i64 {
        self.records.iter().map(|r| r.added()).sum()
    }
}

/// An IR-to-IR transformation that can be sequenced by a [`PassManager`].
pub trait Pass {
    /// Stable identifier used in stats, verification panics, and reports.
    fn name(&self) -> &'static str;
    /// Transforms `m` in place. `stats` is for pass-published counters;
    /// instruction deltas are recorded by the manager.
    fn run(&self, m: &mut Module, stats: &mut PassStats);
}

/// The ILR pass as a managed [`Pass`] (paper §3.2/§3.3).
#[derive(Clone, Debug, Default)]
pub struct IlrPass(pub IlrConfig);

impl Pass for IlrPass {
    fn name(&self) -> &'static str {
        "ilr"
    }

    fn run(&self, m: &mut Module, stats: &mut PassStats) {
        let transformed = m.funcs.iter().filter(|f| !f.attrs.external).count() as u64;
        run_ilr_module(m, &self.0);
        stats.bump("ilr.functions", transformed);
    }
}

/// The transactification pass as a managed [`Pass`] (paper §3.1/§3.3).
#[derive(Clone, Debug, Default)]
pub struct TxPass(pub TxConfig);

impl Pass for TxPass {
    fn name(&self) -> &'static str {
        "tx"
    }

    fn run(&self, m: &mut Module, stats: &mut PassStats) {
        let transformed = m.funcs.iter().filter(|f| !f.attrs.external).count() as u64;
        run_tx_module(m, &self.0);
        stats.bump("tx.functions", transformed);
    }
}

/// The Elzar-style TMR pass as a managed [`Pass`]: triplicate and vote
/// instead of duplicate, detect, and roll back (the [`crate::tmr`]
/// backend).
#[derive(Clone, Debug, Default)]
pub struct TmrPass(pub TmrConfig);

impl Pass for TmrPass {
    fn name(&self) -> &'static str {
        "tmr"
    }

    fn run(&self, m: &mut Module, stats: &mut PassStats) {
        let transformed = m.funcs.iter().filter(|f| !f.attrs.external).count() as u64;
        let votes = run_tmr_module(m, &self.0);
        stats.bump("tmr.functions", transformed);
        stats.bump("tmr.votes", votes);
    }
}

/// The ABFT pass as a managed [`Pass`]: checksum lanes and
/// verify-and-correct for recognized accumulation chains, with a
/// per-function fallback to the full HAFT pipeline (the [`crate::abft`]
/// backend).
#[derive(Clone, Debug, Default)]
pub struct AbftPass(pub AbftConfig);

impl Pass for AbftPass {
    fn name(&self) -> &'static str {
        "abft"
    }

    fn run(&self, m: &mut Module, stats: &mut PassStats) {
        let s = run_abft_module(m, &self.0);
        stats.bump("abft.functions_covered", s.functions_covered);
        stats.bump("abft.functions_fallback", s.functions_fallback);
        stats.bump("abft.chains", s.chains);
    }
}

/// Owns a pass sequence: ordering, boundary verification, stats.
///
/// By default the manager re-verifies the module after every pass **in
/// debug builds** (`debug_assertions`), so SSA or type breakage is caught
/// at the pass boundary that introduced it instead of deep inside the VM.
/// Release builds skip verification unless [`PassManager::verify`]
/// requests it.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    verify_between: bool,
}

impl Default for PassManager {
    fn default() -> Self {
        Self::new()
    }
}

impl PassManager {
    /// An empty pipeline with default (debug-only) boundary verification.
    pub fn new() -> Self {
        PassManager { passes: Vec::new(), verify_between: cfg!(debug_assertions) }
    }

    /// The pipeline for one evaluated variant, selected by the config's
    /// [`crate::pipeline::Backend`]: the paper's ILR-then-TX sequence, or
    /// the Elzar-style TMR pass.
    ///
    /// Debug-asserts that no pass config belonging to the *other* backend
    /// is set: silently dropping it would let a benchmark sweep report a
    /// variant that was never actually built (the same hazard
    /// `HardenConfig::without_local_calls` guards against).
    pub fn from_config(cfg: &crate::pipeline::HardenConfig) -> Self {
        let mut pm = Self::new();
        match cfg.backend {
            crate::pipeline::Backend::IlrTx => {
                debug_assert!(
                    cfg.tmr.is_none() && cfg.abft.is_none(),
                    "tmr/abft config set but backend is IlrTx; it would be silently ignored \
                     — use backend: Backend::Tmr (e.g. HardenConfig::tmr()) or \
                     Backend::Abft (e.g. HardenConfig::abft())"
                );
                if let Some(ilr) = &cfg.ilr {
                    pm = pm.with_pass(IlrPass(ilr.clone()));
                }
                if let Some(tx) = &cfg.tx {
                    pm = pm.with_pass(TxPass(tx.clone()));
                }
            }
            crate::pipeline::Backend::Tmr => {
                debug_assert!(
                    cfg.ilr.is_none() && cfg.tx.is_none() && cfg.abft.is_none(),
                    "ilr/tx/abft config set but backend is Tmr; it would be silently ignored \
                     — use backend: Backend::IlrTx (e.g. HardenConfig::haft())"
                );
                pm = pm.with_pass(TmrPass(cfg.tmr.clone().unwrap_or_default()));
            }
            crate::pipeline::Backend::Abft => {
                debug_assert!(
                    cfg.ilr.is_none() && cfg.tx.is_none() && cfg.tmr.is_none(),
                    "ilr/tx/tmr config set but backend is Abft; it would be silently ignored \
                     — the ABFT pass hardens fallback functions with its own internal \
                     default-config HAFT pipeline (use HardenConfig::abft())"
                );
                pm = pm.with_pass(AbftPass(cfg.abft.clone().unwrap_or_default()));
            }
        }
        pm
    }

    /// Appends a pass to the sequence.
    pub fn with_pass(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Forces boundary verification on or off, overriding the debug-build
    /// default.
    pub fn verify(mut self, on: bool) -> Self {
        self.verify_between = on;
        self
    }

    /// Number of passes in the sequence.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// True when the sequence is empty (the native baseline).
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Runs the sequence in place over `m`.
    ///
    /// # Panics
    ///
    /// With boundary verification enabled, panics naming the offending
    /// pass if the module fails [`verify_module`] at any pass boundary.
    pub fn run(&self, m: &mut Module) -> PassStats {
        if !self.passes.is_empty() {
            bump_harden_runs(&m.name);
        }
        let mut stats = PassStats::default();
        for pass in &self.passes {
            let before = m.total_inst_count();
            pass.run(m, &mut stats);
            stats.records.push(PassRecord {
                name: pass.name(),
                insts_before: before,
                insts_after: m.total_inst_count(),
            });
            if self.verify_between {
                if let Err(errs) = verify_module(m) {
                    panic!("module invalid after pass `{}`: {errs:?}", pass.name());
                }
            }
        }
        stats
    }

    /// Runs the sequence on a copy of `m`, returning the transformed
    /// module and the stats.
    pub fn run_on(&self, m: &Module) -> (Module, PassStats) {
        let mut out = m.clone();
        let stats = self.run(&mut out);
        (out, stats)
    }
}

/// Process-wide count of non-empty pipeline runs, keyed by module name.
///
/// Hardening is the expensive, cacheable step of every experiment; this
/// counter exists so tests can pin that a sweep — any number of serve
/// calls, shard counts, or execution modes over one configuration —
/// hardened its module exactly once (the `Experiment` cache contract).
/// Tests that assert on it should use a uniquely named module: the
/// counter is global to the process and other tests run in parallel.
pub fn harden_runs_for(module_name: &str) -> u64 {
    harden_counter().lock().unwrap().get(module_name).copied().unwrap_or(0)
}

fn bump_harden_runs(module_name: &str) {
    *harden_counter().lock().unwrap().entry(module_name.to_string()).or_insert(0) += 1;
}

fn harden_counter() -> &'static std::sync::Mutex<std::collections::HashMap<String, u64>> {
    static COUNTER: std::sync::OnceLock<std::sync::Mutex<std::collections::HashMap<String, u64>>> =
        std::sync::OnceLock::new();
    COUNTER.get_or_init(Default::default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::HardenConfig;
    use haft_ir::builder::FunctionBuilder;
    use haft_ir::types::Ty;

    fn module() -> Module {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("f", &[Ty::I64], Some(Ty::I64));
        let x = fb.param(0);
        let y = fb.mul(Ty::I64, x, fb.iconst(Ty::I64, 3));
        fb.ret(Some(y.into()));
        m.push_func(fb.finish());
        m
    }

    #[test]
    fn from_config_mirrors_variant_shape() {
        assert!(PassManager::from_config(&HardenConfig::native()).is_empty());
        assert_eq!(PassManager::from_config(&HardenConfig::ilr_only()).len(), 1);
        assert_eq!(PassManager::from_config(&HardenConfig::haft()).len(), 2);
        assert_eq!(PassManager::from_config(&HardenConfig::tmr()).len(), 1);
        assert_eq!(PassManager::from_config(&HardenConfig::abft()).len(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "backend is IlrTx")]
    fn off_backend_tmr_config_is_rejected() {
        let cfg =
            HardenConfig { tmr: Some(crate::tmr::TmrConfig::default()), ..HardenConfig::haft() };
        let _ = PassManager::from_config(&cfg);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "backend is Tmr")]
    fn off_backend_ilr_config_is_rejected() {
        let mut cfg = HardenConfig::tmr();
        cfg.ilr = Some(crate::ilr::IlrConfig::default());
        let _ = PassManager::from_config(&cfg);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "backend is Abft")]
    fn off_backend_tmr_config_is_rejected_by_abft() {
        let mut cfg = HardenConfig::abft();
        cfg.tmr = Some(crate::tmr::TmrConfig::default());
        let _ = PassManager::from_config(&cfg);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "backend is IlrTx")]
    fn off_backend_abft_config_is_rejected() {
        let cfg =
            HardenConfig { abft: Some(crate::abft::AbftConfig::default()), ..HardenConfig::haft() };
        let _ = PassManager::from_config(&cfg);
    }

    #[test]
    fn records_per_pass_deltas_in_order() {
        let m = module();
        let (out, stats) = PassManager::from_config(&HardenConfig::haft()).run_on(&m);
        assert_eq!(stats.pass_names(), vec!["ilr", "tx"]);
        assert!(stats.added_by("ilr").unwrap() > 0, "{stats:?}");
        assert!(stats.added_by("tx").unwrap() > 0, "{stats:?}");
        assert_eq!(
            out.total_inst_count() as i64,
            m.total_inst_count() as i64 + stats.total_added()
        );
        // Deltas chain: pass N+1 starts where pass N ended.
        assert_eq!(stats.records[1].insts_before, stats.records[0].insts_after);
    }

    #[test]
    fn passes_publish_counters() {
        let (_, stats) = PassManager::from_config(&HardenConfig::haft()).run_on(&module());
        let m = stats.metrics();
        assert_eq!(m.get("pass.ilr.functions"), Some(1.0));
        assert_eq!(m.get("pass.tx.functions"), Some(1.0));
        assert_eq!(m.get("pass.nope"), None);
        assert_eq!(m.get("pass.added.total"), Some(stats.total_added() as f64));
        // The deprecated accessor stays answer-compatible with the registry.
        #[allow(deprecated)]
        {
            assert_eq!(stats.counter("ilr.functions"), Some(1));
            assert_eq!(stats.counter("nope"), None);
        }
    }

    #[test]
    fn empty_manager_is_identity() {
        let m = module();
        let (out, stats) = PassManager::new().run_on(&m);
        assert_eq!(out.total_inst_count(), m.total_inst_count());
        assert!(stats.records.is_empty());
    }

    #[test]
    #[should_panic(expected = "module invalid after pass `breaker`")]
    fn boundary_verification_names_the_offending_pass() {
        struct Breaker;
        impl Pass for Breaker {
            fn name(&self) -> &'static str {
                "breaker"
            }
            fn run(&self, m: &mut Module, _stats: &mut PassStats) {
                // Truncate the terminator off every block: invalid IR.
                for f in &mut m.funcs {
                    for b in &mut f.blocks {
                        b.insts.clear();
                    }
                }
            }
        }
        let mut m = module();
        PassManager::new().verify(true).with_pass(Breaker).run(&mut m);
    }
}
