//! Pass composition: the paper's evaluated configurations.

use haft_ir::module::Module;

use crate::abft::AbftConfig;
use crate::ilr::IlrConfig;
use crate::tmr::TmrConfig;
use crate::tx::TxConfig;

/// Cumulative optimization levels of Figure 7 / Figure 9 (right).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OptLevel {
    /// `N` — no optimizations.
    None,
    /// `S` — + shared-memory access optimization.
    SharedMem,
    /// `C` — + control-flow protection.
    ControlFlow,
    /// `L` — + local function calls.
    LocalCalls,
    /// `F` — + fault propagation checks.
    FaultProp,
}

impl OptLevel {
    /// All levels in the paper's cumulative order.
    pub const ALL: [OptLevel; 5] = [
        OptLevel::None,
        OptLevel::SharedMem,
        OptLevel::ControlFlow,
        OptLevel::LocalCalls,
        OptLevel::FaultProp,
    ];

    /// Single-letter label used in the paper's plots.
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::None => "N",
            OptLevel::SharedMem => "S",
            OptLevel::ControlFlow => "C",
            OptLevel::LocalCalls => "L",
            OptLevel::FaultProp => "F",
        }
    }
}

/// Which hardening *strategy* a [`HardenConfig`] selects.
///
/// The backends share the [`crate::PassManager`]/`Experiment`
/// plumbing but differ in mechanism:
///
/// * [`Backend::IlrTx`] — the paper's pipeline: duplicate (ILR) to
///   *detect*, transactify (TX) to *recover by rollback*.
/// * [`Backend::Tmr`] — the Elzar-style alternative: triplicate and
///   majority-vote to *mask* faults in place, with no transactions.
/// * [`Backend::Abft`] — algorithm-based fault tolerance: checksum
///   lanes over recognized accumulation chains, verified and corrected
///   at externalization points, with per-function full-HAFT fallback.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// HAFT's detect-and-rollback pipeline (the default).
    #[default]
    IlrTx,
    /// Elzar-style triple modular redundancy with majority voting.
    Tmr,
    /// Checksum-protected matrix kernels with full-HAFT fallback.
    Abft,
}

/// Which passes to run and how.
#[derive(Clone, Debug)]
pub struct HardenConfig {
    /// Hardening strategy; decides which of the pass configs below the
    /// [`crate::PassManager`] consults.
    pub backend: Backend,
    pub ilr: Option<IlrConfig>,
    pub tx: Option<TxConfig>,
    /// TMR pass configuration, consulted when `backend` is
    /// [`Backend::Tmr`] (a `None` falls back to [`TmrConfig::default`]).
    pub tmr: Option<TmrConfig>,
    /// ABFT pass configuration, consulted when `backend` is
    /// [`Backend::Abft`] (a `None` falls back to
    /// [`AbftConfig::default`]).
    pub abft: Option<AbftConfig>,
}

impl Default for HardenConfig {
    /// The default configuration is full HAFT — the paper's evaluated
    /// pipeline ([`HardenConfig::haft`]), not the native baseline.
    fn default() -> Self {
        Self::haft()
    }
}

impl HardenConfig {
    fn ilr_tx(ilr: Option<IlrConfig>, tx: Option<TxConfig>) -> Self {
        HardenConfig { backend: Backend::IlrTx, ilr, tx, tmr: None, abft: None }
    }

    /// No transformation (the native baseline).
    pub fn native() -> Self {
        Self::ilr_tx(None, None)
    }

    /// Fault detection only (the paper's "ILR" rows).
    pub fn ilr_only() -> Self {
        Self::ilr_tx(Some(IlrConfig::default()), None)
    }

    /// Transactions only (the paper's "TX" rows).
    pub fn tx_only() -> Self {
        Self::ilr_tx(None, Some(TxConfig::default()))
    }

    /// Full HAFT: ILR + TX with all optimizations.
    pub fn haft() -> Self {
        Self::ilr_tx(Some(IlrConfig::default()), Some(TxConfig::default()))
    }

    /// The Elzar-style TMR backend: triplicate computation and mask
    /// faults by majority vote, with no transactional machinery.
    pub fn tmr() -> Self {
        HardenConfig {
            backend: Backend::Tmr,
            ilr: None,
            tx: None,
            tmr: Some(TmrConfig::default()),
            abft: None,
        }
    }

    /// TMR with every refinement disabled (vote everywhere, single
    /// loads) — the masking analogue of [`IlrConfig::unoptimized`].
    pub fn tmr_unoptimized() -> Self {
        HardenConfig {
            backend: Backend::Tmr,
            ilr: None,
            tx: None,
            tmr: Some(TmrConfig::unoptimized()),
            abft: None,
        }
    }

    /// The ABFT backend: checksum lanes over recognized accumulation
    /// chains, full HAFT for everything the pass cannot cover.
    pub fn abft() -> Self {
        HardenConfig {
            backend: Backend::Abft,
            ilr: None,
            tx: None,
            tmr: None,
            abft: Some(AbftConfig::default()),
        }
    }

    /// ABFT with the fallback-heavy claiming threshold: single-chain
    /// functions drop back to full HAFT, so only multi-reduction
    /// kernels keep the checksum protection.
    pub fn abft_fallback_heavy() -> Self {
        HardenConfig {
            backend: Backend::Abft,
            ilr: None,
            tx: None,
            tmr: None,
            abft: Some(AbftConfig::fallback_heavy()),
        }
    }

    /// Full HAFT with the lock-elision wrapper enabled.
    pub fn haft_with_elision() -> Self {
        Self::haft().with_lock_elision()
    }

    /// HAFT at one of Figure 7's cumulative optimization levels.
    pub fn at_opt_level(level: OptLevel) -> Self {
        let ilr = IlrConfig {
            shared_mem_opt: level >= OptLevel::SharedMem,
            control_flow_protection: level >= OptLevel::ControlFlow,
            fault_prop_check: level >= OptLevel::FaultProp,
            check_elision: true,
        };
        let tx = TxConfig { local_calls_opt: level >= OptLevel::LocalCalls, ..TxConfig::default() };
        Self::ilr_tx(Some(ilr), Some(tx))
    }

    /// Disables the TX local-call optimization (the paper's `vips-nc`).
    ///
    /// Debug-asserts that the TX pass is enabled: on a TX-less config the
    /// modifier has nothing to modify, and silently returning `self`
    /// unchanged would let a benchmark sweep report a "no local calls"
    /// variant that is actually the base variant.
    pub fn without_local_calls(mut self) -> Self {
        match &mut self.tx {
            Some(tx) => tx.local_calls_opt = false,
            None => debug_assert!(
                false,
                "without_local_calls on a config with the TX pass disabled is a no-op"
            ),
        }
        self
    }

    /// Keeps lock/unlock inside transactions so the VM's run-time
    /// lock-elision wrapper can elide them (paper §3.3).
    ///
    /// Debug-asserts that the TX pass is enabled, like
    /// [`HardenConfig::without_local_calls`].
    pub fn with_lock_elision(mut self) -> Self {
        match &mut self.tx {
            Some(tx) => tx.lock_elision = true,
            None => debug_assert!(
                false,
                "with_lock_elision on a config with the TX pass disabled is a no-op"
            ),
        }
        self
    }

    /// Short human-readable name for reports: the variant name
    /// (`native`/`ILR`/`TX`/`HAFT`, `TMR` for the masking backend, or
    /// `ABFT` for the checksum backend) plus suffixes for every
    /// deviation from the preset (`-sm`, `-cf`, `-fp`, `-ce`, `-nc`,
    /// `-ph`; `-tl`, `-ve` for TMR; `-fb` for fallback-heavy ABFT),
    /// `+el` for lock elision, and `+bl<n>` for an `n`-entry TX
    /// blacklist. Distinct configs get distinct labels, except for
    /// blacklists that differ only in their entries (the label encodes
    /// the count).
    pub fn label(&self) -> String {
        if self.backend == Backend::Abft {
            let mut s = String::from("ABFT");
            let abft = self.abft.clone().unwrap_or_default();
            if abft.min_data_chains > AbftConfig::default().min_data_chains {
                s.push_str("-fb");
            }
            return s;
        }
        if self.backend == Backend::Tmr {
            let mut s = String::from("TMR");
            let tmr = self.tmr.clone().unwrap_or_default();
            if !tmr.triplicate_loads {
                s.push_str("-tl");
            }
            if !tmr.vote_elision {
                s.push_str("-ve");
            }
            return s;
        }
        let mut s = String::from(match (&self.ilr, &self.tx) {
            (None, None) => "native",
            (Some(_), None) => "ILR",
            (None, Some(_)) => "TX",
            (Some(_), Some(_)) => "HAFT",
        });
        if let Some(ilr) = &self.ilr {
            if !ilr.shared_mem_opt {
                s.push_str("-sm");
            }
            if !ilr.control_flow_protection {
                s.push_str("-cf");
            }
            if !ilr.fault_prop_check {
                s.push_str("-fp");
            }
            if !ilr.check_elision {
                s.push_str("-ce");
            }
        }
        if let Some(tx) = &self.tx {
            if !tx.local_calls_opt {
                s.push_str("-nc");
            }
            if !tx.peephole {
                s.push_str("-ph");
            }
            if tx.lock_elision {
                s.push_str("+el");
            }
            if !tx.blacklist.is_empty() {
                s.push_str(&format!("+bl{}", tx.blacklist.len()));
            }
        }
        s
    }
}

/// Applies the configured passes to a copy of `m`.
///
/// Compat shim over [`crate::PassManager::from_config`]: it discards the
/// [`crate::PassStats`] and keeps the pre-`PassManager` signature. New
/// code should drive `PassManager` directly, or the `Experiment` builder
/// in the `haft` facade for whole harden-and-run pipelines.
#[deprecated(
    since = "0.2.0",
    note = "use PassManager::from_config(cfg).run_on(m) or haft::Experiment"
)]
pub fn harden(m: &Module, cfg: &HardenConfig) -> Module {
    crate::manager::PassManager::from_config(cfg).run_on(m).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_levels_are_cumulative() {
        let n = HardenConfig::at_opt_level(OptLevel::None);
        assert!(!n.ilr.as_ref().unwrap().shared_mem_opt);
        assert!(!n.tx.as_ref().unwrap().local_calls_opt);
        let s = HardenConfig::at_opt_level(OptLevel::SharedMem);
        assert!(s.ilr.as_ref().unwrap().shared_mem_opt);
        assert!(!s.ilr.as_ref().unwrap().control_flow_protection);
        let fprop = HardenConfig::at_opt_level(OptLevel::FaultProp);
        assert!(fprop.ilr.as_ref().unwrap().fault_prop_check);
        assert!(fprop.tx.as_ref().unwrap().local_calls_opt);
    }

    #[test]
    fn preset_shapes() {
        assert!(HardenConfig::native().ilr.is_none());
        assert!(HardenConfig::ilr_only().tx.is_none());
        assert!(HardenConfig::tx_only().ilr.is_none());
        let h = HardenConfig::haft();
        assert!(h.ilr.is_some() && h.tx.is_some());
        assert!(HardenConfig::haft_with_elision().tx.unwrap().lock_elision);
        assert!(!HardenConfig::haft().without_local_calls().tx.unwrap().local_calls_opt);
    }

    #[test]
    fn backend_shapes() {
        // Every IlrTx preset carries the default backend; the TMR presets
        // switch it and carry only a TMR config.
        for cfg in [
            HardenConfig::native(),
            HardenConfig::ilr_only(),
            HardenConfig::tx_only(),
            HardenConfig::haft(),
            HardenConfig::at_opt_level(OptLevel::SharedMem),
        ] {
            assert_eq!(cfg.backend, Backend::IlrTx);
            assert!(cfg.tmr.is_none());
        }
        let t = HardenConfig::tmr();
        assert_eq!(t.backend, Backend::Tmr);
        assert!(t.ilr.is_none() && t.tx.is_none() && t.abft.is_none());
        assert!(t.tmr.as_ref().unwrap().triplicate_loads);
        assert!(!HardenConfig::tmr_unoptimized().tmr.unwrap().triplicate_loads);
        // The ABFT presets carry only an ABFT config.
        let a = HardenConfig::abft();
        assert_eq!(a.backend, Backend::Abft);
        assert!(a.ilr.is_none() && a.tx.is_none() && a.tmr.is_none());
        assert_eq!(a.abft.as_ref().unwrap().min_data_chains, 1);
        assert_eq!(HardenConfig::abft_fallback_heavy().abft.unwrap().min_data_chains, 2);
        // The default config is full HAFT, not native.
        assert_eq!(HardenConfig::default().label(), "HAFT");
        assert_eq!(Backend::default(), Backend::IlrTx);
    }

    #[test]
    fn labels() {
        let labels: Vec<&str> = OptLevel::ALL.iter().map(|l| l.label()).collect();
        assert_eq!(labels, vec!["N", "S", "C", "L", "F"]);
    }

    /// Pins every labelled variant string, across both backends: reports
    /// and bench tables key on these, so a drift here is an API break.
    #[test]
    fn config_labels_name_variant_and_deviations() {
        assert_eq!(HardenConfig::native().label(), "native");
        assert_eq!(HardenConfig::ilr_only().label(), "ILR");
        assert_eq!(HardenConfig::tx_only().label(), "TX");
        assert_eq!(HardenConfig::haft().label(), "HAFT");
        assert_eq!(HardenConfig::haft_with_elision().label(), "HAFT+el");
        assert_eq!(HardenConfig::haft().without_local_calls().label(), "HAFT-nc");
        assert_eq!(HardenConfig::at_opt_level(OptLevel::None).label(), "HAFT-sm-cf-fp-nc");
        // The TMR backend's variants.
        assert_eq!(HardenConfig::tmr().label(), "TMR");
        assert_eq!(HardenConfig::tmr_unoptimized().label(), "TMR-tl-ve");
        let mut no_tl = HardenConfig::tmr();
        no_tl.tmr = Some(TmrConfig { triplicate_loads: false, ..TmrConfig::default() });
        assert_eq!(no_tl.label(), "TMR-tl");
        let mut no_ve = HardenConfig::tmr();
        no_ve.tmr = Some(TmrConfig { vote_elision: false, ..TmrConfig::default() });
        assert_eq!(no_ve.label(), "TMR-ve");
        // A backend-less TMR config labels by the default TMR settings.
        let bare =
            HardenConfig { backend: Backend::Tmr, ilr: None, tx: None, tmr: None, abft: None };
        assert_eq!(bare.label(), "TMR");
        // The ABFT backend's variants.
        assert_eq!(HardenConfig::abft().label(), "ABFT");
        assert_eq!(HardenConfig::abft_fallback_heavy().label(), "ABFT-fb");
        // A config-less ABFT backend labels by the default settings.
        let bare_abft =
            HardenConfig { backend: Backend::Abft, ilr: None, tx: None, tmr: None, abft: None };
        assert_eq!(bare_abft.label(), "ABFT");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "without_local_calls")]
    fn modifier_on_disabled_pass_is_rejected() {
        let _ = HardenConfig::ilr_only().without_local_calls();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "with_lock_elision")]
    fn elision_modifier_on_disabled_pass_is_rejected() {
        let _ = HardenConfig::native().with_lock_elision();
    }
}
