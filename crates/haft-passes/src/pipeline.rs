//! Pass composition: the paper's evaluated configurations.

use haft_ir::module::Module;

use crate::ilr::{run_ilr_module, IlrConfig};
use crate::tx::{run_tx_module, TxConfig};

/// Cumulative optimization levels of Figure 7 / Figure 9 (right).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OptLevel {
    /// `N` — no optimizations.
    None,
    /// `S` — + shared-memory access optimization.
    SharedMem,
    /// `C` — + control-flow protection.
    ControlFlow,
    /// `L` — + local function calls.
    LocalCalls,
    /// `F` — + fault propagation checks.
    FaultProp,
}

impl OptLevel {
    /// All levels in the paper's cumulative order.
    pub const ALL: [OptLevel; 5] = [
        OptLevel::None,
        OptLevel::SharedMem,
        OptLevel::ControlFlow,
        OptLevel::LocalCalls,
        OptLevel::FaultProp,
    ];

    /// Single-letter label used in the paper's plots.
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::None => "N",
            OptLevel::SharedMem => "S",
            OptLevel::ControlFlow => "C",
            OptLevel::LocalCalls => "L",
            OptLevel::FaultProp => "F",
        }
    }
}

/// Which passes to run and how.
#[derive(Clone, Debug, Default)]
pub struct HardenConfig {
    pub ilr: Option<IlrConfig>,
    pub tx: Option<TxConfig>,
}

impl HardenConfig {
    /// No transformation (the native baseline).
    pub fn native() -> Self {
        HardenConfig { ilr: None, tx: None }
    }

    /// Fault detection only (the paper's "ILR" rows).
    pub fn ilr_only() -> Self {
        HardenConfig { ilr: Some(IlrConfig::default()), tx: None }
    }

    /// Transactions only (the paper's "TX" rows).
    pub fn tx_only() -> Self {
        HardenConfig { ilr: None, tx: Some(TxConfig::default()) }
    }

    /// Full HAFT: ILR + TX with all optimizations.
    pub fn haft() -> Self {
        HardenConfig { ilr: Some(IlrConfig::default()), tx: Some(TxConfig::default()) }
    }

    /// Full HAFT with the lock-elision wrapper enabled.
    pub fn haft_with_elision() -> Self {
        let mut c = Self::haft();
        if let Some(tx) = &mut c.tx {
            tx.lock_elision = true;
        }
        c
    }

    /// HAFT at one of Figure 7's cumulative optimization levels.
    pub fn at_opt_level(level: OptLevel) -> Self {
        let ilr = IlrConfig {
            shared_mem_opt: level >= OptLevel::SharedMem,
            control_flow_protection: level >= OptLevel::ControlFlow,
            fault_prop_check: level >= OptLevel::FaultProp,
            check_elision: true,
        };
        let tx = TxConfig { local_calls_opt: level >= OptLevel::LocalCalls, ..TxConfig::default() };
        HardenConfig { ilr: Some(ilr), tx: Some(tx) }
    }

    /// Disables the TX local-call optimization (the paper's `vips-nc`).
    pub fn without_local_calls(mut self) -> Self {
        if let Some(tx) = &mut self.tx {
            tx.local_calls_opt = false;
        }
        self
    }
}

/// Applies the configured passes to a copy of `m`.
pub fn harden(m: &Module, cfg: &HardenConfig) -> Module {
    let mut out = m.clone();
    if let Some(ilr) = &cfg.ilr {
        run_ilr_module(&mut out, ilr);
    }
    if let Some(tx) = &cfg.tx {
        run_tx_module(&mut out, tx);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_levels_are_cumulative() {
        let n = HardenConfig::at_opt_level(OptLevel::None);
        assert!(!n.ilr.as_ref().unwrap().shared_mem_opt);
        assert!(!n.tx.as_ref().unwrap().local_calls_opt);
        let s = HardenConfig::at_opt_level(OptLevel::SharedMem);
        assert!(s.ilr.as_ref().unwrap().shared_mem_opt);
        assert!(!s.ilr.as_ref().unwrap().control_flow_protection);
        let fprop = HardenConfig::at_opt_level(OptLevel::FaultProp);
        assert!(fprop.ilr.as_ref().unwrap().fault_prop_check);
        assert!(fprop.tx.as_ref().unwrap().local_calls_opt);
    }

    #[test]
    fn preset_shapes() {
        assert!(HardenConfig::native().ilr.is_none());
        assert!(HardenConfig::ilr_only().tx.is_none());
        assert!(HardenConfig::tx_only().ilr.is_none());
        let h = HardenConfig::haft();
        assert!(h.ilr.is_some() && h.tx.is_some());
        assert!(HardenConfig::haft_with_elision().tx.unwrap().lock_elision);
        assert!(!HardenConfig::haft().without_local_calls().tx.unwrap().local_calls_opt);
    }

    #[test]
    fn labels() {
        let labels: Vec<&str> = OptLevel::ALL.iter().map(|l| l.label()).collect();
        assert_eq!(labels, vec!["N", "S", "C", "L", "F"]);
    }
}
