//! Triple Modular Redundancy (TMR) — Elzar-style fault *masking*.
//!
//! The alternative hardening backend, after Elzar (Kuvaiskii et al.,
//! DSN'16 / arXiv:1604.00500): instead of HAFT's duplicate-detect-rollback
//! pipeline, every replicable instruction is *triplicated* into two extra
//! copy flows, and at every synchronization point — stores, branches,
//! calls, returns, externalizations, atomics, locks — a majority-vote
//! instruction replaces the used operand with the two-of-three majority.
//! A transient fault corrupts at most one of the three flows, so the vote
//! masks it in place and execution simply continues: no transactions, no
//! rollback machinery, no re-execution. The price is a ~3× wide
//! instruction stream plus the explicit votes, where HAFT pays ~2× plus
//! transactional bookkeeping.
//!
//! Unlike ILR the pass never splits blocks: votes are straight-line
//! instructions (the VM resolves the majority), so the CFG is preserved
//! exactly.

use std::collections::HashMap;

use haft_ir::cfg::Cfg;
use haft_ir::function::{Function, InstId, ValueId};
use haft_ir::inst::{InstMeta, Op, Operand};
use haft_ir::module::Module;
use haft_ir::types::Ty;

/// TMR configuration; each flag is one masking/overhead tradeoff knob.
#[derive(Clone, Debug)]
pub struct TmrConfig {
    /// Triplicate race-free loads through the voted address, so each copy
    /// flow holds an independently loaded value and a fault in any single
    /// one stays maskable. When disabled, loads execute once and the
    /// result is replicated with moves (Elzar's load-once-and-broadcast),
    /// which is cheaper but leaves the loaded value itself as a window of
    /// vulnerability. Addresses are voted in both modes: a wild access
    /// would trap, and without rollback a trap is fatal.
    pub triplicate_loads: bool,
    /// Elide votes whose inputs are copies created by the immediately
    /// preceding replication moves (the vote is tautological at that
    /// point, mirroring ILR's check-elision peephole).
    pub vote_elision: bool,
}

impl Default for TmrConfig {
    fn default() -> Self {
        TmrConfig { triplicate_loads: true, vote_elision: true }
    }
}

impl TmrConfig {
    /// The unoptimized baseline: vote everywhere, never triplicate loads.
    pub fn unoptimized() -> Self {
        TmrConfig { triplicate_loads: false, vote_elision: false }
    }
}

/// Applies TMR to every non-external function; returns the number of
/// vote instructions inserted module-wide.
pub fn run_tmr_module(m: &mut Module, cfg: &TmrConfig) -> u64 {
    let mut votes = 0;
    for f in &mut m.funcs {
        if !f.attrs.external {
            votes += run_tmr(f, cfg);
        }
    }
    votes
}

/// Applies TMR to one function in place; returns the vote count.
pub fn run_tmr(f: &mut Function, cfg: &TmrConfig) -> u64 {
    let mut pass = Tmr {
        cfg: cfg.clone(),
        copies: HashMap::new(),
        phi_tris: Vec::new(),
        last_copies: None,
        votes: 0,
    };
    pass.run(f);
    pass.votes
}

struct Tmr {
    cfg: TmrConfig,
    /// Master value -> its two copy-flow operands.
    copies: HashMap<ValueId, [Operand; 2]>,
    /// (master phi, copy phi, copy phi) triples to fill after rewriting.
    phi_tris: Vec<(InstId, InstId, InstId)>,
    /// Master operand and its just-created copy pair, for vote elision.
    last_copies: Option<(Operand, ValueId, ValueId)>,
    votes: u64,
}

impl Tmr {
    fn run(&mut self, f: &mut Function) {
        let order = Cfg::compute(f).rpo.clone();
        for &b in &order {
            self.rewrite_block(f, b);
        }
        self.fill_copy_phis(f);
    }

    fn copy_of(&self, lane: usize, o: &Operand) -> Operand {
        match o {
            Operand::Value(v) => self.copies.get(v).map(|c| c[lane]).unwrap_or(*o),
            other => *other,
        }
    }

    /// Emits the two `move` copies of a non-replicated result.
    fn copy_pair(&mut self, f: &mut Function, insts: &mut Vec<InstId>, master: ValueId) {
        let ty = f.value_ty(master);
        let meta = InstMeta { shadow: true, ..Default::default() };
        let (m1, r1) = f.create_inst_meta(Op::Move { ty, a: Operand::Value(master) }, meta);
        let (m2, r2) = f.create_inst_meta(Op::Move { ty, a: Operand::Value(master) }, meta);
        insts.push(m1);
        insts.push(m2);
        let (r1, r2) = (r1.expect("move has result"), r2.expect("move has result"));
        self.copies.insert(master, [Operand::Value(r1), Operand::Value(r2)]);
        self.last_copies = Some((Operand::Value(master), r1, r2));
    }

    /// Emits `vote ty o, copy1, copy2` before a synchronization point and
    /// returns the operand the sync instruction should use instead of `o`.
    /// Tautological votes (constant operands, or copies created by the
    /// immediately preceding moves under vote elision) are skipped.
    fn voted(&mut self, f: &mut Function, insts: &mut Vec<InstId>, o: Operand, ty: Ty) -> Operand {
        let c1 = self.copy_of(0, &o);
        let c2 = self.copy_of(1, &o);
        if c1 == o && c2 == o {
            return o; // Constants are their own copies.
        }
        if self.cfg.vote_elision {
            if let Some((m, a, b)) = self.last_copies {
                if m == o && c1 == Operand::Value(a) && c2 == Operand::Value(b) {
                    // The copies were just made from the master; the vote
                    // cannot observe a divergence (peephole).
                    return o;
                }
            }
        }
        let (v, res) = f.create_inst(Op::Vote { ty, a: o, b: c1, c: c2 });
        insts.push(v);
        self.votes += 1;
        Operand::Value(res.expect("vote has result"))
    }

    fn set_copies(&mut self, master: Option<ValueId>, c1: Option<ValueId>, c2: Option<ValueId>) {
        if let (Some(m), Some(a), Some(b)) = (master, c1, c2) {
            self.copies.insert(m, [Operand::Value(a), Operand::Value(b)]);
        }
    }

    fn rewrite_block(&mut self, f: &mut Function, b: haft_ir::function::BlockId) {
        let old = std::mem::take(&mut f.blocks[b.0 as usize].insts);
        let mut insts: Vec<InstId> = Vec::with_capacity(old.len() * 3);
        self.last_copies = None;

        // Replicate function arguments on entry.
        if b == f.entry() {
            for i in 0..f.params.len() {
                let p = f.param_value(i);
                self.copy_pair(f, &mut insts, p);
            }
            self.last_copies = None;
        }

        for iid in old {
            let inst = f.inst(iid).clone();
            let result = f.inst_result(iid);
            match &inst.op {
                // --- triplicated compute -----------------------------------
                Op::Phi { ty, .. } => {
                    insts.push(iid);
                    let meta = InstMeta { shadow: true, ..Default::default() };
                    let (p1, r1) =
                        f.create_inst_meta(Op::Phi { ty: *ty, incomings: Vec::new() }, meta);
                    let (p2, r2) =
                        f.create_inst_meta(Op::Phi { ty: *ty, incomings: Vec::new() }, meta);
                    insts.push(p1);
                    insts.push(p2);
                    self.set_copies(result, r1, r2);
                    self.phi_tris.push((iid, p1, p2));
                    self.last_copies = None;
                }
                op if op.is_replicable() => {
                    insts.push(iid);
                    let meta = InstMeta { shadow: true, ..Default::default() };
                    let mut ids = [None, None];
                    for (lane, slot) in ids.iter_mut().enumerate() {
                        let mut cop = op.clone();
                        cop.map_operands(|o| *o = self.copy_of(lane, o));
                        let (cid, cres) = f.create_inst_meta(cop, meta);
                        insts.push(cid);
                        *slot = cres;
                    }
                    self.set_copies(result, ids[0], ids[1]);
                    self.last_copies = None;
                }

                // --- memory ------------------------------------------------
                Op::Load { ty, addr, atomic } => {
                    // The address is always voted first: a corrupted copy
                    // of an address must be outvoted *before* it reaches
                    // the memory unit, because a wild load traps and —
                    // with no transaction to roll back — a trap is fatal
                    // (Elzar votes load/store addresses for exactly this
                    // reason).
                    let ty = *ty;
                    let atomic = *atomic;
                    let va = self.voted(f, &mut insts, *addr, Ty::Ptr);
                    if let Op::Load { addr, .. } = &mut f.inst_mut(iid).op {
                        *addr = va;
                    }
                    insts.push(iid);
                    if !atomic && self.cfg.triplicate_loads {
                        // Re-load twice through the voted address so each
                        // lane holds an independently written copy of the
                        // value: a fault in any single loaded value stays
                        // maskable.
                        let meta = InstMeta { shadow: true, ..Default::default() };
                        let mut ids = [None, None];
                        for slot in ids.iter_mut() {
                            let (cid, cres) =
                                f.create_inst_meta(Op::Load { ty, addr: va, atomic: false }, meta);
                            insts.push(cid);
                            *slot = cres;
                        }
                        self.set_copies(result, ids[0], ids[1]);
                        self.last_copies = None;
                    } else {
                        // Atomics (and the unoptimized mode, which matches
                        // Elzar's actual load-once-and-broadcast): the
                        // loaded value is replicated by moves, leaving it
                        // as a window of vulnerability.
                        self.copy_pair(f, &mut insts, result.expect("load result"));
                    }
                }
                Op::Store { ty, val, addr, .. } => {
                    let ty = *ty;
                    let vv = self.voted(f, &mut insts, *val, ty);
                    let va = self.voted(f, &mut insts, *addr, Ty::Ptr);
                    if let Op::Store { val, addr, .. } = &mut f.inst_mut(iid).op {
                        *val = vv;
                        *addr = va;
                    }
                    insts.push(iid);
                    self.last_copies = None;
                }
                Op::Rmw { ty, addr, val, .. } => {
                    let ty = *ty;
                    let va = self.voted(f, &mut insts, *addr, Ty::Ptr);
                    let vv = self.voted(f, &mut insts, *val, ty);
                    if let Op::Rmw { addr, val, .. } = &mut f.inst_mut(iid).op {
                        *addr = va;
                        *val = vv;
                    }
                    insts.push(iid);
                    self.copy_pair(f, &mut insts, result.expect("rmw result"));
                }
                Op::CmpXchg { ty, addr, expected, new } => {
                    let ty = *ty;
                    let va = self.voted(f, &mut insts, *addr, Ty::Ptr);
                    let ve = self.voted(f, &mut insts, *expected, ty);
                    let vn = self.voted(f, &mut insts, *new, ty);
                    if let Op::CmpXchg { addr, expected, new, .. } = &mut f.inst_mut(iid).op {
                        *addr = va;
                        *expected = ve;
                        *new = vn;
                    }
                    insts.push(iid);
                    self.copy_pair(f, &mut insts, result.expect("cmpxchg result"));
                }
                Op::Alloc { .. } => {
                    insts.push(iid);
                    self.copy_pair(f, &mut insts, result.expect("alloc result"));
                }

                // --- control -----------------------------------------------
                Op::Call { args, .. } => {
                    let planned: Vec<(Operand, Ty)> =
                        args.iter().map(|a| (*a, f.operand_ty(a))).collect();
                    let voted: Vec<Operand> = planned
                        .into_iter()
                        .map(|(a, ty)| self.voted(f, &mut insts, a, ty))
                        .collect();
                    if let Op::Call { args, .. } = &mut f.inst_mut(iid).op {
                        args.clone_from(&voted);
                    }
                    insts.push(iid);
                    if let Some(r) = result {
                        self.copy_pair(f, &mut insts, r);
                    }
                }
                Op::Ret { val: Some(v) } => {
                    let ty = f.operand_ty(v);
                    let vv = self.voted(f, &mut insts, *v, ty);
                    if let Op::Ret { val: Some(val) } = &mut f.inst_mut(iid).op {
                        *val = vv;
                    }
                    insts.push(iid);
                }
                Op::CondBr { cond, t, f: fb } if t != fb => {
                    let vc = self.voted(f, &mut insts, *cond, Ty::I1);
                    if let Op::CondBr { cond, .. } = &mut f.inst_mut(iid).op {
                        *cond = vc;
                    }
                    insts.push(iid);
                }

                // --- externalization and intrinsics ------------------------
                Op::Emit { ty, val } => {
                    let ty = *ty;
                    let vv = self.voted(f, &mut insts, *val, ty);
                    if let Op::Emit { val, .. } = &mut f.inst_mut(iid).op {
                        *val = vv;
                    }
                    insts.push(iid);
                }
                Op::Lock { addr } | Op::Unlock { addr } => {
                    let va = self.voted(f, &mut insts, *addr, Ty::Ptr);
                    match &mut f.inst_mut(iid).op {
                        Op::Lock { addr } | Op::Unlock { addr } => *addr = va,
                        _ => unreachable!("op shape checked above"),
                    }
                    insts.push(iid);
                }
                Op::ThreadId | Op::NumThreads => {
                    insts.push(iid);
                    self.copy_pair(f, &mut insts, result.expect("intrinsic result"));
                }

                // Degenerate condbr, plain br, ret-void, tx intrinsics
                // (robustness: TMR modules normally carry none), nops.
                _ => {
                    insts.push(iid);
                    self.last_copies = None;
                }
            }
        }
        f.blocks[b.0 as usize].insts = insts;
    }

    /// Fills the copy phis' incomings once every block has been rewritten
    /// (back-edge values only acquire copies after their block runs).
    fn fill_copy_phis(&mut self, f: &mut Function) {
        for (master, p1, p2) in self.phi_tris.clone() {
            let incomings = match &f.inst(master).op {
                Op::Phi { incomings, .. } => incomings.clone(),
                _ => unreachable!("phi triple holds phis"),
            };
            for (lane, copy) in [(0, p1), (1, p2)] {
                let mapped: Vec<_> =
                    incomings.iter().map(|(v, b)| (self.copy_of(lane, v), *b)).collect();
                if let Op::Phi { incomings, .. } = &mut f.inst_mut(copy).op {
                    *incomings = mapped;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests;
