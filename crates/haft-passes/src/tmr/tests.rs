//! TMR pass tests: structure of the triplicated IR plus semantic
//! preservation and fault-masking behaviour under the VM.

use haft_ir::builder::FunctionBuilder;
use haft_ir::inst::{CmpOp, Op, Operand};
use haft_ir::module::{GlobalId, Module};
use haft_ir::types::Ty;
use haft_ir::verify::verify_module;
use haft_vm::{FaultPlan, RunOutcome, RunSpec, Vm, VmConfig};

use super::*;

fn count_ops(f: &Function, pred: impl Fn(&Op) -> bool) -> usize {
    f.blocks.iter().flat_map(|b| &b.insts).filter(|i| pred(&f.inst(**i).op)).count()
}

fn count_shadow(f: &Function) -> usize {
    f.blocks.iter().flat_map(|b| &b.insts).filter(|i| f.inst(**i).meta.shadow).count()
}

fn simple_module() -> Module {
    let mut m = Module::new("t");
    m.add_global("out", 8);
    let g = Operand::GlobalAddr(GlobalId(0));
    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    let a = fb.add(Ty::I64, fb.iconst(Ty::I64, 20), fb.iconst(Ty::I64, 22));
    let b = fb.mul(Ty::I64, a, a);
    fb.store(Ty::I64, b, g);
    let v = fb.load(Ty::I64, g);
    fb.emit_out(Ty::I64, v);
    fb.ret(None);
    m.push_func(fb.finish());
    m
}

#[test]
fn triplication_creates_two_copy_flows_and_verifies() {
    let mut m = simple_module();
    let votes = run_tmr_module(&mut m, &TmrConfig::default());
    verify_module(&m).unwrap_or_else(|e| panic!("{e:?}"));
    let f = &m.funcs[0];
    // Each of the two compute instructions gains two copies; the load is
    // triplicated; votes guard the store and the emit.
    assert!(count_shadow(f) >= 6, "copy insts = {}", count_shadow(f));
    assert!(votes >= 2, "votes = {votes}");
    assert_eq!(count_ops(f, |o| matches!(o, Op::Vote { .. })) as u64, votes);
    // No detect block, no aborts, no transactions: masking needs none.
    assert_eq!(count_ops(f, |o| matches!(o, Op::TxAbort { .. })), 0);
    assert_eq!(count_ops(f, |o| matches!(o, Op::TxBegin)), 0);
}

#[test]
fn tmr_preserves_the_cfg_shape() {
    let mut m = Module::new("t");
    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    let c = fb.cmp(CmpOp::SGt, Ty::I64, fb.iconst(Ty::I64, 2), fb.iconst(Ty::I64, 1));
    let t = fb.new_block();
    let e = fb.new_block();
    fb.condbr(c, t, e);
    fb.switch_to(t);
    fb.ret(None);
    fb.switch_to(e);
    fb.ret(None);
    m.push_func(fb.finish());
    let blocks_before = m.funcs[0].blocks.len();
    run_tmr_module(&mut m, &TmrConfig::default());
    verify_module(&m).unwrap_or_else(|e| panic!("{e:?}"));
    // Votes are straight-line: no shadow blocks, no detect block, and the
    // single conditional branch now tests the voted condition.
    assert_eq!(m.funcs[0].blocks.len(), blocks_before);
    assert_eq!(count_ops(&m.funcs[0], |o| matches!(o, Op::CondBr { .. })), 1);
    assert_eq!(count_ops(&m.funcs[0], |o| matches!(o, Op::Vote { ty: Ty::I1, .. })), 1);
}

#[test]
fn triplicate_loads_mode_duplicates_loads() {
    let mut m = simple_module();
    run_tmr_module(&mut m, &TmrConfig::default());
    // Master load plus two copy loads through the copy addresses.
    assert_eq!(count_ops(&m.funcs[0], |o| matches!(o, Op::Load { .. })), 3);

    let mut m2 = simple_module();
    run_tmr_module(&mut m2, &TmrConfig { triplicate_loads: false, ..TmrConfig::default() });
    verify_module(&m2).unwrap_or_else(|e| panic!("{e:?}"));
    // One load through a voted address, replicated by moves.
    assert_eq!(count_ops(&m2.funcs[0], |o| matches!(o, Op::Load { .. })), 1);
    assert!(count_ops(&m2.funcs[0], |o| matches!(o, Op::Move { .. })) >= 2);
}

#[test]
fn atomic_accesses_are_never_triplicated() {
    let mut m = Module::new("t");
    m.add_global("w", 8);
    let g = Operand::GlobalAddr(GlobalId(0));
    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    let v = fb.load_atomic(Ty::I64, g);
    fb.store_atomic(Ty::I64, v, g);
    fb.ret(None);
    m.push_func(fb.finish());
    run_tmr_module(&mut m, &TmrConfig::default());
    verify_module(&m).unwrap_or_else(|e| panic!("{e:?}"));
    let f = &m.funcs[0];
    assert_eq!(count_ops(f, |o| matches!(o, Op::Load { atomic: true, .. })), 1);
    assert_eq!(count_ops(f, |o| matches!(o, Op::Load { atomic: false, .. })), 0);
    assert_eq!(count_ops(f, |o| matches!(o, Op::Store { atomic: true, .. })), 1);
}

#[test]
fn params_get_copy_pairs_at_entry() {
    let mut m = Module::new("t");
    let mut fb = FunctionBuilder::new("f", &[Ty::I64, Ty::I64], Some(Ty::I64));
    let a = fb.param(0);
    let b = fb.param(1);
    let s = fb.add(Ty::I64, a, b);
    fb.ret(Some(s.into()));
    m.push_func(fb.finish());
    run_tmr_module(&mut m, &TmrConfig::default());
    verify_module(&m).unwrap_or_else(|e| panic!("{e:?}"));
    let f = &m.funcs[0];
    let entry = &f.blocks[0].insts;
    for (i, iid) in entry.iter().take(4).enumerate() {
        assert!(matches!(f.inst(*iid).op, Op::Move { .. }), "param copy {i}");
        assert!(f.inst(*iid).meta.shadow);
    }
    // The add is triplicated right after the copies.
    assert_eq!(count_ops(f, |o| matches!(o, Op::Bin { .. })), 3);
}

#[test]
fn loops_get_triplicated_phis() {
    let mut m = Module::new("t");
    m.add_global("acc", 8);
    let g = Operand::GlobalAddr(GlobalId(0));
    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    fb.counted_loop(fb.iconst(Ty::I64, 0), fb.iconst(Ty::I64, 10), |b, i| {
        let cur = b.load(Ty::I64, g);
        let nxt = b.add(Ty::I64, cur, i);
        b.store(Ty::I64, nxt, g);
    });
    fb.ret(None);
    m.push_func(fb.finish());
    let phis_before = count_ops(&m.funcs[0], |o| matches!(o, Op::Phi { .. }));
    run_tmr_module(&mut m, &TmrConfig::default());
    verify_module(&m).unwrap_or_else(|e| panic!("{e:?}"));
    assert_eq!(count_ops(&m.funcs[0], |o| matches!(o, Op::Phi { .. })), 3 * phis_before);
}

#[test]
fn external_functions_are_untouched() {
    let mut m = Module::new("t");
    let mut fb = FunctionBuilder::new("libc_thing", &[Ty::I64], Some(Ty::I64));
    fb.set_external();
    let x = fb.param(0);
    let y = fb.add(Ty::I64, x, fb.iconst(Ty::I64, 1));
    fb.ret(Some(y.into()));
    m.push_func(fb.finish());
    let before = m.funcs[0].clone();
    run_tmr_module(&mut m, &TmrConfig::default());
    assert_eq!(m.funcs[0], before);
}

#[test]
fn vote_elision_drops_tautological_votes() {
    // ret of a call result: the copies are moves created immediately
    // before, so the return-value vote is elided.
    let mut m = Module::new("t");
    let mut id_f = FunctionBuilder::new("id", &[Ty::I64], Some(Ty::I64));
    let x = id_f.param(0);
    id_f.ret(Some(x.into()));
    let id = m.push_func(id_f.finish());
    let mut fb = FunctionBuilder::new("f", &[], Some(Ty::I64));
    let r = fb.call(id, &[Operand::imm(5, Ty::I64)], Some(Ty::I64)).unwrap();
    fb.ret(Some(r.into()));
    m.push_func(fb.finish());

    let mut with = m.clone();
    let votes_with = run_tmr_module(&mut with, &TmrConfig::default());
    let mut without = m;
    let votes_without =
        run_tmr_module(&mut without, &TmrConfig { vote_elision: false, ..TmrConfig::default() });
    verify_module(&with).unwrap_or_else(|e| panic!("{e:?}"));
    verify_module(&without).unwrap_or_else(|e| panic!("{e:?}"));
    assert!(votes_with < votes_without, "elision must drop at least one vote");
}

// --- semantic preservation and masking under the VM -------------------------

fn loopy_module() -> Module {
    let mut m = Module::new("t");
    m.add_global("data", 64 * 8);
    m.add_global("acc", 8);
    let data = Operand::GlobalAddr(GlobalId(0));
    let acc = Operand::GlobalAddr(GlobalId(1));

    let mut init = FunctionBuilder::new("init", &[], None);
    init.set_non_local();
    init.counted_loop(init.iconst(Ty::I64, 0), init.iconst(Ty::I64, 64), |b, i| {
        let cell = b.gep(data, i, 8, 0);
        let v = b.mul(Ty::I64, i, i);
        b.store(Ty::I64, v, cell);
    });
    init.ret(None);
    m.push_func(init.finish());

    let mut fini = FunctionBuilder::new("fini", &[], None);
    fini.set_non_local();
    fini.counted_loop(fini.iconst(Ty::I64, 0), fini.iconst(Ty::I64, 64), |b, i| {
        let cell = b.gep(data, i, 8, 0);
        let v = b.load(Ty::I64, cell);
        let odd = b.bin(haft_ir::inst::BinOp::And, Ty::I64, v, b.iconst(Ty::I64, 1));
        let is_odd = b.cmp(CmpOp::Eq, Ty::I64, odd, b.iconst(Ty::I64, 1));
        b.if_then(is_odd, |b2| {
            let cur = b2.load(Ty::I64, acc);
            let nxt = b2.add(Ty::I64, cur, v);
            b2.store(Ty::I64, nxt, acc);
        });
    });
    let total = fini.load(Ty::I64, acc);
    fini.emit_out(Ty::I64, total);
    fini.ret(None);
    m.push_func(fini.finish());
    m
}

#[test]
fn tmr_preserves_program_semantics() {
    let native = loopy_module();
    let spec = RunSpec { init: Some("init"), fini: Some("fini"), ..Default::default() };
    let base = Vm::run(&native, VmConfig::default(), spec);
    assert_eq!(base.outcome, RunOutcome::Completed);

    for cfg in [TmrConfig::default(), TmrConfig::unoptimized()] {
        let mut hardened = native.clone();
        run_tmr_module(&mut hardened, &cfg);
        verify_module(&hardened).unwrap_or_else(|e| panic!("{e:?}"));
        let r = Vm::run(&hardened, VmConfig::default(), spec);
        assert_eq!(r.outcome, RunOutcome::Completed);
        assert_eq!(r.output, base.output, "cfg {cfg:?}");
        assert!(r.instructions > 2 * base.instructions, "triplication adds work");
        assert_eq!(r.corrected_by_vote, 0, "fault-free runs never correct");
    }
}

#[test]
fn tmr_masks_most_injected_faults_without_rollback() {
    // Sweep single-bit-flip injections over the dynamic trace: TMR must
    // mask the overwhelming majority in place (corrected_by_vote), with
    // zero transactions and zero HTM rollbacks involved.
    let native = loopy_module();
    let mut hardened = native.clone();
    run_tmr_module(&mut hardened, &TmrConfig::default());
    let spec = RunSpec { init: Some("init"), fini: Some("fini"), ..Default::default() };
    let clean = Vm::run(&hardened, VmConfig::default(), spec);
    assert_eq!(clean.outcome, RunOutcome::Completed);
    let total = clean.register_writes;

    let (mut sdc, mut corrected, mut runs) = (0u32, 0u32, 0u32);
    let mut occ = 0u64;
    while occ < total {
        let cfg = VmConfig {
            fault: Some(FaultPlan { occurrence: occ, xor_mask: 0x10 }),
            max_instructions: 10_000_000,
            ..Default::default()
        };
        let r = Vm::run(&hardened, cfg, spec);
        runs += 1;
        assert_eq!(r.htm.commits, 0, "TMR uses no transactions");
        assert_eq!(r.recoveries, 0, "TMR never rolls back");
        if r.outcome == RunOutcome::Completed {
            if r.output != clean.output {
                sdc += 1;
            } else if r.corrected_by_vote > 0 {
                corrected += 1;
            }
        }
        occ += 7; // Sample the trace.
    }
    assert!(runs > 50);
    assert!(corrected > runs / 4, "most faults mask by vote: {corrected}/{runs}");
    let sdc_rate = sdc as f64 / runs as f64;
    assert!(sdc_rate < 0.06, "SDC rate {sdc_rate} too high ({sdc}/{runs})");
}
