//! Transactification (TX) — fault recovery.
//!
//! Covers the whole program in hardware transactions (paper §3.2). The
//! granularity is functions and loops: unconditional `tx_begin`/`tx_end`
//! at the boundaries of externally-callable functions, conditional splits
//! (`tx_cond_split`) at loop headers and local-function boundaries, and
//! per-thread instruction-counter increments (`tx_counter_inc`) at loop
//! latches and local-call sites so the run-time threshold bounds the
//! transaction size. External calls and transaction-unfriendly operations
//! (externalization, real lock operations) are bracketed pessimistically
//! with `tx_end`/`tx_begin`.

use std::collections::HashMap;

use haft_ir::cfg::Cfg;
use haft_ir::dom::DomTree;
use haft_ir::function::{BlockId, Function, InstId};
use haft_ir::inst::{Callee, Op};
use haft_ir::loops::{longest_paths_to_latches, LoopForest};
use haft_ir::module::Module;

/// TX configuration.
#[derive(Clone, Debug)]
pub struct TxConfig {
    /// The local-function-call optimization (paper §3.3): replace the
    /// begin/end bracket around calls to local functions with a counter
    /// increment plus conditional split.
    pub local_calls_opt: bool,
    /// Keep lock/unlock inside transactions for the run-time lock-elision
    /// wrapper; when false, lock operations are bracketed like external
    /// calls.
    pub lock_elision: bool,
    /// Remove `tx_begin` immediately followed by `tx_end` (paper peephole).
    pub peephole: bool,
    /// Function names to force non-local (the paper's black-list of
    /// externally-called functions, e.g. `main` and thread entry points).
    pub blacklist: Vec<String>,
}

impl Default for TxConfig {
    fn default() -> Self {
        TxConfig {
            local_calls_opt: true,
            lock_elision: false,
            peephole: true,
            blacklist: Vec::new(),
        }
    }
}

/// Applies TX to every non-external function of the module.
pub fn run_tx_module(m: &mut Module, cfg: &TxConfig) {
    for f in &mut m.funcs {
        if cfg.blacklist.contains(&f.name) {
            f.attrs.local = false;
        }
    }
    // Snapshot which functions are local/external for call-site decisions.
    let kinds: Vec<CalleeKind> = m
        .funcs
        .iter()
        .map(|f| {
            if f.attrs.external {
                CalleeKind::External
            } else if f.attrs.local {
                CalleeKind::Local
            } else {
                CalleeKind::NonLocal
            }
        })
        .collect();
    for f in &mut m.funcs {
        if !f.attrs.external {
            run_tx(f, cfg, &kinds);
        }
    }
}

/// How a call target behaves for transactification purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CalleeKind {
    /// Hardened, only called from hardened code.
    Local,
    /// Hardened but externally callable (manages its own transactions).
    NonLocal,
    /// Unprotected library code.
    External,
}

/// Applies TX to one function.
pub fn run_tx(f: &mut Function, cfg: &TxConfig, kinds: &[CalleeKind]) {
    // Phase 1: loop instrumentation at precomputed positions.
    instrument_loops(f);

    // Phase 2: linear rewrite for entries, returns, calls, and unfriendly
    // instructions.
    let use_local_opt = cfg.local_calls_opt && f.attrs.local;
    let fn_len = acyclic_len(f);
    for b in 0..f.blocks.len() {
        let old = std::mem::take(&mut f.blocks[b].insts);
        let mut new: Vec<InstId> = Vec::with_capacity(old.len() + 4);
        if b == 0 {
            if use_local_opt {
                let (split, _) = f.create_inst(Op::TxCondSplit);
                new.push(split);
            } else {
                let (begin, _) = f.create_inst(Op::TxBegin);
                new.push(begin);
            }
        }
        for iid in old {
            match f.inst(iid).op.clone() {
                Op::Ret { .. } => {
                    if use_local_opt {
                        let (inc, _) = f.create_inst(Op::TxCounterInc { amount: fn_len });
                        new.push(inc);
                    } else {
                        let (end, _) = f.create_inst(Op::TxEnd);
                        new.push(end);
                    }
                    new.push(iid);
                }
                Op::Call { callee, args, .. } => {
                    let kind = match callee {
                        Callee::Direct(fid) => {
                            kinds.get(fid.0 as usize).copied().unwrap_or(CalleeKind::External)
                        }
                        // Indirect targets are unknown: treated as external
                        // (the paper's SQLite function-pointer cost).
                        Callee::Indirect(_) => CalleeKind::External,
                    };
                    if kind == CalleeKind::Local && cfg.local_calls_opt {
                        let (inc, _) =
                            f.create_inst(Op::TxCounterInc { amount: 1 + args.len() as u32 });
                        new.push(inc);
                        new.push(iid);
                        let (split, _) = f.create_inst(Op::TxCondSplit);
                        new.push(split);
                    } else {
                        let (end, _) = f.create_inst(Op::TxEnd);
                        new.push(end);
                        new.push(iid);
                        let (begin, _) = f.create_inst(Op::TxBegin);
                        new.push(begin);
                    }
                }
                Op::Emit { .. } => {
                    let (end, _) = f.create_inst(Op::TxEnd);
                    new.push(end);
                    new.push(iid);
                    let (begin, _) = f.create_inst(Op::TxBegin);
                    new.push(begin);
                }
                Op::Lock { .. } | Op::Unlock { .. } if !cfg.lock_elision => {
                    // Like the pthread library calls they model: executed
                    // outside transactions.
                    let (end, _) = f.create_inst(Op::TxEnd);
                    new.push(end);
                    new.push(iid);
                    let (begin, _) = f.create_inst(Op::TxBegin);
                    new.push(begin);
                }
                _ => new.push(iid),
            }
        }
        f.blocks[b].insts = new;
    }

    if cfg.peephole {
        peephole_begin_end(f);
    }
}

/// Inserts a conditional split at each loop header and a counter increment
/// at each latch (amount = longest acyclic path through the body, i.e. the
/// paper's worst-case iteration size).
fn instrument_loops(f: &mut Function) {
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(f, &cfg);
    let forest = LoopForest::compute(f, &cfg, &dom);

    // (block, position) -> instruction to insert.
    let mut insertions: Vec<(BlockId, usize, Op)> = Vec::new();
    for l in &forest.loops {
        let (split_block, split_pos) = split_insert_point(f, l.header);
        insertions.push((split_block, split_pos, Op::TxCondSplit));
        for (latch, amount) in longest_paths_to_latches(f, &cfg, l) {
            let pos = f.blocks[latch.0 as usize].insts.len().saturating_sub(1);
            insertions.push((latch, pos, Op::TxCounterInc { amount }));
        }
    }
    // Apply bottom-up so earlier positions stay valid.
    insertions.sort_by_key(|&(b, pos, _)| std::cmp::Reverse((b, pos)));
    for (b, pos, op) in insertions {
        let (iid, _) = f.create_inst(op);
        f.blocks[b.0 as usize].insts.insert(pos, iid);
    }
}

/// Finds where the conditional split goes in a loop header: after the phi
/// group, and after any ILR fault-propagation checks — the paper moves
/// those checks "inside the conditional transaction split" so they run
/// right before the previous transaction commits.
fn split_insert_point(f: &Function, header: BlockId) -> (BlockId, usize) {
    let mut b = header;
    loop {
        let insts = &f.blocks[b.0 as usize].insts;
        let phi_end = insts.iter().position(|i| !f.inst(*i).op.is_phi()).unwrap_or(insts.len());
        // A block that is exactly [phis..., fprop cmp, condbr] chains into
        // its continuation.
        if insts.len() == phi_end + 2 {
            let cmp = &f.inst(insts[phi_end]);
            let cbr = &f.inst(insts[phi_end + 1]);
            if cmp.meta.fprop_check {
                if let Op::CondBr { f: cont, .. } = cbr.op {
                    b = cont;
                    continue;
                }
            }
        }
        return (b, phi_end);
    }
}

/// The longest acyclic instruction path through the whole function
/// (back edges ignored) — the counter increment charged when a local
/// function returns.
fn acyclic_len(f: &Function) -> u32 {
    let cfg = Cfg::compute(f);
    fn dfs(
        f: &Function,
        cfg: &Cfg,
        b: BlockId,
        memo: &mut HashMap<BlockId, u32>,
        on_stack: &mut Vec<bool>,
    ) -> u32 {
        if let Some(w) = memo.get(&b) {
            return *w;
        }
        on_stack[b.0 as usize] = true;
        let mut best = 0;
        for &s in &cfg.succs[b.0 as usize] {
            if on_stack[s.0 as usize] {
                continue;
            }
            best = best.max(dfs(f, cfg, s, memo, on_stack));
        }
        on_stack[b.0 as usize] = false;
        let w = f.blocks[b.0 as usize].insts.len() as u32 + best;
        memo.insert(b, w);
        w
    }
    let mut memo = HashMap::new();
    let mut on_stack = vec![false; f.blocks.len()];
    dfs(f, &cfg, f.entry(), &mut memo, &mut on_stack)
}

/// Removes `tx_begin` immediately followed by `tx_end` (dead transactions
/// produced by composing the bracket rules).
fn peephole_begin_end(f: &mut Function) {
    for b in 0..f.blocks.len() {
        loop {
            let insts = &f.blocks[b].insts;
            let mut kill: Option<usize> = None;
            for i in 0..insts.len().saturating_sub(1) {
                let a = &f.inst(insts[i]).op;
                let z = &f.inst(insts[i + 1]).op;
                if matches!(a, Op::TxBegin) && matches!(z, Op::TxEnd) {
                    kill = Some(i);
                    break;
                }
            }
            match kill {
                Some(i) => {
                    f.blocks[b].insts.drain(i..=i + 1);
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests;
