//! TX pass tests: boundary placement, counters, peepholes, and run-time
//! behaviour of transactified programs.

use haft_ir::builder::FunctionBuilder;
use haft_ir::inst::{Op, Operand};
use haft_ir::module::{GlobalId, Module};
use haft_ir::types::Ty;
use haft_ir::verify::verify_module;
use haft_vm::{RunOutcome, RunSpec, Vm, VmConfig};

use super::*;
use crate::ilr::{run_ilr_module, IlrConfig};

fn ops_of(f: &Function) -> Vec<Op> {
    f.blocks.iter().flat_map(|b| &b.insts).map(|i| f.inst(*i).op.clone()).collect()
}

fn count(f: &Function, pred: impl Fn(&Op) -> bool) -> usize {
    ops_of(f).iter().filter(|o| pred(o)).count()
}

#[test]
fn non_local_function_gets_begin_end() {
    let mut m = Module::new("t");
    let mut fb = FunctionBuilder::new("main", &[], None);
    fb.set_non_local();
    fb.add(Ty::I64, fb.iconst(Ty::I64, 1), fb.iconst(Ty::I64, 2));
    fb.ret(None);
    m.push_func(fb.finish());
    run_tx_module(&mut m, &TxConfig::default());
    verify_module(&m).unwrap_or_else(|e| panic!("{e:?}"));
    let ops = ops_of(&m.funcs[0]);
    assert!(matches!(ops[0], Op::TxBegin), "{ops:?}");
    assert!(matches!(ops[ops.len() - 2], Op::TxEnd), "{ops:?}");
    assert!(matches!(ops[ops.len() - 1], Op::Ret { .. }));
}

#[test]
fn local_function_uses_conditional_split() {
    let mut m = Module::new("t");
    let mut fb = FunctionBuilder::new("helper", &[Ty::I64], Some(Ty::I64));
    let x = fb.param(0);
    let y = fb.add(Ty::I64, x, fb.iconst(Ty::I64, 1));
    fb.ret(Some(y.into()));
    m.push_func(fb.finish());
    run_tx_module(&mut m, &TxConfig::default());
    let ops = ops_of(&m.funcs[0]);
    assert!(matches!(ops[0], Op::TxCondSplit), "{ops:?}");
    assert!(
        ops.iter().any(|o| matches!(o, Op::TxCounterInc { .. })),
        "return charges the counter: {ops:?}"
    );
    assert_eq!(count(&m.funcs[0], |o| matches!(o, Op::TxBegin)), 0);
}

#[test]
fn blacklist_forces_non_local() {
    let mut m = Module::new("t");
    let mut fb = FunctionBuilder::new("handler", &[], None);
    fb.add(Ty::I64, fb.iconst(Ty::I64, 1), fb.iconst(Ty::I64, 2));
    fb.ret(None);
    m.push_func(fb.finish());
    let cfg = TxConfig { blacklist: vec!["handler".into()], ..Default::default() };
    run_tx_module(&mut m, &cfg);
    let ops = ops_of(&m.funcs[0]);
    assert!(matches!(ops[0], Op::TxBegin));
    assert!(!m.funcs[0].attrs.local);
}

#[test]
fn loops_get_split_and_counter() {
    let mut m = Module::new("t");
    m.add_global("acc", 8);
    let g = Operand::GlobalAddr(GlobalId(0));
    let mut fb = FunctionBuilder::new("main", &[], None);
    fb.set_non_local();
    fb.counted_loop(fb.iconst(Ty::I64, 0), fb.iconst(Ty::I64, 10), |b, i| {
        let c = b.load(Ty::I64, g);
        let n = b.add(Ty::I64, c, i);
        b.store(Ty::I64, n, g);
    });
    fb.ret(None);
    m.push_func(fb.finish());
    run_tx_module(&mut m, &TxConfig::default());
    verify_module(&m).unwrap_or_else(|e| panic!("{e:?}"));
    let f = &m.funcs[0];
    assert_eq!(count(f, |o| matches!(o, Op::TxCondSplit)), 1);
    let incs: Vec<u32> = ops_of(f)
        .iter()
        .filter_map(|o| match o {
            Op::TxCounterInc { amount } => Some(*amount),
            _ => None,
        })
        .collect();
    assert_eq!(incs.len(), 1);
    // Header (phi+cmp+condbr = 3) + body (load+add+store+i+1+br = 5) = 8.
    assert_eq!(incs[0], 8, "worst-case iteration weight");
    // The split sits in the header after the phi.
    let header = &f.blocks[1];
    assert!(f.inst(header.insts[0]).op.is_phi());
    assert!(matches!(f.inst(header.insts[1]).op, Op::TxCondSplit));
    // The increment sits at the latch, right before the back edge.
    let latch = &f.blocks[2];
    let n = latch.insts.len();
    assert!(matches!(f.inst(latch.insts[n - 2]).op, Op::TxCounterInc { .. }));
    assert!(matches!(f.inst(latch.insts[n - 1]).op, Op::Br { .. }));
}

#[test]
fn external_calls_are_bracketed() {
    let mut m = Module::new("t");
    let mut ext = FunctionBuilder::new("libc_read", &[], Some(Ty::I64));
    ext.set_external();
    ext.ret(Some(ext.iconst(Ty::I64, 9)));
    let ext_id = m.push_func(ext.finish());
    let mut fb = FunctionBuilder::new("main", &[], None);
    fb.set_non_local();
    fb.add(Ty::I64, fb.iconst(Ty::I64, 5), fb.iconst(Ty::I64, 6));
    fb.call(ext_id, &[], Some(Ty::I64));
    fb.add(Ty::I64, fb.iconst(Ty::I64, 0), fb.iconst(Ty::I64, 0));
    fb.ret(None);
    m.push_func(fb.finish());
    run_tx_module(&mut m, &TxConfig::default());
    let ops = ops_of(&m.funcs[1]);
    let call_at = ops.iter().position(|o| matches!(o, Op::Call { .. })).unwrap();
    assert!(matches!(ops[call_at - 1], Op::TxEnd), "{ops:?}");
    assert!(matches!(ops[call_at + 1], Op::TxBegin), "{ops:?}");
}

#[test]
fn local_calls_use_counter_with_opt_and_bracket_without() {
    let mut m = Module::new("t");
    let mut helper = FunctionBuilder::new("helper", &[], None);
    helper.ret(None);
    let hid = m.push_func(helper.finish());
    let mut fb = FunctionBuilder::new("main", &[], None);
    fb.set_non_local();
    fb.add(Ty::I64, fb.iconst(Ty::I64, 5), fb.iconst(Ty::I64, 6));
    fb.call(hid, &[], None);
    fb.add(Ty::I64, fb.iconst(Ty::I64, 7), fb.iconst(Ty::I64, 8));
    fb.ret(None);
    m.push_func(fb.finish());

    let mut with = m.clone();
    run_tx_module(&mut with, &TxConfig::default());
    let ops = ops_of(&with.funcs[1]);
    let call_at = ops.iter().position(|o| matches!(o, Op::Call { .. })).unwrap();
    assert!(matches!(ops[call_at - 1], Op::TxCounterInc { .. }), "{ops:?}");
    assert!(matches!(ops[call_at + 1], Op::TxCondSplit), "{ops:?}");

    let mut without = m;
    run_tx_module(&mut without, &TxConfig { local_calls_opt: false, ..Default::default() });
    let ops = ops_of(&without.funcs[1]);
    let call_at = ops.iter().position(|o| matches!(o, Op::Call { .. })).unwrap();
    assert!(matches!(ops[call_at - 1], Op::TxEnd), "{ops:?}");
    assert!(matches!(ops[call_at + 1], Op::TxBegin), "{ops:?}");
}

#[test]
fn emit_and_locks_are_bracketed_without_elision() {
    let mut m = Module::new("t");
    m.add_global("lock", 8);
    let lock = Operand::GlobalAddr(GlobalId(0));
    let mut fb = FunctionBuilder::new("main", &[], None);
    fb.set_non_local();
    fb.add(Ty::I64, fb.iconst(Ty::I64, 1), fb.iconst(Ty::I64, 2));
    fb.lock(lock);
    let x = fb.add(Ty::I64, fb.iconst(Ty::I64, 3), fb.iconst(Ty::I64, 4));
    fb.emit_out(Ty::I64, x);
    let _ = fb.add(Ty::I64, fb.iconst(Ty::I64, 5), fb.iconst(Ty::I64, 6));
    fb.unlock(lock);
    fb.add(Ty::I64, fb.iconst(Ty::I64, 7), fb.iconst(Ty::I64, 8));
    fb.ret(None);
    m.push_func(fb.finish());

    let mut plain = m.clone();
    run_tx_module(&mut plain, &TxConfig::default());
    let f = &plain.funcs[0];
    // end/begin around lock, emit, and unlock each.
    assert!(count(f, |o| matches!(o, Op::TxEnd)) >= 3, "{:?}", ops_of(f));

    let mut elided = m;
    run_tx_module(&mut elided, &TxConfig { lock_elision: true, ..Default::default() });
    let f = &elided.funcs[0];
    // Lock/unlock stay inside the transaction; only emit is bracketed.
    let ops = ops_of(f);
    let lock_at = ops.iter().position(|o| matches!(o, Op::Lock { .. })).unwrap();
    assert!(!matches!(ops[lock_at - 1], Op::TxEnd), "{ops:?}");
}

#[test]
fn peephole_removes_empty_transactions() {
    let mut m = Module::new("t");
    let mut ext = FunctionBuilder::new("ext", &[], None);
    ext.set_external();
    ext.ret(None);
    let eid = m.push_func(ext.finish());
    // Two adjacent external calls produce begin;end between them.
    let mut fb = FunctionBuilder::new("main", &[], None);
    fb.set_non_local();
    fb.call(eid, &[], None);
    fb.call(eid, &[], None);
    fb.ret(None);
    m.push_func(fb.finish());

    let mut with = m.clone();
    run_tx_module(&mut with, &TxConfig::default());
    let mut without = m;
    run_tx_module(&mut without, &TxConfig { peephole: false, ..Default::default() });
    assert!(
        count(&with.funcs[1], |o| matches!(o, Op::TxBegin))
            < count(&without.funcs[1], |o| matches!(o, Op::TxBegin)),
        "peephole must remove an empty transaction"
    );
    verify_module(&with).unwrap_or_else(|e| panic!("{e:?}"));
}

#[test]
fn split_point_skips_fprop_checks() {
    // Build ILR+fprop first, then TX; the conditional split must land
    // after the fprop check chain (its continuation block), so the check
    // executes before the previous transaction commits.
    let mut m = Module::new("t");
    m.add_global("c", 8);
    let g = Operand::GlobalAddr(GlobalId(0));
    let mut fb = FunctionBuilder::new("main", &[], None);
    fb.set_non_local();
    let pre = fb.current_block();
    let header = fb.new_block();
    let exit = fb.new_block();
    fb.br(header);
    fb.switch_to(header);
    let c = fb.phi(Ty::I64);
    fb.phi_incoming(c, fb.iconst(Ty::I64, 0), pre);
    let cn = fb.add(Ty::I64, c, fb.iconst(Ty::I64, 1));
    fb.phi_incoming(c, cn, header);
    let done = fb.cmp(haft_ir::inst::CmpOp::SGe, Ty::I64, cn, fb.iconst(Ty::I64, 100));
    fb.condbr(done, exit, header);
    fb.switch_to(exit);
    fb.store(Ty::I64, cn, g);
    fb.ret(None);
    m.push_func(fb.finish());

    run_ilr_module(&mut m, &IlrConfig::default());
    run_tx_module(&mut m, &TxConfig::default());
    verify_module(&m).unwrap_or_else(|e| panic!("{e:?}"));
    let f = &m.funcs[0];
    // Find the block containing the TxCondSplit that follows the fprop
    // chain: its block must not contain the fprop check itself.
    let mut found = false;
    for b in &f.blocks {
        for (i, iid) in b.insts.iter().enumerate() {
            if matches!(f.inst(*iid).op, Op::TxCondSplit) && i == 0 {
                found = true;
            }
        }
    }
    assert!(found, "a split starts a continuation block after fprop checks");
}

#[test]
fn transactified_program_runs_correctly_with_commits() {
    let mut m = Module::new("t");
    m.add_global("acc", 8);
    let g = Operand::GlobalAddr(GlobalId(0));
    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    fb.counted_loop(fb.iconst(Ty::I64, 0), fb.iconst(Ty::I64, 500), |b, i| {
        let c = b.load(Ty::I64, g);
        let n = b.add(Ty::I64, c, i);
        b.store(Ty::I64, n, g);
    });
    let v = fb.load(Ty::I64, g);
    fb.emit_out(Ty::I64, v);
    fb.ret(None);
    m.push_func(fb.finish());

    let native = m.clone();
    run_tx_module(&mut m, &TxConfig::default());
    verify_module(&m).unwrap_or_else(|e| panic!("{e:?}"));

    let spec = RunSpec { fini: Some("fini"), ..Default::default() };
    let base = Vm::run(&native, VmConfig::default(), spec);
    let cfg = VmConfig { tx_threshold: 100, ..Default::default() };
    let r = Vm::run(&m, cfg, spec);
    assert_eq!(r.outcome, RunOutcome::Completed);
    assert_eq!(r.output, base.output);
    assert!(r.htm.commits > 5, "loop split into transactions: {}", r.htm.commits);
    assert!(r.htm.coverage_pct() > 50.0, "coverage {}", r.htm.coverage_pct());
}

#[test]
fn full_haft_pipeline_preserves_semantics_and_recovers() {
    use crate::manager::PassManager;
    use crate::pipeline::HardenConfig;
    use haft_vm::FaultPlan;

    let mut m = Module::new("t");
    m.add_global("data", 32 * 8);
    m.add_global("acc", 8);
    let data = Operand::GlobalAddr(GlobalId(0));
    let acc = Operand::GlobalAddr(GlobalId(1));
    let mut fb = FunctionBuilder::new("fini", &[], None);
    fb.set_non_local();
    fb.counted_loop(fb.iconst(Ty::I64, 0), fb.iconst(Ty::I64, 32), |b, i| {
        let cell = b.gep(data, i, 8, 0);
        let v = b.mul(Ty::I64, i, b.iconst(Ty::I64, 3));
        b.store(Ty::I64, v, cell);
        let cur = b.load(Ty::I64, acc);
        let nxt = b.add(Ty::I64, cur, v);
        b.store(Ty::I64, nxt, acc);
    });
    let total = fb.load(Ty::I64, acc);
    fb.emit_out(Ty::I64, total);
    fb.ret(None);
    m.push_func(fb.finish());

    let (hardened, _) = PassManager::from_config(&HardenConfig::haft()).run_on(&m);
    verify_module(&hardened).unwrap_or_else(|e| panic!("{e:?}"));
    let spec = RunSpec { fini: Some("fini"), ..Default::default() };
    let base = Vm::run(&m, VmConfig::default(), spec);
    let clean = Vm::run(&hardened, VmConfig::default(), spec);
    assert_eq!(clean.outcome, RunOutcome::Completed);
    assert_eq!(clean.output, base.output);

    // Sweep faults: with HTM recovery most detections are corrected
    // (outcome stays Completed with correct output and recoveries > 0).
    let total_occ = clean.register_writes;
    let mut corrected = 0u32;
    let mut sdc = 0u32;
    let mut occ = 1u64;
    while occ < total_occ {
        let cfg = VmConfig {
            fault: Some(FaultPlan { occurrence: occ, xor_mask: 0xf0 }),
            tx_threshold: 200,
            max_instructions: 10_000_000,
            ..Default::default()
        };
        let r = Vm::run(&hardened, cfg, spec);
        if r.recoveries > 0 && r.outcome == RunOutcome::Completed && r.output == base.output {
            corrected += 1;
        }
        if r.outcome == RunOutcome::Completed && r.output != base.output {
            sdc += 1;
        }
        occ += 11;
    }
    assert!(corrected > 3, "HTM rollback must correct faults: {corrected}");
    assert!(sdc <= 3, "HAFT should leave almost no SDCs: {sdc}");
}
