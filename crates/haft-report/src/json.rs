//! Snapshot JSON. The value type and its writer/parser moved to
//! `haft-trace` (the Chrome trace exporter shares them); this module
//! keeps the old `haft_report::json::Json` path working.

pub use haft_trace::json::*;
