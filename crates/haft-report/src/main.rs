//! CLI driver: regenerate `REPRODUCTION.md` + `report/*.json`, or
//! `--check` a fresh run against the committed snapshots.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use haft_report::snapshot::{diff, Snapshot};
use haft_report::{all_sections, Report, ReportConfig, Section};

const USAGE: &str = "\
usage: cargo run -p haft-report --release [--] [FLAGS]

  --fast            CI-sized sweeps (fewer workloads, Small inputs)
  --check           regenerate and diff against committed report/*.json
                    instead of overwriting them; exit 1 on any value
                    outside its pinned tolerance band
  --out DIR         output root (default: the repository root); writes
                    DIR/REPRODUCTION.md and DIR/report/<section>.json
  --section NAME    run only this section (repeatable); skips
                    REPRODUCTION.md, which needs the full registry
  --list            list registered sections and exit
  --help            this text";

struct Args {
    fast: bool,
    check: bool,
    out: PathBuf,
    sections: Vec<String>,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    // Default output root: the workspace root, two levels above this
    // crate's manifest — independent of the invoking directory.
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives at <root>/crates/haft-report")
        .to_path_buf();
    let mut args =
        Args { fast: false, check: false, out: repo_root, sections: Vec::new(), list: false };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--fast" => args.fast = true,
            "--check" => args.check = true,
            "--list" => args.list = true,
            "--out" => {
                args.out = PathBuf::from(iter.next().ok_or("--out needs a directory")?);
            }
            "--section" => {
                args.sections.push(iter.next().ok_or("--section needs a name")?);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let registry = all_sections();
    if args.list {
        for s in &registry {
            println!("{:<18} {}", s.name(), s.title());
        }
        return ExitCode::SUCCESS;
    }
    let selected: Vec<Box<dyn Section>> = if args.sections.is_empty() {
        registry
    } else {
        let mut picked = Vec::new();
        for name in &args.sections {
            match registry.iter().position(|s| s.name() == name) {
                Some(_) => picked.push(name.clone()),
                None => {
                    let known: Vec<&str> = registry.iter().map(|s| s.name()).collect();
                    eprintln!("error: unknown section `{name}` (known: {})", known.join(", "));
                    return ExitCode::from(2);
                }
            }
        }
        all_sections().into_iter().filter(|s| picked.contains(&s.name().to_string())).collect()
    };
    let full_registry = selected.len() == all_sections().len();

    let cfg = ReportConfig { fast: args.fast };
    let mut report =
        Report::new(if args.fast { haft_report::Mode::Fast } else { haft_report::Mode::Full });
    eprintln!(
        "haft-report: {} mode, {} section(s)",
        if args.fast { "fast" } else { "full" },
        selected.len()
    );
    for s in &selected {
        let start = Instant::now();
        eprint!("  {:<18} ...", s.name());
        report.add(s.as_ref(), &cfg);
        eprintln!(" done in {:.1}s", start.elapsed().as_secs_f64());
    }

    let report_dir = args.out.join("report");
    let md_path = args.out.join("REPRODUCTION.md");
    let snapshots = report.snapshots();

    if args.check {
        let mut violations = Vec::new();
        // A committed snapshot whose section no longer exists would
        // otherwise linger unchecked (the loop below only walks fresh
        // sections) and ship as a stale artifact. Only a full-registry
        // run can tell an orphan from a merely unselected section.
        if full_registry {
            if let Ok(entries) = std::fs::read_dir(&report_dir) {
                for entry in entries.flatten() {
                    let name = entry.file_name().to_string_lossy().into_owned();
                    if let Some(stem) = name.strip_suffix(".json") {
                        if !snapshots.iter().any(|s| s.section == stem) {
                            violations.push(format!(
                                "{stem}: committed snapshot has no registered section — \
                                 delete report/{name} or restore the section"
                            ));
                        }
                    }
                }
            }
        }
        for fresh in &snapshots {
            let path = report_dir.join(format!("{}.json", fresh.section));
            match std::fs::read_to_string(&path) {
                Ok(text) => match Snapshot::parse(&text) {
                    Ok(pinned) => violations.extend(diff(&pinned, fresh)),
                    Err(e) => {
                        violations.push(format!("{}: unparseable snapshot: {e}", fresh.section))
                    }
                },
                Err(_) => violations.push(format!(
                    "{}: no committed snapshot at {} — run without --check to pin one",
                    fresh.section,
                    path.display()
                )),
            }
        }
        // The Markdown is derived output, refreshed even under --check so
        // CI can archive what this run actually measured.
        if full_registry {
            if let Err(e) = std::fs::write(&md_path, report.to_markdown()) {
                eprintln!("error: writing {}: {e}", md_path.display());
                return ExitCode::from(2);
            }
            println!("wrote {}", md_path.display());
        }
        if violations.is_empty() {
            let values: usize = snapshots
                .iter()
                .map(|s| {
                    s.tables.iter().map(|t| t.rows.len() * (t.columns.len() - 1)).sum::<usize>()
                        + s.series.iter().map(|sr| sr.points.len()).sum::<usize>()
                })
                .sum();
            println!(
                "check passed: {} section(s), {values} values inside their pinned bands",
                snapshots.len()
            );
            ExitCode::SUCCESS
        } else {
            eprintln!("check FAILED — {} value(s) left their pinned bands:", violations.len());
            for v in &violations {
                eprintln!("  {v}");
            }
            eprintln!(
                "If the drift is intentional, regenerate the snapshots \
                 (cargo run -p haft-report --release{}) and commit the diff.",
                if args.fast { " -- --fast" } else { "" }
            );
            ExitCode::FAILURE
        }
    } else {
        if let Err(e) = std::fs::create_dir_all(&report_dir) {
            eprintln!("error: creating {}: {e}", report_dir.display());
            return ExitCode::from(2);
        }
        for snap in &snapshots {
            let path = report_dir.join(format!("{}.json", snap.section));
            if let Err(e) = std::fs::write(&path, snap.render()) {
                eprintln!("error: writing {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!("wrote {}", path.display());
        }
        if full_registry {
            if let Err(e) = std::fs::write(&md_path, report.to_markdown()) {
                eprintln!("error: writing {}: {e}", md_path.display());
                return ExitCode::from(2);
            }
            println!("wrote {}", md_path.display());
        } else {
            println!("partial section set: REPRODUCTION.md not rewritten");
        }
        ExitCode::SUCCESS
    }
}
