//! The report's data model and its renderings: numeric tables and series
//! with pinned tolerance bands, rendered as Markdown (for
//! `REPRODUCTION.md`), fixed-width console text (reused by the bench
//! harness), and unicode sparklines.

/// How far a regenerated value may drift from its pinned snapshot before
/// `--check` flags it.
///
/// The simulator is deterministic, so on unchanged code a regenerated
/// number is *identical* to its snapshot; the band expresses how much a
/// future code change may legitimately move the number before the session
/// that moved it must regenerate (and thereby consciously re-pin) the
/// snapshot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Tolerance {
    /// Relative band: `|fresh - pinned| <= frac * max(|pinned|, 1.0)`.
    /// The `1.0` floor keeps the band meaningful near zero — a pinned `0`
    /// admits only `±frac`, so "this must stay zero" rows (TMR SDC, HTM
    /// commits under TMR) are strict without a separate mechanism.
    Rel(f64),
    /// Absolute band: `|fresh - pinned| <= delta`. Used for percentages,
    /// where a relative band would be uselessly loose near 100 and
    /// uselessly strict near 0.
    Abs(f64),
    /// Informational, never checked: the values are host-dependent
    /// measurements (native-mode wall-clock throughput) that no band
    /// could meaningfully pin. `--check` always passes these cells, and
    /// the Markdown rendering shows the table *structure* but replaces
    /// every value with `·` so `REPRODUCTION.md` stays byte-stable
    /// across hosts — the real numbers live in the JSON snapshot and
    /// the bench output.
    Info,
}

impl Tolerance {
    /// True when `fresh` is inside the band around `pinned`.
    pub fn allows(&self, pinned: f64, fresh: f64) -> bool {
        let delta = (fresh - pinned).abs();
        match *self {
            Tolerance::Rel(frac) => delta <= frac * pinned.abs().max(1.0),
            Tolerance::Abs(abs) => delta <= abs,
            Tolerance::Info => true,
        }
    }

    /// True when the values are informational only — unchecked by
    /// `--check` and elided from the Markdown rendering.
    pub fn is_info(&self) -> bool {
        matches!(self, Tolerance::Info)
    }

    /// Short human description, e.g. `±15% rel` or `±5.0 abs`.
    pub fn describe(&self) -> String {
        match *self {
            Tolerance::Rel(frac) => format!("±{:.0}% rel", frac * 100.0),
            Tolerance::Abs(abs) => format!("±{abs} abs"),
            Tolerance::Info => "informational, not pinned".to_string(),
        }
    }
}

/// One labelled row of numbers.
#[derive(Clone, Debug, PartialEq)]
pub struct TableRow {
    pub label: String,
    pub values: Vec<f64>,
}

/// A numeric table: one row-label column plus `columns.len() - 1` value
/// columns. `columns[0]` titles the label column.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    /// Stable identifier used to match this table against its snapshot.
    pub id: String,
    /// Human heading.
    pub title: String,
    /// Column headers; the first names the row-label column.
    pub columns: Vec<String>,
    pub rows: Vec<TableRow>,
    /// Decimal places in rendered cells (snapshots keep full precision).
    pub precision: usize,
    /// The pinned drift band every cell is checked against.
    pub tolerance: Tolerance,
}

impl Table {
    /// An empty table with 2-decimal cells and a ±15% relative band.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            precision: 2,
            tolerance: Tolerance::Rel(0.15),
        }
    }

    /// Builder: sets the rendered decimal places.
    pub fn precision(mut self, p: usize) -> Self {
        self.precision = p;
        self
    }

    /// Builder: sets the tolerance band.
    pub fn tolerance(mut self, t: Tolerance) -> Self {
        self.tolerance = t;
        self
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the value columns or any
    /// value is non-finite (snapshots cannot represent NaN/inf, and a
    /// non-finite measurement is a bug upstream).
    pub fn push_row(&mut self, label: &str, values: Vec<f64>) {
        assert_eq!(values.len() + 1, self.columns.len(), "{}/{label}: column count", self.id);
        assert!(values.iter().all(|v| v.is_finite()), "{}/{label}: non-finite value", self.id);
        self.rows.push(TableRow { label: label.to_string(), values });
    }

    /// GitHub-flavored Markdown rendering, value columns right-aligned.
    /// Literal `|` in labels and headers is escaped, not a cell break.
    pub fn to_markdown(&self) -> String {
        let esc = |s: &str| s.replace('|', "\\|");
        let mut s = format!("**{}** (band {})\n\n", self.title, self.tolerance.describe());
        let headers: Vec<String> = self.columns.iter().map(|c| esc(c)).collect();
        s.push_str(&format!("| {} |\n", headers.join(" | ")));
        s.push_str("|---|");
        s.push_str(&"---:|".repeat(self.columns.len() - 1));
        s.push('\n');
        for row in &self.rows {
            // Info tables render their structure but not their values:
            // the numbers are host-dependent, and a committed
            // REPRODUCTION.md must not change between hosts.
            let cells: Vec<String> = if self.tolerance.is_info() {
                row.values.iter().map(|_| "·".to_string()).collect()
            } else {
                row.values.iter().map(|v| format!("{v:.*}", self.precision)).collect()
            };
            s.push_str(&format!("| {} | {} |\n", esc(&row.label), cells.join(" | ")));
        }
        s
    }

    /// Fixed-width console rendering (the bench harness's table shape).
    pub fn to_console(&self) -> String {
        let mut s = console_header(
            &self.columns[1..].iter().map(String::as_str).collect::<Vec<_>>(),
            &self.columns[0],
        );
        for row in &self.rows {
            s.push_str(&console_row(&row.label, &row.values));
        }
        s
    }
}

/// A labelled 1-D series (x label, y value), rendered as a sparkline.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Stable identifier used to match this series against its snapshot.
    pub id: String,
    pub title: String,
    pub points: Vec<(String, f64)>,
    pub tolerance: Tolerance,
}

impl Series {
    /// An empty series with a ±15% relative band.
    pub fn new(id: &str, title: &str) -> Self {
        Series {
            id: id.to_string(),
            title: title.to_string(),
            points: Vec::new(),
            tolerance: Tolerance::Rel(0.15),
        }
    }

    /// Builder: sets the tolerance band.
    pub fn tolerance(mut self, t: Tolerance) -> Self {
        self.tolerance = t;
        self
    }

    /// Appends one point.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite value (see [`Table::push_row`]).
    pub fn push(&mut self, label: &str, value: f64) {
        assert!(value.is_finite(), "{}/{label}: non-finite value", self.id);
        self.points.push((label.to_string(), value));
    }

    /// Markdown rendering: the sparkline plus the labelled points, in an
    /// indented code block.
    pub fn to_markdown(&self) -> String {
        let values: Vec<f64> = self.points.iter().map(|(_, v)| *v).collect();
        let (lo, hi) = min_max(&values);
        let pts: Vec<String> = self.points.iter().map(|(l, v)| format!("{l}: {v:.2}")).collect();
        format!(
            "**{}** (band {})\n\n    {}   min {:.2} · max {:.2}\n    {}\n",
            self.title,
            self.tolerance.describe(),
            sparkline(&values),
            lo,
            hi,
            pts.join("  ")
        )
    }
}

/// Console table header: a row-label column plus right-aligned value
/// columns, with an underline.
pub fn console_header(cols: &[&str], label_header: &str) -> String {
    let row: Vec<String> = cols.iter().map(|c| format!("{c:>12}")).collect();
    format!("{label_header:<16}{}\n{}\n", row.join(""), "-".repeat(16 + 12 * cols.len()))
}

/// One console table row matching [`console_header`]'s widths.
pub fn console_row(name: &str, vals: &[f64]) -> String {
    let cells: Vec<String> = vals.iter().map(|v| format!("{v:>12.2}")).collect();
    format!("{name:<16}{}\n", cells.join(""))
}

/// Unicode block sparkline, min-to-max normalized. A flat (or singleton)
/// series renders at mid height.
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let (lo, hi) = min_max(values);
    let span = hi - lo;
    values
        .iter()
        .map(|v| {
            if span <= 0.0 {
                BLOCKS[3]
            } else {
                let idx = ((v - lo) / span * 7.0).round() as usize;
                BLOCKS[idx.min(7)]
            }
        })
        .collect()
}

fn min_max(values: &[f64]) -> (f64, f64) {
    values.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_bands() {
        assert!(Tolerance::Rel(0.15).allows(2.0, 2.2));
        assert!(!Tolerance::Rel(0.15).allows(2.0, 2.4));
        // The 1.0 floor: a pinned zero admits only ±frac.
        assert!(Tolerance::Rel(0.15).allows(0.0, 0.1));
        assert!(!Tolerance::Rel(0.15).allows(0.0, 0.2));
        assert!(Tolerance::Abs(5.0).allows(97.0, 100.0));
        assert!(!Tolerance::Abs(5.0).allows(97.0, 91.0));
        assert_eq!(Tolerance::Rel(0.15).describe(), "±15% rel");
        assert_eq!(Tolerance::Abs(5.0).describe(), "±5 abs");
        // Info allows anything — it is not a band at all.
        assert!(Tolerance::Info.allows(0.0, 1e12));
        assert!(Tolerance::Info.is_info());
        assert_eq!(Tolerance::Info.describe(), "informational, not pinned");
    }

    #[test]
    fn info_tables_render_structure_without_values() {
        let mut t = Table::new("t", "Wall clock", &["backend", "req/s"]).tolerance(Tolerance::Info);
        t.push_row("HAFT", vec![123_456.78]);
        let md = t.to_markdown();
        assert!(md.contains("**Wall clock** (band informational, not pinned)"));
        assert!(md.contains("| HAFT | · |"), "values elided from markdown: {md}");
        assert!(!md.contains("123"), "host-dependent value leaked into markdown: {md}");
    }

    #[test]
    fn markdown_table_shape() {
        let mut t = Table::new("t", "Overheads", &["workload", "HAFT", "TMR"]).precision(2);
        t.push_row("histogram", vec![1.91, 2.25]);
        let md = t.to_markdown();
        assert!(md.contains("**Overheads** (band ±15% rel)"));
        assert!(md.contains("| workload | HAFT | TMR |"));
        assert!(md.contains("|---|---:|---:|"));
        assert!(md.contains("| histogram | 1.91 | 2.25 |"));
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn row_arity_is_checked() {
        let mut t = Table::new("t", "T", &["w", "a", "b"]);
        t.push_row("x", vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_values_are_rejected() {
        let mut t = Table::new("t", "T", &["w", "a"]);
        t.push_row("x", vec![f64::NAN]);
    }

    #[test]
    fn sparkline_normalizes() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0, 1.0]), "▄▄");
        let s = sparkline(&[0.0, 1.0, 2.0, 7.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁') && s.ends_with('█'));
    }

    #[test]
    fn series_markdown_lists_points() {
        let mut s = Series::new("s", "p99 vs load").tolerance(Tolerance::Rel(0.25));
        s.push("30%", 6.0);
        s.push("120%", 18.5);
        let md = s.to_markdown();
        assert!(md.contains("p99 vs load"));
        assert!(md.contains("30%: 6.00"));
        assert!(md.contains("max 18.50"));
    }

    #[test]
    fn console_rendering_matches_bench_shape() {
        let mut t = Table::new("t", "T", &["benchmark", "HAFT"]);
        t.push_row("histogram", vec![1.5]);
        let c = t.to_console();
        assert!(c.contains("benchmark"));
        assert!(c.contains("histogram"));
        assert!(c.contains("1.50"));
        assert!(c.contains("----"));
    }
}
