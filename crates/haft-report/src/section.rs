//! The report's sections: one per reproduced paper artifact.
//!
//! A [`Section`] names itself, names the paper artifact it reproduces,
//! and measures a [`SectionResult`] — tables, series, and prose notes —
//! through the `haft::Experiment` facade. Sections are independent (any
//! subset can run via `--section`) and every section honors
//! [`ReportConfig::fast`] with a CI-sized sweep.

use crate::render::{Series, Table};

mod abft;
mod faults;
mod forensics;
mod overheads;
mod profile;
mod serving;
mod tradeoff;
mod txsweep;

pub use abft::AbftFrontier;
pub use faults::FaultHistograms;
pub use forensics::ForensicsSection;
pub use overheads::Overheads;
pub use profile::Profile;
pub use serving::Serving;
pub use tradeoff::HaftVsElzar;
pub use txsweep::TxSweep;

/// How big a sweep the sections run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReportConfig {
    /// CI-sized sweeps: fewer workloads, Small inputs, fewer injections.
    /// Fast and full numbers are *not* comparable — snapshots record the
    /// mode and `--check` refuses to compare across it.
    pub fast: bool,
}

/// What one section measured.
#[derive(Clone, Debug, Default)]
pub struct SectionResult {
    /// Prose lines rendered between the heading and the tables —
    /// methodology (sweep sizes, seeds, scales) and interpretation.
    pub notes: Vec<String>,
    pub tables: Vec<Table>,
    pub series: Vec<Series>,
}

/// One regenerable unit of the report.
pub trait Section {
    /// Stable slug: the snapshot filename (`report/<name>.json`) and the
    /// `--section` argument.
    fn name(&self) -> &'static str;
    /// Human heading in `REPRODUCTION.md`.
    fn title(&self) -> &'static str;
    /// The paper artifact this section reproduces.
    fn paper_ref(&self) -> &'static str;
    /// Runs the experiments and returns the measured result.
    fn run(&self, cfg: &ReportConfig) -> SectionResult;
}

/// Every registered section, in `REPRODUCTION.md` order.
pub fn all_sections() -> Vec<Box<dyn Section>> {
    vec![
        Box::new(Overheads),
        Box::new(FaultHistograms),
        Box::new(ForensicsSection),
        Box::new(TxSweep),
        Box::new(Serving),
        Box::new(HaftVsElzar),
        Box::new(AbftFrontier),
        Box::new(Profile),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_stable_and_unique() {
        let sections = all_sections();
        let names: Vec<&str> = sections.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "overheads",
                "fault-histograms",
                "forensics",
                "tx-sweep",
                "serving",
                "haft-vs-elzar",
                "abft-frontier",
                "profile"
            ]
        );
        for s in &sections {
            assert!(!s.title().is_empty() && !s.paper_ref().is_empty(), "{}", s.name());
            assert!(
                s.name().chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{}: slug is a filename",
                s.name()
            );
        }
    }
}
