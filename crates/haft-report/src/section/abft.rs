//! Section 8: the ABFT frontier — algorithm-level checksums as a third
//! point between HAFT's rollback and TMR's masking.

use haft::eval::{perf_vm, recommended_threshold};
use haft::Experiment;
use haft_faults::{CampaignConfig, Group, Outcome};
use haft_passes::HardenConfig;
use haft_vm::FaultPlan;
use haft_workloads::{workload_by_name, Scale};

use crate::render::{Table, Tolerance};
use crate::section::{ReportConfig, Section, SectionResult};

/// The matrix-shaped Phoenix kernels the ABFT recognizer targets.
const MATRIX_NAMES: [&str; 4] = ["pca", "linearreg", "matrixmul", "kmeans"];

pub struct AbftFrontier;

impl Section for AbftFrontier {
    fn name(&self) -> &'static str {
        "abft-frontier"
    }

    fn title(&self) -> &'static str {
        "The ABFT frontier: checksum lanes vs duplication vs triplication"
    }

    fn paper_ref(&self) -> &'static str {
        "Algorithm-based fault tolerance (Huang & Abraham '84) as a third point \
         against HAFT §6 overheads and Table 1: checksum-maintainable matrix \
         kernels correct single upsets in place at a fraction of the replication \
         cost, trading blanket coverage for it"
    }

    fn run(&self, cfg: &ReportConfig) -> SectionResult {
        let (injections, sweep_points) = if cfg.fast { (40u64, 12u64) } else { (150, 23) };
        let threads = 2;

        // One campaign per (workload, backend): its fault-free reference
        // run is the overhead measurement (same idiom as haft-vs-elzar).
        #[derive(Default)]
        struct Acc {
            oh: Vec<f64>,
            corrected: f64,
            chk: f64,
            crashed: f64,
            sdc: f64,
        }
        let backends = [
            ("HAFT", HardenConfig::haft()),
            ("TMR", HardenConfig::tmr()),
            ("ABFT", HardenConfig::abft()),
        ];
        let mut accs = [Acc::default(), Acc::default(), Acc::default()];
        let mut audit = Table::new(
            "abft-correction-audit",
            "ABFT per workload: recognizer coverage and a correction audit sweep",
            &["workload", "covered", "fallback", "chains", "chk fired", "miscorrected"],
        )
        .precision(0)
        .tolerance(Tolerance::Rel(0.3));

        for name in MATRIX_NAMES {
            let w = workload_by_name(name, Scale::Small).expect("registered workload");
            let vm = perf_vm(threads, recommended_threshold(name));
            let native = Experiment::workload(&w).vm(vm.clone()).run().expect_completed(name);
            for ((label, hc), acc) in backends.iter().zip(&mut accs) {
                let v = Experiment::workload(&w)
                    .harden(hc.clone())
                    .vm(vm.clone())
                    .campaign(CampaignConfig { injections, seed: 0xABF7, ..Default::default() });
                assert_eq!(v.run.output, native.output, "{name}/{label}: output diverged");
                acc.oh.push(v.run.wall_cycles as f64 / native.wall_cycles.max(1) as f64);
                let c = v.campaign.expect("campaign report");
                acc.corrected += c.pct(Outcome::HaftCorrected)
                    + c.pct(Outcome::VoteCorrected)
                    + c.pct(Outcome::ChecksumCorrected);
                acc.chk += c.pct(Outcome::ChecksumCorrected);
                acc.crashed += c.group_pct(Group::Crashed);
                acc.sdc += c.pct(Outcome::Sdc);
            }

            // The audit sweep: evenly spaced single flips through the
            // ABFT build. Any run whose checksum fired and that still
            // completed must be bit-clean — `miscorrected` is the count
            // of violations and its pinned value is the point: zero.
            let exp = Experiment::workload(&w).harden(HardenConfig::abft()).vm(vm.clone());
            let built = exp.run();
            let clean = &built.run;
            let pm = built.pass_stats.metrics();
            let stat = |key: &str| pm.get(key).unwrap_or(0.0);
            let (mut fired, mut miscorrected) = (0u64, 0u64);
            let step = (clean.register_writes / sweep_points).max(1);
            for occurrence in (0..clean.register_writes).step_by(step as usize) {
                let r = exp.run_with_fault(FaultPlan { occurrence, xor_mask: 0x10 }).run;
                if r.corrected_by_checksum > 0 {
                    fired += 1;
                    if r.outcome == clean.outcome && r.output != clean.output {
                        miscorrected += 1;
                    }
                }
            }
            assert_eq!(miscorrected, 0, "{name}: a fired checksum let corruption through");
            audit.push_row(
                name,
                vec![
                    stat("pass.abft.functions_covered"),
                    stat("pass.abft.functions_fallback"),
                    stat("pass.abft.chains"),
                    fired as f64,
                    miscorrected as f64,
                ],
            );
        }

        let n = MATRIX_NAMES.len() as f64;
        let mean = |acc: &Acc| acc.oh.iter().sum::<f64>() / n;
        let [haft, tmr, abft] = accs;
        assert!(
            mean(&abft) < mean(&tmr),
            "ABFT must undercut TMR on its home turf: {:.2} vs {:.2}",
            mean(&abft),
            mean(&tmr)
        );

        let mut overheads = Table::new(
            "abft-overheads",
            "Runtime overhead × native, matrix kernels, three backends",
            &["workload", "HAFT", "TMR", "ABFT"],
        )
        .tolerance(Tolerance::Rel(0.3));
        for (i, name) in MATRIX_NAMES.iter().enumerate() {
            overheads.push_row(name, vec![haft.oh[i], tmr.oh[i], abft.oh[i]]);
        }
        overheads.push_row("mean", vec![mean(&haft), mean(&tmr), mean(&abft)]);

        let mut outcomes = Table::new(
            "abft-coverage-vs-sdc",
            "Fault-injection outcomes (% of runs, matrix-kernel mean)",
            &["metric", "HAFT", "TMR", "ABFT"],
        )
        .tolerance(Tolerance::Abs(8.0));
        outcomes.push_row(
            "corrected (rollback/vote/checksum) %",
            vec![haft.corrected / n, tmr.corrected / n, abft.corrected / n],
        );
        outcomes.push_row("checksum-corrected %", vec![haft.chk / n, tmr.chk / n, abft.chk / n]);
        outcomes
            .push_row("crashed group %", vec![haft.crashed / n, tmr.crashed / n, abft.crashed / n]);
        outcomes.push_row("SDC %", vec![haft.sdc / n, tmr.sdc / n, abft.sdc / n]);

        SectionResult {
            notes: vec![
                format!(
                    "Matrix kernels at Small scale, {threads} threads, {injections} injections \
                     per workload per backend (seed 0xABF7); the audit sweep steps {sweep_points} \
                     evenly spaced single flips (mask 0x10) through each ABFT build."
                ),
                "How to read it: ABFT replaces blanket instruction replication with two extra \
                 checksum lanes over each kernel's accumulation chains, so its overhead sits \
                 well below TMR's third copy. The price is coverage: flips outside the \
                 checksummed chains (shared inputs, addressing) are invisible to it, which is \
                 why its SDC share exceeds the replication backends'. The audit table pins the \
                 half it does promise: `miscorrected` — a fired verify-and-correct whose \
                 completed run still diverged — must stay zero."
                    .to_string(),
            ],
            tables: vec![overheads, outcomes, audit],
            series: vec![],
        }
    }
}
