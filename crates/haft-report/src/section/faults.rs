//! Section 2: the Table 1 fault-injection outcome histograms.

use haft::Experiment;
use haft_faults::{CampaignConfig, Group, Outcome};
use haft_passes::HardenConfig;
use haft_vm::VmConfig;
use haft_workloads::{workload_by_name, Scale, PHOENIX_BASE_NAMES};

use crate::render::{Series, Table, Tolerance};
use crate::section::{ReportConfig, Section, SectionResult};

const SEED: u64 = 0x0F19;

pub struct FaultHistograms;

impl Section for FaultHistograms {
    fn name(&self) -> &'static str {
        "fault-histograms"
    }

    fn title(&self) -> &'static str {
        "Fault-injection outcome histograms (Table 1 classes)"
    }

    fn paper_ref(&self) -> &'static str {
        "HAFT Table 1 / Fig. 9 (outcome distribution per hardening variant); \
         the vote-corrected class extends it to the TMR backend"
    }

    fn run(&self, cfg: &ReportConfig) -> SectionResult {
        let (names, injections): (&[&str], u64) =
            if cfg.fast { (&["histogram", "linearreg"], 24) } else { (&PHOENIX_BASE_NAMES, 150) };
        let variants: [(&str, HardenConfig); 4] = [
            ("native", HardenConfig::native()),
            ("ILR", HardenConfig::ilr_only()),
            ("HAFT", HardenConfig::haft()),
            ("TMR", HardenConfig::tmr()),
        ];

        let mut columns = vec!["workload · variant"];
        columns.extend(Outcome::ALL.iter().map(|o| o.label()));
        columns.push("correct Σ");
        let mut table = Table::new(
            "outcome-histogram",
            "Outcome distribution per injection campaign (%)",
            &columns,
        )
        .precision(1)
        .tolerance(Tolerance::Abs(10.0));

        let mut native_sdc = Series::new("native-sdc", "native SDC % across workloads")
            .tolerance(Tolerance::Abs(10.0));
        let mut haft_corrected =
            Series::new("haft-corrected", "HAFT rollback-corrected % across workloads")
                .tolerance(Tolerance::Abs(10.0));
        let mut tmr_corrected =
            Series::new("tmr-corrected", "TMR vote-corrected % across workloads")
                .tolerance(Tolerance::Abs(10.0));

        for name in names {
            let w = workload_by_name(name, Scale::Small).expect("registered workload");
            for (label, hc) in &variants {
                let report = Experiment::workload(&w)
                    .harden(hc.clone())
                    .vm(VmConfig {
                        n_threads: 2,
                        max_instructions: 100_000_000,
                        ..VmConfig::default()
                    })
                    .campaign(CampaignConfig { injections, seed: SEED, ..Default::default() })
                    .campaign
                    .expect("campaign terminal op attaches a report");
                let mut row: Vec<f64> = Outcome::ALL.iter().map(|o| report.pct(*o)).collect();
                row.push(report.group_pct(Group::Correct));
                table.push_row(&format!("{name} · {label}"), row);
                match *label {
                    "native" => native_sdc.push(name, report.pct(Outcome::Sdc)),
                    "HAFT" => haft_corrected.push(name, report.pct(Outcome::HaftCorrected)),
                    "TMR" => tmr_corrected.push(name, report.pct(Outcome::VoteCorrected)),
                    _ => {}
                }
            }
        }

        SectionResult {
            notes: vec![
                format!(
                    "{injections} injections per variant (seed {SEED:#x}), Small inputs, \
                     2 threads — the paper's campaign shape (§4.2): uniform draw over the \
                     reference run's register-writing instructions, random XOR mask, outcome \
                     classified against the golden output."
                ),
                "Reading the classes: native converts faults into SDC and crashes; ILR \
                 converts SDC into fail-stops (ilr-detected); HAFT converts fail-stops into \
                 rollback corrections (haft-corrected); TMR masks in place (vote-corrected) \
                 with no transactional machinery."
                    .to_string(),
            ],
            tables: vec![table],
            series: vec![native_sdc, haft_corrected, tmr_corrected],
        }
    }
}
