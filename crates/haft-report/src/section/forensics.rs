//! Section: fault forensics — detection-latency distributions and the
//! per-site vulnerability map.

use haft::Experiment;
use haft_faults::{CampaignConfig, ForensicsSummary};
use haft_passes::HardenConfig;
use haft_vm::FaultDetector;
use haft_vm::VmConfig;
use haft_workloads::{workload_by_name, Scale, PHOENIX_BASE_NAMES};

use crate::render::{Series, Table, Tolerance};
use crate::section::{ReportConfig, Section, SectionResult};

const SEED: u64 = 0x0F20;
const TOP_SITES: usize = 5;

pub struct ForensicsSection;

impl Section for ForensicsSection {
    fn name(&self) -> &'static str {
        "forensics"
    }

    fn title(&self) -> &'static str {
        "Fault forensics: detection latency and the vulnerability map"
    }

    fn paper_ref(&self) -> &'static str {
        "HAFT §4.2 windows of vulnerability, instrumented: how many dynamic \
         instructions a flip survives before each detector fires, and which \
         (function × op-class) sites convert flips into user-visible damage"
    }

    fn run(&self, cfg: &ReportConfig) -> SectionResult {
        let (names, injections): (&[&str], u64) =
            if cfg.fast { (&["histogram", "linearreg"], 24) } else { (&PHOENIX_BASE_NAMES, 120) };
        let variants: [(&str, HardenConfig); 4] = [
            ("native", HardenConfig::native()),
            ("ILR", HardenConfig::ilr_only()),
            ("HAFT", HardenConfig::haft()),
            ("TMR", HardenConfig::tmr()),
        ];

        let mut mix_columns = vec!["workload · variant"];
        mix_columns.extend(FaultDetector::ALL.iter().map(|d| d.label()));
        let mut mix = Table::new(
            "detector-mix",
            "Which mechanism ends each fault's window of vulnerability (% of fired)",
            &mix_columns,
        )
        .precision(1)
        .tolerance(Tolerance::Abs(10.0));

        let mut latency = Table::new(
            "detect-latency",
            "Detection latency per backend, merged across workloads",
            &[
                "backend",
                "fired",
                "mean insts",
                "p50 insts",
                "p90 insts",
                "max insts",
                "mean cycles",
            ],
        )
        .precision(1)
        .tolerance(Tolerance::Rel(0.5));

        let mut escape = Series::new(
            "native-escape-pct",
            "native: % of fired faults whose taint reached committed memory",
        )
        .tolerance(Tolerance::Abs(10.0));

        // Per-variant aggregate across workloads, and the native-only
        // vulnerability map for the top-sites table.
        let mut merged: Vec<ForensicsSummary> =
            variants.iter().map(|_| ForensicsSummary::default()).collect();
        let mut native_sites = ForensicsSummary::default();

        for name in names {
            let w = workload_by_name(name, Scale::Small).expect("registered workload");
            for (vi, (label, hc)) in variants.iter().enumerate() {
                let report = Experiment::workload(&w)
                    .harden(hc.clone())
                    .vm(VmConfig {
                        n_threads: 2,
                        max_instructions: 100_000_000,
                        ..VmConfig::default()
                    })
                    .campaign(CampaignConfig {
                        injections,
                        seed: SEED,
                        forensics: true,
                        ..Default::default()
                    })
                    .campaign
                    .expect("campaign terminal op attaches a report");
                let fx = report.forensics.as_ref().expect("forensics campaign records");
                let fired = fx.fired.max(1) as f64;
                let row: Vec<f64> = FaultDetector::ALL
                    .iter()
                    .map(|d| 100.0 * fx.detector_histogram(*d).count as f64 / fired)
                    .collect();
                mix.push_row(&format!("{name} · {label}"), row);
                merged[vi].merge(fx);
                if *label == "native" {
                    escape.push(name, 100.0 * fx.escaped_to_memory as f64 / fired);
                    native_sites.merge(fx);
                }
            }
        }

        for ((label, _), fx) in variants.iter().zip(&merged) {
            // Pool every detector into one distribution for the backend.
            let mut all = haft_faults::LatencyHistogram::default();
            for d in FaultDetector::ALL {
                all.merge(&fx.detector_histogram(d));
            }
            latency.push_row(
                label,
                vec![
                    fx.fired as f64,
                    all.mean(),
                    all.percentile(50.0) as f64,
                    all.percentile(90.0) as f64,
                    all.max as f64,
                    fx.latency_cycles.mean(),
                ],
            );
        }

        // Site labels are program-derived (function names), so the values
        // ride an Info band: row *structure* is still pinned — a sampler or
        // ranking change forces a conscious re-pin — but counts may drift.
        let mut sites = Table::new(
            "vulnerable-sites",
            &format!("Top {TOP_SITES} vulnerable sites on native (AVF-ranked)"),
            &["site (function · op-class)", "injections", "corrupted", "crashed", "AVF %"],
        )
        .precision(0)
        .tolerance(Tolerance::Info);
        for (key, s) in native_sites.top_sites(TOP_SITES) {
            sites.push_row(
                &format!("{} · {}", key.0, key.1),
                vec![s.injections as f64, s.corrupted as f64, s.crashed as f64, s.avf()],
            );
        }

        SectionResult {
            notes: vec![
                format!(
                    "{injections} forensics-enabled injections per workload × variant \
                     (seed {SEED:#x}), Small inputs, 2 threads. Each run carries a taint \
                     set seeded at the flipped register; the detector that clears it \
                     (or the run's end) closes the window of vulnerability."
                ),
                "Reading the latency table: ILR checks fire within a handful of \
                 instructions of the flip; TMR's majority votes sit at the consumer, \
                 a little later; HTM aborts pay the distance to the transaction \
                 boundary; escapes drift until the output is externalized — that gap \
                 is exactly the paper's argument for detection *inside* the window."
                    .to_string(),
                "The vulnerability map ranks unprotected (native) sites by an \
                 AVF-style score: the share of flips at that (function × op-class) \
                 site that ended corrupted or crashed. These are the sites hardening \
                 must cover first."
                    .to_string(),
            ],
            tables: vec![mix, latency, sites],
            series: vec![escape],
        }
    }
}
