//! Section 1: normalized runtime of every backend across the suites.

use haft::eval::{hardened_variants, perf_vm, recommended_threshold};
use haft::Experiment;
use haft_workloads::{workload_by_name, Scale, WORKLOAD_NAMES};

use crate::render::{Series, Table, Tolerance};
use crate::section::{ReportConfig, Section, SectionResult};

/// Workloads that keep the fast sweep representative: two Phoenix (low-
/// and mid-IPC) and two PARSEC (wide-pipeline and capacity-bound).
const FAST_WORKLOADS: [&str; 4] = ["histogram", "linearreg", "blackscholes", "swaptions"];

pub struct Overheads;

impl Section for Overheads {
    fn name(&self) -> &'static str {
        "overheads"
    }

    fn title(&self) -> &'static str {
        "Performance overheads: native / ILR / TX / HAFT / TMR"
    }

    fn paper_ref(&self) -> &'static str {
        "HAFT Fig. 6 and Table 2 (normalized runtime, Phoenix + PARSEC); \
         TMR column from the Elzar comparison (DSN'16, arXiv:1604.00500)"
    }

    fn run(&self, cfg: &ReportConfig) -> SectionResult {
        let (names, scale, threads): (&[&str], Scale, usize) = if cfg.fast {
            (&FAST_WORKLOADS, Scale::Small, 2)
        } else {
            (&WORKLOAD_NAMES, Scale::Large, 8)
        };
        let variants = hardened_variants();
        let labels: Vec<&str> = variants.iter().map(|(l, _)| *l).collect();
        let configs: Vec<_> = variants.iter().map(|(_, hc)| hc.clone()).collect();

        let mut columns = vec!["workload"];
        columns.extend(&labels);
        let mut table = Table::new(
            "normalized-runtime",
            "Normalized runtime vs native (lower is better)",
            &columns,
        )
        .tolerance(Tolerance::Rel(0.15));
        let mut haft_series = Series::new("haft-overhead", "HAFT overhead across workloads");
        let mut tmr_series = Series::new("tmr-overhead", "TMR overhead across workloads");

        let mut sums = vec![0.0; labels.len()];
        for name in names {
            let w = workload_by_name(name, scale).expect("registered workload");
            let report = Experiment::workload(&w)
                .vm(perf_vm(threads, recommended_threshold(name)))
                .compare(&configs);
            assert!(report.outputs_agree(), "{name}: output diverged or run failed");
            let overheads: Vec<f64> =
                labels.iter().map(|l| report.overhead(l).expect("variant present")).collect();
            for (sum, oh) in sums.iter_mut().zip(&overheads) {
                *sum += oh;
            }
            haft_series.push(name, report.overhead("HAFT").unwrap());
            tmr_series.push(name, report.overhead("TMR").unwrap());
            table.push_row(name, overheads);
        }
        let n = names.len() as f64;
        table.push_row("mean", sums.iter().map(|s| s / n).collect());

        SectionResult {
            notes: vec![
                format!(
                    "{} workloads at {:?} scale, {threads} simulated threads, per-workload \
                     transaction thresholds per the paper's §5.3 methodology \
                     (`haft::eval::recommended_threshold`). Every variant's output is verified \
                     bit-identical to native before its overhead is reported.",
                    names.len(),
                    scale
                ),
                "ILR pays for the duplicated data flow, TX for transaction begin/commit and \
                 aborts, HAFT for both, and TMR for a tripled stream plus votes — the spread \
                 across workloads tracks native IPC (see ARCHITECTURE.md)."
                    .to_string(),
            ],
            tables: vec![table],
            series: vec![haft_series, tmr_series],
        }
    }
}
