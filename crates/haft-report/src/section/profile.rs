//! Section 6: cycle-attribution profile — where each backend's overhead
//! cycles land, by op class, with the exact-attribution invariant
//! asserted on every run.

use haft::eval::perf_vm;
use haft::Experiment;
use haft_passes::HardenConfig;
use haft_workloads::{workload_by_name, Scale};

use crate::render::{Table, Tolerance};
use crate::section::{ReportConfig, Section, SectionResult};

/// Fixed column order for the per-class breakdown. Light classes
/// (atomic, sync, emit, nops) fold into `other` so the table stays
/// stable across backends and workloads.
const CLASSES: [&str; 7] = ["alu", "branch", "mem", "call", "tx", "tx-abort", "vote"];

pub struct Profile;

impl Section for Profile {
    fn name(&self) -> &'static str {
        "profile"
    }

    fn title(&self) -> &'static str {
        "Cycle-attribution profile: where hardening cycles go"
    }

    fn paper_ref(&self) -> &'static str {
        "HAFT §6.2 (sources of overhead: ILR shadow data flow vs TX \
         begin/commit bookkeeping) and the Elzar voting-cost discussion"
    }

    fn run(&self, cfg: &ReportConfig) -> SectionResult {
        let (names, scale, threads): (&[&str], Scale, usize) = if cfg.fast {
            (&["histogram", "swaptions"], Scale::Small, 2)
        } else {
            (&["histogram", "kmeans", "swaptions", "blackscholes"], Scale::Large, 4)
        };
        let backends: [(&str, HardenConfig); 3] = [
            ("native", HardenConfig::native()),
            ("HAFT", HardenConfig::haft()),
            ("TMR", HardenConfig::tmr()),
        ];

        let mut columns = vec!["run"];
        columns.extend(CLASSES);
        columns.push("other");
        // Informational: the attribution shares shift with any cost-model
        // change; what is *pinned* is the exactness invariant below,
        // asserted on every run (a violation aborts report generation).
        let mut by_class = Table::new(
            "cycles-by-class-pct",
            "Share of attributed cycles per op class (%)",
            &columns,
        )
        .precision(1)
        .tolerance(Tolerance::Info);
        let mut top_funcs = Vec::new();

        for name in names {
            let w = workload_by_name(name, scale).expect("registered workload");
            for (label, hc) in &backends {
                let (variant, profile) = Experiment::workload(&w)
                    .harden(hc.clone())
                    .vm(perf_vm(threads, 1000))
                    .run_profiled();
                let run = variant.expect_completed(name);
                assert_eq!(
                    profile.total(),
                    run.cpu_cycles,
                    "{name}/{label}: attribution must sum exactly to cpu_cycles"
                );
                let total = profile.total().max(1) as f64;
                let mut row = Vec::new();
                let mut accounted = 0u64;
                for class in CLASSES {
                    let cycles =
                        profile.by_class().iter().find(|(c, _)| *c == class).map_or(0, |(_, n)| *n);
                    accounted += cycles;
                    row.push(100.0 * cycles as f64 / total);
                }
                row.push(100.0 * (profile.total() - accounted) as f64 / total);
                by_class.push_row(&format!("{name}/{label}"), row);

                if let Some((func, cycles)) = profile.by_function().first() {
                    top_funcs.push(format!(
                        "{name}/{label}: hottest function `{func}` holds {:.1}% of {} cycles",
                        100.0 * *cycles as f64 / total,
                        profile.total(),
                    ));
                }
            }
        }

        let mut notes = vec![
            format!(
                "Per-function × op-class virtual-cycle histograms at {scale:?} scale, \
                 {threads} threads, threshold 1000, via `Experiment::run_profiled`. \
                 Attribution is telescoping off `Scoreboard::issue`, so each run's cell \
                 total equals its `cpu_cycles` *exactly* — asserted here, not merely \
                 tabulated."
            ),
            "The paper's overhead story, localized: under HAFT the ILR shadow data flow \
             inflates `alu`/`mem` and transactification adds `tx` (+ `tx-abort` wasted \
             re-execution); under TMR the `vote` column replaces both transaction \
             columns."
                .to_string(),
        ];
        notes.extend(top_funcs);

        SectionResult { notes, tables: vec![by_class], series: Vec::new() }
    }
}
