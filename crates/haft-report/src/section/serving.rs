//! Section 4: the serving harness — shard scaling, tail latency, and
//! availability under fault load.

use haft::eval::serving_variants;
use haft::Experiment;
use haft_apps::{kv_shard, KvSync, WorkloadMix};
use haft_serve::{ArrivalMode, FaultLoad, ServeConfig, ServeMode, ServiceReport};

use crate::render::{Series, Table, Tolerance};
use crate::section::{ReportConfig, Section, SectionResult};

pub struct Serving;

impl Section for Serving {
    fn name(&self) -> &'static str {
        "serving"
    }

    fn title(&self) -> &'static str {
        "Serving under live traffic: shard scaling, tail latency, availability"
    }

    fn paper_ref(&self) -> &'static str {
        "the service-level view behind HAFT §6.1 / Fig. 11-12 (memcached + YCSB): \
         throughput, p50/p99/p999, and availability under a 1% per-request SEU load"
    }

    fn run(&self, cfg: &ReportConfig) -> SectionResult {
        let (shard_counts, requests): (&[usize], usize) =
            if cfg.fast { (&[1, 2], 200) } else { (&[1, 2, 4, 8], 2_000) };
        // The fault-load rows need enough injected batches for at least
        // one rollback recovery to land in the tail, so they keep a
        // larger request count even in fast mode.
        let fault_requests = if cfg.fast { 800 } else { requests };

        // One experiment per variant across every cell: the hardened
        // module is built once (the `Experiment` cache) and only the
        // serve configuration changes between runs.
        let w = kv_shard(KvSync::Atomics);
        let variants: Vec<(&str, Experiment<'_>)> = serving_variants()
            .into_iter()
            .map(|(label, hc)| (label, Experiment::workload(&w).harden(hc)))
            .collect();

        let mut throughput = Table::new(
            "throughput-vs-shards",
            "Closed-loop capacity (k req/s), YCSB mix B (95r/5u Zipfian)",
            &["shards", "native", "HAFT", "TMR", "HAFT ×", "TMR ×"],
        )
        .tolerance(Tolerance::Rel(0.25));
        let mut haft_scaling = Series::new("haft-throughput", "HAFT k req/s, scaling shards")
            .tolerance(Tolerance::Rel(0.25));
        let mut latency = Table::new(
            "tail-latency-us",
            "Per-request latency at 2 shards (µs)",
            &["variant", "p50", "p95", "p99", "p999"],
        )
        .tolerance(Tolerance::Rel(0.25));

        for &shards in shard_counts {
            let scfg = ServeConfig {
                requests,
                mix: WorkloadMix::B,
                shards,
                arrival: ArrivalMode::ClosedLoop { clients: 8 * shards, think_ns: 0 },
                ..ServeConfig::default()
            };
            let reports: Vec<ServiceReport> =
                variants.iter().map(|(_, exp)| exp.serve(&scfg)).collect();
            let [native, haft, tmr] = &reports[..] else { unreachable!() };
            assert_eq!(native.requests_served, requests as u64, "clean run serves everything");
            throughput.push_row(
                &shards.to_string(),
                vec![
                    native.achieved_rps / 1e3,
                    haft.achieved_rps / 1e3,
                    tmr.achieved_rps / 1e3,
                    native.achieved_rps / haft.achieved_rps,
                    native.achieved_rps / tmr.achieved_rps,
                ],
            );
            haft_scaling.push(&format!("{shards} shard(s)"), haft.achieved_rps / 1e3);
            if shards == 2 {
                for (r, (label, _)) in reports.iter().zip(&variants) {
                    latency.push_row(
                        label,
                        vec![
                            r.latency.p50_ns as f64 / 1e3,
                            r.latency.p95_ns as f64 / 1e3,
                            r.latency.p99_ns as f64 / 1e3,
                            r.latency.p999_ns as f64 / 1e3,
                        ],
                    );
                }
            }
        }

        let mut availability = Table::new(
            "availability-pct",
            "Availability under a 1% per-request SEU load, 2 shards (%)",
            &["variant", "available"],
        )
        .tolerance(Tolerance::Abs(1.0));
        let mut fault_load = Table::new(
            "fault-load",
            "Fault-load accounting, 2 shards (counts, sdc/M, recovery spike)",
            &["variant", "sdc/M", "crashed batches", "corrected batches", "spike ×", "p999 µs"],
        )
        .tolerance(Tolerance::Rel(0.5));
        for (label, exp) in &variants {
            let scfg = ServeConfig {
                requests: fault_requests,
                shards: 2,
                faults: Some(FaultLoad { rate_per_request: 0.01, seed: 0xFA_17 }),
                ..ServeConfig::default()
            };
            let r = exp.serve(&scfg);
            let f = r.faults.expect("fault report attached");
            assert_eq!(f.counts.total(), fault_requests as u64, "{label}: outcomes must sum");
            availability.push_row(label, vec![f.availability_pct()]);
            fault_load.push_row(
                label,
                vec![
                    f.sdc_per_million(),
                    f.crashed_batches as f64,
                    f.corrected_batches as f64,
                    f.recovery_spike_factor(),
                    r.latency.p999_ns as f64 / 1e3,
                ],
            );
        }

        // The work-stealing native runtime, next to its DES twin. The
        // wall-clock column is real threads on whatever host runs the
        // report — host- and load-dependent by construction — so the
        // table is informational (`Tolerance::Info`): its structure is
        // pinned and `--check`ed, its values live only in the JSON
        // snapshot and are elided from the Markdown. The twin ratio
        // (native cycle-priced throughput over the simulation's) is the
        // contract the haft-runtime test suite enforces with a hard band.
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let mut runtime = Table::new(
            "runtime",
            "Native runtime at 2 shards, one worker per host core: wall-clock vs cycle-priced \
             k req/s (informational, host-dependent — values in report/serving.json)",
            &["variant", "wall k/s", "native cycle k/s", "sim cycle k/s", "twin ratio"],
        )
        .tolerance(Tolerance::Info);
        let rcfg = ServeConfig {
            requests: if cfg.fast { 400 } else { requests },
            mix: WorkloadMix::B,
            shards: 2,
            arrival: ArrivalMode::ClosedLoop { clients: 16, think_ns: 0 },
            ..ServeConfig::default()
        };
        for (label, exp) in &variants {
            let sim = exp.serve_in(ServeMode::Sim, &rcfg);
            let nat = exp.serve_in(ServeMode::Native { workers }, &rcfg);
            assert_eq!(sim.requests_served, nat.requests_served, "{label}: twin served counts");
            let wall = nat.wall.expect("native mode fills the wall report");
            runtime.push_row(
                label,
                vec![
                    wall.achieved_rps / 1e3,
                    nat.achieved_rps / 1e3,
                    sim.achieved_rps / 1e3,
                    nat.achieved_rps / sim.achieved_rps,
                ],
            );
        }

        SectionResult {
            notes: vec![
                format!(
                    "{requests} requests per scaling/latency cell and {fault_requests} per \
                     fault-load row, through `Experiment::serve`: hardened `kv_shard` modules \
                     behind a key-hash router, closed-loop clients (8 per shard), batch ≤ 8; \
                     service time is the batch's serve+fini simulated cycles at 2 GHz plus \
                     fixed dispatch. Each variant hardens once and serves every cell from the \
                     cache. Deterministic seeds throughout."
                ),
                "The hardening tax shows up twice: as a capacity ratio (HAFT/TMR × columns) \
                 and in the tail. Under fault load the backends split: native stays fast but \
                 leaks SDC to clients; HAFT and TMR both deliver full availability, paying \
                 respectively a rollback spike or a steady voting tax (see the trade-off \
                 section)."
                    .to_string(),
            ],
            tables: vec![throughput, latency, availability, fault_load, runtime],
            series: vec![haft_scaling],
        }
    }
}
