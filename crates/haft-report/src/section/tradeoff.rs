//! Section 5: HAFT vs Elzar-style TMR, side by side.

use haft::eval::{perf_vm, recommended_threshold};
use haft::Experiment;
use haft_apps::{kv_shard, KvSync};
use haft_faults::{CampaignConfig, Group, Outcome};
use haft_passes::HardenConfig;
use haft_serve::{FaultLoad, ServeConfig};
use haft_workloads::{workload_by_name, Scale, PHOENIX_BASE_NAMES};

use crate::render::{Table, Tolerance};
use crate::section::{ReportConfig, Section, SectionResult};

pub struct HaftVsElzar;

impl Section for HaftVsElzar {
    fn name(&self) -> &'static str {
        "haft-vs-elzar"
    }

    fn title(&self) -> &'static str {
        "The trade-off: HAFT (rollback) vs Elzar-style TMR (masking)"
    }

    fn paper_ref(&self) -> &'static str {
        "Elzar (Kuvaiskii et al., DSN'16, arXiv:1604.00500) against HAFT: \
         mean overhead, recovery mechanism split, and the recovery-latency spike"
    }

    fn run(&self, cfg: &ReportConfig) -> SectionResult {
        let (names, injections, requests): (&[&str], u64, usize) = if cfg.fast {
            (&["histogram", "linearreg"], 24, 800)
        } else {
            (&PHOENIX_BASE_NAMES, 150, 2_000)
        };
        let threads = 2;

        // Batch side: mean overhead and campaign outcomes over Phoenix.
        // One campaign per (workload, backend) supplies *both* numbers:
        // its fault-free reference run is the overhead measurement (same
        // VM, same entry points as a plain `run`), so nothing hardens or
        // executes twice.
        #[derive(Default)]
        struct Acc {
            oh: f64,
            corrected: f64,
            crashed: f64,
            sdc: f64,
            commits: u64,
        }
        let backends = [("HAFT", HardenConfig::haft()), ("TMR", HardenConfig::tmr())];
        let mut accs = [Acc::default(), Acc::default()];
        for name in names {
            let w = workload_by_name(name, Scale::Small).expect("registered workload");
            let vm = perf_vm(threads, recommended_threshold(name));
            let native = Experiment::workload(&w).vm(vm.clone()).run().expect_completed(name);
            for ((label, hc), acc) in backends.iter().zip(&mut accs) {
                let v = Experiment::workload(&w)
                    .harden(hc.clone())
                    .vm(vm.clone())
                    .campaign(CampaignConfig { injections, seed: 0xE15A, ..Default::default() });
                assert_eq!(v.run.output, native.output, "{name}/{label}: output diverged");
                acc.oh += v.run.wall_cycles as f64 / native.wall_cycles.max(1) as f64;
                acc.commits += v.run.htm.commits;
                let c = v.campaign.expect("campaign report");
                acc.corrected += c.pct(Outcome::HaftCorrected) + c.pct(Outcome::VoteCorrected);
                acc.crashed += c.group_pct(Group::Crashed);
                acc.sdc += c.pct(Outcome::Sdc);
            }
        }
        let n = names.len() as f64;
        let [haft, tmr] = accs;

        // Service side: the recovery-latency spike under a 1% SEU load —
        // rollback stalls a whole batch; voting masks nearly in place.
        // This deliberately re-measures the serving section's fault-load
        // experiment: sections run standalone (`--section haft-vs-elzar`
        // must not depend on another section's output), and the run is
        // deterministic, so the two pins agree whenever both regenerate.
        let spike = |hc: HardenConfig| {
            let w = kv_shard(KvSync::Atomics);
            let r = Experiment::workload(&w).harden(hc).serve(&ServeConfig {
                requests,
                shards: 2,
                faults: Some(FaultLoad { rate_per_request: 0.01, seed: 0xFA_17 }),
                ..ServeConfig::default()
            });
            let f = r.faults.expect("fault report attached");
            (f.availability_pct(), f.recovery_spike_factor())
        };
        let (haft_avail, haft_spike) = spike(HardenConfig::haft());
        let (tmr_avail, tmr_spike) = spike(HardenConfig::tmr());

        let mut table = Table::new(
            "haft-vs-tmr",
            "HAFT vs TMR, same pipeline, same workloads",
            &["metric", "HAFT", "TMR"],
        )
        .tolerance(Tolerance::Rel(0.3));
        table.push_row("mean overhead × native (Phoenix)", vec![haft.oh / n, tmr.oh / n]);
        table.push_row("corrected (rollback/vote) %", vec![haft.corrected / n, tmr.corrected / n]);
        table.push_row("crashed group %", vec![haft.crashed / n, tmr.crashed / n]);
        table.push_row("SDC %", vec![haft.sdc / n, tmr.sdc / n]);
        table.push_row(
            "HTM commits (reference runs)",
            vec![haft.commits as f64, tmr.commits as f64],
        );
        table.push_row("service availability @1% SEU (%)", vec![haft_avail, tmr_avail]);
        table.push_row("recovery-latency spike ×", vec![haft_spike, tmr_spike]);

        SectionResult {
            notes: vec![
                format!(
                    "Phoenix at Small scale, {threads} threads, {injections} injections per \
                     workload per backend; the serving rows replay the availability experiment \
                     at 2 shards, {requests} requests, 1% per-request SEU."
                ),
                "How to read it: HAFT detects with two copies and needs HTM rollback to \
                 correct, so it is cheaper per instruction but recovery is a visible stall \
                 (the spike row) and detect-without-recover paths leak into the crashed \
                 group. TMR pays a third copy plus votes up front — zero HTM commits by \
                 construction — and masks faults nearly in place."
                    .to_string(),
            ],
            tables: vec![table],
            series: vec![],
        }
    }
}
