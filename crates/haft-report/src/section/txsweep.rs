//! Section 3: transactification sweep — overhead and HTM aborts vs the
//! transaction-size threshold.

use haft::eval::perf_vm;
use haft::Experiment;
use haft_passes::HardenConfig;
use haft_workloads::{workload_by_name, Scale};

use crate::render::{Series, Table, Tolerance};
use crate::section::{ReportConfig, Section, SectionResult};

pub struct TxSweep;

impl Section for TxSweep {
    fn name(&self) -> &'static str {
        "tx-sweep"
    }

    fn title(&self) -> &'static str {
        "Transactification sweep: overhead and HTM aborts vs tx_threshold"
    }

    fn paper_ref(&self) -> &'static str {
        "HAFT Fig. 8 (normalized runtime and abort rate vs transaction size) \
         and Table 3 (abort causes)"
    }

    fn run(&self, cfg: &ReportConfig) -> SectionResult {
        // kmeans aborts on conflicts (true sharing), swaptions on
        // capacity; the full sweep adds a false-sharing and a
        // low-coverage workload.
        let (names, thresholds, scale, threads): (&[&str], &[u64], Scale, usize) = if cfg.fast {
            (&["kmeans", "swaptions"], &[250, 1000, 5000], Scale::Small, 2)
        } else {
            (
                &["histogram", "kmeans", "wordcount", "swaptions", "ferret", "matrixmul"],
                &[250, 500, 1000, 3000, 5000],
                Scale::Large,
                8,
            )
        };

        let threshold_cols: Vec<String> = thresholds.iter().map(|t| t.to_string()).collect();
        let mut columns = vec!["workload"];
        columns.extend(threshold_cols.iter().map(String::as_str));
        let mut runtime = Table::new(
            "runtime-vs-threshold",
            "HAFT normalized runtime vs transaction-size threshold",
            &columns,
        )
        .tolerance(Tolerance::Rel(0.15));
        let mut aborts = Table::new(
            "abort-rate-vs-threshold",
            "HTM abort rate (%) vs transaction-size threshold",
            &columns,
        )
        .precision(1)
        .tolerance(Tolerance::Abs(5.0));
        let mut series = Vec::new();

        for name in names {
            let w = workload_by_name(name, scale).expect("registered workload");
            let native = Experiment::workload(&w)
                .vm(perf_vm(threads, thresholds[0]))
                .run()
                .expect_completed(name);
            // One experiment across the sweep: the hardened module is
            // built once and cached; only the VM threshold changes.
            let mut exp = Experiment::workload(&w)
                .harden(HardenConfig::haft())
                .vm(perf_vm(threads, thresholds[0]));
            let mut ohs = Vec::new();
            let mut abs = Vec::new();
            for &t in thresholds {
                exp = exp.tx_threshold(t);
                let run = exp.run().expect_completed(name);
                ohs.push(run.wall_cycles as f64 / native.wall_cycles as f64);
                abs.push(run.htm.abort_rate_pct());
            }
            let mut s = Series::new(
                &format!("abort-rate-{name}"),
                &format!("{name}: abort % as transactions grow"),
            )
            .tolerance(Tolerance::Abs(5.0));
            for (t, a) in threshold_cols.iter().zip(&abs) {
                s.push(t, *a);
            }
            series.push(s);
            runtime.push_row(name, ohs);
            aborts.push_row(name, abs);
        }

        SectionResult {
            notes: vec![
                format!(
                    "HAFT at {:?} scale, {threads} threads; the same hardened module runs at \
                     every threshold (the split decision is the VM's run-time counter, \
                     paper §5.3/Fig. 8).",
                    scale
                ),
                "The tension the paper tunes per benchmark: small transactions abort rarely \
                 but pay begin/commit often; large ones amortize commits until capacity and \
                 conflict aborts — and their wasted re-execution — dominate."
                    .to_string(),
            ],
            tables: vec![runtime, aborts],
            series,
        }
    }
}
