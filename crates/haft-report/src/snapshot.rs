//! Machine-readable section snapshots (`report/<section>.json`) and the
//! `--check` diff against their pinned tolerance bands.
//!
//! A snapshot is the numeric content of one section — its tables and
//! series at full precision, each carrying the [`Tolerance`] it was
//! generated with. `--check` regenerates the section and compares every
//! value against the *committed* snapshot using the *committed* band, so
//! a perf- or semantics-changing PR that moves a number out of band must
//! regenerate the snapshot (a reviewed, versioned diff) instead of
//! silently drifting the documentation — the explicit mechanism replacing
//! CHANGES.md's hand-copied numbers and their "session variance" caveat.

use crate::json::Json;
use crate::render::{Series, Table, TableRow, Tolerance};

/// Which sweep sizes produced a snapshot. Fast and full runs measure
/// different grids, so their numbers are not comparable; the mode is
/// recorded and checked before any value diff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// CI-sized sweeps (`--fast`).
    Fast,
    /// The paper-sized grids.
    Full,
}

impl Mode {
    /// Serialized name.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Fast => "fast",
            Mode::Full => "full",
        }
    }

    /// Inverse of [`Mode::label`].
    pub fn parse(s: &str) -> Result<Mode, String> {
        match s {
            "fast" => Ok(Mode::Fast),
            "full" => Ok(Mode::Full),
            other => Err(format!("unknown mode `{other}`")),
        }
    }
}

/// One section's numbers, ready to serialize or diff.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    pub section: String,
    pub mode: Mode,
    pub tables: Vec<Table>,
    pub series: Vec<Series>,
}

impl Snapshot {
    /// Serializes to the `report/<section>.json` document.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    fn to_json(&self) -> Json {
        let tables = self
            .tables
            .iter()
            .map(|t| {
                Json::Obj(vec![
                    ("id".into(), Json::Str(t.id.clone())),
                    ("title".into(), Json::Str(t.title.clone())),
                    ("tolerance".into(), tolerance_to_json(t.tolerance)),
                    (
                        "columns".into(),
                        Json::Arr(t.columns.iter().map(|c| Json::Str(c.clone())).collect()),
                    ),
                    (
                        "rows".into(),
                        Json::Arr(
                            t.rows
                                .iter()
                                .map(|r| {
                                    let mut cells = vec![Json::Str(r.label.clone())];
                                    cells.extend(r.values.iter().map(|&v| Json::Num(v)));
                                    Json::Arr(cells)
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let series = self
            .series
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("id".into(), Json::Str(s.id.clone())),
                    ("title".into(), Json::Str(s.title.clone())),
                    ("tolerance".into(), tolerance_to_json(s.tolerance)),
                    (
                        "points".into(),
                        Json::Arr(
                            s.points
                                .iter()
                                .map(|(l, v)| Json::Arr(vec![Json::Str(l.clone()), Json::Num(*v)]))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("section".into(), Json::Str(self.section.clone())),
            ("mode".into(), Json::Str(self.mode.label().into())),
            ("tables".into(), Json::Arr(tables)),
            ("series".into(), Json::Arr(series)),
        ])
    }

    /// Parses a `report/<section>.json` document.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let doc = Json::parse(text)?;
        let section = str_field(&doc, "section")?.to_string();
        let mode = Mode::parse(str_field(&doc, "mode")?)?;
        let mut tables = Vec::new();
        for t in arr_field(&doc, "tables")? {
            let id = str_field(t, "id")?.to_string();
            let columns: Vec<String> = arr_field(t, "columns")?
                .iter()
                .map(|c| c.as_str().map(str::to_string).ok_or("non-string column"))
                .collect::<Result<_, _>>()?;
            let mut rows = Vec::new();
            for row in arr_field(t, "rows")? {
                let cells = row.as_arr().ok_or("row is not an array")?;
                let label = cells
                    .first()
                    .and_then(Json::as_str)
                    .ok_or("row lacks a leading label")?
                    .to_string();
                let values: Vec<f64> = cells[1..]
                    .iter()
                    .map(|c| c.as_f64().ok_or("non-numeric cell"))
                    .collect::<Result<_, _>>()?;
                if values.len() + 1 != columns.len() {
                    return Err(format!("{id}/{label}: cell count mismatch"));
                }
                rows.push(TableRow { label, values });
            }
            tables.push(Table {
                id,
                title: str_field(t, "title")?.to_string(),
                columns,
                rows,
                precision: 2,
                tolerance: tolerance_from_json(t.get("tolerance").ok_or("missing tolerance")?)?,
            });
        }
        let mut series = Vec::new();
        for s in arr_field(&doc, "series")? {
            let points: Vec<(String, f64)> = arr_field(s, "points")?
                .iter()
                .map(|p| {
                    let pair = p.as_arr().filter(|a| a.len() == 2).ok_or("bad point")?;
                    Ok((
                        pair[0].as_str().ok_or("non-string point label")?.to_string(),
                        pair[1].as_f64().ok_or("non-numeric point value")?,
                    ))
                })
                .collect::<Result<_, String>>()?;
            series.push(Series {
                id: str_field(s, "id")?.to_string(),
                title: str_field(s, "title")?.to_string(),
                points,
                tolerance: tolerance_from_json(s.get("tolerance").ok_or("missing tolerance")?)?,
            });
        }
        Ok(Snapshot { section, mode, tables, series })
    }
}

fn tolerance_to_json(t: Tolerance) -> Json {
    let (kind, v) = match t {
        Tolerance::Rel(f) => ("rel", f),
        Tolerance::Abs(a) => ("abs", a),
        Tolerance::Info => return Json::Obj(vec![("info".into(), Json::Bool(true))]),
    };
    Json::Obj(vec![(kind.into(), Json::Num(v))])
}

fn tolerance_from_json(j: &Json) -> Result<Tolerance, String> {
    if let Some(f) = j.get("rel").and_then(Json::as_f64) {
        Ok(Tolerance::Rel(f))
    } else if let Some(a) = j.get("abs").and_then(Json::as_f64) {
        Ok(Tolerance::Abs(a))
    } else if j.get("info").is_some() {
        Ok(Tolerance::Info)
    } else {
        Err("tolerance must be {\"rel\": f}, {\"abs\": f}, or {\"info\": true}".into())
    }
}

fn str_field<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    j.get(key).and_then(Json::as_str).ok_or(format!("missing string field `{key}`"))
}

fn arr_field<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], String> {
    j.get(key).and_then(Json::as_arr).ok_or(format!("missing array field `{key}`"))
}

/// Compares a freshly generated snapshot against the pinned one and
/// returns one human-readable violation per out-of-band value or
/// structural mismatch (renamed/added/removed tables, rows, columns, or
/// points). Empty means the check passes.
///
/// The *pinned* side's tolerance is authoritative: bands are part of the
/// committed snapshot, not of the code doing the checking.
pub fn diff(pinned: &Snapshot, fresh: &Snapshot) -> Vec<String> {
    let mut violations = Vec::new();
    if pinned.section != fresh.section {
        violations.push(format!(
            "section name changed: pinned `{}` vs fresh `{}`",
            pinned.section, fresh.section
        ));
        return violations;
    }
    let sec = &pinned.section;
    if pinned.mode != fresh.mode {
        violations.push(format!(
            "{sec}: snapshot was pinned in {} mode but this run is {} mode — \
             regenerate with the matching flag",
            pinned.mode.label(),
            fresh.mode.label()
        ));
        return violations;
    }
    diff_keyed(
        &mut violations,
        sec,
        "table",
        &pinned.tables,
        &fresh.tables,
        |t| &t.id,
        |v, p, f| diff_table(v, sec, p, f),
    );
    diff_keyed(
        &mut violations,
        sec,
        "series",
        &pinned.series,
        &fresh.series,
        |s| &s.id,
        |v, p, f| diff_series(v, sec, p, f),
    );
    violations
}

/// Matches two keyed lists, reporting removed/added keys and delegating
/// matched pairs to `diff_pair`.
fn diff_keyed<T>(
    violations: &mut Vec<String>,
    sec: &str,
    kind: &str,
    pinned: &[T],
    fresh: &[T],
    key: impl Fn(&T) -> &str,
    diff_pair: impl Fn(&mut Vec<String>, &T, &T),
) {
    for p in pinned {
        match fresh.iter().find(|f| key(f) == key(p)) {
            Some(f) => diff_pair(violations, p, f),
            None => violations.push(format!("{sec}: {kind} `{}` missing from this run", key(p))),
        }
    }
    for f in fresh {
        if !pinned.iter().any(|p| key(p) == key(f)) {
            violations.push(format!(
                "{sec}: new {kind} `{}` has no pinned snapshot — regenerate to pin it",
                key(f)
            ));
        }
    }
}

fn diff_table(violations: &mut Vec<String>, sec: &str, pinned: &Table, fresh: &Table) {
    let id = &pinned.id;
    if pinned.columns != fresh.columns {
        violations.push(format!(
            "{sec}/{id}: columns changed: {:?} vs {:?}",
            pinned.columns, fresh.columns
        ));
        return;
    }
    for prow in &pinned.rows {
        let Some(frow) = fresh.rows.iter().find(|r| r.label == prow.label) else {
            violations.push(format!("{sec}/{id}: row `{}` missing from this run", prow.label));
            continue;
        };
        for (col, (&pv, &fv)) in
            pinned.columns[1..].iter().zip(prow.values.iter().zip(&frow.values))
        {
            if !pinned.tolerance.allows(pv, fv) {
                violations.push(format!(
                    "{sec}/{id} [{} · {col}]: pinned {pv:.4} vs fresh {fv:.4} (band {})",
                    prow.label,
                    pinned.tolerance.describe()
                ));
            }
        }
    }
    for frow in &fresh.rows {
        if !pinned.rows.iter().any(|r| r.label == frow.label) {
            violations.push(format!("{sec}/{id}: new row `{}` is not pinned", frow.label));
        }
    }
}

fn diff_series(violations: &mut Vec<String>, sec: &str, pinned: &Series, fresh: &Series) {
    let id = &pinned.id;
    for (label, pv) in &pinned.points {
        let Some((_, fv)) = fresh.points.iter().find(|(l, _)| l == label) else {
            violations.push(format!("{sec}/{id}: point `{label}` missing from this run"));
            continue;
        };
        if !pinned.tolerance.allows(*pv, *fv) {
            violations.push(format!(
                "{sec}/{id} [{label}]: pinned {pv:.4} vs fresh {fv:.4} (band {})",
                pinned.tolerance.describe()
            ));
        }
    }
    for (label, _) in &fresh.points {
        if !pinned.points.iter().any(|(l, _)| l == label) {
            violations.push(format!("{sec}/{id}: new point `{label}` is not pinned"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut t = Table::new("overhead", "Overheads", &["workload", "HAFT", "TMR"])
            .tolerance(Tolerance::Rel(0.15));
        t.push_row("histogram", vec![1.91, 2.25]);
        t.push_row("pca", vec![2.6, 2.9]);
        let mut s = Series::new("haft-oh", "HAFT overhead").tolerance(Tolerance::Abs(0.5));
        s.push("histogram", 1.91);
        s.push("pca", 2.6);
        Snapshot { section: "overheads".into(), mode: Mode::Fast, tables: vec![t], series: vec![s] }
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let snap = sample();
        let parsed = Snapshot::parse(&snap.render()).unwrap();
        assert_eq!(parsed.section, snap.section);
        assert_eq!(parsed.mode, snap.mode);
        assert_eq!(parsed.tables[0].columns, snap.tables[0].columns);
        assert_eq!(parsed.tables[0].rows, snap.tables[0].rows);
        assert_eq!(parsed.tables[0].tolerance, snap.tables[0].tolerance);
        assert_eq!(parsed.series[0].points, snap.series[0].points);
        assert_eq!(parsed.series[0].tolerance, snap.series[0].tolerance);
        assert!(diff(&snap, &parsed).is_empty(), "round-trip must diff clean");
    }

    #[test]
    fn identical_snapshots_diff_clean() {
        assert!(diff(&sample(), &sample()).is_empty());
    }

    #[test]
    fn in_band_drift_passes_and_out_of_band_fails() {
        let pinned = sample();
        let mut fresh = sample();
        fresh.tables[0].rows[0].values[0] = 1.99; // +4% on a ±15% band
        assert!(diff(&pinned, &fresh).is_empty());
        fresh.tables[0].rows[0].values[0] = 3.0; // +57%
        let v = diff(&pinned, &fresh);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("histogram · HAFT"), "{v:?}");
        assert!(v[0].contains("±15% rel"), "{v:?}");
    }

    #[test]
    fn series_points_are_checked_against_their_band() {
        let pinned = sample();
        let mut fresh = sample();
        fresh.series[0].points[1].1 = 3.0; // +0.4 on a ±0.5 abs band
        assert!(diff(&pinned, &fresh).is_empty());
        fresh.series[0].points[1].1 = 3.2;
        assert_eq!(diff(&pinned, &fresh).len(), 1);
    }

    #[test]
    fn structural_changes_are_violations() {
        let pinned = sample();

        let mut fresh = sample();
        fresh.mode = Mode::Full;
        assert!(diff(&pinned, &fresh)[0].contains("mode"));

        let mut fresh = sample();
        fresh.tables[0].rows.pop();
        assert!(diff(&pinned, &fresh).iter().any(|v| v.contains("row `pca` missing")));

        let mut fresh = sample();
        fresh.tables[0].rows[1].label = "pca-renamed".into();
        let v = diff(&pinned, &fresh);
        assert!(
            v.iter().any(|m| m.contains("missing")) && v.iter().any(|m| m.contains("not pinned"))
        );

        let mut fresh = sample();
        fresh.tables.clear();
        assert!(diff(&pinned, &fresh).iter().any(|v| v.contains("table `overhead` missing")));

        let mut fresh = sample();
        fresh.tables[0].columns[1] = "ILR".into();
        assert!(diff(&pinned, &fresh).iter().any(|v| v.contains("columns changed")));

        // The check is symmetric about additions: unpinned new content
        // also fails, forcing a regenerate.
        let mut fresh = sample();
        fresh.series[0].points.push(("extra".into(), 1.0));
        assert!(diff(&pinned, &fresh).iter().any(|v| v.contains("not pinned")));
    }

    #[test]
    fn pinned_tolerance_is_authoritative() {
        let pinned = sample();
        let mut fresh = sample();
        // The fresh side claims a huge band, but the value is outside the
        // *pinned* ±15%: still a violation.
        fresh.tables[0].tolerance = Tolerance::Rel(10.0);
        fresh.tables[0].rows[0].values[0] = 3.0;
        assert_eq!(diff(&pinned, &fresh).len(), 1);
    }

    /// Info-band tables round-trip through JSON and never produce value
    /// violations — only structural changes (rows, columns) can fail.
    #[test]
    fn info_tables_round_trip_and_pass_any_value() {
        let mut snap = sample();
        snap.tables[0].tolerance = Tolerance::Info;
        let parsed = Snapshot::parse(&snap.render()).unwrap();
        assert_eq!(parsed.tables[0].tolerance, Tolerance::Info);

        let mut fresh = parsed.clone();
        fresh.tables[0].rows[0].values[0] = 123.456; // wildly off: still fine
        assert!(diff(&snap, &fresh).is_empty(), "info values must never violate");
        fresh.tables[0].rows.pop();
        assert!(
            diff(&snap, &fresh).iter().any(|v| v.contains("missing")),
            "structure is still checked on info tables"
        );
    }

    #[test]
    fn parse_rejects_malformed_snapshots() {
        assert!(Snapshot::parse("{}").is_err());
        assert!(Snapshot::parse("{\"section\": \"s\", \"mode\": \"warp\"}").is_err());
        let no_tol = r#"{"section":"s","mode":"fast","tables":[{"id":"t","title":"T","columns":["w","a"],"rows":[["x",1]]}],"series":[]}"#;
        assert!(Snapshot::parse(no_tol).unwrap_err().contains("tolerance"));
        let bad_arity = r#"{"section":"s","mode":"fast","tables":[{"id":"t","title":"T","tolerance":{"rel":0.1},"columns":["w","a"],"rows":[["x",1,2]]}],"series":[]}"#;
        assert!(Snapshot::parse(bad_arity).unwrap_err().contains("cell count"));
    }
}
