//! Golden test for report generation: `--fast` mode renders every
//! registered section with real measured numbers, snapshots round-trip
//! through their JSON files, and the `--check` diff flags out-of-band
//! values.
//!
//! The expensive part — actually running the experiments — happens once;
//! every assertion reads the same generated report.

use haft_report::snapshot::{diff, Mode, Snapshot};
use haft_report::{all_sections, generate, ReportConfig};

#[test]
fn fast_report_renders_checks_and_round_trips() {
    let report = generate(&ReportConfig { fast: true });
    let registered = all_sections();

    // Every registered section ran, in registry order, and measured
    // something real.
    assert_eq!(report.mode, Mode::Fast);
    let names: Vec<&str> = report.sections.iter().map(|s| s.name.as_str()).collect();
    let expected: Vec<&str> = registered.iter().map(|s| s.name()).collect();
    assert_eq!(names, expected, "every registered section must run");
    for s in &report.sections {
        assert!(!s.result.tables.is_empty(), "{}: no tables", s.name);
        assert!(!s.result.notes.is_empty(), "{}: no methodology notes", s.name);
        for t in &s.result.tables {
            assert!(!t.rows.is_empty(), "{}/{}: empty table", s.name, t.id);
            for row in &t.rows {
                assert!(
                    row.values.iter().all(|v| v.is_finite()),
                    "{}/{}/{}: non-finite cell",
                    s.name,
                    t.id,
                    row.label
                );
            }
        }
    }

    // Spot-check the physics: redundancy (HAFT, TMR) is never free —
    // TX-only can dip below native in the cost model, so only the
    // redundant variants are pinned ≥ 1 — and the trade-off table pins
    // HAFT cheaper than TMR with zero TMR transactions.
    let overheads = &report.sections[0].result.tables[0];
    for row in &overheads.rows {
        assert!(row.values.iter().all(|&v| v > 0.0), "overheads/{}: non-positive", row.label);
        for col in ["HAFT", "TMR"] {
            let idx = overheads.columns.iter().position(|c| c == col).unwrap() - 1;
            assert!(
                row.values[idx] >= 1.0,
                "overheads/{} {col}: redundancy below native: {:?}",
                row.label,
                row.values
            );
        }
    }
    let tradeoff =
        &report.sections.iter().find(|s| s.name == "haft-vs-elzar").unwrap().result.tables[0];
    let mean_row = &tradeoff.rows[0];
    assert!(
        mean_row.values[0] < mean_row.values[1],
        "HAFT should be cheaper than TMR in the mean: {:?}",
        mean_row.values
    );
    let commits_row =
        tradeoff.rows.iter().find(|r| r.label.contains("HTM commits")).expect("commits row");
    assert_eq!(commits_row.values[1], 0.0, "TMR must not transactify");

    // The rendered REPRODUCTION.md carries every section, table, and a
    // sparkline for every series.
    let md = report.to_markdown();
    for s in &report.sections {
        assert!(md.contains(&s.title), "missing section title: {}", s.title);
        assert!(md.contains(&format!("`report/{}.json`", s.name)), "missing TOC row: {}", s.name);
        for t in &s.result.tables {
            assert!(md.contains(&t.title), "missing table: {}/{}", s.name, t.id);
        }
        for series in &s.result.series {
            assert!(md.contains(&series.title), "missing series: {}/{}", s.name, series.id);
        }
    }
    assert!(md.contains("fast mode"), "the mode banner must name the mode");

    // Snapshots: self-diff clean, JSON round-trip diff clean.
    let snapshots = report.snapshots();
    assert_eq!(snapshots.len(), report.sections.len());
    for snap in &snapshots {
        assert!(diff(snap, snap).is_empty(), "{}: self-diff", snap.section);
        let reparsed = Snapshot::parse(&snap.render())
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}", snap.section));
        let violations = diff(snap, &reparsed);
        assert!(violations.is_empty(), "{}: round-trip drifted: {violations:?}", snap.section);
    }

    // --check catches an out-of-band value: fake a committed snapshot
    // whose pinned number is far outside the band, and one whose number
    // drifted only epsilon (must pass).
    let mut pinned = snapshots[0].clone();
    let fresh = &snapshots[0];
    pinned.tables[0].rows[0].values[0] *= 3.0;
    let violations = diff(&pinned, fresh);
    assert_eq!(violations.len(), 1, "exactly the faked value trips: {violations:?}");
    assert!(violations[0].contains(&pinned.tables[0].rows[0].label), "{violations:?}");

    let mut pinned = snapshots[0].clone();
    pinned.tables[0].rows[0].values[0] *= 1.01;
    assert!(diff(&pinned, fresh).is_empty(), "1% drift sits inside the ±15% band");

    // A fast run never checks against full-mode pins.
    let mut pinned = snapshots[0].clone();
    pinned.mode = Mode::Full;
    let violations = diff(&pinned, fresh);
    assert!(violations[0].contains("mode"), "{violations:?}");
}
