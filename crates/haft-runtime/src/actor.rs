//! One shard actor: a hardened VM with its own virtual clock.
//!
//! Each actor owns a private [`BatchRunner`] — its own clone of the
//! once-hardened module — so batches on different shards really execute
//! concurrently on different cores. Service time is still priced by the
//! simulated cost model ([`haft_vm::PhaseCycles::service_cycles`] over
//! the configured clock), carried on a *per-shard virtual clock*: a batch
//! starts at `max(shard vclock, latest arrival in the batch)` and the
//! shard's clock advances to its completion. That keeps latency and
//! throughput host-independent and comparable with the DES twin, while
//! host wall-clock is measured separately by the pool.

use haft_apps::{golden_reply, Op};
use haft_faults::{classify_requests, RequestCounts, RequestOutcome};
use haft_ir::module::Module;
use haft_ir::rng::Prng;
use haft_serve::report::{FaultReport, FaultTelemetry, ShardStats};
use haft_serve::{BatchRunner, ServeConfig, TRACE_PID_SERVE, TRACE_PID_VM_BASE};
use haft_trace::{TraceBuf, TraceEvent};
use haft_vm::{FaultPlan, RunOutcome, RunSpec, VmConfig};

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::time::Instant;

use crate::traffic::Req;

/// What one batch did, for the pool's progress and closed-loop
/// bookkeeping.
pub struct BatchOutput {
    /// Operations this batch accounted (every op exactly once, including
    /// ones dropped by a crashed run).
    pub ops_accounted: usize,
    /// Virtual times at which client requests finished with this batch —
    /// one entry per completed single request or joined saga; in a closed
    /// loop each frees one client at that time.
    pub freed_vns: Vec<u64>,
}

/// A shard: private module copy, virtual clock, and local accounting
/// that the pool merges into the final [`haft_serve::ServiceReport`].
pub struct ShardActor<'a> {
    runner: BatchRunner<'a>,
    fault_rng: Option<Prng>,
    fault_rate: f64,
    writes_per_req: u64,
    batch_cap: usize,
    clock_ghz: f64,
    dispatch_ns: u64,
    restart_ns: u64,
    /// This shard's virtual clock: completion time of its latest batch.
    pub vclock_ns: u64,
    pub stats: ShardStats,
    /// Per-request latency samples completed *on this shard* (saga joins
    /// land on whichever shard finished last).
    pub samples: Vec<u64>,
    pub counts: RequestCounts,
    /// Partial fault report (everything except merged counts and the
    /// clean-batch mean, which the pool derives).
    pub faults: FaultReport,
    /// Per-interval outcome telemetry on the shard's virtual clock;
    /// allocated iff fault load is attached. The pool merges the shards'
    /// maps — pure counter addition keyed by interval index, so the
    /// result is independent of worker scheduling.
    pub telemetry: Option<FaultTelemetry>,
    pub clean_service_sum: f64,
    pub clean_batches: u64,
    /// Saga joins whose latency sample was withheld because a sub-batch
    /// failed (always counted, traced or not).
    pub suppressed_joins: u64,
    idx: usize,
    /// Event buffer when tracing: virtual-ns timestamps, with the host
    /// wall clock carried as an argument (the dual-clock rule).
    pub trace: Option<TraceBuf>,
    epoch: Option<Instant>,
}

impl<'a> ShardActor<'a> {
    /// Builds the actor for shard `idx`. `writes_per_req` comes from the
    /// pool's one off-traffic calibration batch (shared by all shards,
    /// identical to the DES's estimate).
    ///
    /// The per-shard fault stream is seeded `FaultLoad::seed ^ idx`: with
    /// concurrent shards there is no global batch order for a single
    /// stream to follow, so each shard draws its own. Fault *placement*
    /// therefore differs from the simulation at equal config — rates and
    /// aggregate behaviour match, individual hits do not.
    pub fn new(
        hardened: &Module,
        spec: RunSpec<'a>,
        vm: VmConfig,
        cfg: &ServeConfig,
        idx: usize,
        writes_per_req: u64,
    ) -> Self {
        ShardActor {
            runner: BatchRunner::new(hardened, spec, vm),
            fault_rng: cfg.faults.map(|f| Prng::new(f.seed ^ idx as u64)),
            fault_rate: cfg.faults.map(|f| f.rate_per_request).unwrap_or(0.0),
            writes_per_req,
            batch_cap: cfg.batch.clamp(1, haft_apps::SHARD_CAPACITY),
            clock_ghz: cfg.clock_ghz,
            dispatch_ns: cfg.dispatch_ns,
            restart_ns: cfg.restart_ns,
            vclock_ns: 0,
            stats: ShardStats::default(),
            samples: Vec::new(),
            counts: RequestCounts::default(),
            faults: FaultReport::default(),
            telemetry: cfg.faults.map(|_| FaultTelemetry::default()),
            clean_service_sum: 0.0,
            clean_batches: 0,
            suppressed_joins: 0,
            idx,
            trace: None,
            epoch: None,
        }
    }

    /// Turns on event collection for this shard. `epoch` is the pool's
    /// wall-clock zero, so every virtual-time event can carry the host
    /// time at which it was recorded.
    pub fn enable_trace(&mut self, epoch: Instant) {
        self.trace = Some(TraceBuf::new());
        self.epoch = Some(epoch);
    }

    fn cycles_to_ns(&self, cycles: u64) -> u64 {
        (cycles as f64 / self.clock_ghz) as u64
    }

    fn draw_fault(&mut self, batch_len: usize) -> Option<FaultPlan> {
        let rng = self.fault_rng.as_mut()?;
        let p = (self.fault_rate * batch_len as f64).min(1.0);
        // Same three-variate discipline as the DES: draw unconditionally
        // so the plan stream is independent of earlier hit/miss outcomes.
        let hit = rng.chance(p);
        let occurrence = rng.below(self.writes_per_req * batch_len as u64);
        let xor_mask = rng.next_u64();
        hit.then_some(FaultPlan { occurrence, xor_mask })
    }

    /// Takes the next batch from this shard's inbox: the DES batching
    /// rule, on the virtual clock. The batch opens at
    /// `t0 = max(vclock, front arrival)` — the earliest queued request
    /// always gets in — and admits up to `batch_cap` further requests
    /// that have (virtually) arrived by `t0`. Requests still in the
    /// virtual future stay queued, exactly as the simulation only
    /// batches what is present when a shard goes busy.
    pub fn form_batch(&self, inbox: &mut VecDeque<Req>) -> Vec<Req> {
        let Some(front) = inbox.front() else { return Vec::new() };
        let t0 = self.vclock_ns.max(front.arrival_vns);
        let mut batch = Vec::new();
        while batch.len() < self.batch_cap {
            match inbox.front() {
                Some(r) if r.arrival_vns <= t0 => batch.push(inbox.pop_front().unwrap()),
                _ => break,
            }
        }
        batch
    }

    /// Serves one batch and does all per-request accounting: outcome
    /// counts, latency samples (saga joins sample once, at the join),
    /// fault bookkeeping, shard stats, and the virtual-clock advance.
    pub fn run_one_batch(&mut self, batch: Vec<Req>) -> BatchOutput {
        assert!(!batch.is_empty(), "ran a batch with no requests");
        let ops: Vec<Op> = batch.iter().map(|r| r.op).collect();
        let start =
            self.vclock_ns.max(batch.iter().map(|r| r.arrival_vns).max().expect("non-empty"));

        let plan = self.draw_fault(ops.len());
        let injected = plan.is_some();
        let mut vm_buf = self.trace.as_ref().map(|_| TraceBuf::new());
        let run = match vm_buf.as_mut() {
            Some(buf) => self.runner.run_batch_traced(&ops, plan, buf),
            None => self.runner.run_batch(&ops, plan),
        };
        let service_ns = self.cycles_to_ns(run.phases.service_cycles()) + self.dispatch_ns;
        let golden: Vec<u64> = ops.iter().map(|&o| golden_reply(o)).collect();
        let outcomes = classify_requests(&run, &golden);
        debug_assert!(
            injected || outcomes.iter().all(|&o| o == RequestOutcome::Served),
            "undisturbed batch produced non-served outcomes: {outcomes:?}"
        );

        let crashed = run.outcome != RunOutcome::Completed;
        let completion = start + service_ns + if crashed { self.restart_ns } else { 0 };

        if let Some(mut buf) = vm_buf {
            let wall_ns = self.epoch.expect("trace implies epoch").elapsed().as_nanos() as u64;
            let scale = 1.0 / self.clock_ghz;
            let tr = self.trace.as_mut().expect("vm buffer implies trace");
            tr.push(
                TraceEvent::span("serve", "batch.service", start, service_ns)
                    .lane(TRACE_PID_SERVE, self.idx as u32)
                    .arg("requests", ops.len())
                    .arg("wall_ns", wall_ns),
            );
            if crashed {
                tr.push(
                    TraceEvent::span("serve", "shard.restart", start + service_ns, self.restart_ns)
                        .lane(TRACE_PID_SERVE, self.idx as u32),
                );
            }
            // Splice the batch's VM/HTM events (raw cycles) onto the
            // virtual-ns timeline, one lane per shard.
            for mut ev in buf.take() {
                ev.rescale(scale, start);
                ev.pid = TRACE_PID_VM_BASE + self.idx as u32;
                tr.push(ev);
            }
        }

        let mut freed_vns = Vec::with_capacity(batch.len());
        for (req, &o) in batch.iter().zip(&outcomes) {
            self.counts.record(o);
            if let Some(t) = self.telemetry.as_mut() {
                t.record(completion, o);
            }
            match &req.saga {
                None => {
                    if o != RequestOutcome::Failed {
                        self.samples.push(completion - req.arrival_vns);
                    }
                    freed_vns.push(completion);
                }
                Some(saga) => {
                    if o == RequestOutcome::Failed {
                        saga.failed.store(true, Ordering::Release);
                    }
                    if let Some(join_vns) = saga.complete_one(completion) {
                        let suppressed = saga.failed.load(Ordering::Acquire);
                        if suppressed {
                            self.suppressed_joins += 1;
                        } else {
                            self.samples.push(join_vns - saga.arrival_vns);
                        }
                        if let Some(tr) = self.trace.as_mut() {
                            let name = if suppressed { "join.suppressed" } else { "join" };
                            tr.push(
                                TraceEvent::instant("saga", name, join_vns)
                                    .lane(TRACE_PID_SERVE, self.idx as u32)
                                    .arg("latency_vns", join_vns - saga.arrival_vns),
                            );
                        }
                        freed_vns.push(join_vns);
                    }
                }
            }
        }

        if injected {
            self.faults.injected_batches += 1;
            if crashed {
                self.faults.crashed_batches += 1;
            } else if run.recoveries > 0 || run.corrected_by_vote > 0 {
                self.faults.corrected_batches += 1;
                self.faults.max_corrected_service_ns =
                    self.faults.max_corrected_service_ns.max(service_ns);
            }
        } else if !crashed {
            self.clean_service_sum += service_ns as f64;
            self.clean_batches += 1;
        }

        self.stats.batches += 1;
        self.stats.busy_ns += completion - start;
        if crashed {
            self.stats.crashes += 1;
        } else {
            self.stats.requests += batch.len() as u64;
        }
        self.vclock_ns = completion;

        BatchOutput { ops_accounted: batch.len(), freed_vns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haft_apps::{kv_shard, KvSync, WorkloadMix, YcsbGen};

    #[test]
    fn batch_formation_respects_virtual_arrivals() {
        let w = kv_shard(KvSync::Atomics);
        let cfg = ServeConfig { batch: 4, ..Default::default() };
        let a = ShardActor::new(&w.module, w.run_spec(), VmConfig::default(), &cfg, 0, 1);
        let mut gen = YcsbGen::new(3, 100);
        let mk = |op, t| Req { op, arrival_vns: t, saga: None };
        let ops = gen.generate(WorkloadMix::B, 4);
        // Front arrived at 50; 60 is in by t0 = max(0, 50)? No: 60 > 50
        // stays queued; 40 <= 50 is admitted.
        let mut inbox: VecDeque<Req> =
            vec![mk(ops[0], 50), mk(ops[1], 40), mk(ops[2], 60), mk(ops[3], 45)].into();
        let batch = a.form_batch(&mut inbox);
        assert_eq!(batch.len(), 2, "60 ns arrival is in the virtual future at t0 = 50");
        assert_eq!(inbox.len(), 2);
    }

    #[test]
    fn served_batches_advance_the_clock_and_sample_latency() {
        let w = kv_shard(KvSync::Atomics);
        let cfg = ServeConfig::default();
        let mut a = ShardActor::new(&w.module, w.run_spec(), VmConfig::default(), &cfg, 0, 1);
        let mut gen = YcsbGen::new(9, 100);
        let ops = gen.generate(WorkloadMix::B, 3);
        let batch: Vec<Req> =
            ops.iter().map(|&op| Req { op, arrival_vns: 100, saga: None }).collect();
        let out = a.run_one_batch(batch);
        assert_eq!(out.ops_accounted, 3);
        assert_eq!(out.freed_vns.len(), 3);
        assert_eq!(a.counts.served, 3);
        assert_eq!(a.samples.len(), 3);
        assert!(a.vclock_ns > 100, "clock advanced past the arrival");
        assert_eq!(a.stats.requests, 3);
        assert_eq!(a.stats.batches, 1);
        // All requests in one batch complete together.
        assert!(out.freed_vns.iter().all(|&t| t == a.vclock_ns));
        assert_eq!(a.samples[0], a.vclock_ns - 100);
    }

    #[test]
    fn failed_saga_joins_are_counted_not_silently_dropped() {
        use crate::traffic::Saga;
        use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};
        use std::sync::Arc;

        let w = kv_shard(KvSync::Atomics);
        let cfg = ServeConfig::default();
        let mut a = ShardActor::new(&w.module, w.run_spec(), VmConfig::default(), &cfg, 0, 1);
        let mut gen = YcsbGen::new(4, 100);
        let ops = gen.generate(WorkloadMix::B, 2);

        // Saga 1: a sub-batch on another shard already failed — the join
        // here must free the client but withhold the latency sample and
        // count the suppression.
        let failed = Arc::new(Saga {
            remaining: AtomicUsize::new(1),
            latest_vns: AtomicU64::new(0),
            failed: AtomicBool::new(true),
            arrival_vns: 10,
        });
        // Saga 2: clean — joins normally and samples once.
        let clean = Arc::new(Saga {
            remaining: AtomicUsize::new(1),
            latest_vns: AtomicU64::new(0),
            failed: AtomicBool::new(false),
            arrival_vns: 10,
        });
        let batch = vec![
            Req { op: ops[0], arrival_vns: 10, saga: Some(failed) },
            Req { op: ops[1], arrival_vns: 10, saga: Some(clean) },
        ];
        let out = a.run_one_batch(batch);
        assert_eq!(a.suppressed_joins, 1, "the failed join must be counted");
        assert_eq!(a.samples.len(), 1, "only the clean join samples latency");
        assert_eq!(out.freed_vns.len(), 2, "both joins free their clients");
    }
}
