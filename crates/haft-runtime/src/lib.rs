//! `haft-runtime` — hardened backends on real threads.
//!
//! The `haft-serve` discrete-event simulation prices a fleet of shard
//! VMs on one host thread; this crate *runs* the same fleet: N shard
//! actors — each owning its own VM over its own clone of the
//! once-hardened module — scheduled across a work-stealing pool of OS
//! threads ([`pool::Pool`]). Requests flow through the same arrival /
//! router / batching model into per-shard inboxes; cross-shard
//! multi-key requests split into per-key sub-operations and join as
//! sagas ([`traffic::Saga`]); completed batches price their service
//! time with the same [`haft_vm::PhaseCycles`] cost model and feed the
//! same [`ServiceReport`] schema.
//!
//! # The DES is the deterministic twin
//!
//! Both modes take one [`ServeConfig`] and emit one [`ServiceReport`].
//! The simulation is bit-reproducible and generates every pinned table;
//! the native runtime is subject to thread timing (batch composition,
//! steal order), so its cycle-priced numbers *track* the simulation
//! within a tolerance band — pinned by this crate's twin-validation
//! test — rather than matching bit-for-bit. Wall-clock throughput, the
//! one thing only real threads can measure, is reported separately in
//! [`haft_serve::WallReport`] and never pinned.

pub mod actor;
pub mod pool;
pub mod traffic;

use std::time::Instant;

use haft_apps::{YcsbGen, KV_KEYSPACE, SHARD_CAPACITY};
use haft_ir::module::Module;
use haft_serve::report::{FaultReport, WallReport};
use haft_serve::{ArrivalMode, BatchRunner, LatencyStats, ServeConfig, ServiceReport};
use haft_trace::TraceBuf;
use haft_vm::{RunOutcome, RunSpec, VmConfig};

pub use actor::ShardActor;
pub use pool::{ActorSlot, Pool};
pub use traffic::{Req, Saga, TrafficSource};

/// Knobs for [`run_native_opts`] beyond the plain worker count.
#[derive(Clone, Copy, Debug)]
pub struct NativeOpts {
    /// OS threads in the work-stealing pool (clamped to ≥ 1).
    pub workers: usize,
    /// When set, workers sprinkle seeded `yield_now` calls at scheduling
    /// decision points — the release-mode interleaving shaker used by
    /// the stress tests. `None` (the default) costs nothing.
    pub shake_seed: Option<u64>,
}

impl Default for NativeOpts {
    fn default() -> Self {
        NativeOpts { workers: 1, shake_seed: None }
    }
}

/// Serves `cfg.requests` of generated traffic through `cfg.shards` shard
/// actors on a work-stealing pool of `workers` OS threads — the
/// real-thread counterpart of [`haft_serve::run_service`], taking the
/// identical arguments and returning the identical report schema (plus
/// [`WallReport`]).
///
/// With `workers = 1` the run is deterministic (one thread serializes
/// every scheduling decision); with more workers, thread timing varies
/// batch composition and the report is reproducible only in
/// distribution.
///
/// # Panics
///
/// Same degenerate-configuration panics as [`haft_serve::run_service`].
pub fn run_native(
    module: &Module,
    spec: RunSpec<'_>,
    vm: VmConfig,
    label: impl Into<String>,
    cfg: &ServeConfig,
    workers: usize,
) -> ServiceReport {
    run_native_opts(module, spec, vm, label, cfg, NativeOpts { workers, shake_seed: None })
}

/// [`run_native`] with the full option set.
pub fn run_native_opts(
    module: &Module,
    spec: RunSpec<'_>,
    vm: VmConfig,
    label: impl Into<String>,
    cfg: &ServeConfig,
    opts: NativeOpts,
) -> ServiceReport {
    run_native_impl(module, spec, vm, label, cfg, opts, None)
}

/// [`run_native_opts`] with trace collection: scheduling events (steals,
/// actor drains, saga splits) on the host wall clock, batch/saga/VM/HTM
/// events on the virtual clock — each carrying the other clock as an
/// argument. Events land in `buf`; the report itself is assembled exactly
/// as in an untraced run.
pub fn run_native_traced(
    module: &Module,
    spec: RunSpec<'_>,
    vm: VmConfig,
    label: impl Into<String>,
    cfg: &ServeConfig,
    opts: NativeOpts,
    buf: &mut TraceBuf,
) -> ServiceReport {
    run_native_impl(module, spec, vm, label, cfg, opts, Some(buf))
}

fn run_native_impl(
    module: &Module,
    spec: RunSpec<'_>,
    vm: VmConfig,
    label: impl Into<String>,
    cfg: &ServeConfig,
    opts: NativeOpts,
    trace: Option<&mut TraceBuf>,
) -> ServiceReport {
    assert!(cfg.requests > 0, "a service run needs at least one request");
    assert!(cfg.shards > 0, "a service run needs at least one shard");
    assert!(spec.worker.is_some() && spec.fini.is_some(), "shard spec needs worker and fini");
    assert!(cfg.clock_ghz > 0.0, "clock must be positive");
    let workers = opts.workers.max(1);
    let total = cfg.requests;
    let batch_cap = cfg.batch.clamp(1, SHARD_CAPACITY);

    // Same writes-per-request calibration as the DES — one off-traffic
    // batch on a throwaway runner, so fault occurrences can be drawn
    // uniformly over a batch's dynamic trace.
    let writes_per_req = if cfg.faults.is_some() {
        let mut runner = BatchRunner::new(module, spec, vm.clone());
        let mut cal_gen = YcsbGen::new(cfg.seed ^ 0xCA11_B007, KV_KEYSPACE);
        let cal_ops = cal_gen.generate(cfg.mix, batch_cap);
        let cal = runner.run_batch(&cal_ops, None);
        assert_eq!(cal.outcome, RunOutcome::Completed, "calibration batch must complete");
        (cal.register_writes / batch_cap as u64).max(1)
    } else {
        1
    };

    let epoch = trace.as_ref().map(|_| Instant::now());
    let slots: Vec<ActorSlot> = (0..cfg.shards)
        .map(|i| {
            let mut actor = ShardActor::new(module, spec, vm.clone(), cfg, i, writes_per_req);
            if let Some(e) = epoch {
                actor.enable_trace(e);
            }
            ActorSlot::new(actor)
        })
        .collect();
    let mut traffic = TrafficSource::new(cfg.seed, KV_KEYSPACE, cfg.mix, total, cfg.sagas);
    if epoch.is_some() {
        traffic.enable_trace();
    }
    let mut pool = Pool::new(slots, cfg, traffic, workers, opts.shake_seed, epoch);

    // Seed the arrival process (virtual timestamps; matches the DES).
    match cfg.arrival {
        ArrivalMode::OpenLoop { rate_rps } => {
            let mut poisson = haft_serve::PoissonArrivals::new(cfg.seed ^ 0x0A88_17A1, rate_rps);
            while !pool.traffic_exhausted() {
                let t = poisson.next_ns();
                let issued = pool.issue_group_at(t, None);
                // One Poisson draw per *operation* keeps the arrival
                // stream aligned with the simulation, which issues every
                // operation individually; a multi-key group arrives at
                // its first draw and consumes the rest.
                for _ in 1..issued {
                    poisson.next_ns();
                }
            }
        }
        ArrivalMode::ClosedLoop { clients, .. } => {
            for _ in 0..clients.max(1) {
                if pool.issue_group_at(0, None) == 0 {
                    break;
                }
            }
        }
    }

    let t0 = Instant::now();
    pool.run(workers);
    let wall_ns = (t0.elapsed().as_nanos() as u64).max(1);

    let steals = pool.steals();
    let pool_events = if trace.is_some() { pool.take_trace() } else { Vec::new() };
    let mut actors = pool.into_actors();
    if let Some(buf) = trace {
        buf.events.extend(pool_events);
        for a in &mut actors {
            if let Some(mut t) = a.trace.take() {
                buf.events.append(&mut t.events);
            }
        }
    }
    assemble_report(actors, label.into(), cfg, workers, wall_ns, steals)
}

/// Merges per-shard accounting into the shared [`ServiceReport`] schema.
fn assemble_report(
    actors: Vec<ShardActor<'_>>,
    label: String,
    cfg: &ServeConfig,
    workers: usize,
    wall_ns: u64,
    steals: u64,
) -> ServiceReport {
    let mut counts = haft_faults::RequestCounts::default();
    let mut samples = Vec::new();
    let mut shards = Vec::with_capacity(actors.len());
    let mut faults = FaultReport::default();
    let mut telemetry: Option<haft_serve::FaultTelemetry> = None;
    let mut clean_sum = 0.0;
    let mut clean_batches = 0u64;
    let mut batches = 0u64;
    let mut duration_ns = 0u64;
    let mut suppressed_joins = 0u64;
    for a in actors {
        counts.merge(&a.counts);
        samples.extend(a.samples);
        batches += a.stats.batches;
        duration_ns = duration_ns.max(a.vclock_ns);
        shards.push(a.stats);
        faults.injected_batches += a.faults.injected_batches;
        faults.crashed_batches += a.faults.crashed_batches;
        faults.corrected_batches += a.faults.corrected_batches;
        faults.max_corrected_service_ns =
            faults.max_corrected_service_ns.max(a.faults.max_corrected_service_ns);
        clean_sum += a.clean_service_sum;
        clean_batches += a.clean_batches;
        suppressed_joins += a.suppressed_joins;
        if let Some(t) = &a.telemetry {
            telemetry.get_or_insert_with(Default::default).merge(t);
        }
    }
    assert_eq!(
        counts.total(),
        cfg.requests as u64,
        "per-request outcome counts must sum to the offered request total"
    );
    let served = counts.total() - counts.failed;
    faults.counts = counts;
    faults.mean_clean_service_ns =
        if clean_batches == 0 { 0.0 } else { clean_sum / clean_batches as f64 };
    ServiceReport {
        label,
        requests_offered: counts.total(),
        requests_served: served,
        duration_ns,
        offered_rps: match cfg.arrival {
            ArrivalMode::OpenLoop { rate_rps } => Some(rate_rps),
            ArrivalMode::ClosedLoop { .. } => None,
        },
        achieved_rps: if duration_ns == 0 { 0.0 } else { served as f64 * 1e9 / duration_ns as f64 },
        latency: LatencyStats::from_samples(samples),
        batches,
        shards,
        faults: cfg.faults.map(|_| faults),
        fault_telemetry: telemetry,
        suppressed_joins,
        wall: Some(WallReport {
            workers,
            duration_ns: wall_ns,
            achieved_rps: served as f64 * 1e9 / wall_ns as f64,
            steals,
        }),
    }
}

// The pool shares borrowed module/spec data across scoped threads; these
// assertions pin the Send/Sync audit at compile time.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_sync::<Pool<'static>>();
    assert_send::<ShardActor<'static>>();
    assert_send::<Req>();
    assert_sync::<Saga>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use haft_apps::{kv_shard, KvSync};
    use haft_serve::run_service;

    fn small_cfg() -> ServeConfig {
        ServeConfig { requests: 200, shards: 3, batch: 8, ..Default::default() }
    }

    #[test]
    fn native_single_worker_accounts_every_request() {
        let w = kv_shard(KvSync::Atomics);
        let cfg = small_cfg();
        let r = run_native(&w.module, w.run_spec(), VmConfig::default(), "native", &cfg, 1);
        assert_eq!(r.requests_offered, 200);
        assert_eq!(r.requests_served, 200);
        assert_eq!(r.latency.count, 200);
        assert_eq!(r.shards.len(), 3);
        assert_eq!(r.shards.iter().map(|s| s.requests).sum::<u64>(), 200);
        let wall = r.wall.expect("native mode fills the wall report");
        assert_eq!(wall.workers, 1);
        assert!(wall.duration_ns > 0 && wall.achieved_rps > 0.0);
    }

    #[test]
    fn native_tracks_the_sim_twin_on_cycle_priced_throughput() {
        let w = kv_shard(KvSync::Atomics);
        let cfg = small_cfg();
        let sim = run_service(&w.module, w.run_spec(), VmConfig::default(), "sim", &cfg);
        let nat = run_native(&w.module, w.run_spec(), VmConfig::default(), "native", &cfg, 1);
        assert_eq!(nat.requests_served, sim.requests_served);
        // Batch counts track but need not match: the worker drains a
        // shard's inbox in one go while the DES interleaves arrivals
        // event-by-event, so coalescing differs slightly.
        let batch_ratio = nat.batches as f64 / sim.batches as f64;
        assert!((0.5..=2.0).contains(&batch_ratio), "batching diverged: {batch_ratio:.3}");
        let ratio = nat.achieved_rps / sim.achieved_rps;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "native cycle-priced throughput diverged from the twin: {ratio:.3}"
        );
    }

    #[test]
    fn sagas_join_across_shards_and_preserve_the_op_budget() {
        let w = kv_shard(KvSync::Atomics);
        let cfg =
            ServeConfig { sagas: Some(haft_serve::SagaLoad { every: 2, span: 3 }), ..small_cfg() };
        let r = run_native(&w.module, w.run_spec(), VmConfig::default(), "saga", &cfg, 1);
        assert_eq!(r.requests_offered, 200, "budget counts operations, sagas or not");
        assert_eq!(r.requests_served, 200);
        assert!(
            r.latency.count < 200,
            "joined sagas sample once per multi-key request, got {}",
            r.latency.count
        );
        assert!(r.latency.count > 0);
    }

    #[test]
    fn open_loop_native_completes_and_prices_latency() {
        let w = kv_shard(KvSync::Atomics);
        let cfg =
            ServeConfig { arrival: ArrivalMode::OpenLoop { rate_rps: 50_000.0 }, ..small_cfg() };
        let r = run_native(&w.module, w.run_spec(), VmConfig::default(), "open", &cfg, 2);
        assert_eq!(r.requests_served, 200);
        assert_eq!(r.offered_rps, Some(50_000.0));
        assert!(r.latency.p50_ns > 0);
    }

    #[test]
    fn native_faults_account_every_request() {
        let w = kv_shard(KvSync::Atomics);
        let cfg = ServeConfig {
            requests: 300,
            faults: Some(haft_serve::FaultLoad { rate_per_request: 0.02, seed: 77 }),
            ..small_cfg()
        };
        let r = run_native(&w.module, w.run_spec(), VmConfig::default(), "faulty", &cfg, 2);
        let f = r.faults.expect("fault load attached");
        assert_eq!(f.counts.total(), 300);
        assert_eq!(r.requests_served, 300 - f.counts.failed);
        assert_eq!(r.latency.count, r.requests_served);
        // Telemetry merged across shards accounts the same totals, on the
        // same schema the simulation uses.
        let t = r.fault_telemetry.expect("telemetry attached with fault load");
        assert_eq!(t.intervals.values().map(|c| c.total()).sum::<u64>(), 300);
        assert_eq!(t.intervals.values().map(|c| c.sdc).sum::<u64>(), f.counts.sdc);
        let ewma = t.fault_rate_ewma(haft_serve::report::TELEMETRY_EWMA_ALPHA);
        assert!((0.0..=1.0).contains(&ewma));
    }
}
