//! The work-stealing pool: shard actors scheduled over OS threads.
//!
//! The scheduler is the classic actor shape (souvenir's `Scheduler`,
//! SNIPPETS.md §1): each shard is an *actor* with an MPSC inbox and a
//! three-state lifecycle —
//!
//! * `IDLE` — inbox empty (or believed empty), owned by nobody;
//! * `QUEUED` — has work and sits in exactly one runnable deque;
//! * `RUNNING` — a worker holds it and is draining its inbox.
//!
//! Every worker owns a deque of runnable shard ids: it pops from the
//! front, and when empty steals *half* a victim's deque from the back
//! (cold end), falling back to a global injector that seeding and
//! non-worker producers push to. Workers with nothing to do park on a
//! condvar with a short timeout, so a missed notify costs a millisecond,
//! never liveness.
//!
//! The state machine closes the classic lost-wakeup race: a producer
//! pushes to the inbox *first*, then tries `IDLE → QUEUED` (enqueueing
//! the actor only on success); a worker finishing a drain stores
//! `RUNNING → IDLE` and then *re-checks the inbox*, re-queueing itself if
//! a push slipped in between. An actor can therefore be over-queued by
//! one spurious wakeup but never under-queued, and the `QUEUED → RUNNING`
//! CAS guarantees a single worker drains it at a time (asserted via
//! `try_lock` on the actor).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use haft_serve::{ArrivalMode, RouterPolicy, ServeConfig, TRACE_PID_POOL};
use haft_trace::{Ring, TraceEvent, TraceSink};

use crate::actor::ShardActor;
use crate::traffic::{Req, TrafficSource};

const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;

/// Bounded per-worker trace ring: recent scheduling history wins over
/// completeness, so a hot worker can never grow the trace without bound.
const WORKER_RING_CAP: usize = 1 << 14;

/// One shard actor plus its scheduling state and inbox.
pub struct ActorSlot<'a> {
    state: AtomicU8,
    inbox: Mutex<VecDeque<Req>>,
    actor: Mutex<ShardActor<'a>>,
}

impl<'a> ActorSlot<'a> {
    pub fn new(actor: ShardActor<'a>) -> Self {
        ActorSlot {
            state: AtomicU8::new(IDLE),
            inbox: Mutex::new(VecDeque::new()),
            actor: Mutex::new(actor),
        }
    }
}

/// Deterministic interleaving shaker (splitmix64): sprinkled
/// `yield_now` calls at scheduling decision points so the release-mode
/// stress test explores far more interleavings than free-running threads
/// would. Off (`None` seed) in normal runs — zero overhead.
struct Shaker {
    state: u64,
}

impl Shaker {
    fn new(seed: u64) -> Self {
        Shaker { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn poke(&mut self) {
        if self.next().is_multiple_of(4) {
            std::thread::yield_now();
        }
    }
}

/// The shared pool state: slots, runnable deques, traffic, progress.
pub struct Pool<'a> {
    slots: Vec<ActorSlot<'a>>,
    /// Per-worker runnable deques (owner pops front, thieves steal from
    /// the back).
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Runnable actors pushed from outside any worker (initial seeding).
    injector: Mutex<VecDeque<usize>>,
    traffic: Mutex<TrafficSource>,
    /// `Some(think_ns)` when the arrival process is a closed loop and
    /// batch completions must re-issue their freed clients.
    closed_think_ns: Option<u64>,
    router: RouterPolicy,
    route_seq: AtomicU64,
    /// Operations fully accounted (batched and classified).
    accounted: AtomicU64,
    total: u64,
    done: AtomicBool,
    park: Mutex<()>,
    cond: Condvar,
    shake_seed: Option<u64>,
    /// Actor ids taken from a victim's deque — always counted, so
    /// `pool.steals` costs one relaxed add whether or not tracing is on.
    steals: AtomicU64,
    /// Wall-clock zero for trace timestamps; `Some` turns worker event
    /// collection on.
    trace_epoch: Option<Instant>,
    /// Worker rings drain here when their worker exits (never on the hot
    /// path, so workers share no trace state while running).
    collected: Mutex<Vec<TraceEvent>>,
}

impl<'a> Pool<'a> {
    pub fn new(
        slots: Vec<ActorSlot<'a>>,
        cfg: &ServeConfig,
        traffic: TrafficSource,
        workers: usize,
        shake_seed: Option<u64>,
        trace_epoch: Option<Instant>,
    ) -> Self {
        assert!(!slots.is_empty() && workers >= 1);
        Pool {
            slots,
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            traffic: Mutex::new(traffic),
            closed_think_ns: match cfg.arrival {
                ArrivalMode::ClosedLoop { think_ns, .. } => Some(think_ns),
                ArrivalMode::OpenLoop { .. } => None,
            },
            router: cfg.router,
            route_seq: AtomicU64::new(0),
            accounted: AtomicU64::new(0),
            total: cfg.requests as u64,
            done: AtomicBool::new(false),
            park: Mutex::new(()),
            cond: Condvar::new(),
            shake_seed,
            steals: AtomicU64::new(0),
            trace_epoch,
            collected: Mutex::new(Vec::new()),
        }
    }

    /// Actor ids stolen from victim deques over the pool's lifetime.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Acquire)
    }

    /// Drains every scheduling event collected so far: worker rings
    /// (merged when each worker exited) plus the traffic source's saga
    /// split events. Call after [`Self::run`] returns.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        let mut events = std::mem::take(&mut *self.collected.lock().unwrap());
        if let Some(buf) = self.traffic.lock().unwrap().trace.as_mut() {
            events.append(&mut buf.events);
        }
        events
    }

    /// True once the traffic budget is fully drawn.
    pub fn traffic_exhausted(&self) -> bool {
        self.traffic.lock().unwrap().exhausted()
    }

    /// Draws the next client request group at virtual time `at_vns` and
    /// routes its sub-operations. Returns the number of operations
    /// issued (0 when the budget is exhausted). `from_worker` targets the
    /// wakeup at the issuing worker's own deque for locality; `None`
    /// (seeding) goes through the injector.
    pub fn issue_group_at(&self, at_vns: u64, from_worker: Option<usize>) -> usize {
        let group = self.traffic.lock().unwrap().next_group(at_vns);
        let n = group.len();
        for req in group {
            self.enqueue(req, from_worker);
        }
        n
    }

    /// Routes one request to its home shard's inbox and makes the shard
    /// runnable if it was idle. Push-then-CAS order is what makes the
    /// wakeup race benign (see module docs).
    fn enqueue(&self, req: Req, from_worker: Option<usize>) {
        let seq = self.route_seq.fetch_add(1, Ordering::Relaxed);
        let shard = self.router.route(req.op, seq, self.slots.len());
        let slot = &self.slots[shard];
        slot.inbox.lock().unwrap().push_back(req);
        if slot.state.compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire).is_ok() {
            match from_worker {
                Some(w) => self.deques[w].lock().unwrap().push_back(shard),
                None => self.injector.lock().unwrap().push_back(shard),
            }
            self.cond.notify_one();
        }
    }

    /// Finds the next runnable shard for worker `w`: own deque front,
    /// then the injector, then steal half of a victim's deque from the
    /// back.
    fn find_work(&self, w: usize, ring: &mut Option<Ring>) -> Option<usize> {
        if let Some(s) = self.deques[w].lock().unwrap().pop_front() {
            return Some(s);
        }
        if let Some(s) = self.injector.lock().unwrap().pop_front() {
            return Some(s);
        }
        let n = self.deques.len();
        for i in 1..n {
            let victim = (w + i) % n;
            let mut stolen = {
                let mut v = self.deques[victim].lock().unwrap();
                let take = v.len().div_ceil(2);
                let mut got = Vec::with_capacity(take);
                for _ in 0..take {
                    if let Some(s) = v.pop_back() {
                        got.push(s);
                    }
                }
                got
            };
            if let Some(first) = stolen.pop() {
                let n_stolen = (stolen.len() + 1) as u64;
                self.steals.fetch_add(n_stolen, Ordering::Relaxed);
                if let (Some(r), Some(epoch)) = (ring.as_mut(), self.trace_epoch) {
                    r.push(
                        TraceEvent::instant("pool", "steal", epoch.elapsed().as_nanos() as u64)
                            .lane(TRACE_PID_POOL, w as u32)
                            .arg("victim", victim)
                            .arg("actors", n_stolen),
                    );
                }
                let mut own = self.deques[w].lock().unwrap();
                own.extend(stolen);
                return Some(first);
            }
        }
        None
    }

    /// Drains one runnable shard: `QUEUED → RUNNING`, run batches until
    /// the inbox is (momentarily) empty, `RUNNING → IDLE`, then the
    /// lost-wakeup recheck.
    fn service(
        &self,
        shard: usize,
        w: usize,
        shaker: &mut Option<Shaker>,
        ring: &mut Option<Ring>,
    ) {
        let t_start = self.trace_epoch.map(|e| e.elapsed().as_nanos() as u64);
        let mut drained = 0u64;
        let slot = &self.slots[shard];
        slot.state
            .compare_exchange(QUEUED, RUNNING, Ordering::AcqRel, Ordering::Acquire)
            .expect("scheduled actor must be QUEUED");
        let mut actor =
            slot.actor.try_lock().expect("RUNNING transition guarantees exclusive ownership");

        loop {
            if let Some(sh) = shaker.as_mut() {
                sh.poke();
            }
            let batch = {
                let mut inbox = slot.inbox.lock().unwrap();
                actor.form_batch(&mut inbox)
            };
            if batch.is_empty() {
                break;
            }
            let out = actor.run_one_batch(batch);
            drained += 1;
            if let Some(think_ns) = self.closed_think_ns {
                for &t in &out.freed_vns {
                    self.issue_group_at(t + think_ns, Some(w));
                }
            }
            let acc = self.accounted.fetch_add(out.ops_accounted as u64, Ordering::AcqRel)
                + out.ops_accounted as u64;
            assert!(acc <= self.total, "accounted more operations than were offered");
            if acc == self.total {
                self.done.store(true, Ordering::Release);
                self.cond.notify_all();
            }
        }

        let vclock_vns = actor.vclock_ns;
        drop(actor);
        if let (Some(r), Some(t0)) = (ring.as_mut(), t_start) {
            // The RUNNING window on the wall clock, with the actor's
            // virtual clock carried as an argument (dual-clock rule).
            let now = self.trace_epoch.expect("t_start implies epoch").elapsed().as_nanos() as u64;
            r.push(
                TraceEvent::span("pool", "actor.run", t0, now.saturating_sub(t0))
                    .lane(TRACE_PID_POOL, w as u32)
                    .arg("shard", shard)
                    .arg("batches", drained)
                    .arg("vclock_vns", vclock_vns),
            );
        }
        slot.state.store(IDLE, Ordering::Release);
        // Lost-wakeup guard: a producer may have pushed between our empty
        // form_batch and the IDLE store, and lost its CAS against our
        // RUNNING state. Recheck and requeue ourselves.
        if !slot.inbox.lock().unwrap().is_empty()
            && slot
                .state
                .compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            self.deques[w].lock().unwrap().push_back(shard);
            self.cond.notify_one();
        }
    }

    fn park(&self) {
        let guard = self.park.lock().unwrap();
        if self.done.load(Ordering::Acquire) {
            return;
        }
        // Timeout bounds the cost of any missed notify to ~1 ms.
        let _ = self.cond.wait_timeout(guard, Duration::from_millis(1)).unwrap();
    }

    fn worker_loop(&self, w: usize) {
        let mut shaker = self.shake_seed.map(|s| Shaker::new(s ^ (w as u64).wrapping_mul(0xA5)));
        let mut ring = self.trace_epoch.map(|_| Ring::new(WORKER_RING_CAP));
        while !self.done.load(Ordering::Acquire) {
            if let Some(sh) = shaker.as_mut() {
                sh.poke();
            }
            match self.find_work(w, &mut ring) {
                Some(shard) => self.service(shard, w, &mut shaker, &mut ring),
                None => self.park(),
            }
        }
        if let Some(r) = ring {
            let (mut events, dropped) = r.into_events();
            if dropped > 0 {
                let now = self.trace_epoch.unwrap().elapsed().as_nanos() as u64;
                events.push(
                    TraceEvent::instant("pool", "ring.dropped", now)
                        .lane(TRACE_PID_POOL, w as u32)
                        .arg("dropped", dropped),
                );
            }
            self.collected.lock().unwrap().extend(events);
        }
    }

    /// Runs the pool to completion on `workers` scoped OS threads:
    /// returns once every offered operation has been batched, executed,
    /// and classified.
    pub fn run(&self, workers: usize) {
        assert_eq!(workers, self.deques.len());
        std::thread::scope(|scope| {
            for w in 0..workers {
                scope.spawn(move || self.worker_loop(w));
            }
        });
        assert_eq!(
            self.accounted.load(Ordering::Acquire),
            self.total,
            "pool exited before accounting every operation"
        );
    }

    /// Consumes the pool and hands back the shard actors for report
    /// assembly.
    pub fn into_actors(self) -> Vec<ShardActor<'a>> {
        assert!(self.done.load(Ordering::Acquire), "pool not run to completion");
        self.slots.into_iter().map(|s| s.actor.into_inner().unwrap()).collect()
    }
}
