//! The shared traffic source: one seeded YCSB stream feeding every
//! worker, plus the saga split/join bookkeeping.
//!
//! Requests are drawn from the *same* generator the discrete-event twin
//! uses — one [`YcsbGen`] draw per operation, in issue order — so the
//! multiset of operations a native run serves is drawn from the identical
//! stream. What the runtime cannot reproduce is the *assignment* of draws
//! to clients: whichever worker frees a client first takes the next draw,
//! so the mapping (and therefore batch composition) depends on thread
//! timing. That is exactly the deterministic-twin contract: same work,
//! tolerance-band-equal curves, not bit-equal reports.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use haft_apps::{Op, WorkloadMix, YcsbGen};
use haft_serve::SagaLoad;
use haft_trace::{TraceBuf, TraceEvent};

/// One routed sub-operation travelling to a shard's inbox.
#[derive(Clone, Debug)]
pub struct Req {
    /// The operation to serve.
    pub op: Op,
    /// Virtual arrival time: when the issuing client handed the request
    /// to the router, on the simulated clock.
    pub arrival_vns: u64,
    /// Join state when this sub-operation belongs to a multi-key
    /// request; `None` for ordinary single-key requests.
    pub saga: Option<Arc<Saga>>,
}

/// Join state for one multi-key request (the saga): sub-operations are
/// served independently by their home shards, and the request completes
/// — one latency sample, one freed client — when the *last* sub-operation
/// finishes.
#[derive(Debug)]
pub struct Saga {
    /// Sub-operations still in flight.
    pub remaining: AtomicUsize,
    /// Latest sub-operation completion seen so far (virtual ns); the
    /// join time once `remaining` hits zero.
    pub latest_vns: AtomicU64,
    /// Set when any sub-operation died with a crashed batch: the joined
    /// request still frees its client (the client saw an error and
    /// retries) but contributes no latency sample, matching the DES
    /// excluding `Failed` requests from the distribution.
    pub failed: AtomicBool,
    /// When the client issued the multi-key request.
    pub arrival_vns: u64,
}

impl Saga {
    /// Records one sub-operation completion at `completion_vns`. Returns
    /// the join time if this was the last one, `None` otherwise.
    pub fn complete_one(&self, completion_vns: u64) -> Option<u64> {
        self.latest_vns.fetch_max(completion_vns, Ordering::AcqRel);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            Some(self.latest_vns.load(Ordering::Acquire))
        } else {
            None
        }
    }
}

/// The budgeted request stream, shared (behind a mutex) by every worker.
pub struct TrafficSource {
    gen: YcsbGen,
    mix: WorkloadMix,
    sagas: Option<SagaLoad>,
    /// Operations drawn so far (the budget is in operations, matching
    /// the DES's `ServeConfig::requests`).
    issued: usize,
    /// Client request groups issued (a saga counts once).
    groups: usize,
    total: usize,
    /// Saga-split events when tracing (virtual-ns timestamps); the
    /// traffic mutex already serializes access, so no extra locking.
    pub trace: Option<TraceBuf>,
}

impl TrafficSource {
    pub fn new(
        seed: u64,
        keyspace: u64,
        mix: WorkloadMix,
        total: usize,
        sagas: Option<SagaLoad>,
    ) -> Self {
        if let Some(s) = sagas {
            assert!(s.every >= 1, "SagaLoad::every must be >= 1");
            assert!(s.span >= 2, "SagaLoad::span must be >= 2 to be multi-key");
        }
        TrafficSource {
            gen: YcsbGen::new(seed, keyspace),
            mix,
            sagas,
            issued: 0,
            groups: 0,
            total,
            trace: None,
        }
    }

    /// Turns on saga-split event collection.
    pub fn enable_trace(&mut self) {
        self.trace = Some(TraceBuf::new());
    }

    /// Operations drawn so far.
    pub fn issued(&self) -> usize {
        self.issued
    }

    /// True when the operation budget is exhausted.
    pub fn exhausted(&self) -> bool {
        self.issued >= self.total
    }

    /// Draws the next client request at virtual time `at_vns`: one
    /// operation, or — every `SagaLoad::every`-th request — a multi-key
    /// group of up to `SagaLoad::span` operations sharing one [`Saga`]
    /// join (truncated by the remaining budget; a span truncated to one
    /// operation degrades to a plain request). Returns an empty vector
    /// once the budget is exhausted.
    pub fn next_group(&mut self, at_vns: u64) -> Vec<Req> {
        if self.exhausted() {
            return Vec::new();
        }
        let span = match self.sagas {
            Some(s) if (self.groups + 1).is_multiple_of(s.every) => {
                s.span.min(self.total - self.issued)
            }
            _ => 1,
        };
        self.groups += 1;
        self.issued += span;
        let ops = self.gen.generate(self.mix, span);
        if span >= 2 {
            if let Some(tr) = self.trace.as_mut() {
                tr.push(TraceEvent::instant("saga", "split", at_vns).arg("span", span));
            }
            let saga = Arc::new(Saga {
                remaining: AtomicUsize::new(span),
                latest_vns: AtomicU64::new(0),
                failed: AtomicBool::new(false),
                arrival_vns: at_vns,
            });
            ops.into_iter()
                .map(|op| Req { op, arrival_vns: at_vns, saga: Some(Arc::clone(&saga)) })
                .collect()
        } else {
            vec![Req { op: ops[0], arrival_vns: at_vns, saga: None }]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_matches_the_des_draw_order() {
        // One draw per op, in issue order: grouping must not change the
        // underlying stream.
        let total = 40;
        let mut plain = TrafficSource::new(7, 1000, WorkloadMix::B, total, None);
        let mut grouped = TrafficSource::new(
            7,
            1000,
            WorkloadMix::B,
            total,
            Some(SagaLoad { every: 3, span: 4 }),
        );
        let drain = |src: &mut TrafficSource| {
            let mut ops = Vec::new();
            loop {
                let g = src.next_group(0);
                if g.is_empty() {
                    break;
                }
                ops.extend(g.into_iter().map(|r| r.op));
            }
            ops
        };
        let a = drain(&mut plain);
        let b = drain(&mut grouped);
        assert_eq!(a.len(), total);
        assert_eq!(a, b, "saga grouping must not perturb the op stream");
    }

    #[test]
    fn saga_groups_share_a_join_and_respect_the_budget() {
        let mut src =
            TrafficSource::new(1, 1000, WorkloadMix::B, 5, Some(SagaLoad { every: 1, span: 3 }));
        let g1 = src.next_group(10);
        assert_eq!(g1.len(), 3);
        let saga = g1[0].saga.as_ref().unwrap();
        assert!(g1.iter().all(|r| Arc::ptr_eq(r.saga.as_ref().unwrap(), saga)));
        assert_eq!(saga.arrival_vns, 10);
        // Budget truncation: only 2 ops left.
        let g2 = src.next_group(20);
        assert_eq!(g2.len(), 2);
        assert!(src.exhausted());
        assert!(src.next_group(30).is_empty());
    }

    #[test]
    fn saga_join_fires_exactly_once_at_the_latest_completion() {
        let saga = Saga {
            remaining: AtomicUsize::new(3),
            latest_vns: AtomicU64::new(0),
            failed: AtomicBool::new(false),
            arrival_vns: 5,
        };
        assert_eq!(saga.complete_one(100), None);
        assert_eq!(saga.complete_one(400), None);
        assert_eq!(saga.complete_one(250), Some(400), "join reports the max completion");
    }
}
