//! Seeded-interleaving stress for the queue/steal paths.
//!
//! The offline container has no ThreadSanitizer and no loom, so this is
//! the substitute: oversubscribe the pool (more workers than shards or
//! cores), turn on the splitmix-seeded yield shaker at every scheduling
//! decision point, and sweep seeds. Each seed perturbs which thread wins
//! each race — the actor state machine's own assertions (`QUEUED →
//! RUNNING` CAS, `try_lock` exclusivity, the accounted-once ledger)
//! then do the checking. CI runs this under `--release`, where the
//! narrow races actually surface.

use haft_apps::{kv_shard, KvSync};
use haft_runtime::{run_native_opts, NativeOpts};
use haft_serve::{FaultLoad, SagaLoad, ServeConfig};
use haft_vm::VmConfig;

#[test]
fn shaken_interleavings_preserve_the_accounting_invariants() {
    let w = kv_shard(KvSync::Atomics);
    for seed in 0..6u64 {
        let cfg = ServeConfig {
            requests: 400,
            shards: 5,
            batch: 4,
            sagas: Some(SagaLoad { every: 3, span: 3 }),
            seed: 0x57E5 ^ (seed << 8),
            ..Default::default()
        };
        let r = run_native_opts(
            &w.module,
            w.run_spec(),
            VmConfig::default(),
            "shake",
            &cfg,
            NativeOpts { workers: 4, shake_seed: Some(seed) },
        );
        assert_eq!(r.requests_offered, 400, "seed {seed}");
        assert_eq!(r.requests_served, 400, "seed {seed}");
        assert_eq!(r.shards.len(), 5);
        assert_eq!(r.shards.iter().map(|s| s.requests).sum::<u64>(), 400, "seed {seed}");
        assert!(r.latency.count > 0 && r.latency.count <= 400);
        assert!(r.batches >= 100 / 4, "someone actually batched: {}", r.batches);
    }
}

#[test]
fn shaken_interleavings_hold_under_fault_injection() {
    let w = kv_shard(KvSync::Atomics);
    for seed in 0..4u64 {
        let cfg = ServeConfig {
            requests: 300,
            shards: 3,
            batch: 8,
            faults: Some(FaultLoad { rate_per_request: 0.03, seed: 0xFA ^ seed }),
            ..Default::default()
        };
        let r = run_native_opts(
            &w.module,
            w.run_spec(),
            VmConfig::default(),
            "shake-faults",
            &cfg,
            NativeOpts { workers: 3, shake_seed: Some(0xABCD ^ seed) },
        );
        let f = r.faults.expect("fault load attached");
        assert_eq!(f.counts.total(), 300, "every request classified exactly once, seed {seed}");
        assert_eq!(r.requests_served, 300 - f.counts.failed, "seed {seed}");
        assert_eq!(r.latency.count, r.requests_served, "failed requests never sampled");
    }
}
