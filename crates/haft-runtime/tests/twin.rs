//! Twin validation: the DES and the native runtime are two executions of
//! one serving model, and their cycle-priced numbers must track.
//!
//! Everything here compares *virtual* (cost-model) throughput, which is
//! host-independent — these tests pass identically on a laptop and a
//! loaded CI box. The only host-dependent check is the wall-clock
//! saturation test, which is `#[ignore]`d and run explicitly by the CI
//! release job.

use haft::prelude::*;
use haft_apps::{kv_shard, KvSync};

fn host_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[test]
fn native_throughput_tracks_the_sim_twin_across_shard_counts() {
    let w = kv_shard(KvSync::Atomics);
    let exp = Experiment::workload(&w).harden(HardenConfig::haft());
    let workers = host_workers();
    let mut sim_rps = Vec::new();
    let mut nat_rps = Vec::new();
    for shards in [1usize, 2, 4] {
        let cfg = ServeConfig { requests: 600, shards, batch: 8, ..Default::default() };
        let sim = exp.serve_in(ServeMode::Sim, &cfg);
        let nat = exp.serve_in(ServeMode::Native { workers }, &cfg);
        assert_eq!(sim.requests_served, nat.requests_served);
        assert_eq!(nat.requests_offered, 600);
        assert!(nat.wall.is_some() && sim.wall.is_none());
        // Point-wise band: same model, same cost pricing, different
        // batch composition.
        let ratio = nat.achieved_rps / sim.achieved_rps;
        assert!(
            (0.4..=2.5).contains(&ratio),
            "{shards} shard(s): native/sim cycle-priced throughput ratio {ratio:.3}"
        );
        sim_rps.push(sim.achieved_rps);
        nat_rps.push(nat.achieved_rps);
    }
    // Shape band: normalize both curves to their 1-shard point; the
    // relative scaling with shard count must agree within 2×.
    for i in 1..sim_rps.len() {
        let shape = (nat_rps[i] / nat_rps[0]) / (sim_rps[i] / sim_rps[0]);
        assert!(
            (0.5..=2.0).contains(&shape),
            "shard-count scaling diverged at point {i}: shape ratio {shape:.3} \
             (sim {sim_rps:?}, native {nat_rps:?})"
        );
    }
}

#[test]
fn twin_holds_for_the_tmr_backend_too() {
    let w = kv_shard(KvSync::Atomics);
    let exp = Experiment::workload(&w).harden(HardenConfig::tmr());
    let cfg = ServeConfig { requests: 400, shards: 2, ..Default::default() };
    let sim = exp.serve_in(ServeMode::Sim, &cfg);
    let nat = exp.serve_in(ServeMode::Native { workers: host_workers() }, &cfg);
    let ratio = nat.achieved_rps / sim.achieved_rps;
    assert!((0.4..=2.5).contains(&ratio), "TMR native/sim ratio {ratio:.3}");
}

#[test]
fn single_worker_native_is_deterministic_up_to_wall_clock() {
    let w = kv_shard(KvSync::Atomics);
    let exp = Experiment::workload(&w).harden(HardenConfig::haft());
    let cfg = ServeConfig {
        requests: 300,
        shards: 3,
        sagas: Some(SagaLoad::default()),
        ..Default::default()
    };
    let strip = |mut r: ServiceReport| {
        r.wall = None;
        r
    };
    let a = strip(exp.serve_in(ServeMode::Native { workers: 1 }, &cfg));
    let b = strip(exp.serve_in(ServeMode::Native { workers: 1 }, &cfg));
    assert_eq!(a, b, "one worker serializes every scheduling decision");
}

#[test]
fn serve_sweep_hardens_exactly_once_per_config() {
    // The counter is process-global and keyed by module name; rename the
    // module so parallel tests hardening kv_shard don't race this count.
    let mut w = kv_shard(KvSync::Atomics);
    w.module.name = "kv_shard_harden_cache_probe".into();
    let probe = || haft::passes::harden_runs_for("kv_shard_harden_cache_probe");
    let before = probe();

    let exp = Experiment::workload(&w).harden(HardenConfig::haft());
    for shards in [1usize, 2, 3] {
        let cfg = ServeConfig { requests: 120, shards, ..Default::default() };
        let _ = exp.serve_in(ServeMode::Sim, &cfg);
        let _ = exp.serve_in(ServeMode::Native { workers: 1 }, &cfg);
        let _ = exp.serve_in(ServeMode::Native { workers: 2 }, &cfg);
    }
    assert_eq!(
        probe() - before,
        1,
        "nine serve calls (3 shard counts × 3 modes) over one config must harden once"
    );

    // A different harden config is a different cache entry: exactly one
    // more run.
    let exp2 = Experiment::workload(&w).harden(HardenConfig::tmr());
    let _ = exp2.serve(&ServeConfig { requests: 60, ..Default::default() });
    let _ = exp2.serve_in(
        ServeMode::Native { workers: 1 },
        &ServeConfig { requests: 60, ..Default::default() },
    );
    assert_eq!(probe() - before, 2, "second config hardens once more");
}

/// Wall-clock scaling — the one host-dependent check. On an N-core host
/// the pool must reach ≥ 0.7× linear speedup from 1 worker to N (on a
/// single-core host the bound degenerates to noise tolerance). Ignored
/// by default; the CI release job runs it with `-- --ignored`.
#[test]
#[ignore = "host-dependent wall-clock saturation; run explicitly with -- --ignored"]
fn native_mode_saturates_the_host() {
    let cores = host_workers();
    let w = kv_shard(KvSync::Atomics);
    let exp = Experiment::workload(&w).harden(HardenConfig::haft());
    let cfg = ServeConfig {
        requests: 4_000,
        shards: (2 * cores).max(4),
        batch: 16,
        router: RouterPolicy::RoundRobin,
        ..Default::default()
    };
    // Warm once (allocator, page faults), then measure.
    let _ = exp.serve_in(ServeMode::Native { workers: 1 }, &cfg);
    let one = exp.serve_in(ServeMode::Native { workers: 1 }, &cfg).wall.unwrap();
    let all = exp.serve_in(ServeMode::Native { workers: cores }, &cfg).wall.unwrap();
    let speedup = all.achieved_rps / one.achieved_rps;
    assert!(
        speedup >= 0.7 * cores as f64,
        "wall-clock speedup {speedup:.2}x on {cores} core(s): \
         1-worker {:.1}k req/s, {cores}-worker {:.1}k req/s",
        one.achieved_rps / 1e3,
        all.achieved_rps / 1e3
    );
}
