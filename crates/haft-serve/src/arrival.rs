//! Arrival processes: how request traffic is offered to the service.

use haft_ir::rng::Prng;

/// How clients offer load.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalMode {
    /// Open loop: requests arrive on a Poisson process at `rate_rps`
    /// regardless of completions — the YCSB/mcblaster shape, and the only
    /// honest way to observe queueing collapse (a closed loop self-limits
    /// and hides it, the "coordinated omission" trap).
    OpenLoop { rate_rps: f64 },
    /// Closed loop: `clients` concurrent clients, each issuing its next
    /// request `think_ns` after the previous reply. Throughput is then
    /// *measured*, not offered — the mode to use for capacity numbers.
    ClosedLoop { clients: usize, think_ns: u64 },
}

/// Deterministic Poisson arrival-time generator (exponential gaps via
/// inverse CDF over the seeded [`Prng`]).
pub struct PoissonArrivals {
    rng: Prng,
    mean_gap_ns: f64,
    clock_ns: f64,
}

impl PoissonArrivals {
    /// Arrivals at `rate_rps` requests per second, starting at time 0.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive rate.
    pub fn new(seed: u64, rate_rps: f64) -> Self {
        assert!(rate_rps > 0.0, "open-loop arrival rate must be positive, got {rate_rps}");
        PoissonArrivals { rng: Prng::new(seed), mean_gap_ns: 1e9 / rate_rps, clock_ns: 0.0 }
    }

    /// The next arrival timestamp in nanoseconds.
    pub fn next_ns(&mut self) -> u64 {
        // Exponential inter-arrival: -ln(U) * mean. Clamp U away from 0.
        let u = self.rng.unit_f64().max(1e-12);
        self.clock_ns += -u.ln() * self.mean_gap_ns;
        self.clock_ns as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_gap_matches_rate() {
        // 1M rps -> 1000 ns mean gap.
        let mut a = PoissonArrivals::new(42, 1_000_000.0);
        let n = 20_000;
        let mut last = 0;
        for _ in 0..n {
            last = a.next_ns();
        }
        let mean = last as f64 / n as f64;
        assert!((mean - 1000.0).abs() < 50.0, "mean gap {mean} ns");
    }

    #[test]
    fn poisson_is_seed_deterministic_and_monotone() {
        let mut a = PoissonArrivals::new(7, 50_000.0);
        let mut b = PoissonArrivals::new(7, 50_000.0);
        let xs: Vec<u64> = (0..500).map(|_| a.next_ns()).collect();
        let ys: Vec<u64> = (0..500).map(|_| b.next_ns()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).all(|w| w[0] <= w[1]), "arrival times are non-decreasing");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rate_is_rejected() {
        PoissonArrivals::new(1, 0.0);
    }
}
