//! Latency distribution accounting.

/// Latency percentiles over all served requests, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    pub count: u64,
    pub mean_ns: f64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    pub max_ns: u64,
}

impl LatencyStats {
    /// Computes the distribution from raw per-request latencies
    /// (consumed: the samples are sorted in place).
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let sum: u128 = samples.iter().map(|&s| s as u128).sum();
        LatencyStats {
            count,
            mean_ns: sum as f64 / count as f64,
            p50_ns: percentile(&samples, 50.0),
            p95_ns: percentile(&samples, 95.0),
            p99_ns: percentile(&samples, 99.0),
            p999_ns: percentile(&samples, 99.9),
            max_ns: *samples.last().unwrap(),
        }
    }

    /// One-line human summary in microseconds.
    pub fn summary(&self) -> String {
        format!(
            "p50 {:.1}us  p95 {:.1}us  p99 {:.1}us  p999 {:.1}us  max {:.1}us (mean {:.1}us, n={})",
            self.p50_ns as f64 / 1e3,
            self.p95_ns as f64 / 1e3,
            self.p99_ns as f64 / 1e3,
            self.p999_ns as f64 / 1e3,
            self.max_ns as f64 / 1e3,
            self.mean_ns / 1e3,
            self.count
        )
    }
}

/// Nearest-rank percentile over a sorted slice. The epsilon absorbs
/// binary-fraction noise (0.95 × 1000 evaluates just above 950, which
/// would otherwise ceil to rank 951).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64 - 1e-9).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_known_distribution() {
        // 1..=1000: p50 = 500, p99 = 990, p999 = 999, max = 1000.
        let s = LatencyStats::from_samples((1..=1000).collect());
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50_ns, 500);
        assert_eq!(s.p95_ns, 950);
        assert_eq!(s.p99_ns, 990);
        assert_eq!(s.p999_ns, 999);
        assert_eq!(s.max_ns, 1000);
        assert!((s.mean_ns - 500.5).abs() < 1e-9);
    }

    #[test]
    fn order_does_not_matter_and_singleton_works() {
        let a = LatencyStats::from_samples(vec![5, 1, 9, 3, 7]);
        let b = LatencyStats::from_samples(vec![9, 7, 5, 3, 1]);
        assert_eq!(a, b);
        let one = LatencyStats::from_samples(vec![42]);
        assert_eq!(one.p50_ns, 42);
        assert_eq!(one.p999_ns, 42);
        assert_eq!(one.max_ns, 42);
    }

    #[test]
    fn empty_is_all_zero() {
        assert_eq!(LatencyStats::from_samples(vec![]), LatencyStats::default());
    }
}
