//! `haft-serve` — hardened backends under live traffic.
//!
//! The paper's headline evaluation is a *service* — memcached serving
//! YCSB traffic (§6.1, Figures 11/12) — but batch runs only measure
//! aggregate wall cycles. This crate puts a hardened key-value shard
//! under an arrival process and measures what a datacenter operator
//! would: throughput, tail latency (p50/p95/p99/p999), per-shard
//! utilization, and — with fault injection attached — availability,
//! client-visible SDC rate, and recovery-latency spikes (HAFT's rollback
//! stalls vs. TMR's in-place masking, the Elzar tradeoff expressed in
//! tail latency instead of mean overhead).
//!
//! # Model
//!
//! The harness is a deterministic discrete-event simulation:
//!
//! * **Shards** — N independent single-core VM instances of one hardened
//!   [`haft_apps::kv_shard`] module (shard-per-core; the module is
//!   hardened once and its request buffer patched per batch).
//! * **Arrivals** — open-loop Poisson at a configured rate, or a closed
//!   loop of C clients ([`ArrivalMode`]).
//! * **Routing** — key-hash (shards own key partitions; Zipfian heat
//!   shows up as utilization imbalance) or round-robin
//!   ([`RouterPolicy`]).
//! * **Service time** — a batch's simulated cycles
//!   ([`haft_vm::PhaseCycles::service_cycles`]: the serve phase plus the
//!   reply-emitting fini phase, *excluding* one-time setup) divided by
//!   the configured clock, plus a fixed per-batch dispatch overhead.
//!   Every request in a batch completes when the batch does.
//! * **Faults** — per-batch single-event upsets at a configured
//!   per-request rate; outcomes classify *per request* via
//!   [`haft_faults::classify_requests`] against host-computed golden
//!   replies. A failed batch drops its requests and stalls the shard for
//!   a restart; a recovered batch's inflated cycles land in the tail of
//!   the latency distribution exactly where an operator would see them.

pub mod arrival;
pub mod latency;
pub mod report;
pub mod router;
pub mod shard;

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use haft_apps::{golden_reply, Op, WorkloadMix, YcsbGen, KV_KEYSPACE, SHARD_CAPACITY};
use haft_faults::{classify_requests, RequestCounts, RequestOutcome};
use haft_ir::module::Module;
use haft_ir::rng::Prng;
use haft_trace::{TraceBuf, TraceEvent};
use haft_vm::{FaultPlan, RunOutcome, RunSpec, VmConfig};

pub use arrival::{ArrivalMode, PoissonArrivals};
pub use latency::LatencyStats;
pub use report::{
    FaultReport, FaultTelemetry, IntervalCounts, ServiceReport, ShardStats, WallReport,
};
pub use router::RouterPolicy;
pub use shard::BatchRunner;

/// How a service experiment executes: the deterministic discrete-event
/// simulation, or the real-thread runtime in `haft-runtime`.
///
/// Both modes take the identical [`ServeConfig`] and return the identical
/// [`ServiceReport`] schema. `Sim` is the *deterministic twin*: same
/// configuration ⇒ same report, field for field, which is what every
/// pinned report table is generated from. `Native` runs N shard actors on
/// a work-stealing thread pool and additionally fills
/// [`report::WallReport`] with host wall-clock throughput; its
/// cycle-priced numbers track the simulation's within a tolerance band
/// (pinned by `haft-runtime`'s twin validation test) but are not
/// bit-reproducible, because thread timing changes batch composition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServeMode {
    /// Single-threaded discrete-event simulation (deterministic).
    #[default]
    Sim,
    /// Real threads: shard actors on a work-stealing pool of `workers`
    /// OS threads (see the `haft-runtime` crate). `workers` is clamped
    /// to at least 1.
    Native { workers: usize },
}

/// Multi-key request grouping: every `every`-th client request is a
/// multi-get spanning `span` keys.
///
/// The operation *stream* is unchanged — a span-`k` request simply claims
/// the next `k` draws from the YCSB generator — so both serve modes
/// execute identical work. What the grouping changes is client-visible
/// semantics in [`ServeMode::Native`]: the runtime splits the group into
/// per-key sub-operations, routes each to its home shard (cross-shard
/// under [`RouterPolicy::KeyHash`]), and completes the request as a
/// *saga* — one latency sample at the join, when the last sub-operation's
/// batch finishes, and the issuing client stays occupied until then. The
/// simulation serves the same sub-operations as independent requests
/// (the join step is a runtime-layer concept); with grouping attached,
/// the two modes therefore price the same work but sample latency
/// differently, and only throughput comparisons remain apples-to-apples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SagaLoad {
    /// Every `every`-th request issued by a client is a saga head
    /// (`every = 1` makes every request multi-key). Must be ≥ 1.
    pub every: usize,
    /// Keys per multi-key request. Must be ≥ 2 to mean anything; spans
    /// are truncated when the remaining request budget runs out.
    pub span: usize,
}

impl Default for SagaLoad {
    fn default() -> Self {
        SagaLoad { every: 4, span: 3 }
    }
}

/// Fault injection attached to a service run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultLoad {
    /// Probability that any given request's processing is hit by a
    /// single-event upset (applied per batch as `rate × batch size`).
    pub rate_per_request: f64,
    /// Seed for injection planning (independent of the traffic seed).
    pub seed: u64,
}

impl Default for FaultLoad {
    fn default() -> Self {
        FaultLoad { rate_per_request: 0.01, seed: 0xFA_17_5E }
    }
}

/// One service experiment: traffic shape, fleet shape, cost model.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Total requests the arrival process offers.
    pub requests: usize,
    /// YCSB mix generating the request stream (default: the read-heavy
    /// Workload B).
    pub mix: WorkloadMix,
    /// Arrival process (default: a closed loop of 8 zero-think clients —
    /// the capacity-measurement shape).
    pub arrival: ArrivalMode,
    /// Number of independent single-core shards.
    pub shards: usize,
    /// Maximum requests coalesced into one VM run (clamped to
    /// [`SHARD_CAPACITY`]).
    pub batch: usize,
    /// Request-to-shard routing policy.
    pub router: RouterPolicy,
    /// Simulated core clock, for the cycle → nanosecond conversion.
    pub clock_ghz: f64,
    /// Fixed per-batch dispatch overhead (network + syscall), ns.
    pub dispatch_ns: u64,
    /// Shard restart stall after a failed batch, ns.
    pub restart_ns: u64,
    /// Traffic seed (key draws, op mix, arrival jitter).
    pub seed: u64,
    /// Optional fault injection under load.
    pub faults: Option<FaultLoad>,
    /// Optional multi-key request grouping (see [`SagaLoad`]). `None`
    /// (the default) leaves the request stream all-single-key; the
    /// simulation's behaviour with `None` is bit-identical to builds
    /// that predate the field.
    pub sagas: Option<SagaLoad>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            requests: 1_000,
            mix: WorkloadMix::B,
            arrival: ArrivalMode::ClosedLoop { clients: 8, think_ns: 0 },
            shards: 2,
            batch: 8,
            router: RouterPolicy::KeyHash,
            clock_ghz: 2.0,
            dispatch_ns: 200,
            restart_ns: 5_000_000,
            seed: 0x5EED_5E4E,
            faults: None,
            sagas: None,
        }
    }
}

/// Simulation event. The heap orders on `(time, sequence)`; the derives
/// only exist so tuples containing an `Ev` are comparable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// Request `seq` reaches the router.
    Arrive { seq: usize },
    /// A shard finished (or gave up on) its current batch.
    Complete { shard: usize },
}

struct ShardSim {
    queue: VecDeque<usize>,
    busy: bool,
    stats: ShardStats,
}

/// The discrete-event simulation state for one service run.
struct Sim<'m, 'c> {
    cfg: &'c ServeConfig,
    runner: BatchRunner<'m>,
    gen: YcsbGen,
    fault_rng: Option<Prng>,
    /// Estimated register-writing instructions per request (the fault
    /// occurrence population), from the calibration batch.
    writes_per_req: u64,
    batch_cap: usize,
    n_shards: usize,
    total: usize,
    issued: usize,
    heap: BinaryHeap<Reverse<(u64, u64, Ev)>>,
    tick: u64,
    /// Request ledger, indexed by sequence number.
    ops: Vec<Op>,
    arrivals_ns: Vec<u64>,
    shards: Vec<ShardSim>,
    samples: Vec<u64>,
    counts: RequestCounts,
    faults: FaultReport,
    /// Per-interval outcome telemetry; allocated iff fault load attached.
    telemetry: Option<FaultTelemetry>,
    clean_service_sum: f64,
    clean_batches: u64,
    batches: u64,
    duration_ns: u64,
    /// Event buffer when tracing; timestamps are virtual nanoseconds.
    trace: Option<TraceBuf>,
}

/// Trace lane (Chrome `pid`) for service-layer events; shards are `tid`s.
pub const TRACE_PID_SERVE: u32 = 1;
/// Trace lane for pool/actor scheduling events (native runtime only).
pub const TRACE_PID_POOL: u32 = 2;
/// Per-shard VM lanes start here: shard `s`'s VM events carry
/// `pid = TRACE_PID_VM_BASE + s` so concurrent batches never overlap on
/// one track.
pub const TRACE_PID_VM_BASE: u32 = 10;

impl Sim<'_, '_> {
    fn cycles_to_ns(&self, cycles: u64) -> u64 {
        (cycles as f64 / self.cfg.clock_ghz) as u64
    }

    fn push_event(&mut self, at_ns: u64, ev: Ev) {
        self.tick += 1;
        self.heap.push(Reverse((at_ns, self.tick, ev)));
    }

    /// Issues one fresh request into the router at `at_ns`.
    fn issue(&mut self, at_ns: u64) {
        debug_assert!(self.issued < self.total);
        let seq = self.ops.len();
        self.ops.push(self.gen.generate(self.cfg.mix, 1)[0]);
        self.arrivals_ns.push(at_ns);
        self.issued += 1;
        self.push_event(at_ns, Ev::Arrive { seq });
    }

    /// Draws this batch's injection plan, if fault load is attached.
    fn draw_fault(&mut self, batch_len: usize) -> Option<FaultPlan> {
        let rng = self.fault_rng.as_mut()?;
        let rate = self.cfg.faults.expect("rng implies config").rate_per_request;
        let p = (rate * batch_len as f64).min(1.0);
        // Draw all three variates unconditionally so the plan stream is
        // independent of earlier hit/miss outcomes.
        let hit = rng.chance(p);
        let occurrence = rng.below(self.writes_per_req * batch_len as u64);
        let xor_mask = rng.next_u64();
        hit.then_some(FaultPlan { occurrence, xor_mask })
    }

    /// Runs one batch on shard `s` starting at `now_ns`: executes the
    /// VM, accounts latency and outcomes, schedules the completion
    /// event, and (closed loop) re-issues the freed clients.
    fn start_batch(&mut self, s: usize, now_ns: u64) {
        let take = self.shards[s].queue.len().min(self.batch_cap);
        debug_assert!(take > 0, "started a batch on an empty queue");
        let seqs: Vec<usize> = self.shards[s].queue.drain(..take).collect();
        let batch_ops: Vec<Op> = seqs.iter().map(|&q| self.ops[q]).collect();

        let plan = self.draw_fault(batch_ops.len());
        let injected = plan.is_some();
        let mut vm_buf = self.trace.as_ref().map(|_| TraceBuf::new());
        let run = match vm_buf.as_mut() {
            Some(buf) => self.runner.run_batch_traced(&batch_ops, plan, buf),
            None => self.runner.run_batch(&batch_ops, plan),
        };
        let service_ns = self.cycles_to_ns(run.phases.service_cycles()) + self.cfg.dispatch_ns;
        let golden: Vec<u64> = batch_ops.iter().map(|&o| golden_reply(o)).collect();
        let outcomes = classify_requests(&run, &golden);
        debug_assert!(
            injected || outcomes.iter().all(|&o| o == RequestOutcome::Served),
            "undisturbed batch produced non-served outcomes: {outcomes:?}"
        );

        let crashed = run.outcome != RunOutcome::Completed;
        let completion = now_ns + service_ns + if crashed { self.cfg.restart_ns } else { 0 };
        for (&seq, &o) in seqs.iter().zip(&outcomes) {
            self.counts.record(o);
            if let Some(t) = self.telemetry.as_mut() {
                t.record(completion, o);
            }
            if o != RequestOutcome::Failed {
                self.samples.push(completion - self.arrivals_ns[seq]);
            }
        }

        if let Some(tr) = self.trace.as_mut() {
            let scale = 1.0 / self.cfg.clock_ghz;
            tr.push(
                TraceEvent::span("serve", "batch.service", now_ns, service_ns)
                    .lane(TRACE_PID_SERVE, s as u32)
                    .arg("requests", seqs.len())
                    .arg("shard", s),
            );
            if crashed {
                tr.push(
                    TraceEvent::span(
                        "serve",
                        "shard.restart",
                        now_ns + service_ns,
                        self.cfg.restart_ns,
                    )
                    .lane(TRACE_PID_SERVE, s as u32),
                );
            }
            // Splice the batch's VM/HTM events (stamped in raw cycles)
            // onto the virtual-nanosecond timeline, one lane per shard.
            for mut ev in vm_buf.expect("trace implies vm buffer").take() {
                ev.rescale(scale, now_ns);
                ev.pid = TRACE_PID_VM_BASE + s as u32;
                tr.push(ev);
            }
        }

        if injected {
            self.faults.injected_batches += 1;
            if crashed {
                self.faults.crashed_batches += 1;
            } else if run.recoveries > 0 || run.corrected_by_vote > 0 {
                self.faults.corrected_batches += 1;
                self.faults.max_corrected_service_ns =
                    self.faults.max_corrected_service_ns.max(service_ns);
            }
        } else if !crashed {
            self.clean_service_sum += service_ns as f64;
            self.clean_batches += 1;
        }

        self.batches += 1;
        let st = &mut self.shards[s].stats;
        st.batches += 1;
        st.busy_ns += completion - now_ns;
        if crashed {
            st.crashes += 1;
        } else {
            st.requests += seqs.len() as u64;
        }
        self.shards[s].busy = true;
        self.duration_ns = self.duration_ns.max(completion);
        self.push_event(completion, Ev::Complete { shard: s });

        // Closed loop: each request in the batch frees its client at
        // completion (crashed batches error out to the client, which
        // retries with a fresh request after the same think time).
        if let ArrivalMode::ClosedLoop { think_ns, .. } = self.cfg.arrival {
            for _ in 0..seqs.len() {
                if self.issued < self.total {
                    self.issue(completion + think_ns);
                }
            }
        }
    }

    /// Drains the event queue.
    fn run(&mut self) {
        while let Some(Reverse((t, _, ev))) = self.heap.pop() {
            match ev {
                Ev::Arrive { seq } => {
                    let s = self.cfg.router.route(self.ops[seq], seq as u64, self.n_shards);
                    self.shards[s].queue.push_back(seq);
                    if !self.shards[s].busy {
                        self.start_batch(s, t);
                    }
                }
                Ev::Complete { shard: s } => {
                    self.shards[s].busy = false;
                    if !self.shards[s].queue.is_empty() {
                        self.start_batch(s, t);
                    }
                }
            }
        }
    }
}

/// Drives `cfg.requests` of generated traffic through `cfg.shards`
/// copies of the already-hardened `module` and reports service-level
/// metrics.
///
/// `vm` supplies the cost model and HTM/transaction parameters; the
/// harness pins it to one simulated thread per shard and sizes its
/// memory arena to the module. `label` names the backend in the report.
///
/// Deterministic: same module, config, and seeds ⇒ same report.
///
/// # Panics
///
/// Panics if `module` was not built by [`haft_apps::kv_shard`] (the
/// request-buffer globals are missing), the spec lacks the serve/fini
/// entry points, or the configuration is degenerate (zero requests or
/// shards, non-positive clock or open-loop rate).
pub fn run_service(
    module: &Module,
    spec: RunSpec<'_>,
    vm: VmConfig,
    label: impl Into<String>,
    cfg: &ServeConfig,
) -> ServiceReport {
    run_service_impl(module, spec, vm, label, cfg, None)
}

/// [`run_service`] with trace collection: every batch-service span, shard
/// restart, and spliced VM/HTM event lands in `buf`, timestamped in
/// virtual nanoseconds. The returned report is bit-identical to an
/// untraced run of the same configuration.
pub fn run_service_traced(
    module: &Module,
    spec: RunSpec<'_>,
    vm: VmConfig,
    label: impl Into<String>,
    cfg: &ServeConfig,
    buf: &mut TraceBuf,
) -> ServiceReport {
    run_service_impl(module, spec, vm, label, cfg, Some(buf))
}

fn run_service_impl(
    module: &Module,
    spec: RunSpec<'_>,
    vm: VmConfig,
    label: impl Into<String>,
    cfg: &ServeConfig,
    trace: Option<&mut TraceBuf>,
) -> ServiceReport {
    assert!(cfg.requests > 0, "a service run needs at least one request");
    assert!(cfg.shards > 0, "a service run needs at least one shard");
    assert!(spec.worker.is_some() && spec.fini.is_some(), "shard spec needs worker and fini");
    assert!(cfg.clock_ghz > 0.0, "clock must be positive");
    let total = cfg.requests;
    let batch_cap = cfg.batch.clamp(1, SHARD_CAPACITY);

    let mut runner = BatchRunner::new(module, spec, vm);

    // Fault planning: estimate the per-request register-write population
    // from one off-traffic calibration batch, so injection occurrences
    // can be drawn uniformly over a batch's dynamic trace.
    let writes_per_req = if cfg.faults.is_some() {
        let mut cal_gen = YcsbGen::new(cfg.seed ^ 0xCA11_B007, KV_KEYSPACE);
        let cal_ops = cal_gen.generate(cfg.mix, batch_cap);
        let cal = runner.run_batch(&cal_ops, None);
        assert_eq!(cal.outcome, RunOutcome::Completed, "calibration batch must complete");
        (cal.register_writes / batch_cap as u64).max(1)
    } else {
        1
    };

    let mut sim = Sim {
        cfg,
        runner,
        gen: YcsbGen::new(cfg.seed, KV_KEYSPACE),
        fault_rng: cfg.faults.map(|f| Prng::new(f.seed)),
        writes_per_req,
        batch_cap,
        n_shards: cfg.shards,
        total,
        issued: 0,
        heap: BinaryHeap::new(),
        tick: 0,
        ops: Vec::with_capacity(total),
        arrivals_ns: Vec::with_capacity(total),
        shards: (0..cfg.shards)
            .map(|_| ShardSim { queue: VecDeque::new(), busy: false, stats: ShardStats::default() })
            .collect(),
        samples: Vec::with_capacity(total),
        counts: RequestCounts::default(),
        faults: FaultReport::default(),
        telemetry: cfg.faults.map(|_| FaultTelemetry::default()),
        clean_service_sum: 0.0,
        clean_batches: 0,
        batches: 0,
        duration_ns: 0,
        trace: trace.as_ref().map(|_| TraceBuf::new()),
    };

    // Seed the arrival process.
    match cfg.arrival {
        ArrivalMode::OpenLoop { rate_rps } => {
            let mut poisson = PoissonArrivals::new(cfg.seed ^ 0x0A88_17A1, rate_rps);
            for _ in 0..total {
                let t = poisson.next_ns();
                sim.issue(t);
            }
        }
        ArrivalMode::ClosedLoop { clients, .. } => {
            for _ in 0..clients.max(1).min(total) {
                sim.issue(0);
            }
        }
    }
    sim.run();

    assert_eq!(
        sim.counts.total(),
        total as u64,
        "per-request outcome counts must sum to the offered request total"
    );
    let served = sim.counts.total() - sim.counts.failed;
    let achieved_rps =
        if sim.duration_ns == 0 { 0.0 } else { served as f64 * 1e9 / sim.duration_ns as f64 };
    sim.faults.counts = sim.counts;
    sim.faults.mean_clean_service_ns =
        if sim.clean_batches == 0 { 0.0 } else { sim.clean_service_sum / sim.clean_batches as f64 };
    if let (Some(out), Some(mut collected)) = (trace, sim.trace.take()) {
        out.events.append(&mut collected.events);
    }
    ServiceReport {
        label: label.into(),
        requests_offered: sim.counts.total(),
        requests_served: served,
        duration_ns: sim.duration_ns,
        offered_rps: match cfg.arrival {
            ArrivalMode::OpenLoop { rate_rps } => Some(rate_rps),
            ArrivalMode::ClosedLoop { .. } => None,
        },
        achieved_rps,
        latency: LatencyStats::from_samples(sim.samples),
        batches: sim.batches,
        shards: sim.shards.into_iter().map(|s| s.stats).collect(),
        faults: cfg.faults.map(|_| sim.faults),
        fault_telemetry: sim.telemetry.take(),
        // The DES serves saga sub-operations as independent requests
        // (joins are a runtime-layer concept), so nothing to suppress.
        suppressed_joins: 0,
        wall: None,
    }
}
