//! Service-level measurement report.

use std::collections::BTreeMap;

use haft_faults::{RequestCounts, RequestOutcome};
use haft_trace::MetricsSnapshot;

use crate::latency::LatencyStats;

/// Per-shard accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Requests this shard completed (including corrupted replies).
    pub requests: u64,
    /// Batches executed.
    pub batches: u64,
    /// Simulated time the shard spent serving (plus restart stalls).
    pub busy_ns: u64,
    /// Failed batches that forced a shard restart.
    pub crashes: u64,
}

impl ShardStats {
    /// Busy fraction of the whole service run.
    pub fn utilization(&self, duration_ns: u64) -> f64 {
        if duration_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / duration_ns as f64
        }
    }
}

/// Fault accounting for a service run with injection attached: the
/// datacenter view (availability, client-visible corruption rate,
/// recovery stalls) rather than the per-run Table 1 histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultReport {
    /// Batches that received an injection.
    pub injected_batches: u64,
    /// Per-request outcomes over every request offered (clean and
    /// faulty); `counts.total()` equals the offered request count.
    pub counts: RequestCounts,
    /// Batches dropped by a failed run (each also restarted its shard).
    pub crashed_batches: u64,
    /// Injected batches that fired a recovery mechanism (rollback or
    /// vote) and still delivered correct replies.
    pub corrected_batches: u64,
    /// Service time of the slowest corrected batch — the recovery
    /// latency spike (HAFT rollback stalls; TMR masks nearly in place).
    pub max_corrected_service_ns: u64,
    /// Mean service time of undisturbed batches — the spike baseline.
    pub mean_clean_service_ns: f64,
}

impl FaultReport {
    /// Correct replies delivered per requests offered, in percent.
    pub fn availability_pct(&self) -> f64 {
        self.counts.availability_pct()
    }

    /// Client-visible silent corruptions per million requests.
    pub fn sdc_per_million(&self) -> f64 {
        self.counts.sdc_per_million()
    }

    /// How much slower the worst corrected batch was than a clean one.
    pub fn recovery_spike_factor(&self) -> f64 {
        if self.mean_clean_service_ns <= 0.0 {
            return 1.0;
        }
        (self.max_corrected_service_ns as f64 / self.mean_clean_service_ns).max(1.0)
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        format!(
            "avail {:.3}%  sdc/M {:.1}  crashes {}  corrected {} (spike {:.2}x)",
            self.availability_pct(),
            self.sdc_per_million(),
            self.crashed_batches,
            self.corrected_batches,
            self.recovery_spike_factor()
        )
    }
}

/// Width of one fault-telemetry interval: 1 ms of *virtual* time. Both
/// serve modes bucket request completions on the virtual clock, so the
/// telemetry is host-independent in either mode.
pub const TELEMETRY_INTERVAL_NS: u64 = 1_000_000;

/// Default smoothing factor for [`FaultTelemetry::fault_rate_ewma`].
pub const TELEMETRY_EWMA_ALPHA: f64 = 0.2;

/// Per-interval request-outcome counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntervalCounts {
    /// Correct replies from undisturbed runs.
    pub served: u64,
    /// Correct replies that needed a recovery mechanism.
    pub corrected: u64,
    /// Silently corrupted replies delivered to clients.
    pub sdc: u64,
    /// Requests dropped with a failed batch.
    pub failed: u64,
}

impl IntervalCounts {
    pub fn total(&self) -> u64 {
        self.served + self.corrected + self.sdc + self.failed
    }

    /// Requests visibly touched by a fault (everything but clean serves).
    pub fn faulty(&self) -> u64 {
        self.corrected + self.sdc + self.failed
    }
}

/// Time-resolved fault telemetry: what an operator's dashboard would
/// plot. Request completions are bucketed into fixed intervals of the
/// *virtual* clock, so the same mechanism produces comparable numbers in
/// the deterministic simulation and the real-thread runtime. Per-shard
/// contributions merge order-independently (pure counter addition keyed
/// by interval index), and the decayed fault-rate estimate is derived
/// from the *merged* counters — never from a shard-local running state —
/// which keeps it independent of thread scheduling.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultTelemetry {
    /// Interval width, virtual nanoseconds.
    pub interval_ns: u64,
    /// Counters keyed by interval index (`completion_ns / interval_ns`).
    pub intervals: BTreeMap<u64, IntervalCounts>,
}

impl Default for FaultTelemetry {
    fn default() -> Self {
        FaultTelemetry { interval_ns: TELEMETRY_INTERVAL_NS, intervals: BTreeMap::new() }
    }
}

impl FaultTelemetry {
    /// Buckets one request outcome at its virtual completion time.
    pub fn record(&mut self, completion_ns: u64, o: RequestOutcome) {
        let c = self.intervals.entry(completion_ns / self.interval_ns).or_default();
        match o {
            RequestOutcome::Served => c.served += 1,
            RequestOutcome::ServedCorrected => c.corrected += 1,
            RequestOutcome::Sdc => c.sdc += 1,
            RequestOutcome::Failed => c.failed += 1,
        }
    }

    /// Merges another shard's telemetry (commutative and associative).
    pub fn merge(&mut self, other: &FaultTelemetry) {
        assert_eq!(self.interval_ns, other.interval_ns, "telemetry interval mismatch");
        for (idx, o) in &other.intervals {
            let c = self.intervals.entry(*idx).or_default();
            c.served += o.served;
            c.corrected += o.corrected;
            c.sdc += o.sdc;
            c.failed += o.failed;
        }
    }

    /// Exponentially-decayed fault-rate estimate (fraction of requests
    /// per interval visibly touched by a fault), walked over the merged
    /// counters in ascending interval order. Empty gap intervals count as
    /// fault-free, so the estimate decays toward zero through quiet
    /// stretches. Deterministic given the merged counters.
    pub fn fault_rate_ewma(&self, alpha: f64) -> f64 {
        let (Some(first), Some(last)) =
            (self.intervals.keys().next(), self.intervals.keys().next_back())
        else {
            return 0.0;
        };
        let mut ewma: Option<f64> = None;
        for idx in *first..=*last {
            let x = match self.intervals.get(&idx) {
                Some(c) if c.total() > 0 => c.faulty() as f64 / c.total() as f64,
                _ => 0.0,
            };
            ewma = Some(match ewma {
                None => x,
                Some(e) => alpha * x + (1.0 - alpha) * e,
            });
        }
        ewma.unwrap_or(0.0)
    }

    /// Worst single interval by faulty-request count.
    pub fn peak_faulty(&self) -> u64 {
        self.intervals.values().map(IntervalCounts::faulty).max().unwrap_or(0)
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        format!(
            "telemetry: {} interval(s), ewma fault rate {:.4}, peak faulty/interval {}",
            self.intervals.len(),
            self.fault_rate_ewma(TELEMETRY_EWMA_ALPHA),
            self.peak_faulty()
        )
    }
}

/// Host wall-clock accounting, present only on reports produced by the
/// real-thread runtime (`ServeMode::Native`, the `haft-runtime` crate).
///
/// Cycle-priced numbers ([`ServiceReport::achieved_rps`], the latency
/// distribution) stay the source of truth across both serve modes: they
/// come from the simulated cost model and are host-independent. Wall
/// clock is what the runtime *additionally* measures — how fast this
/// machine actually chewed through the VM work — and is inherently
/// host- and load-dependent, so it is reported separately and never
/// pinned.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WallReport {
    /// Worker threads the pool ran.
    pub workers: usize,
    /// Host wall-clock time from pool start to the last completion.
    pub duration_ns: u64,
    /// Served requests per host wall-clock second.
    pub achieved_rps: f64,
    /// Actors a worker ran that it did not own — the work-stealing
    /// traffic between the pool's deques.
    pub steals: u64,
}

impl WallReport {
    /// One-line summary.
    pub fn summary(&self) -> String {
        format!(
            "wall {:.1}k req/s on {} worker(s) ({:.1} ms)",
            self.achieved_rps / 1e3,
            self.workers,
            self.duration_ns as f64 / 1e6
        )
    }
}

/// Everything measured by one service run ([`crate::run_service`] /
/// `Experiment::serve`).
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceReport {
    /// Harden-configuration label of the backend under load.
    pub label: String,
    /// Requests offered by the arrival process.
    pub requests_offered: u64,
    /// Requests that received a reply (correct or corrupted); the rest
    /// died with failed batches.
    pub requests_served: u64,
    /// End-to-end simulated duration (first arrival to last completion).
    pub duration_ns: u64,
    /// Offered load; present only in open-loop mode (a closed loop
    /// offers whatever it measures).
    pub offered_rps: Option<f64>,
    /// Measured completion throughput.
    pub achieved_rps: f64,
    /// Per-request latency distribution over served requests.
    pub latency: LatencyStats,
    /// Batches executed across all shards.
    pub batches: u64,
    /// Per-shard breakdown, indexed by shard id.
    pub shards: Vec<ShardStats>,
    /// Present when the serve configuration attached fault injection.
    pub faults: Option<FaultReport>,
    /// Time-resolved fault telemetry; present exactly when `faults` is.
    pub fault_telemetry: Option<FaultTelemetry>,
    /// Saga joins whose latency sample was withheld because a sub-batch
    /// failed (the join still completes for flow control, but a latency
    /// measured against a lost reply would be fiction).
    pub suppressed_joins: u64,
    /// Host wall-clock accounting; present only in `ServeMode::Native`
    /// (the simulation has no host clock worth reporting).
    pub wall: Option<WallReport>,
}

impl ServiceReport {
    /// Mean requests per batch — how much the batching knob actually
    /// coalesced under this load.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests_served as f64 / self.batches as f64
        }
    }

    /// The busiest shard's utilization — the saturation indicator.
    pub fn max_utilization(&self) -> f64 {
        self.shards.iter().map(|s| s.utilization(self.duration_ns)).fold(0.0, f64::max)
    }

    /// Publishes the report into the unified registry under the stable
    /// `serve.*` (and, for native runs, `pool.*`) names.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        m.set("serve.requests.offered", self.requests_offered as f64);
        m.set("serve.requests.served", self.requests_served as f64);
        m.set("serve.duration_ns", self.duration_ns as f64);
        m.set("serve.achieved_rps", self.achieved_rps);
        m.set("serve.batches", self.batches as f64);
        m.set("serve.latency_us.p50", self.latency.p50_ns as f64 / 1e3);
        m.set("serve.latency_us.p95", self.latency.p95_ns as f64 / 1e3);
        m.set("serve.latency_us.p99", self.latency.p99_ns as f64 / 1e3);
        m.set("serve.latency_us.p999", self.latency.p999_ns as f64 / 1e3);
        m.set("serve.saga.suppressed_joins", self.suppressed_joins as f64);
        if let Some(f) = &self.faults {
            m.set("serve.faults.availability_pct", f.availability_pct());
            m.set("serve.faults.sdc_per_million", f.sdc_per_million());
            m.set("serve.faults.crashed_batches", f.crashed_batches as f64);
            m.set("serve.faults.corrected_batches", f.corrected_batches as f64);
        }
        if let Some(t) = &self.fault_telemetry {
            m.set("serve.telemetry.intervals", t.intervals.len() as f64);
            m.set("serve.telemetry.fault_rate_ewma", t.fault_rate_ewma(TELEMETRY_EWMA_ALPHA));
            m.set("serve.telemetry.peak_faulty", t.peak_faulty() as f64);
        }
        if let Some(w) = &self.wall {
            m.set("pool.workers", w.workers as f64);
            m.set("pool.steals", w.steals as f64);
            m.set("pool.wall_ns", w.duration_ns as f64);
            m.set("pool.wall_rps", w.achieved_rps);
        }
        m
    }

    /// Multi-line human summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{}: {:.1}k req/s ({} of {} served, {} batches, mean batch {:.1})\n  {}",
            self.label,
            self.achieved_rps / 1e3,
            self.requests_served,
            self.requests_offered,
            self.batches,
            self.mean_batch_size(),
            self.latency.summary()
        );
        let util: Vec<String> = self
            .shards
            .iter()
            .map(|sh| format!("{:.0}%", 100.0 * sh.utilization(self.duration_ns)))
            .collect();
        s.push_str(&format!("\n  shard util [{}]", util.join(" ")));
        if let Some(f) = &self.faults {
            s.push_str("\n  faults: ");
            s.push_str(&f.summary());
        }
        if let Some(t) = &self.fault_telemetry {
            s.push_str("\n  ");
            s.push_str(&t.summary());
        }
        if let Some(w) = &self.wall {
            s.push_str("\n  ");
            s.push_str(&w.summary());
        }
        s
    }
}
