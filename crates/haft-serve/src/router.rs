//! Request routing across shards.

use haft_apps::Op;

/// How requests map to shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Hash the key: every key has a home shard, so shard caches stay
    /// key-partitioned. Under a Zipfian mix this is deliberately
    /// imbalanced — hot keys pin their home shard — which is exactly what
    /// the per-shard utilization report is there to show.
    #[default]
    KeyHash,
    /// Spray requests round-robin: perfectly balanced load, no key
    /// affinity (the stateless-service comparison point).
    RoundRobin,
}

impl RouterPolicy {
    /// The shard that serves request number `seq` with operation `op`.
    pub fn route(self, op: Op, seq: u64, shards: usize) -> usize {
        let n = shards.max(1) as u64;
        match self {
            RouterPolicy::KeyHash => (hash_key(op.key()) % n) as usize,
            RouterPolicy::RoundRobin => (seq % n) as usize,
        }
    }
}

/// splitmix64 finalizer — decorrelated from the kvstore's bucket hash so
/// shard choice and bucket choice do not alias.
fn hash_key(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_hash_is_stable_and_in_range() {
        for shards in [1, 2, 4, 8] {
            for key in 0..1000u64 {
                let a = RouterPolicy::KeyHash.route(Op::Read(key), 0, shards);
                let b = RouterPolicy::KeyHash.route(Op::Update(key), 99, shards);
                assert_eq!(a, b, "routing is by key, not by op kind or sequence");
                assert!(a < shards);
            }
        }
    }

    #[test]
    fn key_hash_spreads_uniform_keys() {
        let shards = 4;
        let mut counts = vec![0u64; shards];
        for key in 0..10_000u64 {
            counts[RouterPolicy::KeyHash.route(Op::Read(key), 0, shards)] += 1;
        }
        for &c in &counts {
            assert!((2000..3000).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn round_robin_ignores_keys() {
        let shards = 3;
        for seq in 0..30u64 {
            assert_eq!(
                RouterPolicy::RoundRobin.route(Op::Read(7), seq, shards),
                (seq % 3) as usize
            );
        }
    }
}
