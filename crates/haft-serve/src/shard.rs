//! One shard: a hardened VM serving request batches.

use haft_apps::{patch_requests, Op};
use haft_ir::module::Module;
use haft_trace::TraceBuf;
use haft_vm::{FaultPlan, RunResult, RunSpec, Vm, VmConfig};

/// Runs request batches against an already-hardened shard module.
///
/// Shards model independent cores, but the harness simulation itself is
/// sequential discrete-event, so a single runner — and a single patchable
/// module copy — serves every shard: batches never overlap in host time,
/// only in *simulated* time.
pub struct BatchRunner<'a> {
    module: Module,
    spec: RunSpec<'a>,
    vm: VmConfig,
}

impl<'a> BatchRunner<'a> {
    /// Takes one clone of the hardened module (hardening happened once,
    /// upstream, in the `Experiment` cache) and pins the VM to a single
    /// simulated thread — a shard is one core.
    pub fn new(hardened: &Module, spec: RunSpec<'a>, mut vm: VmConfig) -> Self {
        for g in ["reqs", "n_reqs", "replies"] {
            assert!(
                hardened.global_by_name(g).is_some(),
                "{}: not a shard-servable module (missing `{g}` global); \
                 build the experiment over haft_apps::kv_shard",
                hardened.name
            );
        }
        vm.n_threads = 1;
        vm.fault = None;
        // Shard modules are tens of KiB of globals; the default 16 MiB
        // arena would spend more time zeroing memory than interpreting.
        // Size the arena to the module plus heap slack instead.
        let needed: u64 = hardened.globals.iter().map(|g| g.size + 64).sum::<u64>() + (1 << 16);
        vm.mem_bytes = vm.mem_bytes.min(needed.next_power_of_two().max(1 << 17));
        BatchRunner { module: hardened.clone(), spec, vm }
    }

    /// Serves one batch, optionally with a single-event upset injected
    /// into this batch's execution.
    pub fn run_batch(&mut self, ops: &[Op], fault: Option<FaultPlan>) -> RunResult {
        patch_requests(&mut self.module, ops);
        let mut vm = self.vm.clone();
        vm.fault = fault;
        Vm::run(&self.module, vm, self.spec)
    }

    /// [`Self::run_batch`] with VM/HTM trace events appended to `buf`
    /// (timestamped in raw virtual cycles; the caller rescales them onto
    /// its own timeline). The returned result is bit-identical to what
    /// `run_batch` would produce.
    pub fn run_batch_traced(
        &mut self,
        ops: &[Op],
        fault: Option<FaultPlan>,
        buf: &mut TraceBuf,
    ) -> RunResult {
        patch_requests(&mut self.module, ops);
        let mut vm = self.vm.clone();
        vm.fault = fault;
        Vm::run_traced(&self.module, vm, self.spec, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haft_apps::{golden_reply, kv_shard, KvSync, WorkloadMix, YcsbGen};
    use haft_vm::RunOutcome;

    #[test]
    fn runner_serves_consecutive_batches() {
        let w = kv_shard(KvSync::Atomics);
        let mut runner = BatchRunner::new(&w.module, w.run_spec(), VmConfig::default());
        let mut gen = YcsbGen::new(1, 1000);
        for n in [1usize, 7, 32] {
            let ops = gen.generate(WorkloadMix::B, n);
            let r = runner.run_batch(&ops, None);
            assert_eq!(r.outcome, RunOutcome::Completed);
            assert_eq!(
                r.output,
                ops.iter().map(|&o| golden_reply(o)).collect::<Vec<_>>(),
                "batch of {n}"
            );
            assert!(r.phases.service_cycles() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "not a shard-servable module")]
    fn non_shard_module_is_rejected() {
        let m = Module::new("empty");
        BatchRunner::new(&m, RunSpec::default(), VmConfig::default());
    }
}
