//! Acceptance tests for the service harness, driven through the facade's
//! `Experiment::serve` (ISSUE 4 criteria):
//!
//! (a) open-loop p99 latency is monotonically non-decreasing in offered
//!     load;
//! (b) HAFT and TMR throughput at 2 shards bracket the PR-3 overhead
//!     ratios (HAFT faster than TMR on mean, within [1.5, 3.5]× of
//!     native);
//! (c) a fault campaign under load reports availability and per-request
//!     outcome counts that sum to the request total.

use haft::Experiment;
use haft_apps::{kv_shard, KvSync};
use haft_passes::HardenConfig;
use haft_serve::{ArrivalMode, FaultLoad, ServeConfig, ServiceReport};
use haft_vm::Engine;

/// A serve config sized for tests: small request counts, default mix B.
fn base_cfg(requests: usize, shards: usize) -> ServeConfig {
    ServeConfig { requests, shards, ..ServeConfig::default() }
}

fn serve(hc: HardenConfig, cfg: &ServeConfig) -> ServiceReport {
    let w = kv_shard(KvSync::Atomics);
    Experiment::workload(&w).harden(hc).serve(cfg)
}

/// (a) Open loop: pushing more load can only push p99 up.
///
/// The arrival process is seeded, so sweeping the rate rescales the same
/// arrival pattern in time over the same request stream — the cleanest
/// possible monotonicity probe. Rates are self-calibrated against the
/// measured closed-loop capacity so the sweep spans under-load to
/// overload regardless of cost-model drift.
#[test]
fn open_loop_p99_is_monotone_in_offered_load() {
    // Probe capacity: 1 client, 1 shard, no queueing.
    let probe = serve(
        HardenConfig::haft(),
        &ServeConfig {
            arrival: ArrivalMode::ClosedLoop { clients: 1, think_ns: 0 },
            batch: 1,
            ..base_cfg(60, 1)
        },
    );
    assert_eq!(probe.requests_served, 60);
    let per_req_ns = probe.latency.mean_ns;
    assert!(per_req_ns > 0.0);
    let capacity_rps = 2.0 * 1e9 / per_req_ns; // 2 shards

    let mut p99s = Vec::new();
    let mut p50s = Vec::new();
    for frac in [0.3, 0.6, 0.9, 1.4] {
        let r = serve(
            HardenConfig::haft(),
            &ServeConfig {
                arrival: ArrivalMode::OpenLoop { rate_rps: capacity_rps * frac },
                batch: 1,
                ..base_cfg(300, 2)
            },
        );
        assert_eq!(r.requests_offered, 300);
        assert_eq!(r.offered_rps, Some(capacity_rps * frac));
        p99s.push(r.latency.p99_ns);
        p50s.push(r.latency.p50_ns);
    }
    for w in p99s.windows(2) {
        assert!(w[1] >= w[0], "p99 dipped under heavier load: {p99s:?}");
    }
    // And overload visibly queues: the saturated point is far above the
    // lightly loaded one.
    assert!(
        *p99s.last().unwrap() > p99s[0] * 2,
        "overload should inflate p99: {p99s:?} (p50s {p50s:?})"
    );
}

/// (b) Closed-loop capacity at 2 shards: native / HAFT / TMR bracket the
/// batch-mode overhead ratios measured in PR 3.
#[test]
fn two_shard_throughput_brackets_backend_overheads() {
    let cfg = base_cfg(400, 2);
    let native = serve(HardenConfig::native(), &cfg);
    let haft = serve(HardenConfig::haft(), &cfg);
    let tmr = serve(HardenConfig::tmr(), &cfg);
    for r in [&native, &haft, &tmr] {
        assert_eq!(r.requests_served, 400, "{}: all requests must complete", r.label);
        assert!(r.faults.is_none());
    }

    let haft_overhead = native.achieved_rps / haft.achieved_rps;
    assert!(
        (1.5..=3.5).contains(&haft_overhead),
        "HAFT throughput overhead {haft_overhead:.2}x outside [1.5, 3.5] \
         (native {:.0} rps, HAFT {:.0} rps)",
        native.achieved_rps,
        haft.achieved_rps
    );
    // The Elzar tradeoff under load: voting at every sync point costs
    // more mean throughput than detect-and-rollback.
    assert!(
        haft.achieved_rps > tmr.achieved_rps,
        "HAFT ({:.0} rps) should out-serve TMR ({:.0} rps) on mean",
        haft.achieved_rps,
        tmr.achieved_rps
    );
    assert!(
        haft.latency.mean_ns < tmr.latency.mean_ns,
        "HAFT mean latency {:.0} ns should undercut TMR {:.0} ns",
        haft.latency.mean_ns,
        tmr.latency.mean_ns
    );
}

/// (c) Fault campaign under load: availability is reported and the
/// per-request outcome counts sum exactly to the offered request total.
#[test]
fn fault_campaign_under_load_accounts_every_request() {
    let cfg = ServeConfig {
        faults: Some(FaultLoad { rate_per_request: 0.08, seed: 0xD00F }),
        ..base_cfg(400, 2)
    };
    let r = serve(HardenConfig::haft(), &cfg);
    let f = r.faults.expect("fault report must be attached");
    assert_eq!(
        f.counts.total(),
        r.requests_offered,
        "outcome counts must sum to the request total"
    );
    assert_eq!(r.requests_offered, 400);
    assert!(f.injected_batches > 0, "an 8% per-request rate must hit some batches");
    assert!(f.availability_pct() > 50.0 && f.availability_pct() <= 100.0);
    assert!(f.sdc_per_million() >= 0.0);
    // Bookkeeping cross-checks: served requests are exactly the
    // non-failed ones, and latency samples cover them.
    assert_eq!(r.requests_served, f.counts.total() - f.counts.failed);
    assert_eq!(r.latency.count, r.requests_served);
}

/// Fault telemetry buckets every request outcome on the virtual clock:
/// interval totals sum back to the aggregate counts, the decayed
/// fault-rate estimate is a valid fraction, the time-resolved map is
/// deterministic, and fault-free runs carry no telemetry at all.
#[test]
fn fault_telemetry_intervals_sum_to_the_outcome_counts() {
    let cfg = ServeConfig {
        faults: Some(FaultLoad { rate_per_request: 0.08, seed: 0xD00F }),
        ..base_cfg(400, 2)
    };
    let r = serve(HardenConfig::haft(), &cfg);
    let t = r.fault_telemetry.as_ref().expect("telemetry attached with fault load");
    let f = r.faults.as_ref().unwrap();
    assert_eq!(t.intervals.values().map(|c| c.total()).sum::<u64>(), f.counts.total());
    assert_eq!(t.intervals.values().map(|c| c.corrected).sum::<u64>(), f.counts.served_corrected);
    assert_eq!(t.intervals.values().map(|c| c.sdc).sum::<u64>(), f.counts.sdc);
    let ewma = t.fault_rate_ewma(haft_serve::report::TELEMETRY_EWMA_ALPHA);
    assert!((0.0..=1.0).contains(&ewma), "ewma out of range: {ewma}");
    let again = serve(HardenConfig::haft(), &cfg);
    assert_eq!(again.fault_telemetry.as_ref(), Some(t));
    let clean = serve(HardenConfig::haft(), &base_cfg(100, 2));
    assert!(clean.fault_telemetry.is_none(), "no fault load, no telemetry");
}

/// HAFT recovers under load where native corrupts or dies: availability
/// ranks hardened above native at the same fault rate, and HAFT's
/// recovery shows up as corrected batches with a latency spike.
#[test]
fn hardening_buys_availability_under_load() {
    let cfg = ServeConfig {
        faults: Some(FaultLoad { rate_per_request: 0.10, seed: 0xBEEF }),
        ..base_cfg(300, 2)
    };
    let native = serve(HardenConfig::native(), &cfg).faults.unwrap();
    let haft = serve(HardenConfig::haft(), &cfg).faults.unwrap();
    assert!(
        haft.counts.sdc <= native.counts.sdc,
        "HAFT must not corrupt more replies than native (HAFT {} vs native {})",
        haft.counts.sdc,
        native.counts.sdc
    );
    assert!(
        native.counts.sdc + native.counts.failed > 0,
        "the native baseline should visibly suffer at a 10% rate"
    );
    assert!(haft.availability_pct() >= native.availability_pct());
    if haft.corrected_batches > 0 {
        assert!(haft.recovery_spike_factor() >= 1.0);
    }
}

/// The whole harness is deterministic: identical configuration ⇒
/// identical report, field for field.
#[test]
fn service_runs_are_deterministic() {
    let cfg = ServeConfig { faults: Some(FaultLoad::default()), ..base_cfg(200, 2) };
    let a = serve(HardenConfig::haft(), &cfg);
    let b = serve(HardenConfig::haft(), &cfg);
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.duration_ns, b.duration_ns);
    assert_eq!(a.batches, b.batches);
    assert_eq!(a.faults.unwrap().counts, b.faults.unwrap().counts);
}

/// More shards serve a closed loop faster (the scaling story the
/// ROADMAP's "heavy traffic" north star needs to be measurable).
#[test]
fn sharding_scales_closed_loop_throughput() {
    let mk = |shards: usize| ServeConfig {
        arrival: ArrivalMode::ClosedLoop { clients: 4 * shards, think_ns: 0 },
        ..base_cfg(400, shards)
    };
    let one = serve(HardenConfig::haft(), &mk(1));
    let four = serve(HardenConfig::haft(), &mk(4));
    assert!(
        four.achieved_rps > one.achieved_rps * 1.5,
        "4 shards ({:.0} rps) should clearly out-serve 1 ({:.0} rps)",
        four.achieved_rps,
        one.achieved_rps
    );
    assert_eq!(four.shards.len(), 4);
    // Key-hash routing under Zipfian heat: utilization is reported per
    // shard and at least one shard did real work.
    assert!(four.max_utilization() > 0.5);
}

/// The execution engine is invisible at the service level: the fused
/// engine and the reference interpreter produce the *same*
/// `ServiceReport`, field for field — same latency distribution, same
/// shard accounting, same fault ledger. Service pricing is defined by
/// the cycle model, not by how fast the host happens to dispatch ops.
#[test]
fn service_reports_are_engine_independent() {
    let w = kv_shard(KvSync::Atomics);
    let cfg = ServeConfig { faults: Some(FaultLoad::default()), ..base_cfg(200, 2) };
    for hc in [HardenConfig::native(), HardenConfig::haft(), HardenConfig::tmr()] {
        let interp = Experiment::workload(&w).harden(hc.clone()).engine(Engine::Interp).serve(&cfg);
        let fused = Experiment::workload(&w).harden(hc.clone()).engine(Engine::Fused).serve(&cfg);
        assert_eq!(interp, fused, "{}: engines priced the service differently", hc.label());
    }
}

/// The simulation is pinned orthogonally to the native mode (ISSUE 7):
/// `ServeMode::Sim` produces the identical report whether invoked via
/// `serve` or `serve_in(Sim)`, before or after native runs on the same
/// experiment at any worker count, under either engine — and the
/// simulation ignores saga grouping entirely (the join is a
/// runtime-layer concept), so attaching `SagaLoad` changes nothing.
#[test]
fn sim_reports_are_unaffected_by_the_native_mode() {
    use haft_serve::{SagaLoad, ServeMode};
    let w = kv_shard(KvSync::Atomics);
    let cfg = ServeConfig { faults: Some(FaultLoad::default()), ..base_cfg(200, 2) };
    let exp = Experiment::workload(&w).harden(HardenConfig::haft());
    let pinned = exp.serve(&cfg);
    assert_eq!(pinned, exp.serve_in(ServeMode::Sim, &cfg), "serve is serve_in(Sim)");
    for workers in [1usize, 2, 4] {
        let _ = exp.serve_in(ServeMode::Native { workers }, &cfg);
        assert_eq!(
            pinned,
            exp.serve_in(ServeMode::Sim, &cfg),
            "Sim report drifted after a {workers}-worker native run"
        );
    }
    let interp = Experiment::workload(&w)
        .harden(HardenConfig::haft())
        .engine(Engine::Interp)
        .serve_in(ServeMode::Sim, &cfg);
    assert_eq!(pinned, interp, "Sim must stay engine-independent");
    let with_sagas =
        exp.serve_in(ServeMode::Sim, &ServeConfig { sagas: Some(SagaLoad::default()), ..cfg });
    assert_eq!(pinned, with_sagas, "the simulation must not read the saga field");
}

/// Degenerate configurations panic instead of silently coercing.
#[test]
#[should_panic(expected = "at least one shard")]
fn zero_shards_is_rejected() {
    serve(HardenConfig::native(), &base_cfg(10, 0));
}
