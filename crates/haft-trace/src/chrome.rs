//! Chrome trace-event JSON export (Perfetto-loadable).
//!
//! The on-disk format is the classic `{"traceEvents": [...]}` document:
//! complete spans (`ph: "X"`) and thread-scoped instants (`ph: "i"`),
//! timestamps in fractional microseconds. Producers stamp events in
//! nanoseconds (virtual or wall — see the crate docs for the dual-clock
//! rule), so the writer divides by 1000. `validate_chrome_trace` is the
//! read side: CI and the `trace_serve` example re-parse what was written
//! and check it is well-formed and non-empty.

use std::path::Path;

use crate::event::{ArgValue, EventKind, TraceEvent};
use crate::json::Json;

/// Builds the `{"traceEvents": [...]}` document. Event `ts` is taken as
/// nanoseconds and rendered as Chrome's fractional microseconds.
pub fn to_chrome_json(events: &[TraceEvent]) -> Json {
    let rows = events.iter().map(event_json).collect();
    Json::Obj(vec![("traceEvents".to_string(), Json::Arr(rows))])
}

/// Renders the document as pretty-printed JSON text.
pub fn render_chrome(events: &[TraceEvent]) -> String {
    to_chrome_json(events).render()
}

/// Writes the document to `path`.
pub fn write_chrome(path: &Path, events: &[TraceEvent]) -> std::io::Result<()> {
    std::fs::write(path, render_chrome(events))
}

fn event_json(ev: &TraceEvent) -> Json {
    let mut members = vec![
        ("name".to_string(), Json::Str(ev.name.to_string())),
        ("cat".to_string(), Json::Str(ev.cat.to_string())),
    ];
    match ev.kind {
        EventKind::Span { dur } => {
            members.push(("ph".to_string(), Json::Str("X".to_string())));
            members.push(("ts".to_string(), Json::Num(ev.ts as f64 / 1e3)));
            members.push(("dur".to_string(), Json::Num(dur as f64 / 1e3)));
        }
        EventKind::Instant => {
            members.push(("ph".to_string(), Json::Str("i".to_string())));
            members.push(("ts".to_string(), Json::Num(ev.ts as f64 / 1e3)));
            members.push(("s".to_string(), Json::Str("t".to_string())));
        }
    }
    members.push(("pid".to_string(), Json::Num(ev.pid as f64)));
    members.push(("tid".to_string(), Json::Num(ev.tid as f64)));
    if !ev.args.is_empty() {
        let args = ev
            .args
            .iter()
            .map(|(k, v)| {
                let val = match v {
                    ArgValue::Num(n) => Json::Num(*n),
                    ArgValue::Str(s) => Json::Str(s.clone()),
                };
                (k.to_string(), val)
            })
            .collect();
        members.push(("args".to_string(), Json::Obj(args)));
    }
    Json::Obj(members)
}

/// Parses `text` as a Chrome trace document and returns event counts per
/// category (first-seen order). Errors on malformed JSON, a missing or
/// empty `traceEvents` array, or an event without the required members.
pub fn validate_chrome_trace(text: &str) -> Result<Vec<(String, usize)>, String> {
    let doc = Json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array".to_string())?;
    if events.is_empty() {
        return Err("trace contains no events".to_string());
    }
    let mut counts: Vec<(String, usize)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let cat =
            ev.get("cat").and_then(Json::as_str).ok_or(format!("event {i}: missing `cat`"))?;
        for key in ["name", "ph"] {
            ev.get(key).and_then(Json::as_str).ok_or(format!("event {i}: missing `{key}`"))?;
        }
        ev.get("ts").and_then(Json::as_f64).ok_or(format!("event {i}: missing `ts`"))?;
        match counts.iter_mut().find(|(c, _)| c == cat) {
            Some((_, n)) => *n += 1,
            None => counts.push((cat.to_string(), 1)),
        }
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_round_trips_through_the_validator() {
        let events = vec![
            TraceEvent::span("vm", "phase.worker", 2_000, 500).lane(0, 1),
            TraceEvent::instant("vm", "vote.correct", 2_100).lane(0, 1),
            TraceEvent::span("htm", "tx", 2_050, 80).lane(0, 1).arg("abort", "conflict"),
        ];
        let text = render_chrome(&events);
        let counts = validate_chrome_trace(&text).unwrap();
        assert_eq!(counts, vec![("vm".to_string(), 2), ("htm".to_string(), 1)]);
        // Timestamps land in microseconds.
        let doc = Json::parse(&text).unwrap();
        let first = &doc.get("traceEvents").unwrap().as_arr().unwrap()[0];
        assert_eq!(first.get("ts").unwrap().as_f64(), Some(2.0));
        assert_eq!(first.get("dur").unwrap().as_f64(), Some(0.5));
        assert_eq!(first.get("ph").unwrap().as_str(), Some("X"));
    }

    #[test]
    fn validator_rejects_empty_and_malformed_traces() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": []}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": [{\"name\": \"x\"}]}").is_err());
        assert!(validate_chrome_trace("not json").is_err());
    }
}
