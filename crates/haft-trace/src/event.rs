//! The structured trace event: one span or instant on some clock.
//!
//! Events are deliberately clock-agnostic: `ts` is a plain `u64` in
//! whatever unit the producer runs on. The VM stamps raw virtual cycles
//! (its `Scoreboard` clock), the serving layers stamp virtual
//! nanoseconds, and the native pool stamps host-wall nanoseconds — each
//! producer rescales embedded events into its own timeline with
//! [`TraceEvent::rescale`] before merging, so one exported trace holds a
//! single consistent clock. Names and categories are `&'static str` by
//! design: pushing an event allocates only when it carries string args,
//! which keeps the hot-path cost at a bounds check and a few stores.

/// How an event occupies time: an interval or a point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// An interval starting at `ts` and lasting `dur` (same unit).
    Span { dur: u64 },
    /// A point in time.
    Instant,
}

/// A typed argument value attached to an event.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    Num(f64),
    Str(String),
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Num(v)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::Num(v as f64)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::Num(v as f64)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One trace event. `pid`/`tid` follow the Chrome trace-event model:
/// `pid` groups a subsystem (VM, serve, pool), `tid` a lane within it
/// (VM thread, shard, worker).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Subsystem category (`"vm"`, `"htm"`, `"serve"`, `"pool"`, `"saga"`).
    pub cat: &'static str,
    /// Event name within the category.
    pub name: &'static str,
    pub kind: EventKind,
    /// Start time in the producer's clock unit (see module docs).
    pub ts: u64,
    pub pid: u32,
    pub tid: u32,
    /// Key/value payload; keys are static, values may allocate.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// A span covering `[ts, ts + dur)`.
    pub fn span(cat: &'static str, name: &'static str, ts: u64, dur: u64) -> Self {
        TraceEvent {
            cat,
            name,
            kind: EventKind::Span { dur },
            ts,
            pid: 0,
            tid: 0,
            args: Vec::new(),
        }
    }

    /// A point event at `ts`.
    pub fn instant(cat: &'static str, name: &'static str, ts: u64) -> Self {
        TraceEvent { cat, name, kind: EventKind::Instant, ts, pid: 0, tid: 0, args: Vec::new() }
    }

    /// Builder: assigns the process/thread lane.
    pub fn lane(mut self, pid: u32, tid: u32) -> Self {
        self.pid = pid;
        self.tid = tid;
        self
    }

    /// Builder: attaches one argument.
    pub fn arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Self {
        self.args.push((key, value.into()));
        self
    }

    /// End time (`ts` for instants).
    pub fn end(&self) -> u64 {
        match self.kind {
            EventKind::Span { dur } => self.ts + dur,
            EventKind::Instant => self.ts,
        }
    }

    /// Re-expresses this event on an embedding timeline: `ts` becomes
    /// `offset + ts * scale` (durations scale without the offset). Used
    /// when splicing VM-cycle events into a virtual-nanosecond timeline.
    pub fn rescale(&mut self, scale: f64, offset: u64) {
        self.ts = offset + (self.ts as f64 * scale).round() as u64;
        if let EventKind::Span { dur } = &mut self.kind {
            *dur = (*dur as f64 * scale).round() as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let ev = TraceEvent::span("vm", "tx", 100, 40).lane(1, 2).arg("abort", "conflict");
        assert_eq!(ev.ts, 100);
        assert_eq!(ev.end(), 140);
        assert_eq!(ev.pid, 1);
        assert_eq!(ev.tid, 2);
        assert_eq!(ev.args, vec![("abort", ArgValue::Str("conflict".into()))]);
        assert_eq!(TraceEvent::instant("vm", "vote", 7).end(), 7);
    }

    #[test]
    fn rescale_maps_cycles_onto_an_embedding_timeline() {
        // 2 GHz: one cycle is half a nanosecond.
        let mut ev = TraceEvent::span("vm", "phase", 100, 200);
        ev.rescale(0.5, 1_000);
        assert_eq!(ev.ts, 1_050);
        assert_eq!(ev.kind, EventKind::Span { dur: 100 });
        let mut point = TraceEvent::instant("vm", "vote", 10);
        point.rescale(0.5, 1_000);
        assert_eq!(point.ts, 1_005);
    }
}
