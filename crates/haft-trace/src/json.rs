//! A minimal JSON value, writer, and parser.
//!
//! The workspace is offline (no registry access, see `shims/README.md`),
//! so snapshots are serialized with this ~200-line subset instead of
//! serde: objects preserve insertion order, numbers are `f64` written via
//! Rust's shortest-round-trip `Display`, and the parser accepts exactly
//! the JSON this writer emits plus ordinary hand-edits (whitespace, any
//! member order, string escapes).

/// A JSON value. Object members keep insertion order so serialized
/// snapshots are stable and diff cleanly in version control.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    ///
    /// # Panics
    ///
    /// Panics on non-finite numbers — JSON cannot represent them, and a
    /// non-finite measurement is a bug upstream.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                assert!(n.is_finite(), "JSON cannot represent {n}");
                out.push_str(&format!("{n}"));
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(members) if members.is_empty() => out.push_str("{}"),
            Json::Obj(members) => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(&pad);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
                }
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (surrounding whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Snapshots never emit surrogate pairs; reject
                            // rather than mis-decode.
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("non-scalar \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n: f64 = text.parse().map_err(|_| self.err("bad number"))?;
        if !n.is_finite() {
            return Err(self.err("non-finite number"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    #[test]
    fn round_trips_the_snapshot_shape() {
        let doc = obj(vec![
            ("section", Json::Str("overheads".into())),
            ("mode", Json::Str("fast".into())),
            (
                "rows",
                Json::Arr(vec![
                    Json::Arr(vec![Json::Str("histogram".into()), Json::Num(1.91)]),
                    Json::Arr(vec![Json::Str("pca".into()), Json::Num(0.5)]),
                ]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for v in [0.0, -1.5, 2.26, 1e-9, 13000.0, 0.1 + 0.2, f64::MAX] {
            let text = Json::Num(v).render();
            assert_eq!(Json::parse(&text).unwrap().as_f64().unwrap(), v, "{text}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a \"quoted\"\nline\twith \\ and \u{1}";
        let text = Json::Str(s.into()).render();
        assert_eq!(Json::parse(&text).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn accessors() {
        let doc = obj(vec![("k", Json::Num(1.0)), ("s", Json::Str("v".into()))]);
        assert_eq!(doc.get("k").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("v"));
        assert!(doc.get("missing").is_none());
        assert!(Json::Num(1.0).get("k").is_none());
        assert!(Json::Arr(vec![]).as_arr().unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "nul", "1 2", "\"unterminated", "inf"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn accepts_hand_edited_whitespace_and_order() {
        let text = "  {\"b\" :2,\n\"a\":[ 1 , 2 ]}  ";
        let doc = Json::parse(text).unwrap();
        assert_eq!(doc.get("b").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("a").and_then(Json::as_arr).unwrap().len(), 2);
    }
}
