//! `haft-trace` — the observability layer: structured trace events,
//! Chrome trace-event export, and the unified metrics registry.
//!
//! Every execution surface in the workspace (VM, HTM, DES serving,
//! native runtime) can emit [`TraceEvent`]s into a [`TraceSink`]; tracing
//! is runtime-switchable and strictly observational — events record the
//! virtual clock, they never advance it, so a traced run is bit-identical
//! to an untraced one (pinned by the root differential tests).
//!
//! # The dual-clock rule
//!
//! Two clocks exist: the *virtual* clock (the VM's cycle scoreboard,
//! scaled to nanoseconds by the serving layers) and the *host wall*
//! clock (only the native runtime has one worth recording). Simulated
//! activity (VM phases, transactions, batches, sagas) is timestamped on
//! the virtual clock in every mode, so a DES run and its native twin
//! render on comparable timelines. Native-only scheduling activity
//! (steals, actor drains) is timestamped on the wall clock under its own
//! `pid`, and events that live on both clocks carry the other one in
//! `args` — a native trace can be visually diffed against its simulated
//! twin in one Perfetto window.
//!
//! # Sinks
//!
//! [`TraceBuf`] is the unbounded buffer for bounded producers (one VM
//! run, the single-threaded DES). [`Ring`] is the bounded
//! overwrite-oldest ring for the native pool: one ring per worker and
//! one per shard actor, each exclusively owned (the pool's scheduling
//! CAS guarantees single-owner access), merged only after the pool
//! joins — the hot path never takes a shared trace lock.

pub mod chrome;
pub mod json;

mod event;
mod metrics;
mod sink;

pub use chrome::{render_chrome, to_chrome_json, validate_chrome_trace, write_chrome};
pub use event::{ArgValue, EventKind, TraceEvent};
pub use metrics::MetricsSnapshot;
pub use sink::{Ring, TraceBuf, TraceSink};
