//! The unified metrics registry.
//!
//! One flat, sorted `name → value` map with a stable dotted naming
//! scheme (`vm.cycles.worker`, `htm.aborts.conflict`, `pool.steals`,
//! `serve.latency_us.p99`). Producers across the workspace export their
//! scattered counters into one [`MetricsSnapshot`] so reports, the SLO
//! controller, and tests query a single schema instead of five stat
//! structs. Names are part of the public contract — a pin test in the
//! facade crate locks the schema.

use crate::json::Json;

/// A flat snapshot of named scalar metrics, sorted by name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    entries: Vec<(String, f64)>,
}

impl MetricsSnapshot {
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Sets `name` to `value`, replacing any previous value.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite value — a metric that cannot be serialized
    /// is a bug upstream.
    pub fn set(&mut self, name: impl Into<String>, value: f64) {
        let name = name.into();
        assert!(value.is_finite(), "metric {name}: non-finite value");
        match self.entries.binary_search_by(|(k, _)| k.as_str().cmp(&name)) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (name, value)),
        }
    }

    /// Adds `value` to `name` (counter semantics; missing starts at 0).
    pub fn add(&mut self, name: impl Into<String>, value: f64) {
        let name = name.into();
        let base = self.get(&name).unwrap_or(0.0);
        self.set(name, base + value);
    }

    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries.binary_search_by(|(k, _)| k.as_str().cmp(name)).ok().map(|i| self.entries[i].1)
    }

    /// All metric names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(k, _)| k.as_str()).collect()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Folds another snapshot in with counter (`add`) semantics.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in other.iter() {
            self.add(name, value);
        }
    }

    /// The snapshot as a flat JSON object (sorted member order).
    pub fn to_json(&self) -> Json {
        Json::Obj(self.entries.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_sorted_names() {
        let mut m = MetricsSnapshot::new();
        m.set("vm.cycles.worker", 100.0);
        m.set("htm.commits", 7.0);
        m.set("vm.cycles.worker", 120.0);
        assert_eq!(m.get("vm.cycles.worker"), Some(120.0));
        assert_eq!(m.get("missing"), None);
        assert_eq!(m.names(), vec!["htm.commits", "vm.cycles.worker"]);
    }

    #[test]
    fn add_and_merge_are_counter_semantics() {
        let mut a = MetricsSnapshot::new();
        a.add("pool.steals", 2.0);
        a.add("pool.steals", 3.0);
        let mut b = MetricsSnapshot::new();
        b.set("pool.steals", 10.0);
        b.set("serve.batches", 1.0);
        a.merge(&b);
        assert_eq!(a.get("pool.steals"), Some(15.0));
        assert_eq!(a.get("serve.batches"), Some(1.0));
    }

    #[test]
    fn json_export_is_sorted() {
        let mut m = MetricsSnapshot::new();
        m.set("b", 2.0);
        m.set("a", 1.0);
        let text = m.to_json().render();
        assert!(text.find("\"a\"").unwrap() < text.find("\"b\"").unwrap());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_values_are_rejected() {
        MetricsSnapshot::new().set("x", f64::NAN);
    }
}
