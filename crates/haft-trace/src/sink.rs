//! Event sinks: the plain buffer (DES/VM) and the bounded ring
//! (native runtime).
//!
//! Neither sink synchronizes — each is owned by exactly one execution
//! context at a time. The DES is single-threaded, the VM runs inside one
//! `Vm::run` call, and the native runtime gives every worker its own ring
//! plus every shard actor its own ring (the pool's `QUEUED → RUNNING` CAS
//! already guarantees a single worker drains an actor at a time). Rings
//! are merged only after the pool joins, so the hot path never contends
//! on a shared trace lock.

use std::collections::VecDeque;

use crate::event::TraceEvent;

/// Anything that accepts trace events.
pub trait TraceSink {
    fn push(&mut self, ev: TraceEvent);
}

/// An unbounded event buffer for bounded producers (one VM run, the DES).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceBuf {
    pub events: Vec<TraceEvent>,
}

impl TraceBuf {
    pub fn new() -> Self {
        TraceBuf::default()
    }

    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Moves the buffered events out, leaving this buffer empty.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Splices `events` in after rescaling each onto this buffer's
    /// timeline (see [`TraceEvent::rescale`]).
    pub fn extend_rescaled(&mut self, events: Vec<TraceEvent>, scale: f64, offset: u64) {
        self.events.extend(events.into_iter().map(|mut ev| {
            ev.rescale(scale, offset);
            ev
        }));
    }
}

impl TraceSink for TraceBuf {
    fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
}

/// A bounded ring for long-running single-owner producers (pool workers,
/// shard actors): when full it overwrites the oldest event and counts the
/// drop, so a hot worker can never grow the trace without bound — recent
/// history wins.
#[derive(Clone, Debug)]
pub struct Ring {
    cap: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Ring {
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "a trace ring needs room for at least one event");
        Ring { cap, buf: VecDeque::with_capacity(cap), dropped: 0 }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the ring: surviving events in arrival order, plus the
    /// overwrite count.
    pub fn into_events(self) -> (Vec<TraceEvent>, u64) {
        (self.buf.into_iter().collect(), self.dropped)
    }
}

impl TraceSink for Ring {
    fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buf_takes_and_rescales() {
        let mut buf = TraceBuf::new();
        buf.push(TraceEvent::instant("vm", "a", 10));
        let mut outer = TraceBuf::new();
        outer.extend_rescaled(buf.take(), 2.0, 100);
        assert!(buf.is_empty());
        assert_eq!(outer.len(), 1);
        assert_eq!(outer.events[0].ts, 120);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut ring = Ring::new(2);
        for ts in 0..5u64 {
            ring.push(TraceEvent::instant("pool", "steal", ts));
        }
        assert_eq!(ring.len(), 2);
        let (events, dropped) = ring.into_events();
        assert_eq!(dropped, 3);
        assert_eq!(events.iter().map(|e| e.ts).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn zero_capacity_ring_is_rejected() {
        Ring::new(0);
    }
}
