//! Superscalar scoreboard cost model.
//!
//! Each simulated thread owns a scoreboard: instructions issue in a
//! `width`-wide stream (structural constraint `issued / width`) but
//! complete out of order at `max(structural, operands_ready) + latency`.
//! Thread time is the maximum completion time seen. This abstracts a
//! Haswell-class out-of-order core just enough for the paper's performance
//! claims to be *mechanistic* rather than curve-fit:
//!
//! * a latency-bound kernel (serial FP accumulation, pointer chasing) has
//!   idle issue slots, so the ILR shadow flow — which depends only on
//!   shadow values — executes "for free" (paper: matrixmul, +5 %);
//! * a throughput-bound kernel saturates the issue width, so doubling the
//!   instruction stream roughly doubles runtime (paper: vips, 4× with the
//!   extra TX bookkeeping);
//! * the thread-local transaction counter forms a serial
//!   load-add-store-compare chain through `counter_ready`, reproducing the
//!   paper's observation that counter updates can cost more than the
//!   transactions they save (vips vs. vips-nc).

use haft_ir::inst::{BinOp, Op, UnOp};

/// Latency and width parameters of the simulated core.
#[derive(Clone, Debug)]
pub struct CostConfig {
    /// Sustainable issue width (instructions per cycle).
    pub width: u64,
    /// Simple ALU / compare / move latency.
    pub lat_int: u64,
    /// Integer multiply.
    pub lat_mul: u64,
    /// Integer divide.
    pub lat_div: u64,
    /// FP add/sub.
    pub lat_fadd: u64,
    /// FP multiply.
    pub lat_fmul: u64,
    /// FP divide.
    pub lat_fdiv: u64,
    /// FP square root.
    pub lat_fsqrt: u64,
    /// Transcendentals (exp/ln).
    pub lat_ftrans: u64,
    /// L1-hit load.
    pub lat_load_hit: u64,
    /// L1-miss load (L2/L3 blend).
    pub lat_load_miss: u64,
    /// Store (retires into the store buffer).
    pub lat_store: u64,
    /// Locked/atomic memory operation.
    pub lat_atomic: u64,
    /// Taken-branch / fall-through cost.
    pub lat_branch: u64,
    /// Extra cycles on a mispredicted conditional branch.
    pub mispredict_penalty: u64,
    /// Call / return bookkeeping.
    pub lat_call: u64,
    /// `XBEGIN` (register checkpoint + tracking on).
    pub lat_tx_begin: u64,
    /// `XEND` (commit, write-set flush).
    pub lat_tx_end: u64,
    /// Conditional-split check when the threshold is not reached
    /// (load + compare + predicted branch on the counter).
    pub lat_tx_split_check: u64,
    /// Counter increment (load-add-store on the thread-local counter).
    pub lat_counter_inc: u64,
    /// Cycles wasted by an abort beyond the rolled-back work
    /// (pipeline flush + restart).
    pub abort_penalty: u64,
    /// Uncontended lock acquire.
    pub lat_lock: u64,
    /// Lock release.
    pub lat_unlock: u64,
    /// Majority vote over three value copies (TMR backend): two compares
    /// plus a conditional move, fused.
    pub lat_vote: u64,
    /// Externalization (`emit`) — a syscall-ish cost.
    pub lat_emit: u64,
    /// Heap allocation.
    pub lat_alloc: u64,
    /// Reorder-buffer depth: an instruction cannot start before the one
    /// issued `rob` slots earlier has completed. Bounds how far the
    /// out-of-order core can overlap independent dependency chains
    /// (without it, back-to-back accumulator loops would overlap without
    /// limit and everything would look throughput-bound).
    pub rob: usize,
}

impl Default for CostConfig {
    fn default() -> Self {
        CostConfig {
            width: 3,
            lat_int: 1,
            lat_mul: 3,
            lat_div: 21,
            lat_fadd: 3,
            lat_fmul: 5,
            lat_fdiv: 18,
            lat_fsqrt: 20,
            lat_ftrans: 30,
            lat_load_hit: 4,
            lat_load_miss: 32,
            lat_store: 1,
            lat_atomic: 22,
            lat_branch: 1,
            mispredict_penalty: 14,
            lat_call: 2,
            lat_tx_begin: 45,
            lat_tx_end: 32,
            lat_tx_split_check: 3,
            lat_counter_inc: 4,
            abort_penalty: 160,
            lat_lock: 40,
            lat_unlock: 16,
            lat_vote: 2,
            lat_emit: 150,
            lat_alloc: 40,
            rob: 192,
        }
    }
}

impl CostConfig {
    /// Latency of a compute opcode (memory, control, and intrinsics are
    /// priced by the VM, which has the required context).
    pub fn compute_latency(&self, op: &Op) -> u64 {
        match op {
            Op::Bin { op, .. } => match op {
                BinOp::Mul => self.lat_mul,
                BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem => self.lat_div,
                BinOp::FAdd | BinOp::FSub => self.lat_fadd,
                BinOp::FMul => self.lat_fmul,
                BinOp::FDiv => self.lat_fdiv,
                _ => self.lat_int,
            },
            Op::Un { op, .. } => match op {
                UnOp::FSqrt => self.lat_fsqrt,
                UnOp::FExp | UnOp::FLn => self.lat_ftrans,
                UnOp::FNeg | UnOp::FAbs => self.lat_int,
                _ => self.lat_int,
            },
            Op::Cmp { .. }
            | Op::Move { .. }
            | Op::Cast { .. }
            | Op::Select { .. }
            | Op::Gep { .. } => self.lat_int,
            // Phis are renames resolved at the branch.
            Op::Phi { .. } => 0,
            Op::ThreadId | Op::NumThreads => self.lat_int,
            _ => self.lat_int,
        }
    }
}

/// Per-thread issue/completion clock.
#[derive(Clone, Debug)]
pub struct Scoreboard {
    /// Instructions issued so far.
    pub issued: u64,
    /// Completion time of the latest-finishing instruction.
    pub clock: u64,
    /// Earliest time the next instruction may start (set by pipeline
    /// flushes: mispredicts, aborts, blocking).
    pub floor: u64,
    /// Reorder-window depth.
    rob: usize,
    /// Completion times of the last `rob` instructions (ring buffer).
    ring: Vec<u64>,
    /// `issued / div_width` and `issued % div_width`, maintained
    /// incrementally so the hot issue path avoids two integer divisions
    /// (`structural` and the ring slot). `div_width` caches the width the
    /// pair was computed against; a width change (possible only if a
    /// caller varies `CostConfig::width` mid-run) recomputes from scratch.
    q: u64,
    r: u64,
    div_width: u64,
    /// `issued % rob` (the ring slot), maintained incrementally.
    slot: usize,
}

impl Default for Scoreboard {
    fn default() -> Self {
        Scoreboard {
            issued: 0,
            clock: 0,
            floor: 0,
            rob: 192,
            ring: vec![0; 192],
            q: 0,
            r: 0,
            div_width: 0,
            slot: 0,
        }
    }
}

impl Scoreboard {
    /// Creates a scoreboard with an explicit reorder-window depth.
    pub fn with_rob(rob: usize) -> Self {
        let rob = rob.max(1);
        Scoreboard { rob, ring: vec![0; rob], ..Default::default() }
    }

    /// `issued / width.max(1)`, via the incrementally maintained pair.
    #[inline]
    fn structural(&mut self, width: u64) -> u64 {
        let w = width.max(1);
        if w != self.div_width {
            self.div_width = w;
            self.q = self.issued / w;
            self.r = self.issued % w;
        }
        self.q
    }

    /// Advances `issued` and the derived quotient/remainder/slot.
    #[inline]
    fn advance_issued(&mut self) {
        self.issued += 1;
        self.r += 1;
        if self.r == self.div_width {
            self.r = 0;
            self.q += 1;
        }
        self.slot += 1;
        if self.slot == self.rob {
            self.slot = 0;
        }
    }

    /// Issues one instruction whose operands are ready at `ready` and that
    /// takes `latency` cycles; returns its completion time.
    #[inline(always)]
    pub fn issue(&mut self, width: u64, ready: u64, latency: u64) -> u64 {
        let structural = self.structural(width);
        // Reorder-window constraint: wait for the instruction issued
        // `rob` slots ago to complete.
        let slot = self.slot;
        // The ring starts pre-filled with zeros, so `ring[slot]` is the
        // completion time of the op issued `rob` slots ago (or zero while
        // the window has never filled) with no emptiness branch.
        let rob_ready = self.ring[slot];
        self.advance_issued();
        let start = structural.max(ready).max(self.floor).max(rob_ready);
        let done = start + latency;
        self.ring[slot] = done;
        self.clock = self.clock.max(done);
        done
    }

    /// Raises the floor (pipeline flush) to `t`.
    #[inline]
    pub fn flush_to(&mut self, t: u64) {
        self.floor = self.floor.max(t);
        self.clock = self.clock.max(t);
    }

    /// Issues a fully serializing instruction: it waits for *all* earlier
    /// work to complete (pipeline drain) and nothing later starts before
    /// it finishes. Models `XBEGIN`/`XEND`, syscalls, and lock operations.
    pub fn issue_serial(&mut self, width: u64, latency: u64) -> u64 {
        let structural = self.structural(width);
        let slot = self.slot;
        self.advance_issued();
        let start = structural.max(self.clock).max(self.floor);
        let done = start + latency;
        self.ring[slot] = done;
        self.clock = done;
        self.floor = done;
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haft_ir::inst::Operand;
    use haft_ir::types::Ty;

    #[test]
    fn independent_ops_pipeline_at_width() {
        let mut sb = Scoreboard::default();
        // 30 independent 1-cycle ops on a 3-wide machine: ~10 cycles.
        let mut last = 0;
        for _ in 0..30 {
            last = sb.issue(3, 0, 1);
        }
        assert_eq!(last, 10);
        assert_eq!(sb.clock, 10);
    }

    #[test]
    fn dependent_chain_is_latency_bound() {
        let mut sb = Scoreboard::default();
        // Chain of 10 ops, each 5 cycles, each depending on the previous.
        let mut ready = 0;
        for _ in 0..10 {
            ready = sb.issue(3, ready, 5);
        }
        assert_eq!(ready, 50);
    }

    #[test]
    fn shadow_flow_hides_in_idle_slots() {
        // Master chain: 10 dependent 5-cycle ops. Shadow chain: same, but
        // independent of the master. Interleaved on a 3-wide machine the
        // total time stays ~50 cycles, not 100 — the ILR free-lunch case.
        let mut sb = Scoreboard::default();
        let (mut m_ready, mut s_ready) = (0, 0);
        for _ in 0..10 {
            m_ready = sb.issue(3, m_ready, 5);
            s_ready = sb.issue(3, s_ready, 5);
        }
        assert!(sb.clock <= 56, "clock = {}", sb.clock);
    }

    #[test]
    fn throughput_bound_code_doubles() {
        // 300 independent ops at width 3 = 100 cycles; 600 = 200 cycles.
        let mut a = Scoreboard::default();
        for _ in 0..300 {
            a.issue(3, 0, 1);
        }
        let mut b = Scoreboard::default();
        for _ in 0..600 {
            b.issue(3, 0, 1);
        }
        assert!(b.clock >= 2 * a.clock - 2);
    }

    #[test]
    fn floor_delays_subsequent_issues() {
        let mut sb = Scoreboard::default();
        sb.issue(3, 0, 1);
        sb.flush_to(100);
        let done = sb.issue(3, 0, 1);
        assert_eq!(done, 101);
    }

    #[test]
    fn latencies_by_opcode_class() {
        let c = CostConfig::default();
        let add = Op::Bin {
            op: BinOp::Add,
            ty: Ty::I64,
            a: Operand::imm(0, Ty::I64),
            b: Operand::imm(0, Ty::I64),
        };
        let div = Op::Bin {
            op: BinOp::SDiv,
            ty: Ty::I64,
            a: Operand::imm(0, Ty::I64),
            b: Operand::imm(1, Ty::I64),
        };
        let sqrt = Op::Un { op: UnOp::FSqrt, ty: Ty::F64, a: Operand::f64(1.0) };
        assert_eq!(c.compute_latency(&add), c.lat_int);
        assert_eq!(c.compute_latency(&div), c.lat_div);
        assert_eq!(c.compute_latency(&sqrt), c.lat_fsqrt);
        assert_eq!(c.compute_latency(&Op::Phi { ty: Ty::I64, incomings: vec![] }), 0);
    }
}
