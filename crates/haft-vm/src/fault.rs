//! Single-event-upset fault plans.
//!
//! The paper's injector (§4.2) picks a random dynamic occurrence of a
//! register-writing instruction from an execution trace and XORs one of
//! its output registers with a random integer. A [`FaultPlan`] is exactly
//! that choice; the VM applies it when the global dynamic counter of
//! register-writing instructions reaches `occurrence`.

use haft_ir::types::Ty;

/// One planned single-event upset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Zero-based index into the dynamic stream of register-writing
    /// instructions (across all threads, in deterministic schedule order).
    pub occurrence: u64,
    /// XOR mask applied to the chosen output register.
    pub xor_mask: u64,
}

impl FaultPlan {
    /// Restricts the mask to the bits of the destination type, ensuring
    /// the flip is visible (at least one bit set).
    ///
    /// An `i1` destination models a corrupted status flag (`EFLAGS`): the
    /// paper calls out these faults as the cause of wrong branches.
    pub fn effective_mask(&self, ty: Ty) -> u64 {
        let m = self.xor_mask & ty.mask();
        if m == 0 {
            1
        } else {
            m
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_is_truncated_to_type() {
        let p = FaultPlan { occurrence: 0, xor_mask: 0xffff_0000_0000_ff00 };
        assert_eq!(p.effective_mask(Ty::I64), 0xffff_0000_0000_ff00);
        assert_eq!(p.effective_mask(Ty::I8), 1, "masked to zero -> forced single bit");
        assert_eq!(p.effective_mask(Ty::I16), 0xff00);
    }

    #[test]
    fn i1_faults_flip_the_flag() {
        let p = FaultPlan { occurrence: 0, xor_mask: 0xdead_beef };
        assert_eq!(p.effective_mask(Ty::I1), 1);
        let p2 = FaultPlan { occurrence: 0, xor_mask: 0x2 };
        assert_eq!(p2.effective_mask(Ty::I1), 1, "even-mask still flips bit 0");
    }
}
