//! Multithreaded IR interpreter with a superscalar cost model.
//!
//! This crate is the reproduction's stand-in for the paper's Haswell
//! testbed. It executes [`haft_ir`] modules on N simulated threads and
//! reports *cycles* from a dataflow scoreboard: each dynamic instruction
//! issues when its operands are ready and an issue slot is free, and
//! completes after an opcode-specific latency. Because the ILR shadow flow
//! is data-independent from the master flow, hardened code hides its extra
//! instructions in spare issue slots exactly when the native code has low
//! instruction-level parallelism — which is the mechanism behind the
//! paper's headline "2× mean overhead, 1.05× for matrixmul, 4× for vips"
//! result.
//!
//! The VM also implements the HAFT runtime: the `tx_*` intrinsics backed
//! by the [`haft_htm`] simulator (begin/commit/abort with register and
//! memory rollback, bounded retries, non-transactional fallback), lock
//! elision, externalization (`emit`), and the single-event-upset fault
//! injection hook used by `haft-faults`.

pub mod cost;
pub mod fault;
pub mod mem;
pub mod vm;

pub use cost::CostConfig;
pub use fault::FaultPlan;
pub use mem::{Memory, Trap};
pub use vm::{
    CycleProfile, Engine, FaultDetector, FaultSite, Forensics, FuseStats, PhaseCycles, ProfileCell,
    ProfileOpClass, RunOutcome, RunResult, RunSpec, Vm, VmConfig,
};

// The `haft-runtime` pool runs one VM per shard actor across OS threads,
// sharing the hardened module and configuration by value or borrow. Pin
// the thread-safety audit at compile time: nothing in the execution
// state may grow interior mutability (Rc, RefCell, raw pointers) without
// this failing to build.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<haft_ir::module::Module>();
    assert_send_sync::<VmConfig>();
    assert_send_sync::<RunSpec<'static>>();
    assert_send_sync::<RunResult>();
    assert_send_sync::<CostConfig>();
    assert_send_sync::<FaultPlan>();
};
