//! Flat simulated memory with bounds checking.

use haft_ir::module::{GlobalInit, Module};

/// A run-time fault the "operating system" would catch (paper Table 1:
/// *OS-detected*).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trap {
    /// Access outside the mapped region.
    OutOfBounds { addr: u64, len: u64 },
    /// Integer division or remainder by zero.
    DivByZero,
    /// Indirect call through a value that is not a function address.
    BadIndirectCall { target: u64 },
    /// Call-stack depth exceeded the limit.
    StackOverflow,
    /// Heap exhausted.
    OutOfMemory,
    /// Executed a phi outside the normal branch protocol (malformed IR).
    MalformedIr,
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::OutOfBounds { addr, len } => {
                write!(f, "out-of-bounds access at {addr:#x} len {len}")
            }
            Trap::DivByZero => write!(f, "division by zero"),
            Trap::BadIndirectCall { target } => {
                write!(f, "indirect call to non-function {target:#x}")
            }
            Trap::StackOverflow => write!(f, "call stack overflow"),
            Trap::OutOfMemory => write!(f, "heap exhausted"),
            Trap::MalformedIr => write!(f, "malformed IR"),
        }
    }
}

/// Byte-addressable flat memory holding globals and the bump heap.
///
/// Address 0 is never mapped so that null-pointer dereferences trap, the
/// way they would under an MMU. Globals are laid out from address 64 with
/// 64-byte alignment, so distinct globals never share a cache line; any
/// sharing a workload exhibits is therefore deliberate.
#[derive(Clone, Debug)]
pub struct Memory {
    /// Physical backing: grows on demand up to `size`. Untouched memory
    /// reads as zero either way, so laziness is unobservable; it exists
    /// because zeroing the full address space on every `Vm::run` costs
    /// more than short workloads themselves.
    bytes: Vec<u8>,
    /// Logical size: the bounds-check limit.
    size: u64,
    heap_next: u64,
    /// Base address of each global, indexed by `GlobalId`.
    pub global_bases: Vec<u64>,
}

impl Memory {
    /// Creates a memory of `size` bytes and lays out the module's globals.
    ///
    /// # Panics
    ///
    /// Panics if the globals do not fit.
    pub fn new(m: &Module, size: u64) -> Self {
        let mut next = 64u64;
        let mut global_bases = Vec::with_capacity(m.globals.len());
        for g in &m.globals {
            let base = next;
            assert!(
                base + g.size <= size,
                "globals exceed memory: need {} have {}",
                base + g.size,
                size
            );
            global_bases.push(base);
            next = (base + g.size + 63) & !63;
        }
        let mut bytes = vec![0u8; (next as usize).min(size as usize)];
        for (g, &base) in m.globals.iter().zip(&global_bases) {
            if let GlobalInit::Bytes(init) = &g.init {
                bytes[base as usize..base as usize + init.len()].copy_from_slice(init);
            }
        }
        Memory { bytes, size, heap_next: next, global_bases }
    }

    /// Total mapped size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Ensures the backing store physically covers `end` bytes.
    /// `end` has already passed the bounds check against `size`.
    #[cold]
    fn grow_to(&mut self, end: usize) {
        // Geometric growth bounded by the logical size keeps the
        // amortized cost O(high-water mark).
        let target = (self.bytes.len() * 2).clamp(end, self.size as usize).max(end);
        self.bytes.resize(target, 0);
    }

    /// Bump-allocates `size` bytes, 64-byte aligned.
    pub fn alloc(&mut self, size: u64) -> Result<u64, Trap> {
        let base = self.heap_next;
        let end = base.checked_add(size).ok_or(Trap::OutOfMemory)?;
        if end > self.size() {
            return Err(Trap::OutOfMemory);
        }
        self.heap_next = (end + 63) & !63;
        Ok(base)
    }

    fn check(&self, addr: u64, len: u64) -> Result<(), Trap> {
        // Address 0..64 is the unmapped "null page".
        if addr < 64 || addr.saturating_add(len) > self.size() {
            return Err(Trap::OutOfBounds { addr, len });
        }
        Ok(())
    }

    /// Loads `len` bytes (1, 2, 4, or 8) little-endian.
    pub fn load(&self, addr: u64, len: u32) -> Result<u64, Trap> {
        self.check(addr, len as u64)?;
        let a = addr as usize;
        if a + len as usize > self.bytes.len() {
            // In bounds but physically untouched: reads as zero.
            return Ok(self.load_cold(a, len));
        }
        // Word-width fast paths: same bytes, same little-endian value,
        // without the shift loop (this is on every interpreted load).
        Ok(match len {
            8 => u64::from_le_bytes(self.bytes[a..a + 8].try_into().unwrap()),
            4 => u32::from_le_bytes(self.bytes[a..a + 4].try_into().unwrap()) as u64,
            _ => {
                let mut v = 0u64;
                for i in (0..len as usize).rev() {
                    v = (v << 8) | self.bytes[a + i] as u64;
                }
                v
            }
        })
    }

    /// Load straddling or beyond the physical high-water mark.
    #[cold]
    fn load_cold(&self, a: usize, len: u32) -> u64 {
        let mut v = 0u64;
        for i in (0..len as usize).rev() {
            let byte = self.bytes.get(a + i).copied().unwrap_or(0);
            v = (v << 8) | byte as u64;
        }
        v
    }

    /// Stores the low `len` bytes of `val` little-endian.
    pub fn store(&mut self, addr: u64, len: u32, val: u64) -> Result<(), Trap> {
        self.check(addr, len as u64)?;
        let a = addr as usize;
        if a + len as usize > self.bytes.len() {
            self.grow_to(a + len as usize);
        }
        match len {
            8 => self.bytes[a..a + 8].copy_from_slice(&val.to_le_bytes()),
            4 => self.bytes[a..a + 4].copy_from_slice(&(val as u32).to_le_bytes()),
            _ => {
                for i in 0..len as usize {
                    self.bytes[a + i] = (val >> (8 * i)) as u8;
                }
            }
        }
        Ok(())
    }

    /// Reads a raw byte (no null-page check; used by diagnostics).
    pub fn byte(&self, addr: u64) -> u8 {
        assert!(addr < self.size, "byte read past memory end");
        self.bytes.get(addr as usize).copied().unwrap_or(0)
    }

    /// Writes one byte with bounds checking (used for commit of tx write
    /// buffers).
    pub fn store_byte(&mut self, addr: u64, val: u8) -> Result<(), Trap> {
        self.check(addr, 1)?;
        let a = addr as usize;
        if a >= self.bytes.len() {
            self.grow_to(a + 1);
        }
        self.bytes[a] = val;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haft_ir::module::Module;

    fn module_with_globals() -> Module {
        let mut m = Module::new("t");
        m.add_global("a", 100);
        m.add_global_init("b", vec![0xaa, 0xbb]);
        m
    }

    #[test]
    fn globals_are_cache_line_aligned_and_initialized() {
        let m = module_with_globals();
        let mem = Memory::new(&m, 4096);
        assert_eq!(mem.global_bases[0], 64);
        assert_eq!(mem.global_bases[1] % 64, 0);
        assert!(mem.global_bases[1] >= 64 + 100);
        assert_eq!(mem.load(mem.global_bases[1], 2).unwrap(), 0xbbaa);
    }

    #[test]
    fn null_page_traps() {
        let m = Module::new("t");
        let mem = Memory::new(&m, 4096);
        assert!(matches!(mem.load(0, 8), Err(Trap::OutOfBounds { .. })));
        assert!(matches!(mem.load(63, 1), Err(Trap::OutOfBounds { .. })));
        assert!(mem.load(64, 8).is_ok());
    }

    #[test]
    fn oob_traps() {
        let m = Module::new("t");
        let mut mem = Memory::new(&m, 4096);
        assert!(matches!(mem.load(4090, 8), Err(Trap::OutOfBounds { .. })));
        assert!(matches!(mem.store(u64::MAX - 3, 8, 1), Err(Trap::OutOfBounds { .. })));
        assert!(mem.store(4088, 8, 1).is_ok());
    }

    #[test]
    fn little_endian_roundtrip() {
        let m = Module::new("t");
        let mut mem = Memory::new(&m, 4096);
        mem.store(100, 8, 0x1122334455667788).unwrap();
        assert_eq!(mem.load(100, 8).unwrap(), 0x1122334455667788);
        assert_eq!(mem.load(100, 1).unwrap(), 0x88);
        assert_eq!(mem.load(104, 4).unwrap(), 0x11223344);
    }

    #[test]
    fn alloc_bumps_aligned_and_exhausts() {
        let m = module_with_globals();
        let mut mem = Memory::new(&m, 1024);
        let a = mem.alloc(10).unwrap();
        let b = mem.alloc(10).unwrap();
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 10);
        assert!(matches!(mem.alloc(100_000), Err(Trap::OutOfMemory)));
    }

    #[test]
    #[should_panic(expected = "globals exceed memory")]
    fn oversized_globals_panic() {
        let mut m = Module::new("t");
        m.add_global("big", 1 << 20);
        Memory::new(&m, 4096);
    }
}
