//! The virtual machine: interpreter, HAFT runtime, scheduler.

use std::collections::HashMap;

use haft_htm::{AbortCause, AccessKind, Htm, HtmConfig, HtmStats};
use haft_ir::function::{BlockId, ValueId};
use haft_ir::inst::{AbortCode, BinOp, Callee, CastKind, CmpOp, Op, Operand, RmwOp, UnOp};
use haft_ir::module::{FuncId, Module};
use haft_ir::rng::Prng;
use haft_ir::types::Ty;
use haft_trace::{MetricsSnapshot, TraceBuf, TraceEvent};

use crate::cost::{CostConfig, Scoreboard};
use crate::fault::FaultPlan;
use crate::mem::{Memory, Trap};

use self::profile::{OpClass, Profiler};

/// Function "addresses" for indirect calls start here.
const FUNC_BASE: u64 = 0xF000_0000_0000_0000;
/// Maximum call depth before a stack-overflow trap.
const MAX_CALL_DEPTH: usize = 128;

/// Execution engine selector.
///
/// Both engines compute the *same* run, bit for bit: identical
/// [`RunResult`] (cycles, phases, HTM stats, outputs) and an identical
/// dynamic register-write stream, so a [`FaultPlan`] occurrence lands on
/// the same logical micro-op either way. `Fused` pre-decodes each
/// function into a dense dispatch form (resolved jump targets and
/// operands, fused super-instructions for the hot harden idioms, pooled
/// register windows) and exists purely to make simulation wall-clock
/// faster; `Interp` walks the IR directly and is kept as the executable
/// reference the differential test harness pins `Fused` against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// Reference interpreter: per-op IR walk, no pre-decoding.
    Interp,
    /// Pre-decoded direct dispatch with fused super-instructions.
    #[default]
    Fused,
}

/// VM configuration.
#[derive(Clone, Debug)]
pub struct VmConfig {
    /// Number of simulated threads in the parallel phase.
    pub n_threads: usize,
    /// Run-time threshold consulted by `tx_cond_split` (the paper's
    /// transaction-size parameter, in instructions).
    pub tx_threshold: u64,
    /// Transaction retries before falling back to non-transactional
    /// execution (the paper's default is 3).
    pub max_retries: u32,
    /// HTM parameters.
    pub htm: HtmConfig,
    /// Enable HAFT's lock-elision wrapper (paper §3.3).
    pub lock_elision: bool,
    /// Core cost model.
    pub cost: CostConfig,
    /// Scheduler quantum in instructions (jittered per slice).
    pub quantum: u64,
    /// Seed for schedule jitter, spontaneous aborts, etc.
    pub seed: u64,
    /// Simulated memory size in bytes.
    pub mem_bytes: u64,
    /// Instruction budget; exceeding it classifies the run as a hang.
    pub max_instructions: u64,
    /// Optional single-event upset to inject.
    pub fault: Option<FaultPlan>,
    /// Adaptive transaction sizing (the paper's §7 future work): on an
    /// abort a thread halves its private split threshold (floor 250); each
    /// commit grows it back toward `tx_threshold`. Trades a little commit
    /// overhead in contended phases for far fewer wasted re-executions.
    pub adaptive_threshold: bool,
    /// Execution engine. `Fused` (the default) and `Interp` are
    /// bit-identical in every observable; see [`Engine`].
    pub engine: Engine,
    /// Fault forensics: when a `fault` is also set, track the flip's
    /// taint trajectory and report it on [`RunResult::forensics`].
    /// Strictly observational — the `RunResult` core is bit-identical
    /// with it on or off — and free on clean runs (no fault, no state).
    pub forensics: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            n_threads: 1,
            tx_threshold: 1000,
            max_retries: 3,
            htm: HtmConfig::default(),
            lock_elision: false,
            cost: CostConfig::default(),
            quantum: 64,
            seed: 0x5EED_1234,
            mem_bytes: 1 << 24,
            max_instructions: 400_000_000,
            fault: None,
            adaptive_threshold: false,
            engine: Engine::Fused,
            forensics: false,
        }
    }
}

/// Program entry points for the three execution phases.
///
/// Benchmarks follow the Phoenix/PARSEC shape: a serial setup phase, a
/// parallel phase in which every thread runs `worker(tid, n_threads)`, and
/// a serial reduction/output phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunSpec<'a> {
    /// Serial setup, run on thread 0. Signature: `fn()`.
    pub init: Option<&'a str>,
    /// Parallel body, run on every thread. Signature: `fn(i64, i64)`.
    pub worker: Option<&'a str>,
    /// Serial reduction/output, run on thread 0. Signature: `fn()`.
    pub fini: Option<&'a str>,
}

/// Why a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// All phases finished.
    Completed,
    /// The "OS" terminated the program (Table 1: *OS-detected*).
    Trapped(Trap),
    /// An ILR check fired outside a transaction: fail-stop
    /// (Table 1: *ILR-detected*).
    Detected,
    /// The instruction budget was exhausted (Table 1: *Hang*).
    Hang,
}

/// Wall-cycle accounting split by execution phase — the per-segment view
/// of [`RunResult::wall_cycles`]. Service harnesses need it to charge a
/// request's latency to the phases that actually serve it (the parallel
/// phase and the reply-emitting `fini`) without folding in one-time setup
/// cost, which on a real server is amortized across the process lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseCycles {
    /// Serial setup phase (`init`).
    pub init: u64,
    /// Parallel phase wall time (slowest thread of `worker`).
    pub worker: u64,
    /// Serial reduction/output phase (`fini`).
    pub fini: u64,
}

impl PhaseCycles {
    /// The phases that serve a request once the process is warm: the
    /// parallel phase plus the output phase.
    pub fn service_cycles(&self) -> u64 {
        self.worker + self.fini
    }
}

/// Everything measured during one run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunResult {
    pub outcome: RunOutcome,
    /// Emitted output, per-thread streams concatenated in thread order.
    pub output: Vec<u64>,
    /// End-to-end simulated time: serial phases plus the slowest thread of
    /// the parallel phase.
    pub wall_cycles: u64,
    /// `wall_cycles` split by phase (a phase the run never reached, or
    /// stopped inside, reports the cycles accumulated up to the stop).
    pub phases: PhaseCycles,
    /// Sum of all threads' busy cycles (coverage denominator).
    pub cpu_cycles: u64,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Dynamic register-writing instructions (the fault-injection space).
    pub register_writes: u64,
    /// HTM statistics (commits, aborts, coverage).
    pub htm: HtmStats,
    /// ILR checks that fired (detections), anywhere.
    pub detections: u64,
    /// Detections that triggered transactional rollback (recovery
    /// attempts).
    pub recoveries: u64,
    /// Majority votes that found a divergent copy and masked it in place
    /// (the TMR backend's correction mechanism — no rollback involved).
    pub corrected_by_vote: u64,
    /// Checksum verifications that found a single divergent lane and
    /// corrected it in place (the ABFT backend's correction mechanism).
    pub corrected_by_checksum: u64,
    /// Conditional-branch mispredictions (cost-model diagnostics).
    pub mispredicts: u64,
    /// Flip→detection trajectory of the injected fault, present only
    /// when [`VmConfig::forensics`] was set *and* the fault fired.
    pub forensics: Option<Forensics>,
}

impl RunResult {
    /// True if the run completed and produced `expected` output.
    pub fn output_matches(&self, expected: &[u64]) -> bool {
        self.outcome == RunOutcome::Completed && self.output == expected
    }

    /// Exports the run's counters through the unified metrics registry:
    /// `vm.cycles.{init,worker,fini,wall,cpu}`, `vm.instructions`,
    /// `vm.register_writes`, `vm.detections`, `vm.recoveries`,
    /// `vm.corrected_by_vote`, `vm.mispredicts`, plus the `htm.*` family
    /// from [`HtmStats`].
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        m.set("vm.cycles.init", self.phases.init as f64);
        m.set("vm.cycles.worker", self.phases.worker as f64);
        m.set("vm.cycles.fini", self.phases.fini as f64);
        m.set("vm.cycles.wall", self.wall_cycles as f64);
        m.set("vm.cycles.cpu", self.cpu_cycles as f64);
        m.set("vm.instructions", self.instructions as f64);
        m.set("vm.register_writes", self.register_writes as f64);
        m.set("vm.detections", self.detections as f64);
        m.set("vm.recoveries", self.recoveries as f64);
        m.set("vm.corrected_by_vote", self.corrected_by_vote as f64);
        m.set("vm.corrected_by_checksum", self.corrected_by_checksum as f64);
        m.set("vm.mispredicts", self.mispredicts as f64);
        self.htm.export_metrics(&mut m);
        m
    }
}

#[derive(Clone, Debug)]
struct Frame {
    func: FuncId,
    block: BlockId,
    idx: usize,
    regs: Vec<u64>,
    ready: Vec<u64>,
    /// Caller register to receive our return value.
    return_to: Option<ValueId>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ThreadState {
    Ready,
    Blocked { lock: u64 },
    Done,
}

#[derive(Clone, Debug)]
struct TxSnapshot {
    frames: Vec<Frame>,
    counter: u64,
}

#[derive(Debug)]
struct Thread {
    frames: Vec<Frame>,
    state: ThreadState,
    sb: Scoreboard,
    /// TX pass instruction counter (thread-local in the paper).
    counter: u64,
    /// Current split threshold (fixed unless adaptive sizing is on).
    threshold: u64,
    /// Completion time of the last store per 8-byte cell, for store→load
    /// dependency chains (what makes accumulator loops latency-bound).
    store_done: HashMap<u64, u64>,
    /// Flat-nesting depth; outermost transaction is depth 1.
    tx_depth: u32,
    retries: u32,
    /// Retries exhausted: run non-transactionally until the next begin.
    fallback: bool,
    snapshot: Option<TxSnapshot>,
    /// Speculative write buffer (byte overlay) of the open transaction.
    overlay: HashMap<u64, u8>,
    /// Addresses of currently elided locks.
    elided: Vec<u64>,
    tx_start_clock: u64,
    last_poll_clock: u64,
    /// 1-bit branch predictor, keyed by (func, inst).
    bp: HashMap<u64, bool>,
    emitted: Vec<u64>,
    /// Fused-engine speculative write buffer: word-granular overlay with
    /// per-byte masks. Same contents as `overlay`, cheaper to probe; only
    /// one of the two is ever populated (per [`Engine`]).
    fovl: engine::FastOverlay,
    /// Fused-engine `store_done` (open-addressed cell → completion time).
    store_done_fast: engine::CellMap,
    /// Fused-engine branch predictor: dense per-static-branch table
    /// (0 = unknown, 1 = last not-taken, 2 = last taken), indexed by the
    /// decode-time global conditional-branch id. Mirrors `bp` exactly.
    bp_dense: Vec<u8>,
}

impl Thread {
    fn new(_id: usize) -> Self {
        Thread {
            frames: Vec::new(),
            state: ThreadState::Done,
            sb: Scoreboard::default(),
            counter: 0,
            threshold: 0,
            store_done: HashMap::new(),
            tx_depth: 0,
            retries: 0,
            fallback: false,
            snapshot: None,
            overlay: HashMap::new(),
            elided: Vec::new(),
            tx_start_clock: 0,
            last_poll_clock: 0,
            bp: HashMap::new(),
            emitted: Vec::new(),
            fovl: engine::FastOverlay::new(),
            store_done_fast: engine::CellMap::new(),
            bp_dense: Vec::new(),
        }
    }

    fn in_tx(&self) -> bool {
        self.tx_depth > 0
    }
}

/// Control-flow signal from one interpreted instruction.
enum Flow {
    Continue,
    /// The whole program must stop with this outcome.
    Stop(RunOutcome),
    /// This thread finished its entry function.
    ThreadDone,
    /// This thread is blocked on a lock; retry the same instruction later.
    Blocked(u64),
}

/// The virtual machine for one run.
pub struct Vm<'m> {
    m: &'m Module,
    cfg: VmConfig,
    mem: Memory,
    htm: Htm,
    threads: Vec<Thread>,
    rng: Prng,
    lock_release_clock: HashMap<u64, u64>,
    occ: u64,
    instructions: u64,
    detections: u64,
    recoveries: u64,
    corrected_by_vote: u64,
    corrected_by_checksum: u64,
    mispredicts: u64,
    fault: Option<FaultPlan>,
    wall_cycles: u64,
    cpu_cycles: u64,
    phases: PhaseCycles,
    /// Ops retired at the head of a fused super-instruction (diagnostic;
    /// see [`Vm::fused_retired`]).
    fused_retired: u64,
    /// Register-window pool for the fused engine: retired call frames
    /// donate their `(regs, ready)` vectors so calls stop allocating.
    pool: Vec<(Vec<u64>, Vec<u64>)>,
    /// Scratch for parallel phi-move evaluation (fused engine).
    phi_scratch: Vec<(u32, u64, u64, Ty)>,
    /// Scratch for call-argument evaluation (fused engine).
    arg_scratch: Vec<u64>,
    /// Trace sink when tracing is attached ([`Vm::run_traced`]).
    /// Strictly observational: events read the virtual clock, never
    /// advance it, so a traced run is bit-identical to an untraced one.
    trace: Option<TraceBuf>,
    /// Cycle-attribution state when profiling is attached
    /// ([`Vm::run_profiled`]); same observational contract as `trace`.
    profiler: Option<Profiler>,
    /// Taint-trajectory state, allocated only when `cfg.forensics` is
    /// set *and* a fault plan is armed — clean runs pay one `None`
    /// branch per instruction and nothing else.
    forensics: Option<Box<forensics::ForensicsState>>,
}

impl<'m> Vm<'m> {
    /// Creates a VM over `module`.
    pub fn new(module: &'m Module, cfg: VmConfig) -> Self {
        let mem = Memory::new(module, cfg.mem_bytes);
        let htm = Htm::new(cfg.htm.clone(), cfg.n_threads.max(1));
        let rng = Prng::new(cfg.seed);
        let n_threads = cfg.n_threads.max(1);
        let threads = (0..n_threads).map(Thread::new).collect();
        let fault = cfg.fault;
        let forensics = (cfg.forensics && fault.is_some())
            .then(|| Box::new(forensics::ForensicsState::new(n_threads)));
        Vm {
            m: module,
            cfg,
            mem,
            htm,
            threads,
            rng,
            lock_release_clock: HashMap::new(),
            occ: 0,
            instructions: 0,
            detections: 0,
            recoveries: 0,
            corrected_by_vote: 0,
            corrected_by_checksum: 0,
            mispredicts: 0,
            fault,
            wall_cycles: 0,
            cpu_cycles: 0,
            phases: PhaseCycles::default(),
            fused_retired: 0,
            pool: Vec::new(),
            phi_scratch: Vec::new(),
            arg_scratch: Vec::new(),
            trace: None,
            profiler: None,
            forensics,
        }
    }

    /// Decode-time fusion statistics for `module` under `cfg` — a
    /// diagnostic for benchmarks and docs; does not run anything.
    #[deprecated(note = "use `Vm::fusion_metrics` (the unified registry's `vm.fuse.*` names)")]
    pub fn fusion_stats(module: &Module, cfg: &VmConfig) -> fuse::FuseStats {
        let mem = Memory::new(module, cfg.mem_bytes);
        decode::Decoded::decode(module, &mem, &cfg.cost).stats
    }

    /// Decode-time fusion statistics exported through the unified
    /// metrics registry (`vm.fuse.*` names); does not run anything.
    pub fn fusion_metrics(module: &Module, cfg: &VmConfig) -> MetricsSnapshot {
        let mem = Memory::new(module, cfg.mem_bytes);
        let stats = decode::Decoded::decode(module, &mem, &cfg.cost).stats;
        let mut m = MetricsSnapshot::new();
        m.set("vm.fuse.alu_pairs", stats.alu_pairs as f64);
        m.set("vm.fuse.cmp_br", stats.cmp_br as f64);
        m.set("vm.fuse.tx_brackets", stats.tx_brackets as f64);
        m.set("vm.fuse.vote_mem", stats.vote_mem as f64);
        m.set("vm.fuse.total", stats.total() as f64);
        m
    }

    /// Ops retired so far at the head of a fused super-instruction
    /// (always zero under [`Engine::Interp`]). A diagnostic counter —
    /// deliberately not part of [`RunResult`], which is engine-invariant.
    pub fn fused_retired(&self) -> u64 {
        self.fused_retired
    }

    /// Executes all phases of `spec` and returns the measurements.
    pub fn run(module: &'m Module, cfg: VmConfig, spec: RunSpec<'_>) -> RunResult {
        Self::run_instrumented(module, cfg, spec, None, false).0
    }

    /// [`Vm::run`] with tracing attached: phase/transaction spans and
    /// detection/vote instants land in `buf`, timestamped in raw virtual
    /// cycles (embedding layers rescale; see `haft-trace`). Tracing is
    /// observational — the returned [`RunResult`] is bit-identical to an
    /// untraced run, a contract pinned by the root differential tests.
    pub fn run_traced(
        module: &'m Module,
        cfg: VmConfig,
        spec: RunSpec<'_>,
        buf: &mut TraceBuf,
    ) -> RunResult {
        let (result, trace, _) =
            Self::run_instrumented(module, cfg, spec, Some(std::mem::take(buf)), false);
        *buf = trace.expect("trace buffer attached for the whole run");
        result
    }

    /// [`Vm::run`] with cycle-attribution profiling attached. The
    /// returned profile's cell total equals the result's `cpu_cycles`
    /// exactly; the run itself is bit-identical to an unprofiled one.
    pub fn run_profiled(
        module: &'m Module,
        cfg: VmConfig,
        spec: RunSpec<'_>,
    ) -> (RunResult, CycleProfile) {
        let (result, _, profile) = Self::run_instrumented(module, cfg, spec, None, true);
        (result, profile.expect("profiler attached for the whole run"))
    }

    /// The single execution path behind [`Vm::run`]/[`Vm::run_traced`]/
    /// [`Vm::run_profiled`]: instrumentation hooks are `None`-checked on
    /// the hot path, so the untraced run executes the same code either
    /// way.
    fn run_instrumented(
        module: &'m Module,
        cfg: VmConfig,
        spec: RunSpec<'_>,
        trace: Option<TraceBuf>,
        profiled: bool,
    ) -> (RunResult, Option<TraceBuf>, Option<CycleProfile>) {
        let mut vm = Vm::new(module, cfg);
        vm.trace = trace;
        if profiled {
            vm.profiler = Some(Profiler::new(vm.threads.len()));
        }
        let decoded = match vm.cfg.engine {
            Engine::Interp => None,
            Engine::Fused => {
                let d = decode::Decoded::decode(module, &vm.mem, &vm.cfg.cost);
                for t in &mut vm.threads {
                    t.bp_dense = vec![0u8; d.n_condbrs.max(1)];
                }
                Some(d)
            }
        };
        let outcome = vm.run_phases(spec, decoded.as_ref());
        let trace = vm.trace.take();
        let profile =
            vm.profiler.take().map(|p| p.into_profile(|fid| vm.m.func(FuncId(fid)).name.clone()));
        (vm.finish(outcome), trace, profile)
    }

    fn run_phases(&mut self, spec: RunSpec<'_>, dc: Option<&decode::Decoded>) -> RunOutcome {
        if let Some(name) = spec.init {
            let before = self.wall_cycles;
            let out = self.run_serial(name, dc);
            self.phases.init = self.wall_cycles - before;
            self.trace_phase("phase.init", before);
            match out {
                RunOutcome::Completed => {}
                other => return other,
            }
        }
        if let Some(name) = spec.worker {
            let before = self.wall_cycles;
            let out = self.run_parallel(name, dc);
            self.phases.worker = self.wall_cycles - before;
            self.trace_phase("phase.worker", before);
            match out {
                RunOutcome::Completed => {}
                other => return other,
            }
        }
        if let Some(name) = spec.fini {
            let before = self.wall_cycles;
            let out = self.run_serial(name, dc);
            self.phases.fini = self.wall_cycles - before;
            self.trace_phase("phase.fini", before);
            match out {
                RunOutcome::Completed => {}
                other => return other,
            }
        }
        RunOutcome::Completed
    }

    /// Emits one phase span covering `[before, wall_cycles)` (raw cycles).
    fn trace_phase(&mut self, name: &'static str, before: u64) {
        let dur = self.wall_cycles - before;
        if let Some(tr) = self.trace.as_mut() {
            tr.push(TraceEvent::span("vm", name, before, dur));
        }
    }

    fn finish(mut self, outcome: RunOutcome) -> RunResult {
        let forensics = self.conclude_forensics(outcome);
        // Account an open transaction's cycles (e.g. stopped mid-tx).
        for t in &mut self.threads {
            if t.in_tx() {
                self.htm.stats.tx_cycles += t.sb.clock.saturating_sub(t.tx_start_clock);
            }
        }
        self.htm.stats.total_cycles = self.cpu_cycles;
        let mut output = Vec::new();
        for t in &self.threads {
            output.extend_from_slice(&t.emitted);
        }
        RunResult {
            outcome,
            output,
            wall_cycles: self.wall_cycles,
            phases: self.phases,
            cpu_cycles: self.cpu_cycles,
            instructions: self.instructions,
            register_writes: self.occ,
            htm: self.htm.stats.clone(),
            detections: self.detections,
            recoveries: self.recoveries,
            corrected_by_vote: self.corrected_by_vote,
            corrected_by_checksum: self.corrected_by_checksum,
            mispredicts: self.mispredicts,
            forensics,
        }
    }

    fn func_id(&self, name: &str) -> FuncId {
        self.m.func_by_name(name).unwrap_or_else(|| panic!("no function named {name}"))
    }

    fn make_frame(&self, fid: FuncId, args: &[u64], return_to: Option<ValueId>) -> Frame {
        let f = self.m.func(fid);
        assert_eq!(f.params.len(), args.len(), "arity mismatch calling {}", f.name);
        let mut regs = vec![0u64; f.values.len()];
        let ready = vec![0u64; f.values.len()];
        for (i, a) in args.iter().enumerate() {
            regs[i] = a & f.params[i].mask();
        }
        Frame { func: fid, block: f.entry(), idx: 0, regs, ready, return_to }
    }

    fn reset_thread_for(&mut self, tid: usize, fid: FuncId, args: &[u64]) {
        let frame = self.make_frame(fid, args, None);
        let rob = self.cfg.cost.rob;
        let t = &mut self.threads[tid];
        t.frames = vec![frame];
        t.state = ThreadState::Ready;
        t.sb = Scoreboard::with_rob(rob);
        t.counter = 0;
        t.threshold = self.cfg.tx_threshold;
        t.store_done.clear();
        t.tx_depth = 0;
        t.retries = 0;
        t.fallback = false;
        t.snapshot = None;
        t.overlay.clear();
        t.elided.clear();
        t.last_poll_clock = 0;
        t.fovl.clear();
        t.store_done_fast.clear();
        if let Some(fx) = self.forensics.as_deref_mut() {
            // Phase boundary: the fresh frame stack invalidates this
            // thread's positional register taint.
            fx.purge_thread(tid);
        }
    }

    fn run_serial(&mut self, name: &str, dc: Option<&decode::Decoded>) -> RunOutcome {
        let fid = self.func_id(name);
        assert!(self.m.func(fid).params.is_empty(), "serial phase {name} must take no params");
        self.reset_thread_for(0, fid, &[]);
        if let Some(p) = self.profiler.as_mut() {
            p.phase_start(0);
        }
        let out = self.schedule(&[0], dc);
        let clk = self.threads[0].sb.clock;
        if let Some(p) = self.profiler.as_mut() {
            p.flush(0, clk);
        }
        self.wall_cycles += clk;
        self.cpu_cycles += clk;
        out
    }

    fn run_parallel(&mut self, name: &str, dc: Option<&decode::Decoded>) -> RunOutcome {
        let fid = self.func_id(name);
        assert_eq!(self.m.func(fid).params.len(), 2, "worker {name} must take (tid, n)");
        let n = self.cfg.n_threads.max(1);
        for tid in 0..n {
            self.reset_thread_for(tid, fid, &[tid as u64, n as u64]);
            if let Some(p) = self.profiler.as_mut() {
                p.phase_start(tid);
            }
        }
        let tids: Vec<usize> = (0..n).collect();
        let out = self.schedule(&tids, dc);
        if let Some(p) = self.profiler.as_mut() {
            for &tid in &tids {
                p.flush(tid, self.threads[tid].sb.clock);
            }
        }
        let wall = tids.iter().map(|&t| self.threads[t].sb.clock).max().unwrap_or(0);
        let cpu: u64 = tids.iter().map(|&t| self.threads[t].sb.clock).sum();
        self.wall_cycles += wall;
        self.cpu_cycles += cpu;
        out
    }

    /// Clock-windowed scheduler: conservative discrete-event execution.
    ///
    /// All runnable threads are advanced to a common simulated-time
    /// horizon before any thread may move past it, so per-thread clocks
    /// stay within one window of each other. Transaction lifetimes and
    /// remote accesses then overlap as they would on real concurrent
    /// cores — the property the HTM conflict model needs (a naive
    /// round-robin quantum scheduler leaves transactions open across
    /// other threads' entire quanta and inflates conflict rates by an
    /// order of magnitude).
    fn schedule(&mut self, tids: &[usize], dc: Option<&decode::Decoded>) -> RunOutcome {
        loop {
            // Unblock pass: threads whose lock was released become ready.
            let mut all_done = true;
            for &tid in tids {
                match self.threads[tid].state {
                    ThreadState::Done => {}
                    ThreadState::Blocked { lock } => {
                        all_done = false;
                        if self.mem.load(lock, 8).map(|v| v == 0).unwrap_or(false) {
                            self.threads[tid].state = ThreadState::Ready;
                        }
                    }
                    ThreadState::Ready => all_done = false,
                }
            }
            if all_done {
                return RunOutcome::Completed;
            }

            // Horizon: smallest ready clock plus one jittered window.
            let window = self.cfg.quantum.max(2);
            let min_clock = tids
                .iter()
                .filter(|&&t| self.threads[t].state == ThreadState::Ready)
                .map(|&t| self.threads[t].sb.clock)
                .min();
            let Some(min_clock) = min_clock else {
                // Live threads exist but all are blocked and nobody can
                // release a lock: deadlock, surfacing as a hang.
                return RunOutcome::Hang;
            };
            let horizon = min_clock + window / 2 + self.rng.below(window);

            // The two engines share this exact window protocol: per
            // micro-op the order is [horizon check, budget check, step].
            // Fused super-instructions replicate the same checks between
            // their constituents, so the streams stay aligned.
            for &tid in tids {
                if self.threads[tid].state != ThreadState::Ready {
                    continue;
                }
                if let Some(d) = dc {
                    while self.threads[tid].sb.clock < horizon {
                        if self.instructions >= self.cfg.max_instructions {
                            return RunOutcome::Hang;
                        }
                        match self.step_fused(tid, horizon, d) {
                            Flow::Continue => {}
                            Flow::Stop(o) => return o,
                            Flow::ThreadDone => {
                                self.threads[tid].state = ThreadState::Done;
                                break;
                            }
                            Flow::Blocked(lock) => {
                                self.threads[tid].state = ThreadState::Blocked { lock };
                                break;
                            }
                        }
                    }
                } else {
                    while self.threads[tid].sb.clock < horizon {
                        if self.instructions >= self.cfg.max_instructions {
                            return RunOutcome::Hang;
                        }
                        match self.step(tid) {
                            Flow::Continue => {}
                            Flow::Stop(o) => return o,
                            Flow::ThreadDone => {
                                self.threads[tid].state = ThreadState::Done;
                                break;
                            }
                            Flow::Blocked(lock) => {
                                self.threads[tid].state = ThreadState::Blocked { lock };
                                break;
                            }
                        }
                    }
                }
            }
        }
    }

    // --- operand evaluation ---------------------------------------------------

    fn operand(&self, tid: usize, o: &Operand) -> (u64, u64) {
        let frame = self.threads[tid].frames.last().expect("live frame");
        match o {
            Operand::Value(v) => (frame.regs[v.0 as usize], frame.ready[v.0 as usize]),
            Operand::Imm(v, ty) => ((*v as u64) & ty.mask(), 0),
            Operand::F64Bits(b) => (*b, 0),
            Operand::GlobalAddr(g) => (self.mem.global_bases[g.0 as usize], 0),
            Operand::FuncAddr(f) => (FUNC_BASE + f.0 as u64, 0),
        }
    }

    fn write_reg(&mut self, tid: usize, v: ValueId, val: u64, ready: u64, ty: Ty) {
        let masked = val & ty.mask();
        let frame = self.threads[tid].frames.last_mut().expect("live frame");
        frame.regs[v.0 as usize] = masked;
        frame.ready[v.0 as usize] = ready;
        // Fault-injection hook: this is the paper's "register-writing
        // instruction" stream.
        self.occ += 1;
        if let Some(plan) = self.fault {
            if self.occ - 1 == plan.occurrence {
                let mask = plan.effective_mask(ty);
                let frame = self.threads[tid].frames.last_mut().expect("live frame");
                frame.regs[v.0 as usize] ^= mask;
                self.fault = None;
                if let Some(fx) = self.forensics.as_deref_mut() {
                    let t = &self.threads[tid];
                    let func = t.frames.last().expect("live frame").func;
                    fx.seed(func, t.frames.len(), v.0, mask, plan.occurrence);
                }
            }
        }
    }

    /// Register write that is *not* part of the fault-injection stream:
    /// used for `vote` results, which model a fused compare+select whose
    /// output forwards directly into the consuming instruction rather
    /// than living in an architecturally visible register. Without this,
    /// every vote would itself be a new single point of failure right at
    /// the synchronization point it protects.
    fn write_reg_forwarded(&mut self, tid: usize, v: ValueId, val: u64, ready: u64, ty: Ty) {
        let frame = self.threads[tid].frames.last_mut().expect("live frame");
        frame.regs[v.0 as usize] = val & ty.mask();
        frame.ready[v.0 as usize] = ready;
    }

    // --- transaction runtime -------------------------------------------------

    fn tx_begin(&mut self, tid: usize, at: u64) {
        if self.threads[tid].in_tx() {
            self.threads[tid].tx_depth += 1;
            return;
        }
        let clock = at;
        self.htm.begin(tid, clock);
        let t = &mut self.threads[tid];
        t.tx_depth = 1;
        t.retries = 0;
        t.fallback = false;
        t.counter = 0;
        t.tx_start_clock = clock;
        t.last_poll_clock = clock;
        t.snapshot = Some(TxSnapshot { frames: t.frames.clone(), counter: 0 });
    }

    fn tx_commit(&mut self, tid: usize) -> Result<(), AbortCause> {
        if let Some(cause) = self.htm.doomed(tid) {
            return Err(cause);
        }
        // Flush the speculative write buffer (whichever engine's buffer
        // is populated; the other is empty).
        let overlay = std::mem::take(&mut self.threads[tid].overlay);
        for (addr, byte) in overlay {
            // Bounds were checked when buffering.
            let _ = self.mem.store_byte(addr, byte);
        }
        self.threads[tid].fovl.flush_into(&mut self.mem);
        self.htm.commit(tid);
        let max_threshold = self.cfg.tx_threshold;
        let adaptive = self.cfg.adaptive_threshold;
        let t = &mut self.threads[tid];
        t.tx_depth = 0;
        t.snapshot = None;
        t.elided.clear();
        t.retries = 0;
        if adaptive {
            // Additive-ish recovery toward the configured maximum.
            t.threshold = (t.threshold + t.threshold / 8 + 1).min(max_threshold);
        }
        self.htm.stats.tx_cycles += t.sb.clock.saturating_sub(t.tx_start_clock);
        if let Some(tr) = self.trace.as_mut() {
            let start = t.tx_start_clock;
            let dur = t.sb.clock.saturating_sub(start);
            tr.push(
                TraceEvent::span("htm", "tx.commit", self.wall_cycles + start, dur)
                    .lane(0, tid as u32),
            );
        }
        if let Some(fx) = self.forensics.as_deref_mut() {
            fx.on_commit(tid);
        }
        Ok(())
    }

    /// Rolls back after an abort; decides between retry and fallback.
    fn tx_abort(&mut self, tid: usize, cause: AbortCause) {
        self.htm.abort(tid, cause);
        let penalty = self.cfg.cost.abort_penalty;
        let adaptive = self.cfg.adaptive_threshold;
        let t = &mut self.threads[tid];
        if adaptive && cause != AbortCause::IlrDetected {
            // Multiplicative back-off: shorter transactions shrink both
            // the conflict window and the wasted work per abort.
            t.threshold = (t.threshold / 2).max(250);
        }
        self.htm.stats.tx_cycles += t.sb.clock.saturating_sub(t.tx_start_clock);
        let snap = t.snapshot.as_ref().expect("abort without snapshot");
        t.frames = snap.frames.clone();
        t.counter = snap.counter;
        t.overlay.clear();
        t.fovl.clear();
        t.elided.clear();
        t.tx_depth = 0;
        if self.trace.is_some() || self.profiler.is_some() {
            let start = t.tx_start_clock;
            let now = t.sb.clock;
            // Post-restore frame: the rollback penalty is charged where
            // execution resumes.
            let fid = t.frames.last().map(|f| f.func.0).unwrap_or(u32::MAX);
            if let Some(tr) = self.trace.as_mut() {
                tr.push(
                    TraceEvent::span(
                        "htm",
                        "tx.abort",
                        self.wall_cycles + start,
                        now.saturating_sub(start),
                    )
                    .lane(0, tid as u32)
                    .arg("cause", cause.to_string()),
                );
            }
            if let Some(p) = self.profiler.as_mut() {
                p.abort(tid, now, fid);
            }
        }
        let resume = t.sb.clock + penalty;
        t.sb.flush_to(resume);
        if let Some(fx) = self.forensics.as_deref_mut() {
            // Roll the shadow set back with the architectural state; if
            // the rollback erased the last live corruption, the HTM
            // recovered the fault.
            fx.on_abort(tid, self.instructions, self.wall_cycles + t.sb.clock);
        }
        t.retries += 1;
        if t.retries <= self.cfg.max_retries {
            // Retry transactionally from the snapshot point.
            let clock = t.sb.clock;
            t.tx_depth = 1;
            t.tx_start_clock = clock;
            t.last_poll_clock = clock;
            self.htm.begin(tid, clock);
        } else {
            // Fall back to non-transactional execution until the next
            // begin (paper §3: best-effort recovery).
            t.snapshot = None;
            t.fallback = true;
            self.htm.note_fallback();
        }
    }

    /// Handles `tx_abort` IR instructions (ILR detections).
    fn ilr_detect(&mut self, tid: usize) -> Flow {
        self.detections += 1;
        if self.forensics.is_some() {
            // On a single-fault run any ILR divergence *is* the injected
            // fault (clean shadows never diverge): finalize here, before
            // the rollback path mutates the shadow set.
            let now = self.wall_cycles + self.threads[tid].sb.clock;
            let insts = self.instructions;
            self.forensics.as_deref_mut().unwrap().detect(
                forensics::FaultDetector::Ilr,
                insts,
                now,
            );
        }
        if let Some(tr) = self.trace.as_mut() {
            let ts = self.wall_cycles + self.threads[tid].sb.clock;
            tr.push(TraceEvent::instant("vm", "ilr.detect", ts).lane(0, tid as u32));
        }
        if self.threads[tid].in_tx() {
            self.recoveries += 1;
            self.tx_abort(tid, AbortCause::IlrDetected);
            Flow::Continue
        } else {
            // Fail-stop: the paper's ILR-detected outcome.
            Flow::Stop(RunOutcome::Detected)
        }
    }

    /// Handles a trap raised while transactional (a synchronous exception
    /// aborts the transaction like any interrupt) or not (OS-detected).
    fn trap(&mut self, tid: usize, trap: Trap) -> Flow {
        if self.threads[tid].in_tx() {
            self.tx_abort(tid, AbortCause::Unfriendly);
            Flow::Continue
        } else {
            Flow::Stop(RunOutcome::Trapped(trap))
        }
    }

    // --- memory dependency tracking -----------------------------------------------

    /// Ready time contributed by earlier stores covering `[addr, addr+len)`.
    fn mem_ready(&self, tid: usize, addr: u64, len: u32) -> u64 {
        let t = &self.threads[tid];
        let mut ready = 0;
        for cell in (addr >> 3)..=((addr + len as u64 - 1) >> 3) {
            if let Some(d) = t.store_done.get(&cell) {
                ready = ready.max(*d);
            }
        }
        ready
    }

    /// Records a store completing at `done` over `[addr, addr+len)`.
    fn note_store(&mut self, tid: usize, addr: u64, len: u32, done: u64) {
        let t = &mut self.threads[tid];
        for cell in (addr >> 3)..=((addr + len as u64 - 1) >> 3) {
            t.store_done.insert(cell, done);
        }
    }

    // --- transactional memory data path ----------------------------------------

    fn mem_load(&mut self, tid: usize, addr: u64, len: u32) -> Result<u64, Trap> {
        if self.threads[tid].in_tx() && !self.threads[tid].overlay.is_empty() {
            // Byte-wise read-through of the speculative buffer.
            self.mem.load(addr, len)?; // Bounds check.
            let mut v = 0u64;
            for i in (0..len as usize).rev() {
                let a = addr + i as u64;
                let b = match self.threads[tid].overlay.get(&a) {
                    Some(b) => *b,
                    None => self.mem.byte(a),
                };
                v = (v << 8) | b as u64;
            }
            Ok(v)
        } else if self.threads[tid].in_tx() && !self.threads[tid].fovl.is_empty() {
            // Fused-engine buffer: same read-through semantics, probed at
            // word granularity.
            let base = self.mem.load(addr, len)?; // Bounds check + memory bytes.
            Ok(self.threads[tid].fovl.merge(addr, len, base))
        } else {
            self.mem.load(addr, len)
        }
    }

    fn mem_store(&mut self, tid: usize, addr: u64, len: u32, val: u64) -> Result<(), Trap> {
        if self.threads[tid].in_tx() {
            // Buffer speculatively; bounds-check now so wild stores trap
            // (and thus abort) immediately.
            self.mem.load(addr, len)?;
            for i in 0..len as usize {
                self.threads[tid].overlay.insert(addr + i as u64, (val >> (8 * i)) as u8);
            }
            Ok(())
        } else {
            self.mem.store(addr, len, val)
        }
    }

    // --- the interpreter --------------------------------------------------------

    /// Executes one instruction of thread `tid`.
    fn step(&mut self, tid: usize) -> Flow {
        // Deliver pending asynchronous aborts first.
        if self.threads[tid].in_tx() {
            if let Some(cause) = self.htm.doomed(tid) {
                self.tx_abort(tid, cause);
                return Flow::Continue;
            }
        }

        let frame = self.threads[tid].frames.last().expect("live frame");
        let fid = frame.func;
        let f = self.m.func(fid);
        let bid = frame.block;
        let idx = frame.idx;
        let block = &f.blocks[bid.0 as usize];
        debug_assert!(idx < block.insts.len(), "fell off block without terminator");
        let iid = block.insts[idx];
        let inst = f.inst(iid).clone();
        let result = f.inst_result(iid);

        // Pre-advance the pc; control flow overwrites it.
        self.threads[tid].frames.last_mut().expect("live frame").idx += 1;
        self.instructions += 1;
        if let Some(p) = self.profiler.as_mut() {
            p.fetch(tid, self.threads[tid].sb.clock, fid.0, OpClass::of_op(&inst.op));
        }
        if self.forensics.is_some() {
            // Taint transfer runs *before* execution: control ops (Ret,
            // Br) invalidate operand reads afterwards.
            self.forensics_transfer_interp(tid, fid, bid, &inst.op, result);
        }

        let width = self.cfg.cost.width;
        let flow = match &inst.op {
            // --- compute -----------------------------------------------------
            Op::Bin { op, ty, a, b } => {
                let (av, ar) = self.operand(tid, a);
                let (bv, br) = self.operand(tid, b);
                let lat = self.cfg.cost.compute_latency(&inst.op);
                match eval_bin(*op, *ty, av, bv) {
                    Ok(v) => {
                        let done = self.threads[tid].sb.issue(width, ar.max(br), lat);
                        self.write_reg(tid, result.unwrap(), v, done, *ty);
                        Flow::Continue
                    }
                    Err(t) => self.trap(tid, t),
                }
            }
            Op::Un { op, ty, a } => {
                let (av, ar) = self.operand(tid, a);
                let lat = self.cfg.cost.compute_latency(&inst.op);
                let v = eval_un(*op, *ty, av);
                let done = self.threads[tid].sb.issue(width, ar, lat);
                self.write_reg(tid, result.unwrap(), v, done, *ty);
                Flow::Continue
            }
            Op::Cmp { op, ty, a, b } => {
                let (av, ar) = self.operand(tid, a);
                let (bv, br) = self.operand(tid, b);
                let v = eval_cmp(*op, *ty, av, bv) as u64;
                let done = self.threads[tid].sb.issue(width, ar.max(br), self.cfg.cost.lat_int);
                self.write_reg(tid, result.unwrap(), v, done, Ty::I1);
                Flow::Continue
            }
            Op::Move { ty, a } => {
                let (av, ar) = self.operand(tid, a);
                let done = self.threads[tid].sb.issue(width, ar, self.cfg.cost.lat_int);
                self.write_reg(tid, result.unwrap(), av, done, *ty);
                Flow::Continue
            }
            Op::Cast { kind, to, a } => {
                let (av, ar) = self.operand(tid, a);
                let from = f.operand_ty(a);
                let v = eval_cast(*kind, from, *to, av);
                let done = self.threads[tid].sb.issue(width, ar, self.cfg.cost.lat_int);
                self.write_reg(tid, result.unwrap(), v, done, *to);
                Flow::Continue
            }
            Op::Select { ty, c, t, f: fv } => {
                let (cv, cr) = self.operand(tid, c);
                let (tv, tr) = self.operand(tid, t);
                let (fvv, fr) = self.operand(tid, fv);
                let v = if cv & 1 != 0 { tv } else { fvv };
                let ready = cr.max(tr).max(fr);
                let done = self.threads[tid].sb.issue(width, ready, self.cfg.cost.lat_int);
                self.write_reg(tid, result.unwrap(), v, done, *ty);
                Flow::Continue
            }
            Op::Gep { base, index, scale, offset } => {
                let (bv, br) = self.operand(tid, base);
                let (iv, ir) = self.operand(tid, index);
                let v = bv
                    .wrapping_add((iv as i64).wrapping_mul(*scale as i64) as u64)
                    .wrapping_add(*offset as u64);
                let done = self.threads[tid].sb.issue(width, br.max(ir), self.cfg.cost.lat_int);
                self.write_reg(tid, result.unwrap(), v, done, Ty::Ptr);
                Flow::Continue
            }
            Op::Phi { .. } => {
                // Phis are evaluated on the incoming edge; reaching one via
                // straight-line execution means the entry block has phis.
                self.trap(tid, Trap::MalformedIr)
            }

            // --- memory -----------------------------------------------------
            Op::Load { ty, addr, atomic } => {
                let (av, ar) = self.operand(tid, addr);
                let hit = self.htm.access(tid, av, ty.size_bytes() as u64, AccessKind::Read);
                match self.mem_load(tid, av, ty.size_bytes()) {
                    Ok(v) => {
                        let lat = if *atomic {
                            self.cfg.cost.lat_atomic
                        } else if hit {
                            self.cfg.cost.lat_load_hit
                        } else {
                            self.cfg.cost.lat_load_miss
                        };
                        let dep = self.mem_ready(tid, av, ty.size_bytes());
                        let done = self.threads[tid].sb.issue(width, ar.max(dep), lat);
                        self.write_reg(tid, result.unwrap(), v, done, *ty);
                        Flow::Continue
                    }
                    Err(t) => self.trap(tid, t),
                }
            }
            Op::Store { ty, val, addr, atomic } => {
                let (vv, vr) = self.operand(tid, val);
                let (av, ar) = self.operand(tid, addr);
                self.htm.access(tid, av, ty.size_bytes() as u64, AccessKind::Write);
                match self.mem_store(tid, av, ty.size_bytes(), vv) {
                    Ok(()) => {
                        let lat = if *atomic {
                            self.cfg.cost.lat_atomic
                        } else {
                            self.cfg.cost.lat_store
                        };
                        let done = self.threads[tid].sb.issue(width, vr.max(ar), lat);
                        self.note_store(tid, av, ty.size_bytes(), done);
                        Flow::Continue
                    }
                    Err(t) => self.trap(tid, t),
                }
            }
            Op::Rmw { op, ty, addr, val } => {
                let (av, ar) = self.operand(tid, addr);
                let (vv, vr) = self.operand(tid, val);
                self.htm.access(tid, av, ty.size_bytes() as u64, AccessKind::Write);
                match self.mem_load(tid, av, ty.size_bytes()) {
                    Ok(old) => {
                        let new = match op {
                            RmwOp::Add => old.wrapping_add(vv),
                            RmwOp::Xchg => vv,
                        };
                        match self.mem_store(tid, av, ty.size_bytes(), new) {
                            Ok(()) => {
                                let dep = self.mem_ready(tid, av, ty.size_bytes());
                                let done = self.threads[tid].sb.issue(
                                    width,
                                    ar.max(vr).max(dep),
                                    self.cfg.cost.lat_atomic,
                                );
                                self.note_store(tid, av, ty.size_bytes(), done);
                                self.write_reg(tid, result.unwrap(), old, done, *ty);
                                Flow::Continue
                            }
                            Err(t) => self.trap(tid, t),
                        }
                    }
                    Err(t) => self.trap(tid, t),
                }
            }
            Op::CmpXchg { ty, addr, expected, new } => {
                let (av, ar) = self.operand(tid, addr);
                let (ev, er) = self.operand(tid, expected);
                let (nv, nr) = self.operand(tid, new);
                self.htm.access(tid, av, ty.size_bytes() as u64, AccessKind::Write);
                match self.mem_load(tid, av, ty.size_bytes()) {
                    Ok(old) => {
                        let res = if old == ev {
                            self.mem_store(tid, av, ty.size_bytes(), nv)
                        } else {
                            Ok(())
                        };
                        match res {
                            Ok(()) => {
                                let dep = self.mem_ready(tid, av, ty.size_bytes());
                                let ready = ar.max(er).max(nr).max(dep);
                                let done = self.threads[tid].sb.issue(
                                    width,
                                    ready,
                                    self.cfg.cost.lat_atomic,
                                );
                                self.note_store(tid, av, ty.size_bytes(), done);
                                self.write_reg(tid, result.unwrap(), old, done, *ty);
                                Flow::Continue
                            }
                            Err(t) => self.trap(tid, t),
                        }
                    }
                    Err(t) => self.trap(tid, t),
                }
            }
            Op::Alloc { size } => {
                let (sv, sr) = self.operand(tid, size);
                match self.mem.alloc(sv) {
                    Ok(base) => {
                        let done = self.threads[tid].sb.issue(width, sr, self.cfg.cost.lat_alloc);
                        self.write_reg(tid, result.unwrap(), base, done, Ty::Ptr);
                        Flow::Continue
                    }
                    Err(t) => self.trap(tid, t),
                }
            }

            // --- control ----------------------------------------------------
            Op::Br { dest } => {
                self.threads[tid].sb.issue(width, 0, self.cfg.cost.lat_branch);
                self.take_edge(tid, fid, bid, *dest);
                Flow::Continue
            }
            Op::CondBr { cond, t, f: fb } => {
                let (cv, cr) = self.operand(tid, cond);
                let taken = cv & 1 != 0;
                let done = self.threads[tid].sb.issue(width, cr, self.cfg.cost.lat_branch);
                // 1-bit predictor keyed by instruction identity.
                let key = ((fid.0 as u64) << 32) | iid.0 as u64;
                let predicted = self.threads[tid].bp.insert(key, taken);
                if predicted != Some(taken) && predicted.is_some() {
                    self.mispredicts += 1;
                    let resume = done + self.cfg.cost.mispredict_penalty;
                    self.threads[tid].sb.flush_to(resume);
                }
                let dest = if taken { *t } else { *fb };
                self.take_edge(tid, fid, bid, dest);
                Flow::Continue
            }
            Op::Call { callee, args, ret_ty: _ } => {
                let target = match callee {
                    Callee::Direct(fid) => Some(*fid),
                    Callee::Indirect(o) => {
                        let (v, _) = self.operand(tid, o);
                        let idx = v.wrapping_sub(FUNC_BASE);
                        if v >= FUNC_BASE && (idx as usize) < self.m.funcs.len() {
                            Some(FuncId(idx as u32))
                        } else {
                            None
                        }
                    }
                };
                let Some(target) = target else {
                    let v = match callee {
                        Callee::Indirect(o) => self.operand(tid, o).0,
                        Callee::Direct(_) => unreachable!("direct callee always resolves"),
                    };
                    return self.trap(tid, Trap::BadIndirectCall { target: v });
                };
                if self.threads[tid].frames.len() >= MAX_CALL_DEPTH {
                    return self.trap(tid, Trap::StackOverflow);
                }
                let callee_f = self.m.func(target);
                if callee_f.params.len() != args.len() {
                    return self.trap(tid, Trap::MalformedIr);
                }
                let mut vals = Vec::with_capacity(args.len());
                let mut ready = 0;
                for a in args {
                    let (v, r) = self.operand(tid, a);
                    vals.push(v);
                    ready = ready.max(r);
                }
                self.threads[tid].sb.issue(width, ready, self.cfg.cost.lat_call);
                let new_frame = self.make_frame(target, &vals, result);
                self.threads[tid].frames.push(new_frame);
                Flow::Continue
            }
            Op::Ret { val } => {
                let rv = val.as_ref().map(|v| self.operand(tid, v));
                let done = self.threads[tid].sb.issue(
                    width,
                    rv.map(|(_, r)| r).unwrap_or(0),
                    self.cfg.cost.lat_call,
                );
                let frame = self.threads[tid].frames.pop().expect("live frame");
                if self.threads[tid].frames.is_empty() {
                    return Flow::ThreadDone;
                }
                if let (Some(dst), Some((v, _))) = (frame.return_to, rv) {
                    let ty = self.m.func(frame.func).ret_ty.unwrap_or(Ty::I64);
                    self.write_reg(tid, dst, v, done, ty);
                }
                Flow::Continue
            }

            // --- HAFT runtime intrinsics -----------------------------------------
            Op::TxBegin => {
                // XBEGIN drains the pipeline: the checkpoint covers all
                // earlier work, and speculation starts after it.
                let done = self.threads[tid].sb.issue_serial(width, self.cfg.cost.lat_tx_begin);
                self.tx_begin(tid, done);
                Flow::Continue
            }
            Op::TxEnd => {
                if self.threads[tid].tx_depth > 1 {
                    self.threads[tid].tx_depth -= 1;
                    self.threads[tid].sb.issue(width, 0, self.cfg.cost.lat_int);
                    Flow::Continue
                } else if self.threads[tid].in_tx() {
                    self.threads[tid].sb.issue_serial(width, self.cfg.cost.lat_tx_end);
                    match self.tx_commit(tid) {
                        Ok(()) => Flow::Continue,
                        Err(cause) => {
                            self.tx_abort(tid, cause);
                            Flow::Continue
                        }
                    }
                } else {
                    // Fallback mode: nothing to commit.
                    self.threads[tid].sb.issue(width, 0, self.cfg.cost.lat_int);
                    Flow::Continue
                }
            }
            Op::TxCondSplit => {
                self.threads[tid].sb.issue(width, 0, self.cfg.cost.lat_tx_split_check);
                // A split must not commit while a lock is elided: the
                // critical section would lose its atomicity (and the
                // matching unlock its elision record). Defer until the
                // elision stack drains.
                if self.threads[tid].counter >= self.threads[tid].threshold
                    && self.threads[tid].elided.is_empty()
                {
                    if self.threads[tid].in_tx() {
                        self.threads[tid].sb.issue_serial(width, self.cfg.cost.lat_tx_end);
                        match self.tx_commit(tid) {
                            Ok(()) => {
                                let begin = self.threads[tid]
                                    .sb
                                    .issue_serial(width, self.cfg.cost.lat_tx_begin);
                                self.tx_begin(tid, begin);
                            }
                            Err(cause) => self.tx_abort(tid, cause),
                        }
                    } else {
                        // Re-enter transactional mode after a fallback.
                        let begin =
                            self.threads[tid].sb.issue_serial(width, self.cfg.cost.lat_tx_begin);
                        self.tx_begin(tid, begin);
                    }
                }
                Flow::Continue
            }
            Op::TxCounterInc { amount } => {
                let t = &mut self.threads[tid];
                t.counter += *amount as u64;
                t.sb.issue(width, 0, self.cfg.cost.lat_counter_inc);
                Flow::Continue
            }
            Op::TxAbort { code } => match code {
                AbortCode::IlrDetected => self.ilr_detect(tid),
                AbortCode::Explicit => {
                    if self.threads[tid].in_tx() {
                        self.tx_abort(tid, AbortCause::Explicit);
                        Flow::Continue
                    } else {
                        Flow::Stop(RunOutcome::Detected)
                    }
                }
            },
            Op::Vote { ty, a, b, c } => {
                let (av, ar) = self.operand(tid, a);
                let (bv, br) = self.operand(tid, b);
                let (cv, cr) = self.operand(tid, c);
                // Two-of-three majority: a single corrupted copy is masked
                // in place and execution continues (Elzar's `vote()`).
                let majority = if av == bv || av == cv {
                    Some(av)
                } else if bv == cv {
                    Some(bv)
                } else {
                    None
                };
                match majority {
                    Some(v) => {
                        if !(av == bv && av == cv) {
                            self.corrected_by_vote += 1;
                            if let Some(tr) = self.trace.as_mut() {
                                let ts = self.wall_cycles + self.threads[tid].sb.clock;
                                tr.push(
                                    TraceEvent::instant("vm", "vote.correct", ts)
                                        .lane(0, tid as u32),
                                );
                            }
                            if self.forensics.is_some() {
                                let now = self.wall_cycles + self.threads[tid].sb.clock;
                                let insts = self.instructions;
                                self.forensics.as_deref_mut().unwrap().detect(
                                    forensics::FaultDetector::Vote,
                                    insts,
                                    now,
                                );
                            }
                        }
                        let ready = ar.max(br).max(cr);
                        let done = self.threads[tid].sb.issue(width, ready, self.cfg.cost.lat_vote);
                        self.write_reg_forwarded(tid, result.unwrap(), v, done, *ty);
                        Flow::Continue
                    }
                    // All three copies disagree: unrecoverable divergence,
                    // handled exactly like a failed ILR check (rollback
                    // inside a transaction, fail-stop outside).
                    None => self.ilr_detect(tid),
                }
            }
            Op::ChkCorrect { ty, a, b, c } => {
                let (av, ar) = self.operand(tid, a);
                let (bv, br) = self.operand(tid, b);
                let (cv, cr) = self.operand(tid, c);
                // Checksum verify-and-correct: the three redundant lanes
                // agree in a fault-free run; a single divergent lane is
                // reconstructed from the other two (the row×column
                // intersection pinpoints exactly one element).
                let majority = if av == bv || av == cv {
                    Some(av)
                } else if bv == cv {
                    Some(bv)
                } else {
                    None
                };
                match majority {
                    Some(v) => {
                        if !(av == bv && av == cv) {
                            self.corrected_by_checksum += 1;
                            if let Some(tr) = self.trace.as_mut() {
                                let ts = self.wall_cycles + self.threads[tid].sb.clock;
                                tr.push(
                                    TraceEvent::instant("vm", "abft.correct", ts)
                                        .lane(0, tid as u32),
                                );
                            }
                            if self.forensics.is_some() {
                                let now = self.wall_cycles + self.threads[tid].sb.clock;
                                let insts = self.instructions;
                                self.forensics.as_deref_mut().unwrap().detect(
                                    forensics::FaultDetector::Checksum,
                                    insts,
                                    now,
                                );
                            }
                        }
                        let ready = ar.max(br).max(cr);
                        let done = self.threads[tid].sb.issue(width, ready, self.cfg.cost.lat_vote);
                        self.write_reg_forwarded(tid, result.unwrap(), v, done, *ty);
                        Flow::Continue
                    }
                    // More than one lane corrupted: the checksum can
                    // detect but not correct — fail-stop through the
                    // existing detect path.
                    None => self.ilr_detect(tid),
                }
            }
            Op::Lock { addr } => {
                let (av, ar) = self.operand(tid, addr);
                self.exec_lock(tid, av, ar)
            }
            Op::Unlock { addr } => {
                let (av, ar) = self.operand(tid, addr);
                self.exec_unlock(tid, av, ar)
            }
            Op::Emit { ty: _, val } => {
                if self.threads[tid].in_tx() {
                    // Externalization cannot happen speculatively: abort
                    // first (TSX: unfriendly instruction), and emit only
                    // once we are executing non-transactionally.
                    self.tx_abort(tid, AbortCause::Unfriendly);
                    Flow::Continue
                } else {
                    let (v, _) = self.operand(tid, val);
                    self.threads[tid].sb.issue_serial(width, self.cfg.cost.lat_emit);
                    self.threads[tid].emitted.push(v);
                    Flow::Continue
                }
            }
            Op::ThreadId => {
                let done = self.threads[tid].sb.issue(width, 0, self.cfg.cost.lat_int);
                self.write_reg(tid, result.unwrap(), tid as u64, done, Ty::I64);
                Flow::Continue
            }
            Op::NumThreads => {
                let done = self.threads[tid].sb.issue(width, 0, self.cfg.cost.lat_int);
                self.write_reg(
                    tid,
                    result.unwrap(),
                    self.cfg.n_threads.max(1) as u64,
                    done,
                    Ty::I64,
                );
                Flow::Continue
            }
            Op::Nop => Flow::Continue,
        };

        if self.forensics.is_some() {
            // If this instruction's register write was the flip, the seed
            // completes now that its op class and timing are known.
            self.forensics_seed_complete(tid, OpClass::of_op(&inst.op));
        }

        // A blocked lock acquisition must be retried: rewind the pc and
        // undo the instruction count.
        if let Flow::Blocked(_) = flow {
            let frame = self.threads[tid].frames.last_mut().expect("live frame");
            frame.idx -= 1;
            self.instructions -= 1;
        }

        // Time-based asynchronous aborts.
        if self.threads[tid].in_tx() {
            let now = self.threads[tid].sb.clock;
            let last = self.threads[tid].last_poll_clock;
            if now > last + 256 {
                self.htm.poll_async(tid, now, now - last, &mut self.rng);
                self.threads[tid].last_poll_clock = now;
            }
        }
        flow
    }

    /// Takes a CFG edge: evaluates the target's phis and repositions the pc.
    fn take_edge(&mut self, tid: usize, fid: FuncId, from: BlockId, to: BlockId) {
        let f = self.m.func(fid);
        let block = &f.blocks[to.0 as usize];
        // Gather phi updates (parallel semantics: read all, then write).
        let mut updates: Vec<(ValueId, u64, u64, Ty)> = Vec::new();
        let mut n_phis = 0;
        for &iid in &block.insts {
            let inst = f.inst(iid);
            if let Op::Phi { ty, incomings } = &inst.op {
                n_phis += 1;
                if let Some((val, _)) = incomings.iter().find(|(_, b)| *b == from) {
                    let (v, r) = self.operand(tid, val);
                    let dst = f.inst_result(iid).expect("phi has result");
                    updates.push((dst, v, r, *ty));
                }
            } else {
                break;
            }
        }
        for (dst, v, r, ty) in updates {
            self.write_reg(tid, dst, v, r, ty);
        }
        let frame = self.threads[tid].frames.last_mut().expect("live frame");
        frame.block = to;
        frame.idx = n_phis;
    }

    fn exec_lock(&mut self, tid: usize, addr: u64, ready: u64) -> Flow {
        let width = self.cfg.cost.width;
        if self.threads[tid].in_tx() {
            if self.cfg.lock_elision {
                // Elide: read the lock word into the read set; any real
                // acquisition by another thread will conflict-abort us.
                self.htm.access(tid, addr, 8, AccessKind::Read);
                match self.mem_load(tid, addr, 8) {
                    Ok(0) => {
                        self.threads[tid].sb.issue(width, ready, self.cfg.cost.lat_load_hit);
                        self.threads[tid].elided.push(addr);
                        Flow::Continue
                    }
                    Ok(_) => {
                        // Lock currently held: cannot elide safely.
                        self.tx_abort(tid, AbortCause::Explicit);
                        Flow::Continue
                    }
                    Err(t) => self.trap(tid, t),
                }
            } else {
                // A blocking lock inside a transaction cannot succeed
                // (the write would conflict with the owner): abort.
                self.tx_abort(tid, AbortCause::Unfriendly);
                Flow::Continue
            }
        } else {
            match self.mem.load(addr, 8) {
                Ok(0) => {
                    self.htm.access(tid, addr, 8, AccessKind::Write);
                    if self.mem.store(addr, 8, tid as u64 + 1).is_err() {
                        return self.trap(tid, Trap::OutOfBounds { addr, len: 8 });
                    }
                    // Serialization: we cannot hold the lock before its
                    // previous owner released it (cross-thread clock sync).
                    let release = self.lock_release_clock.get(&addr).copied().unwrap_or(0);
                    let t = &mut self.threads[tid];
                    t.sb.flush_to(release);
                    t.sb.issue_serial(width, self.cfg.cost.lat_lock);
                    Flow::Continue
                }
                Ok(_) => Flow::Blocked(addr),
                Err(t) => self.trap(tid, t),
            }
        }
    }

    fn exec_unlock(&mut self, tid: usize, addr: u64, ready: u64) -> Flow {
        let width = self.cfg.cost.width;
        if self.threads[tid].elided.last() == Some(&addr) {
            self.threads[tid].elided.pop();
            self.threads[tid].sb.issue(width, ready, self.cfg.cost.lat_int);
            return Flow::Continue;
        }
        if self.threads[tid].in_tx() {
            // Unlock of a non-elided lock inside a transaction: unfriendly.
            self.tx_abort(tid, AbortCause::Unfriendly);
            return Flow::Continue;
        }
        self.htm.access(tid, addr, 8, AccessKind::Write);
        let _ = ready;
        match self.mem.store(addr, 8, 0) {
            Ok(()) => {
                let done = self.threads[tid].sb.issue_serial(width, self.cfg.cost.lat_unlock);
                self.lock_release_clock.insert(addr, done);
                Flow::Continue
            }
            Err(t) => self.trap(tid, t),
        }
    }
}

// --- pure evaluation helpers ---------------------------------------------------

#[inline(always)]
fn eval_bin(op: BinOp, ty: Ty, a: u64, b: u64) -> Result<u64, Trap> {
    use BinOp::*;
    if op.is_float() {
        let x = f64::from_bits(a);
        let y = f64::from_bits(b);
        let r = match op {
            FAdd => x + y,
            FSub => x - y,
            FMul => x * y,
            FDiv => x / y,
            _ => unreachable!(),
        };
        return Ok(r.to_bits());
    }
    let sa = ty.sext(a);
    let sb = ty.sext(b);
    let ua = a & ty.mask();
    let ub = b & ty.mask();
    let v = match op {
        Add => ua.wrapping_add(ub),
        Sub => ua.wrapping_sub(ub),
        Mul => ua.wrapping_mul(ub),
        SDiv => {
            if sb == 0 {
                return Err(Trap::DivByZero);
            }
            sa.wrapping_div(sb) as u64
        }
        UDiv => {
            if ub == 0 {
                return Err(Trap::DivByZero);
            }
            ua / ub
        }
        SRem => {
            if sb == 0 {
                return Err(Trap::DivByZero);
            }
            sa.wrapping_rem(sb) as u64
        }
        URem => {
            if ub == 0 {
                return Err(Trap::DivByZero);
            }
            ua % ub
        }
        And => ua & ub,
        Or => ua | ub,
        Xor => ua ^ ub,
        Shl => ua.wrapping_shl((ub % ty.bits() as u64) as u32),
        LShr => ua.wrapping_shr((ub % ty.bits() as u64) as u32),
        AShr => (sa >> (ub % ty.bits() as u64)) as u64,
        FAdd | FSub | FMul | FDiv => unreachable!(),
    };
    Ok(v & ty.mask())
}

#[inline(always)]
fn eval_un(op: UnOp, ty: Ty, a: u64) -> u64 {
    match op {
        UnOp::Neg => (ty.sext(a).wrapping_neg() as u64) & ty.mask(),
        UnOp::Not => !a & ty.mask(),
        UnOp::FNeg => (-f64::from_bits(a)).to_bits(),
        UnOp::FSqrt => f64::from_bits(a).sqrt().to_bits(),
        UnOp::FExp => f64::from_bits(a).exp().to_bits(),
        UnOp::FLn => f64::from_bits(a).ln().to_bits(),
        UnOp::FAbs => f64::from_bits(a).abs().to_bits(),
    }
}

#[inline(always)]
fn eval_cmp(op: CmpOp, ty: Ty, a: u64, b: u64) -> bool {
    use CmpOp::*;
    match op {
        Eq => (a & ty.mask()) == (b & ty.mask()),
        Ne => (a & ty.mask()) != (b & ty.mask()),
        SLt => ty.sext(a) < ty.sext(b),
        SLe => ty.sext(a) <= ty.sext(b),
        SGt => ty.sext(a) > ty.sext(b),
        SGe => ty.sext(a) >= ty.sext(b),
        ULt => (a & ty.mask()) < (b & ty.mask()),
        ULe => (a & ty.mask()) <= (b & ty.mask()),
        UGt => (a & ty.mask()) > (b & ty.mask()),
        UGe => (a & ty.mask()) >= (b & ty.mask()),
        FLt => f64::from_bits(a) < f64::from_bits(b),
        FLe => f64::from_bits(a) <= f64::from_bits(b),
        FGt => f64::from_bits(a) > f64::from_bits(b),
        FGe => f64::from_bits(a) >= f64::from_bits(b),
        FEq => f64::from_bits(a) == f64::from_bits(b),
        FNe => f64::from_bits(a) != f64::from_bits(b),
    }
}

#[inline(always)]
fn eval_cast(kind: CastKind, from: Ty, to: Ty, a: u64) -> u64 {
    match kind {
        CastKind::ZExt => (a & from.mask()) & to.mask(),
        CastKind::SExt => (from.sext(a) as u64) & to.mask(),
        CastKind::Trunc => a & to.mask(),
        CastKind::SiToFp => (from.sext(a) as f64).to_bits(),
        CastKind::FpToSi => {
            let f = f64::from_bits(a);
            let i = if f.is_nan() { 0 } else { f.clamp(i64::MIN as f64, i64::MAX as f64) as i64 };
            (i as u64) & to.mask()
        }
        CastKind::Bitcast => a & to.mask(),
    }
}

mod decode;
mod engine;
mod forensics;
mod fuse;
mod profile;

pub use forensics::{FaultDetector, FaultSite, Forensics};
pub use profile::{CycleProfile, OpClass as ProfileOpClass, ProfileCell};

pub use fuse::FuseStats;

#[cfg(test)]
mod tests;
