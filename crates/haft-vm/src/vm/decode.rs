//! Pre-decoder: lowers IR functions into the fused engine's dense form.
//!
//! The interpreter pays per executed instruction for work that is
//! invariant across executions: chasing `BlockId → Vec<InstId> → Inst`
//! indirections, cloning `Op` payloads (calls carry operand `Vec`s),
//! hashing branch-predictor and store-forwarding keys, re-scanning a
//! target block for leading phis on every taken edge, and re-deriving
//! opcode latencies. `Decoded` hoists all of it to a one-time pass:
//! every function becomes a flat `Vec<DOp>` addressed by a single `pc`,
//! operands are pre-resolved ([`Src`] is a register slot or a finished
//! constant — immediates pre-masked, global/function addresses baked
//! in), jump targets are absolute pcs with their phi moves attached, and
//! each static conditional branch owns a dense predictor index.
//!
//! The lowering is 1:1 — one `DOp` per placed instruction, blocks laid
//! out in order — so a flat pc maps back to the interpreter's
//! `(block, idx)` pair and the pre-advance/rewind protocol (`idx += 1`
//! then `idx -= 1` on a blocked lock) carries over unchanged. Phi slots
//! decode to [`DOp::TrapMalformed`]: reaching one through straight-line
//! execution is exactly the interpreter's malformed-IR trap.

use haft_ir::function::{BlockId, Function};
use haft_ir::inst::{AbortCode, BinOp, Callee, CastKind, CmpOp, Op, Operand, RmwOp, UnOp};
use haft_ir::module::Module;
use haft_ir::types::Ty;

use super::{fuse, FUNC_BASE};
use crate::cost::CostConfig;
use crate::mem::Memory;

/// A pre-resolved operand: a register slot in the current frame, or a
/// constant whose value is fully known at decode time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Src {
    /// `frame.regs[n]` / `frame.ready[n]`.
    Slot(u32),
    /// Immediates (pre-masked), f64 bits, global bases, function addresses.
    Const(u64),
}

/// A resolved CFG edge: the absolute target pc (past the target block's
/// leading phis) plus the phi moves this particular edge performs, stored
/// as a range into [`Decoded::moves`] in block order (parallel-phi
/// semantics: the executor reads all sources before writing).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Edge {
    pub target: u32,
    pub moves_at: u32,
    pub moves_n: u32,
}

/// One phi assignment performed when taking an edge.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PhiMove {
    pub dst: u32,
    pub src: Src,
    pub ty: Ty,
}

/// A decoded instruction. Mirrors [`Op`] arm for arm, with every
/// decode-time-computable quantity already computed.
#[derive(Clone, Copy, Debug)]
pub(crate) enum DOp {
    Bin {
        op: BinOp,
        ty: Ty,
        a: Src,
        b: Src,
        dst: u32,
        lat: u64,
    },
    Un {
        op: UnOp,
        ty: Ty,
        a: Src,
        dst: u32,
        lat: u64,
    },
    Cmp {
        op: CmpOp,
        ty: Ty,
        a: Src,
        b: Src,
        dst: u32,
    },
    MoveV {
        ty: Ty,
        a: Src,
        dst: u32,
    },
    Cast {
        kind: CastKind,
        from: Ty,
        to: Ty,
        a: Src,
        dst: u32,
    },
    Select {
        ty: Ty,
        c: Src,
        t: Src,
        f: Src,
        dst: u32,
    },
    Gep {
        base: Src,
        index: Src,
        scale: i64,
        offset: u64,
        dst: u32,
    },
    Load {
        ty: Ty,
        addr: Src,
        atomic: bool,
        dst: u32,
    },
    Store {
        ty: Ty,
        val: Src,
        addr: Src,
        atomic: bool,
    },
    Rmw {
        op: RmwOp,
        ty: Ty,
        addr: Src,
        val: Src,
        dst: u32,
    },
    CmpXchg {
        ty: Ty,
        addr: Src,
        expected: Src,
        new: Src,
        dst: u32,
    },
    Alloc {
        size: Src,
        dst: u32,
    },
    Br {
        edge: Edge,
    },
    CondBr {
        cond: Src,
        t: Edge,
        f: Edge,
        bp: u32,
    },
    CallDirect {
        target: u32,
        args_at: u32,
        args_n: u32,
        dst: Option<u32>,
        arity_ok: bool,
    },
    CallInd {
        callee: Src,
        args_at: u32,
        args_n: u32,
        dst: Option<u32>,
    },
    Ret {
        val: Option<Src>,
    },
    TxBegin,
    TxEnd,
    TxCondSplit,
    TxCounterInc {
        amount: u64,
    },
    TxAbortIlr,
    TxAbortExplicit,
    Vote {
        ty: Ty,
        a: Src,
        b: Src,
        c: Src,
        dst: u32,
    },
    ChkCorrect {
        ty: Ty,
        a: Src,
        b: Src,
        c: Src,
        dst: u32,
    },
    Lock {
        addr: Src,
    },
    Unlock {
        addr: Src,
    },
    Emit {
        val: Src,
    },
    ThreadIdD {
        dst: u32,
    },
    NumThreadsD {
        dst: u32,
    },
    Nop,
    /// Phi slot: executable only through malformed control flow.
    TrapMalformed,
}

/// One decoded function: flat code, fuse flags, and the frame-layout
/// facts the executor needs without touching the IR.
#[derive(Debug)]
pub(crate) struct DFunc {
    pub code: Vec<DOp>,
    /// `fuse[pc]` — after `code[pc]` completes cleanly, execution may
    /// chain straight into `code[pc + 1]` within one dispatch.
    pub fuse: Vec<bool>,
    pub n_values: usize,
    pub n_params: usize,
    pub param_masks: Vec<u64>,
    /// Declared return type (`I64` when unspecified), for the caller-side
    /// register write on `Ret`.
    pub ret_ty: Ty,
}

/// A fully decoded module, shared read-only by all threads of a run.
#[derive(Debug)]
pub(crate) struct Decoded {
    pub funcs: Vec<DFunc>,
    /// Phi-move pool, referenced by [`Edge`] ranges.
    pub moves: Vec<PhiMove>,
    /// Call-argument pool, referenced by call `args_at`/`args_n`.
    pub args: Vec<Src>,
    /// Static conditional-branch count (dense predictor table size).
    pub n_condbrs: usize,
    /// What the fusion pass found (diagnostics and tests).
    pub stats: fuse::FuseStats,
}

fn lower(o: &Operand, mem: &Memory) -> Src {
    match o {
        Operand::Value(v) => Src::Slot(v.0),
        Operand::Imm(v, ty) => Src::Const((*v as u64) & ty.mask()),
        Operand::F64Bits(b) => Src::Const(*b),
        Operand::GlobalAddr(g) => Src::Const(mem.global_bases[g.0 as usize]),
        Operand::FuncAddr(f) => Src::Const(FUNC_BASE + f.0 as u64),
    }
}

/// Builds the edge `from → to`, appending its phi moves to `moves`.
fn make_edge(
    f: &Function,
    from: u32,
    to: BlockId,
    block_start: &[usize],
    lead_phis: &[usize],
    moves: &mut Vec<PhiMove>,
    mem: &Memory,
) -> Edge {
    let at = moves.len() as u32;
    let tb = &f.blocks[to.0 as usize];
    for &iid in tb.insts.iter().take(lead_phis[to.0 as usize]) {
        if let Op::Phi { ty, incomings } = &f.inst(iid).op {
            // A phi with no incoming for this edge is skipped, exactly
            // as the interpreter's edge walk skips it (no write).
            if let Some((val, _)) = incomings.iter().find(|(_, b)| b.0 == from) {
                moves.push(PhiMove {
                    dst: f.inst_result(iid).expect("phi has result").0,
                    src: lower(val, mem),
                    ty: *ty,
                });
            }
        }
    }
    Edge {
        target: (block_start[to.0 as usize] + lead_phis[to.0 as usize]) as u32,
        moves_at: at,
        moves_n: moves.len() as u32 - at,
    }
}

impl Decoded {
    /// Lowers every function of `m`. Pure function of the module, the
    /// global layout, and the cost table — safe to share across threads
    /// and runs.
    pub(crate) fn decode(m: &Module, mem: &Memory, cost: &CostConfig) -> Decoded {
        let mut moves = Vec::new();
        let mut args: Vec<Src> = Vec::new();
        let mut n_condbrs = 0usize;
        let mut stats = fuse::FuseStats::default();
        let mut funcs = Vec::with_capacity(m.funcs.len());
        for f in &m.funcs {
            // Pass 1: flat layout — blocks in order, one slot per inst.
            let mut block_start = Vec::with_capacity(f.blocks.len());
            let mut pc = 0usize;
            for b in &f.blocks {
                block_start.push(pc);
                pc += b.insts.len();
            }
            let lead_phis: Vec<usize> = f
                .blocks
                .iter()
                .map(|b| b.insts.iter().take_while(|&&i| f.inst(i).op.is_phi()).count())
                .collect();

            // Pass 2: lower each instruction.
            let mut code = Vec::with_capacity(pc);
            let mut ranges = Vec::with_capacity(f.blocks.len());
            for (bi, b) in f.blocks.iter().enumerate() {
                let start = code.len();
                for &iid in &b.insts {
                    let inst = f.inst(iid);
                    let dst = f.inst_result(iid).map(|v| v.0);
                    let dop = match &inst.op {
                        Op::Bin { op, ty, a, b } => DOp::Bin {
                            op: *op,
                            ty: *ty,
                            a: lower(a, mem),
                            b: lower(b, mem),
                            dst: dst.expect("bin has result"),
                            lat: cost.compute_latency(&inst.op),
                        },
                        Op::Un { op, ty, a } => DOp::Un {
                            op: *op,
                            ty: *ty,
                            a: lower(a, mem),
                            dst: dst.expect("un has result"),
                            lat: cost.compute_latency(&inst.op),
                        },
                        Op::Cmp { op, ty, a, b } => DOp::Cmp {
                            op: *op,
                            ty: *ty,
                            a: lower(a, mem),
                            b: lower(b, mem),
                            dst: dst.expect("cmp has result"),
                        },
                        Op::Move { ty, a } => DOp::MoveV {
                            ty: *ty,
                            a: lower(a, mem),
                            dst: dst.expect("move has result"),
                        },
                        Op::Cast { kind, to, a } => DOp::Cast {
                            kind: *kind,
                            from: f.operand_ty(a),
                            to: *to,
                            a: lower(a, mem),
                            dst: dst.expect("cast has result"),
                        },
                        Op::Select { ty, c, t, f: fv } => DOp::Select {
                            ty: *ty,
                            c: lower(c, mem),
                            t: lower(t, mem),
                            f: lower(fv, mem),
                            dst: dst.expect("select has result"),
                        },
                        Op::Gep { base, index, scale, offset } => DOp::Gep {
                            base: lower(base, mem),
                            index: lower(index, mem),
                            scale: *scale as i64,
                            offset: *offset as u64,
                            dst: dst.expect("gep has result"),
                        },
                        Op::Phi { .. } => DOp::TrapMalformed,
                        Op::Load { ty, addr, atomic } => DOp::Load {
                            ty: *ty,
                            addr: lower(addr, mem),
                            atomic: *atomic,
                            dst: dst.expect("load has result"),
                        },
                        Op::Store { ty, val, addr, atomic } => DOp::Store {
                            ty: *ty,
                            val: lower(val, mem),
                            addr: lower(addr, mem),
                            atomic: *atomic,
                        },
                        Op::Rmw { op, ty, addr, val } => DOp::Rmw {
                            op: *op,
                            ty: *ty,
                            addr: lower(addr, mem),
                            val: lower(val, mem),
                            dst: dst.expect("rmw has result"),
                        },
                        Op::CmpXchg { ty, addr, expected, new } => DOp::CmpXchg {
                            ty: *ty,
                            addr: lower(addr, mem),
                            expected: lower(expected, mem),
                            new: lower(new, mem),
                            dst: dst.expect("cmpxchg has result"),
                        },
                        Op::Alloc { size } => DOp::Alloc {
                            size: lower(size, mem),
                            dst: dst.expect("alloc has result"),
                        },
                        Op::Br { dest } => DOp::Br {
                            edge: make_edge(
                                f,
                                bi as u32,
                                *dest,
                                &block_start,
                                &lead_phis,
                                &mut moves,
                                mem,
                            ),
                        },
                        Op::CondBr { cond, t, f: fb } => {
                            let bp = n_condbrs as u32;
                            n_condbrs += 1;
                            DOp::CondBr {
                                cond: lower(cond, mem),
                                t: make_edge(
                                    f,
                                    bi as u32,
                                    *t,
                                    &block_start,
                                    &lead_phis,
                                    &mut moves,
                                    mem,
                                ),
                                f: make_edge(
                                    f,
                                    bi as u32,
                                    *fb,
                                    &block_start,
                                    &lead_phis,
                                    &mut moves,
                                    mem,
                                ),
                                bp,
                            }
                        }
                        Op::Call { callee, args: call_args, ret_ty: _ } => {
                            let at = args.len() as u32;
                            for a in call_args {
                                args.push(lower(a, mem));
                            }
                            let n = call_args.len() as u32;
                            match callee {
                                Callee::Direct(t) => DOp::CallDirect {
                                    target: t.0,
                                    args_at: at,
                                    args_n: n,
                                    dst,
                                    arity_ok: m.func(*t).params.len() == call_args.len(),
                                },
                                Callee::Indirect(o) => DOp::CallInd {
                                    callee: lower(o, mem),
                                    args_at: at,
                                    args_n: n,
                                    dst,
                                },
                            }
                        }
                        Op::Ret { val } => DOp::Ret { val: val.as_ref().map(|v| lower(v, mem)) },
                        Op::TxBegin => DOp::TxBegin,
                        Op::TxEnd => DOp::TxEnd,
                        Op::TxCondSplit => DOp::TxCondSplit,
                        Op::TxCounterInc { amount } => DOp::TxCounterInc { amount: *amount as u64 },
                        Op::TxAbort { code } => match code {
                            AbortCode::IlrDetected => DOp::TxAbortIlr,
                            AbortCode::Explicit => DOp::TxAbortExplicit,
                        },
                        Op::Vote { ty, a, b, c } => DOp::Vote {
                            ty: *ty,
                            a: lower(a, mem),
                            b: lower(b, mem),
                            c: lower(c, mem),
                            dst: dst.expect("vote has result"),
                        },
                        Op::ChkCorrect { ty, a, b, c } => DOp::ChkCorrect {
                            ty: *ty,
                            a: lower(a, mem),
                            b: lower(b, mem),
                            c: lower(c, mem),
                            dst: dst.expect("chk_correct has result"),
                        },
                        Op::Lock { addr } => DOp::Lock { addr: lower(addr, mem) },
                        Op::Unlock { addr } => DOp::Unlock { addr: lower(addr, mem) },
                        Op::Emit { ty: _, val } => DOp::Emit { val: lower(val, mem) },
                        Op::ThreadId => DOp::ThreadIdD { dst: dst.expect("thread_id has result") },
                        Op::NumThreads => {
                            DOp::NumThreadsD { dst: dst.expect("num_threads has result") }
                        }
                        Op::Nop => DOp::Nop,
                    };
                    code.push(dop);
                }
                ranges.push((start, code.len()));
            }
            let fuse = fuse::compute(&code, &ranges, &mut stats);
            funcs.push(DFunc {
                code,
                fuse,
                n_values: f.values.len(),
                n_params: f.params.len(),
                param_masks: f.params.iter().map(|p| p.mask()).collect(),
                ret_ty: f.ret_ty.unwrap_or(Ty::I64),
            });
        }
        Decoded { funcs, moves, args, n_condbrs, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haft_ir::function::ValueId;

    fn decode_module(m: &Module) -> Decoded {
        let mem = Memory::new(m, 1 << 16);
        Decoded::decode(m, &mem, &CostConfig::default())
    }

    /// Builds `fn f() { b0: br b1; b1: phi [(7, b0)]; ret phi }`.
    fn phi_module() -> Module {
        let mut m = Module::new("t");
        let mut f = Function::new("f", &[], Some(Ty::I64));
        let b1 = f.add_block();
        let (br, _) = f.create_inst(Op::Br { dest: b1 });
        f.push_to_block(f.entry(), br);
        let (phi, pv) = f.create_inst(Op::Phi {
            ty: Ty::I64,
            incomings: vec![(Operand::imm(7, Ty::I64), f.entry())],
        });
        f.push_to_block(b1, phi);
        let (ret, _) = f.create_inst(Op::Ret { val: Some(pv.unwrap().into()) });
        f.push_to_block(b1, ret);
        m.push_func(f);
        m
    }

    #[test]
    fn flat_layout_is_one_slot_per_inst_in_block_order() {
        let m = phi_module();
        let d = decode_module(&m);
        let df = &d.funcs[0];
        // b0: [Br], b1: [TrapMalformed (phi slot), Ret].
        assert_eq!(df.code.len(), 3);
        assert!(matches!(df.code[0], DOp::Br { .. }));
        assert!(matches!(df.code[1], DOp::TrapMalformed));
        assert!(matches!(df.code[2], DOp::Ret { .. }));
    }

    #[test]
    fn edges_skip_leading_phis_and_carry_their_moves() {
        let m = phi_module();
        let d = decode_module(&m);
        let DOp::Br { edge } = d.funcs[0].code[0] else { panic!("expected br") };
        // Target pc lands past the phi slot, on the ret.
        assert_eq!(edge.target, 2);
        assert_eq!(edge.moves_n, 1);
        let mv = d.moves[edge.moves_at as usize];
        assert_eq!(mv.src, Src::Const(7));
        assert_eq!(mv.ty, Ty::I64);
    }

    #[test]
    fn constants_are_fully_resolved() {
        let mut m = Module::new("t");
        let g = m.add_global("g", 8);
        let mut f = Function::new("f", &[], None);
        let (ld, lv) =
            f.create_inst(Op::Load { ty: Ty::I8, addr: Operand::GlobalAddr(g), atomic: false });
        f.push_to_block(f.entry(), ld);
        // Imm operands arrive pre-masked.
        let (add, _) = f.create_inst(Op::Bin {
            op: BinOp::Add,
            ty: Ty::I8,
            a: lv.unwrap().into(),
            b: Operand::imm(-1, Ty::I8),
        });
        f.push_to_block(f.entry(), add);
        let (ret, _) = f.create_inst(Op::Ret { val: None });
        f.push_to_block(f.entry(), ret);
        m.push_func(f);
        let mem = Memory::new(&m, 1 << 16);
        let d = Decoded::decode(&m, &mem, &CostConfig::default());
        let DOp::Load { addr, .. } = d.funcs[0].code[0] else { panic!() };
        assert_eq!(addr, Src::Const(mem.global_bases[0]));
        let DOp::Bin { b, a, .. } = d.funcs[0].code[1] else { panic!() };
        assert_eq!(b, Src::Const(0xff), "imm pre-masked to its type");
        assert_eq!(a, Src::Slot(lv.unwrap().0));
    }

    #[test]
    fn condbrs_get_dense_global_ids() {
        let mut m = Module::new("t");
        for name in ["f", "g"] {
            let mut f = Function::new(name, &[Ty::I64], None);
            let exit = f.add_block();
            let (cmp, cv) = f.create_inst(Op::Cmp {
                op: CmpOp::Eq,
                ty: Ty::I64,
                a: f.param_value(0).into(),
                b: Operand::imm(0, Ty::I64),
            });
            f.push_to_block(f.entry(), cmp);
            let (br, _) = f.create_inst(Op::CondBr { cond: cv.unwrap().into(), t: exit, f: exit });
            f.push_to_block(f.entry(), br);
            let (ret, _) = f.create_inst(Op::Ret { val: None });
            f.push_to_block(exit, ret);
            m.push_func(f);
        }
        let d = decode_module(&m);
        assert_eq!(d.n_condbrs, 2);
        let mut seen = Vec::new();
        for df in &d.funcs {
            for op in &df.code {
                if let DOp::CondBr { bp, .. } = op {
                    seen.push(*bp);
                }
            }
        }
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn frame_layout_facts_are_captured() {
        let mut m = Module::new("t");
        let mut f = Function::new("f", &[Ty::I8, Ty::I64], Some(Ty::I32));
        let (ret, _) = f.create_inst(Op::Ret { val: Some(Operand::imm(0, Ty::I32)) });
        f.push_to_block(f.entry(), ret);
        m.push_func(f);
        // Keep one extra value so n_values > n_params.
        let _ = ValueId(0);
        let d = decode_module(&m);
        let df = &d.funcs[0];
        assert_eq!(df.n_params, 2);
        assert_eq!(df.param_masks, vec![0xff, u64::MAX]);
        assert_eq!(df.ret_ty, Ty::I32);
        assert_eq!(df.n_values, 2);
    }

    #[test]
    fn direct_call_arity_is_checked_at_decode() {
        let mut m = Module::new("t");
        let mut callee = Function::new("callee", &[Ty::I64], None);
        let (r, _) = callee.create_inst(Op::Ret { val: None });
        callee.push_to_block(callee.entry(), r);
        let callee_id = m.push_func(callee);
        let mut f = Function::new("f", &[], None);
        let (call, _) = f.create_inst(Op::Call {
            callee: Callee::Direct(callee_id),
            args: vec![],
            ret_ty: None,
        });
        f.push_to_block(f.entry(), call);
        let (ret, _) = f.create_inst(Op::Ret { val: None });
        f.push_to_block(f.entry(), ret);
        m.push_func(f);
        let d = decode_module(&m);
        let DOp::CallDirect { arity_ok, args_n, .. } = d.funcs[1].code[0] else { panic!() };
        assert!(!arity_ok, "zero args against one param");
        assert_eq!(args_n, 0);
    }
}
