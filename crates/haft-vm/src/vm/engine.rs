//! The fused execution engine: dense dispatch over decoded code.
//!
//! `step_fused` is the `Fused` counterpart of `Vm::step` and mirrors it
//! micro-op for micro-op — same HTM access order, same scoreboard calls,
//! same trap and abort paths, same register-write (fault-injection)
//! stream. What changes is purely the mechanics: the frame's `idx` is a
//! flat pc into `DFunc::code`, branch prediction uses a dense per-site
//! table instead of a hash map, store→load forwarding and the
//! transactional write buffer use open-addressed cell maps instead of
//! `std::collections::HashMap` (whose SipHash per byte dominated the
//! interpreter's profile), and call frames recycle register windows from
//! a pool instead of allocating. Each opcode arm borrows its thread
//! exactly once and splits field borrows from there, so the dispatch
//! loop carries no repeated `threads[tid]` re-indexing.
//!
//! Fused chains: when `fuse[pc]` is set and the op completed cleanly
//! ([`EFlow::Norm`]), the dispatch loop continues straight into the next
//! constituent. Between constituents it replays the exact inter-op
//! protocol the scheduler applies between `step` calls — async-abort
//! poll, horizon check, budget check, doomed check — so a run is
//! bit-identical whether a pair fused or not; a mid-chain bail leaves
//! the pc on the next constituent and the scheduler resumes there.

use haft_htm::{AbortCause, AccessKind};
use haft_ir::function::{BlockId, ValueId};
use haft_ir::inst::RmwOp;
use haft_ir::module::FuncId;
use haft_ir::types::Ty;

use super::decode::{DOp, Decoded, Edge, Src};
use super::forensics::ForensicsState;
use super::{
    eval_bin, eval_cast, eval_cmp, eval_un, Flow, Frame, RunOutcome, Thread, Vm, FUNC_BASE,
    MAX_CALL_DEPTH,
};
use crate::fault::FaultPlan;
use crate::mem::{Memory, Trap};

/// Outcome of one fused-engine op.
pub(super) enum EFlow {
    /// Clean straight-line completion at `pc + 1`: eligible to continue
    /// a fused chain. Never returned after a control transfer, a trap,
    /// or a transactional rollback.
    Norm,
    /// Everything else; carries the interpreter-visible flow signal.
    Flow(Flow),
}

/// Reads a decoded operand against a frame.
#[inline(always)]
fn rd(fr: &Frame, s: Src) -> (u64, u64) {
    match s {
        Src::Slot(i) => (fr.regs[i as usize], fr.ready[i as usize]),
        Src::Const(v) => (v, 0),
    }
}

/// Register write on an already-borrowed thread: exactly `Vm::write_reg`
/// (same masking, same occurrence counting, same fault hook), taking the
/// disjoint `Vm` fields it needs so the caller's thread borrow can stay
/// live.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // each is a disjoint `Vm` field borrow
fn wreg(
    t: &mut Thread,
    occ: &mut u64,
    fault: &mut Option<FaultPlan>,
    fx: &mut Option<Box<ForensicsState>>,
    dst: u32,
    val: u64,
    ready: u64,
    ty: Ty,
) {
    let fr = t.frames.last_mut().expect("live frame");
    fr.regs[dst as usize] = val & ty.mask();
    fr.ready[dst as usize] = ready;
    *occ += 1;
    if let Some(plan) = *fault {
        if *occ - 1 == plan.occurrence {
            let mask = plan.effective_mask(ty);
            fr.regs[dst as usize] ^= mask;
            *fault = None;
            if let Some(fx) = fx.as_deref_mut() {
                let func = fr.func;
                fx.seed(func, t.frames.len(), dst, mask, plan.occurrence);
            }
        }
    }
}

impl<'m> Vm<'m> {
    /// Advances thread `tid` direct-threaded until its clock reaches
    /// `horizon` (or control leaves the straight-line fast path).
    ///
    /// Between ops it replays the scheduler's exact inter-step protocol
    /// — poll, horizon check, budget check, doomed check, in that order
    /// — so the op stream is bit-identical to `step` driven one op at a
    /// time from `schedule`. Fused chains are the payoff: a `fuse[pc]`
    /// pair retires both constituents in consecutive iterations with no
    /// scheduler bounce, `df` staying hot.
    pub(super) fn step_fused(&mut self, tid: usize, horizon: u64, d: &Decoded) -> Flow {
        loop {
            let t = &mut self.threads[tid];
            // Deliver pending asynchronous aborts first (same as `step`).
            let doomed = if t.in_tx() { self.htm.doomed(tid) } else { None };
            if let Some(cause) = doomed {
                self.tx_abort(tid, cause);
            } else {
                // Fetch and pre-advance in one frame borrow; control flow
                // overwrites the pc, `Blocked` rewinds it.
                let fr = t.frames.last_mut().expect("live frame");
                let fid = fr.func.0 as usize;
                let pc = fr.idx;
                fr.idx = pc + 1;
                self.instructions += 1;
                let df = &d.funcs[fid];
                self.fused_retired += df.fuse[pc] as u64;
                if let Some(p) = self.profiler.as_mut() {
                    let class = super::profile::OpClass::of_dop(&df.code[pc]);
                    p.fetch(tid, self.threads[tid].sb.clock, fid as u32, class);
                }
                if self.forensics.is_some() {
                    // Pre-execute taint transfer, mirroring `step`.
                    self.forensics_transfer_fused(tid, &df.code[pc], d);
                }

                let ef = self.exec_dop(tid, &df.code[pc], d);
                if self.forensics.is_some() {
                    let class = super::profile::OpClass::of_dop(&df.code[pc]);
                    self.forensics_seed_complete(tid, class);
                }
                match ef {
                    EFlow::Norm => {}
                    EFlow::Flow(Flow::Continue) => {}
                    EFlow::Flow(flow) => {
                        if let Flow::Blocked(_) = flow {
                            let fr = self.threads[tid].frames.last_mut().expect("live frame");
                            fr.idx -= 1;
                            self.instructions -= 1;
                        }
                        self.poll_tx(tid);
                        return flow;
                    }
                }
            }

            // Inter-op gap: poll, then the same horizon and budget checks
            // the scheduler loop performs between unfused steps. (After
            // the abort path above the poll condition is always false —
            // `tx_abort` resets `last_poll_clock` to the current clock —
            // so sharing this tail with it changes nothing.)
            let t = &mut self.threads[tid];
            if t.in_tx() {
                let now = t.sb.clock;
                if now > t.last_poll_clock + 256 {
                    let delta = now - t.last_poll_clock;
                    t.last_poll_clock = now;
                    self.htm.poll_async(tid, now, delta, &mut self.rng);
                }
            }
            if t.sb.clock >= horizon {
                return Flow::Continue;
            }
            if self.instructions >= self.cfg.max_instructions {
                return Flow::Stop(RunOutcome::Hang);
            }
        }
    }

    /// Time-based asynchronous abort poll, run after every op exactly as
    /// the interpreter does at the end of `step`.
    #[inline(always)]
    fn poll_tx(&mut self, tid: usize) {
        let t = &mut self.threads[tid];
        if t.in_tx() {
            let now = t.sb.clock;
            if now > t.last_poll_clock + 256 {
                let delta = now - t.last_poll_clock;
                t.last_poll_clock = now;
                self.htm.poll_async(tid, now, delta, &mut self.rng);
            }
        }
    }

    /// Ready time contributed by earlier stores (fused-engine cell map).
    fn mem_ready_f(&self, tid: usize, addr: u64, len: u32) -> u64 {
        let t = &self.threads[tid];
        let mut ready = 0;
        for cell in (addr >> 3)..=((addr + len as u64 - 1) >> 3) {
            if let Some(d) = t.store_done_fast.get(cell) {
                ready = ready.max(d);
            }
        }
        ready
    }

    fn note_store_f(&mut self, tid: usize, addr: u64, len: u32, done: u64) {
        let t = &mut self.threads[tid];
        for cell in (addr >> 3)..=((addr + len as u64 - 1) >> 3) {
            t.store_done_fast.insert(cell, done);
        }
    }

    /// Transactional store through the fused write buffer. Same contract
    /// as `mem_store`: bounds-check eagerly so wild stores trap now.
    fn mem_store_f(&mut self, tid: usize, addr: u64, len: u32, val: u64) -> Result<(), Trap> {
        if self.threads[tid].in_tx() {
            self.mem.load(addr, len)?;
            self.threads[tid].fovl.buffer_store(addr, len, val);
            Ok(())
        } else {
            self.mem.store(addr, len, val)
        }
    }

    fn make_frame_fused(
        &mut self,
        d: &Decoded,
        target: u32,
        args: &[u64],
        return_to: Option<ValueId>,
    ) -> Frame {
        let df = &d.funcs[target as usize];
        let (mut regs, mut ready) = self.pool.pop().unwrap_or_default();
        regs.clear();
        regs.resize(df.n_values, 0);
        ready.clear();
        ready.resize(df.n_values, 0);
        for (i, a) in args.iter().enumerate() {
            regs[i] = a & df.param_masks[i];
        }
        Frame { func: FuncId(target), block: BlockId(0), idx: 0, regs, ready, return_to }
    }

    fn do_call(
        &mut self,
        tid: usize,
        d: &Decoded,
        target: u32,
        args_at: u32,
        args_n: u32,
        dst: Option<u32>,
    ) -> EFlow {
        let width = self.cfg.cost.width;
        let mut vals = std::mem::take(&mut self.arg_scratch);
        vals.clear();
        let mut ready = 0;
        let fr = self.threads[tid].frames.last().expect("live frame");
        for s in &d.args[args_at as usize..(args_at + args_n) as usize] {
            let (v, r) = rd(fr, *s);
            vals.push(v);
            ready = ready.max(r);
        }
        self.threads[tid].sb.issue(width, ready, self.cfg.cost.lat_call);
        let frame = self.make_frame_fused(d, target, &vals, dst.map(ValueId));
        self.arg_scratch = vals;
        self.threads[tid].frames.push(frame);
        EFlow::Flow(Flow::Continue)
    }

    /// Takes a decoded CFG edge: parallel phi moves, then the pc jump.
    fn take_edge_fused(&mut self, tid: usize, d: &Decoded, edge: Edge) {
        if edge.moves_n == 1 {
            // Single move: parallel semantics are trivial, skip the
            // scratch buffer.
            let mv = &d.moves[edge.moves_at as usize];
            let t = &mut self.threads[tid];
            let (v, r) = rd(t.frames.last().expect("live frame"), mv.src);
            wreg(t, &mut self.occ, &mut self.fault, &mut self.forensics, mv.dst, v, r, mv.ty);
            t.frames.last_mut().expect("live frame").idx = edge.target as usize;
        } else if edge.moves_n > 0 {
            let mut scratch = std::mem::take(&mut self.phi_scratch);
            scratch.clear();
            let at = edge.moves_at as usize;
            let t = &mut self.threads[tid];
            let fr = t.frames.last().expect("live frame");
            // Parallel semantics: read every source before any write.
            for mv in &d.moves[at..at + edge.moves_n as usize] {
                let (v, r) = rd(fr, mv.src);
                scratch.push((mv.dst, v, r, mv.ty));
            }
            for &(dst, v, r, ty) in &scratch {
                wreg(t, &mut self.occ, &mut self.fault, &mut self.forensics, dst, v, r, ty);
            }
            t.frames.last_mut().expect("live frame").idx = edge.target as usize;
            self.phi_scratch = scratch;
        } else {
            self.threads[tid].frames.last_mut().expect("live frame").idx = edge.target as usize;
        }
    }

    /// Executes one decoded op. Every arm mirrors the corresponding
    /// `Op` arm in `Vm::step` exactly.
    fn exec_dop(&mut self, tid: usize, op: &DOp, d: &Decoded) -> EFlow {
        let width = self.cfg.cost.width;
        match *op {
            // --- compute -----------------------------------------------------
            DOp::Bin { op, ty, a, b, dst, lat } => {
                let t = &mut self.threads[tid];
                let fr = t.frames.last().expect("live frame");
                let (av, ar) = rd(fr, a);
                let (bv, br) = rd(fr, b);
                match eval_bin(op, ty, av, bv) {
                    Ok(v) => {
                        let done = t.sb.issue(width, ar.max(br), lat);
                        wreg(
                            t,
                            &mut self.occ,
                            &mut self.fault,
                            &mut self.forensics,
                            dst,
                            v,
                            done,
                            ty,
                        );
                        EFlow::Norm
                    }
                    Err(trap) => EFlow::Flow(self.trap(tid, trap)),
                }
            }
            DOp::Un { op, ty, a, dst, lat } => {
                let t = &mut self.threads[tid];
                let (av, ar) = rd(t.frames.last().expect("live frame"), a);
                let v = eval_un(op, ty, av);
                let done = t.sb.issue(width, ar, lat);
                wreg(t, &mut self.occ, &mut self.fault, &mut self.forensics, dst, v, done, ty);
                EFlow::Norm
            }
            DOp::Cmp { op, ty, a, b, dst } => {
                let t = &mut self.threads[tid];
                let fr = t.frames.last().expect("live frame");
                let (av, ar) = rd(fr, a);
                let (bv, br) = rd(fr, b);
                let v = eval_cmp(op, ty, av, bv) as u64;
                let done = t.sb.issue(width, ar.max(br), self.cfg.cost.lat_int);
                wreg(t, &mut self.occ, &mut self.fault, &mut self.forensics, dst, v, done, Ty::I1);
                EFlow::Norm
            }
            DOp::MoveV { ty, a, dst } => {
                let t = &mut self.threads[tid];
                let (av, ar) = rd(t.frames.last().expect("live frame"), a);
                let done = t.sb.issue(width, ar, self.cfg.cost.lat_int);
                wreg(t, &mut self.occ, &mut self.fault, &mut self.forensics, dst, av, done, ty);
                EFlow::Norm
            }
            DOp::Cast { kind, from, to, a, dst } => {
                let t = &mut self.threads[tid];
                let (av, ar) = rd(t.frames.last().expect("live frame"), a);
                let v = eval_cast(kind, from, to, av);
                let done = t.sb.issue(width, ar, self.cfg.cost.lat_int);
                wreg(t, &mut self.occ, &mut self.fault, &mut self.forensics, dst, v, done, to);
                EFlow::Norm
            }
            DOp::Select { ty, c, t, f, dst } => {
                let th = &mut self.threads[tid];
                let fr = th.frames.last().expect("live frame");
                let (cv, cr) = rd(fr, c);
                let (tv, tr) = rd(fr, t);
                let (fv, fr2) = rd(fr, f);
                let v = if cv & 1 != 0 { tv } else { fv };
                let done = th.sb.issue(width, cr.max(tr).max(fr2), self.cfg.cost.lat_int);
                wreg(th, &mut self.occ, &mut self.fault, &mut self.forensics, dst, v, done, ty);
                EFlow::Norm
            }
            DOp::Gep { base, index, scale, offset, dst } => {
                let t = &mut self.threads[tid];
                let fr = t.frames.last().expect("live frame");
                let (bv, br) = rd(fr, base);
                let (iv, ir) = rd(fr, index);
                let v =
                    bv.wrapping_add((iv as i64).wrapping_mul(scale) as u64).wrapping_add(offset);
                let done = t.sb.issue(width, br.max(ir), self.cfg.cost.lat_int);
                wreg(t, &mut self.occ, &mut self.fault, &mut self.forensics, dst, v, done, Ty::Ptr);
                EFlow::Norm
            }
            DOp::TrapMalformed => EFlow::Flow(self.trap(tid, Trap::MalformedIr)),

            // --- memory -----------------------------------------------------
            DOp::Load { ty, addr, atomic, dst } => {
                let (av, ar) = rd(self.threads[tid].frames.last().expect("live frame"), addr);
                let len = ty.size_bytes();
                let hit = self.htm.access(tid, av, len as u64, AccessKind::Read);
                match self.mem_load(tid, av, len) {
                    Ok(v) => {
                        let lat = if atomic {
                            self.cfg.cost.lat_atomic
                        } else if hit {
                            self.cfg.cost.lat_load_hit
                        } else {
                            self.cfg.cost.lat_load_miss
                        };
                        let dep = self.mem_ready_f(tid, av, len);
                        let t = &mut self.threads[tid];
                        let done = t.sb.issue(width, ar.max(dep), lat);
                        wreg(
                            t,
                            &mut self.occ,
                            &mut self.fault,
                            &mut self.forensics,
                            dst,
                            v,
                            done,
                            ty,
                        );
                        EFlow::Norm
                    }
                    Err(trap) => EFlow::Flow(self.trap(tid, trap)),
                }
            }
            DOp::Store { ty, val, addr, atomic } => {
                let fr = self.threads[tid].frames.last().expect("live frame");
                let (vv, vr) = rd(fr, val);
                let (av, ar) = rd(fr, addr);
                let len = ty.size_bytes();
                self.htm.access(tid, av, len as u64, AccessKind::Write);
                match self.mem_store_f(tid, av, len, vv) {
                    Ok(()) => {
                        let lat =
                            if atomic { self.cfg.cost.lat_atomic } else { self.cfg.cost.lat_store };
                        let done = self.threads[tid].sb.issue(width, vr.max(ar), lat);
                        self.note_store_f(tid, av, len, done);
                        EFlow::Norm
                    }
                    Err(trap) => EFlow::Flow(self.trap(tid, trap)),
                }
            }
            DOp::Rmw { op, ty, addr, val, dst } => {
                let fr = self.threads[tid].frames.last().expect("live frame");
                let (av, ar) = rd(fr, addr);
                let (vv, vr) = rd(fr, val);
                let len = ty.size_bytes();
                self.htm.access(tid, av, len as u64, AccessKind::Write);
                match self.mem_load(tid, av, len) {
                    Ok(old) => {
                        let new = match op {
                            RmwOp::Add => old.wrapping_add(vv),
                            RmwOp::Xchg => vv,
                        };
                        match self.mem_store_f(tid, av, len, new) {
                            Ok(()) => {
                                let dep = self.mem_ready_f(tid, av, len);
                                let t = &mut self.threads[tid];
                                let done = t.sb.issue(
                                    width,
                                    ar.max(vr).max(dep),
                                    self.cfg.cost.lat_atomic,
                                );
                                self.note_store_f(tid, av, len, done);
                                let t = &mut self.threads[tid];
                                wreg(
                                    t,
                                    &mut self.occ,
                                    &mut self.fault,
                                    &mut self.forensics,
                                    dst,
                                    old,
                                    done,
                                    ty,
                                );
                                EFlow::Norm
                            }
                            Err(trap) => EFlow::Flow(self.trap(tid, trap)),
                        }
                    }
                    Err(trap) => EFlow::Flow(self.trap(tid, trap)),
                }
            }
            DOp::CmpXchg { ty, addr, expected, new, dst } => {
                let fr = self.threads[tid].frames.last().expect("live frame");
                let (av, ar) = rd(fr, addr);
                let (ev, er) = rd(fr, expected);
                let (nv, nr) = rd(fr, new);
                let len = ty.size_bytes();
                self.htm.access(tid, av, len as u64, AccessKind::Write);
                match self.mem_load(tid, av, len) {
                    Ok(old) => {
                        let res =
                            if old == ev { self.mem_store_f(tid, av, len, nv) } else { Ok(()) };
                        match res {
                            Ok(()) => {
                                let dep = self.mem_ready_f(tid, av, len);
                                let ready = ar.max(er).max(nr).max(dep);
                                let t = &mut self.threads[tid];
                                let done = t.sb.issue(width, ready, self.cfg.cost.lat_atomic);
                                self.note_store_f(tid, av, len, done);
                                let t = &mut self.threads[tid];
                                wreg(
                                    t,
                                    &mut self.occ,
                                    &mut self.fault,
                                    &mut self.forensics,
                                    dst,
                                    old,
                                    done,
                                    ty,
                                );
                                EFlow::Norm
                            }
                            Err(trap) => EFlow::Flow(self.trap(tid, trap)),
                        }
                    }
                    Err(trap) => EFlow::Flow(self.trap(tid, trap)),
                }
            }
            DOp::Alloc { size, dst } => {
                let (sv, sr) = rd(self.threads[tid].frames.last().expect("live frame"), size);
                match self.mem.alloc(sv) {
                    Ok(base) => {
                        let t = &mut self.threads[tid];
                        let done = t.sb.issue(width, sr, self.cfg.cost.lat_alloc);
                        wreg(
                            t,
                            &mut self.occ,
                            &mut self.fault,
                            &mut self.forensics,
                            dst,
                            base,
                            done,
                            Ty::Ptr,
                        );
                        EFlow::Norm
                    }
                    Err(trap) => EFlow::Flow(self.trap(tid, trap)),
                }
            }

            // --- control ----------------------------------------------------
            DOp::Br { edge } => {
                self.threads[tid].sb.issue(width, 0, self.cfg.cost.lat_branch);
                self.take_edge_fused(tid, d, edge);
                EFlow::Flow(Flow::Continue)
            }
            DOp::CondBr { cond, t, f, bp } => {
                let th = &mut self.threads[tid];
                let (cv, cr) = rd(th.frames.last().expect("live frame"), cond);
                let taken = cv & 1 != 0;
                let done = th.sb.issue(width, cr, self.cfg.cost.lat_branch);
                // Dense 1-bit predictor: 0 unknown, 1 not-taken, 2 taken.
                let prev = th.bp_dense[bp as usize];
                th.bp_dense[bp as usize] = 1 + taken as u8;
                if prev != 0 && (prev == 2) != taken {
                    self.mispredicts += 1;
                    th.sb.flush_to(done + self.cfg.cost.mispredict_penalty);
                }
                let edge = if taken { t } else { f };
                self.take_edge_fused(tid, d, edge);
                EFlow::Flow(Flow::Continue)
            }
            DOp::CallDirect { target, args_at, args_n, dst, arity_ok } => {
                if self.threads[tid].frames.len() >= MAX_CALL_DEPTH {
                    return EFlow::Flow(self.trap(tid, Trap::StackOverflow));
                }
                if !arity_ok {
                    return EFlow::Flow(self.trap(tid, Trap::MalformedIr));
                }
                self.do_call(tid, d, target, args_at, args_n, dst)
            }
            DOp::CallInd { callee, args_at, args_n, dst } => {
                let (v, _) = rd(self.threads[tid].frames.last().expect("live frame"), callee);
                let idx = v.wrapping_sub(FUNC_BASE);
                if v < FUNC_BASE || (idx as usize) >= d.funcs.len() {
                    return EFlow::Flow(self.trap(tid, Trap::BadIndirectCall { target: v }));
                }
                let target = idx as u32;
                if self.threads[tid].frames.len() >= MAX_CALL_DEPTH {
                    return EFlow::Flow(self.trap(tid, Trap::StackOverflow));
                }
                if d.funcs[target as usize].n_params != args_n as usize {
                    return EFlow::Flow(self.trap(tid, Trap::MalformedIr));
                }
                self.do_call(tid, d, target, args_at, args_n, dst)
            }
            DOp::Ret { val } => {
                let t = &mut self.threads[tid];
                let rv = val.map(|s| rd(t.frames.last().expect("live frame"), s));
                let done =
                    t.sb.issue(width, rv.map(|(_, r)| r).unwrap_or(0), self.cfg.cost.lat_call);
                let frame = t.frames.pop().expect("live frame");
                if t.frames.is_empty() {
                    self.pool.push((frame.regs, frame.ready));
                    return EFlow::Flow(Flow::ThreadDone);
                }
                if let (Some(dst), Some((v, _))) = (frame.return_to, rv) {
                    let ty = d.funcs[frame.func.0 as usize].ret_ty;
                    wreg(
                        t,
                        &mut self.occ,
                        &mut self.fault,
                        &mut self.forensics,
                        dst.0,
                        v,
                        done,
                        ty,
                    );
                }
                // Donate the retired register window back to the pool.
                self.pool.push((frame.regs, frame.ready));
                EFlow::Flow(Flow::Continue)
            }

            // --- HAFT runtime intrinsics -----------------------------------------
            DOp::TxBegin => {
                let done = self.threads[tid].sb.issue_serial(width, self.cfg.cost.lat_tx_begin);
                self.tx_begin(tid, done);
                EFlow::Norm
            }
            DOp::TxEnd => {
                if self.threads[tid].tx_depth > 1 {
                    self.threads[tid].tx_depth -= 1;
                    self.threads[tid].sb.issue(width, 0, self.cfg.cost.lat_int);
                    EFlow::Norm
                } else if self.threads[tid].in_tx() {
                    self.threads[tid].sb.issue_serial(width, self.cfg.cost.lat_tx_end);
                    match self.tx_commit(tid) {
                        Ok(()) => EFlow::Norm,
                        Err(cause) => {
                            self.tx_abort(tid, cause);
                            EFlow::Flow(Flow::Continue)
                        }
                    }
                } else {
                    self.threads[tid].sb.issue(width, 0, self.cfg.cost.lat_int);
                    EFlow::Norm
                }
            }
            DOp::TxCondSplit => {
                self.threads[tid].sb.issue(width, 0, self.cfg.cost.lat_tx_split_check);
                if self.threads[tid].counter >= self.threads[tid].threshold
                    && self.threads[tid].elided.is_empty()
                {
                    if self.threads[tid].in_tx() {
                        self.threads[tid].sb.issue_serial(width, self.cfg.cost.lat_tx_end);
                        match self.tx_commit(tid) {
                            Ok(()) => {
                                let begin = self.threads[tid]
                                    .sb
                                    .issue_serial(width, self.cfg.cost.lat_tx_begin);
                                self.tx_begin(tid, begin);
                                EFlow::Norm
                            }
                            Err(cause) => {
                                self.tx_abort(tid, cause);
                                EFlow::Flow(Flow::Continue)
                            }
                        }
                    } else {
                        let begin =
                            self.threads[tid].sb.issue_serial(width, self.cfg.cost.lat_tx_begin);
                        self.tx_begin(tid, begin);
                        EFlow::Norm
                    }
                } else {
                    EFlow::Norm
                }
            }
            DOp::TxCounterInc { amount } => {
                let lat = self.cfg.cost.lat_counter_inc;
                let t = &mut self.threads[tid];
                t.counter += amount;
                t.sb.issue(width, 0, lat);
                EFlow::Norm
            }
            DOp::TxAbortIlr => EFlow::Flow(self.ilr_detect(tid)),
            DOp::TxAbortExplicit => {
                if self.threads[tid].in_tx() {
                    self.tx_abort(tid, AbortCause::Explicit);
                    EFlow::Flow(Flow::Continue)
                } else {
                    EFlow::Flow(Flow::Stop(RunOutcome::Detected))
                }
            }
            DOp::Vote { ty, a, b, c, dst } => {
                let t = &mut self.threads[tid];
                let fr = t.frames.last().expect("live frame");
                let (av, ar) = rd(fr, a);
                let (bv, br) = rd(fr, b);
                let (cv, cr) = rd(fr, c);
                let majority = if av == bv || av == cv {
                    Some(av)
                } else if bv == cv {
                    Some(bv)
                } else {
                    None
                };
                match majority {
                    Some(v) => {
                        if !(av == bv && av == cv) {
                            self.corrected_by_vote += 1;
                            // `t` stays borrowed; `trace`/`wall_cycles` are
                            // disjoint `Vm` fields.
                            if let Some(tr) = self.trace.as_mut() {
                                tr.push(
                                    haft_trace::TraceEvent::instant(
                                        "vm",
                                        "vote.correct",
                                        self.wall_cycles + t.sb.clock,
                                    )
                                    .lane(0, tid as u32),
                                );
                            }
                            if let Some(fx) = self.forensics.as_deref_mut() {
                                // Same pre-issue timestamp as the
                                // interpreter's vote hook.
                                fx.detect(
                                    super::forensics::FaultDetector::Vote,
                                    self.instructions,
                                    self.wall_cycles + t.sb.clock,
                                );
                            }
                        }
                        let done = t.sb.issue(width, ar.max(br).max(cr), self.cfg.cost.lat_vote);
                        // Forwarded write: not part of the fault-injection
                        // occurrence stream (mirrors `write_reg_forwarded`).
                        let fr = t.frames.last_mut().expect("live frame");
                        fr.regs[dst as usize] = v & ty.mask();
                        fr.ready[dst as usize] = done;
                        EFlow::Norm
                    }
                    None => EFlow::Flow(self.ilr_detect(tid)),
                }
            }
            DOp::ChkCorrect { ty, a, b, c, dst } => {
                let t = &mut self.threads[tid];
                let fr = t.frames.last().expect("live frame");
                let (av, ar) = rd(fr, a);
                let (bv, br) = rd(fr, b);
                let (cv, cr) = rd(fr, c);
                let majority = if av == bv || av == cv {
                    Some(av)
                } else if bv == cv {
                    Some(bv)
                } else {
                    None
                };
                match majority {
                    Some(v) => {
                        if !(av == bv && av == cv) {
                            self.corrected_by_checksum += 1;
                            if let Some(tr) = self.trace.as_mut() {
                                tr.push(
                                    haft_trace::TraceEvent::instant(
                                        "vm",
                                        "abft.correct",
                                        self.wall_cycles + t.sb.clock,
                                    )
                                    .lane(0, tid as u32),
                                );
                            }
                            if let Some(fx) = self.forensics.as_deref_mut() {
                                // Same pre-issue timestamp as the
                                // interpreter's hook.
                                fx.detect(
                                    super::forensics::FaultDetector::Checksum,
                                    self.instructions,
                                    self.wall_cycles + t.sb.clock,
                                );
                            }
                        }
                        let done = t.sb.issue(width, ar.max(br).max(cr), self.cfg.cost.lat_vote);
                        // Forwarded write: not part of the fault-injection
                        // occurrence stream (mirrors `write_reg_forwarded`).
                        let fr = t.frames.last_mut().expect("live frame");
                        fr.regs[dst as usize] = v & ty.mask();
                        fr.ready[dst as usize] = done;
                        EFlow::Norm
                    }
                    None => EFlow::Flow(self.ilr_detect(tid)),
                }
            }
            DOp::Lock { addr } => {
                let (av, ar) = rd(self.threads[tid].frames.last().expect("live frame"), addr);
                EFlow::Flow(self.exec_lock(tid, av, ar))
            }
            DOp::Unlock { addr } => {
                let (av, ar) = rd(self.threads[tid].frames.last().expect("live frame"), addr);
                EFlow::Flow(self.exec_unlock(tid, av, ar))
            }
            DOp::Emit { val } => {
                if self.threads[tid].in_tx() {
                    self.tx_abort(tid, AbortCause::Unfriendly);
                    EFlow::Flow(Flow::Continue)
                } else {
                    let t = &mut self.threads[tid];
                    let (v, _) = rd(t.frames.last().expect("live frame"), val);
                    t.sb.issue_serial(width, self.cfg.cost.lat_emit);
                    t.emitted.push(v);
                    EFlow::Norm
                }
            }
            DOp::ThreadIdD { dst } => {
                let t = &mut self.threads[tid];
                let done = t.sb.issue(width, 0, self.cfg.cost.lat_int);
                wreg(
                    t,
                    &mut self.occ,
                    &mut self.fault,
                    &mut self.forensics,
                    dst,
                    tid as u64,
                    done,
                    Ty::I64,
                );
                EFlow::Norm
            }
            DOp::NumThreadsD { dst } => {
                let n = self.cfg.n_threads.max(1) as u64;
                let t = &mut self.threads[tid];
                let done = t.sb.issue(width, 0, self.cfg.cost.lat_int);
                wreg(t, &mut self.occ, &mut self.fault, &mut self.forensics, dst, n, done, Ty::I64);
                EFlow::Norm
            }
            DOp::Nop => EFlow::Norm,
        }
    }
}

// --- open-addressed support structures ------------------------------------------

/// Expands each set bit of a byte mask into a full 0xFF byte lane.
const LANES: [u64; 256] = {
    let mut t = [0u64; 256];
    let mut m = 0;
    while m < 256 {
        let mut v = 0u64;
        let mut b = 0;
        while b < 8 {
            if m & (1 << b) != 0 {
                v |= 0xFF << (8 * b);
            }
            b += 1;
        }
        t[m] = v;
        m += 1;
    }
    t
};

#[inline]
fn cell_hash(key: u64, shift: u32) -> usize {
    // Fibonacci hashing: cells are sequential, so multiply-shift spreads
    // them across the table with no clustering.
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> shift) as usize
}

/// The fused engine's speculative write buffer: a word-granular overlay
/// keyed by 8-byte cell, with a per-byte validity mask. Semantically
/// identical to the interpreter's byte-keyed `HashMap<u64, u8>` overlay
/// (same buffered bytes, same read-through merge, same flush result) at
/// one probe per cell instead of one SipHash per byte.
#[derive(Debug, Default)]
pub(super) struct FastOverlay {
    /// `(cell + 1, data word, byte mask)`; key 0 marks an empty slot.
    slots: Vec<(u64, u64, u8)>,
    /// Occupied slot indices, for O(used) clear and flush.
    used: Vec<u32>,
    shift: u32,
}

impl FastOverlay {
    pub fn new() -> Self {
        FastOverlay::default()
    }

    pub fn is_empty(&self) -> bool {
        self.used.is_empty()
    }

    pub fn clear(&mut self) {
        for &s in &self.used {
            self.slots[s as usize].0 = 0;
        }
        self.used.clear();
    }

    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(64);
        let mut next = FastOverlay {
            slots: vec![(0, 0, 0); cap],
            used: Vec::with_capacity(self.used.len() + 1),
            shift: 64 - cap.trailing_zeros(),
        };
        for &s in &self.used {
            let (k, w, m) = self.slots[s as usize];
            let slot = next.slot_for(k - 1);
            next.slots[slot] = (k, w, m);
            next.used.push(slot as u32);
        }
        *self = next;
    }

    /// Index of the slot holding `cell`, or of the empty slot where it
    /// would be inserted.
    #[inline]
    fn slot_for(&self, cell: u64) -> usize {
        let mask = self.slots.len() - 1;
        let mut i = cell_hash(cell, self.shift) & mask;
        loop {
            let k = self.slots[i].0;
            if k == 0 || k == cell + 1 {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    /// Buffers the low `len` bytes of `val` at `addr` (little-endian),
    /// overwriting previously buffered bytes in the range.
    pub fn buffer_store(&mut self, addr: u64, len: u32, val: u64) {
        // Keep load factor at or below one half.
        if (self.used.len() + 2) * 2 > self.slots.len() {
            self.grow();
        }
        let mut i = 0u32;
        while i < len {
            let a = addr + i as u64;
            let cell = a >> 3;
            let off = (a & 7) as u32;
            let n = (8 - off).min(len - i);
            let byte_mask = (((1u16 << n) - 1) as u8) << off;
            let lanes = LANES[byte_mask as usize];
            let part = ((val >> (8 * i)) << (8 * off)) & lanes;
            let slot = self.slot_for(cell);
            let entry = &mut self.slots[slot];
            if entry.0 == 0 {
                *entry = (cell + 1, part, byte_mask);
                self.used.push(slot as u32);
            } else {
                entry.1 = (entry.1 & !lanes) | part;
                entry.2 |= byte_mask;
            }
            i += n;
        }
    }

    /// Read-through merge: `base` is the value loaded from memory at
    /// `addr`/`len`; buffered bytes replace the corresponding lanes.
    pub fn merge(&self, addr: u64, len: u32, base: u64) -> u64 {
        let mut v = base;
        let mut i = 0u32;
        while i < len {
            let a = addr + i as u64;
            let cell = a >> 3;
            let off = (a & 7) as u32;
            let n = (8 - off).min(len - i);
            let slot = self.slot_for(cell);
            let (k, word, mask) = self.slots[slot];
            if k != 0 {
                let sub = (mask >> off) & (((1u16 << n) - 1) as u8);
                if sub != 0 {
                    let lanes = LANES[sub as usize];
                    let data = (word >> (8 * off)) & lanes;
                    v = (v & !(lanes << (8 * i))) | (data << (8 * i));
                }
            }
            i += n;
        }
        v
    }

    /// Commits every buffered byte to memory and clears the buffer.
    /// Byte addresses are unique, so write order is immaterial — exactly
    /// like the interpreter's hash-order overlay drain.
    pub fn flush_into(&mut self, mem: &mut Memory) {
        for &s in &self.used {
            let (k, word, mask) = self.slots[s as usize];
            self.slots[s as usize].0 = 0;
            let base = (k - 1) << 3;
            for b in 0..8 {
                if mask & (1 << b) != 0 {
                    // Bounds were checked when buffering.
                    let _ = mem.store_byte(base + b as u64, (word >> (8 * b)) as u8);
                }
            }
        }
        self.used.clear();
    }
}

/// Open-addressed `cell → u64` map for store→load forwarding times.
#[derive(Debug, Default)]
pub(super) struct CellMap {
    /// `(cell + 1, value)`; key 0 marks an empty slot.
    slots: Vec<(u64, u64)>,
    used: Vec<u32>,
    shift: u32,
}

impl CellMap {
    pub fn new() -> Self {
        CellMap::default()
    }

    pub fn clear(&mut self) {
        for &s in &self.used {
            self.slots[s as usize].0 = 0;
        }
        self.used.clear();
    }

    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(64);
        let mut next = CellMap {
            slots: vec![(0, 0); cap],
            used: Vec::with_capacity(self.used.len() + 1),
            shift: 64 - cap.trailing_zeros(),
        };
        for &s in &self.used {
            let (k, v) = self.slots[s as usize];
            let slot = next.slot_for(k - 1);
            next.slots[slot] = (k, v);
            next.used.push(slot as u32);
        }
        *self = next;
    }

    #[inline]
    fn slot_for(&self, cell: u64) -> usize {
        let mask = self.slots.len() - 1;
        let mut i = cell_hash(cell, self.shift) & mask;
        loop {
            let k = self.slots[i].0;
            if k == 0 || k == cell + 1 {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    #[inline]
    pub fn get(&self, cell: u64) -> Option<u64> {
        if self.used.is_empty() {
            return None;
        }
        let slot = self.slot_for(cell);
        let (k, v) = self.slots[slot];
        (k != 0).then_some(v)
    }

    pub fn insert(&mut self, cell: u64, val: u64) {
        if (self.used.len() + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let slot = self.slot_for(cell);
        let entry = &mut self.slots[slot];
        if entry.0 == 0 {
            *entry = (cell + 1, val);
            self.used.push(slot as u32);
        } else {
            entry.1 = val;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haft_ir::module::Module;

    #[test]
    fn overlay_matches_bytewise_semantics() {
        let mut fo = FastOverlay::new();
        assert!(fo.is_empty());
        // Store 0xAABBCCDD at 100 (4 bytes), then overwrite one byte.
        fo.buffer_store(100, 4, 0xAABB_CCDD);
        fo.buffer_store(101, 1, 0x11);
        assert!(!fo.is_empty());
        // Memory background is zero; merged read sees buffered bytes.
        assert_eq!(fo.merge(100, 4, 0), 0xAABB_11DD);
        // Partial overlap: read 2 bytes at 102.
        assert_eq!(fo.merge(102, 2, 0), 0xAABB);
        // Read past the buffered range keeps base bytes.
        assert_eq!(fo.merge(100, 8, 0x1234_5678_0000_0000), 0x1234_5678_AABB_11DD);
    }

    #[test]
    fn overlay_handles_cell_spanning_stores() {
        let mut fo = FastOverlay::new();
        // 8-byte store at an address straddling two cells.
        fo.buffer_store(101, 8, 0x1122_3344_5566_7788);
        assert_eq!(fo.merge(101, 8, 0), 0x1122_3344_5566_7788);
        assert_eq!(fo.merge(104, 4, 0), 0x2233_4455);
        // A byte before the store is untouched.
        assert_eq!(fo.merge(100, 1, 0x55), 0x55);
    }

    #[test]
    fn overlay_flush_writes_exactly_the_buffered_bytes() {
        let m = Module::new("t");
        let mut mem = Memory::new(&m, 4096);
        mem.store(200, 8, u64::MAX).unwrap();
        let mut fo = FastOverlay::new();
        fo.buffer_store(202, 2, 0xBEEF);
        fo.flush_into(&mut mem);
        assert!(fo.is_empty());
        assert_eq!(mem.load(200, 8).unwrap(), 0xFFFF_FFFF_BEEF_FFFF);
        // Flush clears: a second flush is a no-op.
        mem.store(200, 8, 0).unwrap();
        fo.flush_into(&mut mem);
        assert_eq!(mem.load(200, 8).unwrap(), 0);
    }

    #[test]
    fn overlay_survives_growth() {
        let mut fo = FastOverlay::new();
        for i in 0..500u64 {
            fo.buffer_store(64 + i * 8, 8, i);
        }
        for i in 0..500u64 {
            assert_eq!(fo.merge(64 + i * 8, 8, u64::MAX), i);
        }
        fo.clear();
        assert!(fo.is_empty());
        assert_eq!(fo.merge(64, 8, 7), 7, "cleared overlay reads through");
    }

    #[test]
    fn cell_map_inserts_overwrites_and_clears() {
        let mut cm = CellMap::new();
        assert_eq!(cm.get(5), None);
        cm.insert(5, 100);
        cm.insert(5, 200);
        assert_eq!(cm.get(5), Some(200));
        for i in 0..300 {
            cm.insert(i, i * 2);
        }
        for i in 0..300 {
            assert_eq!(cm.get(i), Some(i * 2));
        }
        cm.clear();
        assert_eq!(cm.get(5), None);
    }

    #[test]
    fn lanes_table_expands_mask_bits() {
        assert_eq!(LANES[0], 0);
        assert_eq!(LANES[0xFF], u64::MAX);
        assert_eq!(LANES[0b0000_0101], 0x0000_0000_00FF_00FF);
    }
}
